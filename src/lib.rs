//! # kbt — Knowledgebase Transformations
//!
//! A faithful, executable reproduction of *Knowledgebase Transformations*
//! (Grahne, Mendelzon, Revesz; PODS 1992 / JCSS 54(1), 1997): a uniform
//! first-order query/update language over knowledgebases — finite sets of
//! relational databases — whose insertion operator `τ_φ` follows Winslett's
//! possible-models minimal-change semantics and satisfies the
//! Katsuno–Mendelzon update postulates.
//!
//! This facade crate re-exports the public API of the workspace crates:
//!
//! * [`data`] — constants, relations, databases, knowledgebases, the Winslett
//!   order (crate `kbt-data`),
//! * [`logic`] — function-free first-order logic with a parser, model
//!   checking and grounding (crate `kbt-logic`),
//! * [`solver`] — the propositional SAT substrate used for minimal-model
//!   enumeration (crate `kbt-solver`),
//! * [`engine`] — the fast-evaluation substrate: indexed relation storage
//!   (hash indexes per bound-column mask, built lazily), a join planner that
//!   compiles rule bodies into index-probe sequences, and a delta-aware
//!   semi-naive fixpoint driver with work counters (crate `kbt-engine`),
//! * [`datalog`] — the Datalog substrate used by the PTIME fast path and the
//!   fixpoint expressiveness results; its evaluators lower onto the engine,
//!   with the original nested-loop evaluators preserved as a cross-check
//!   oracle in `datalog::reference` (crate `kbt-datalog`),
//! * [`core`] — the transformation language itself: `τ`, `⊓`, `⊔`, `π`,
//!   transformation expressions, evaluation strategies, the KM postulates,
//!   and the paper's seven worked examples (crate `kbt-core`),
//! * [`reductions`] — executable versions of the paper's complexity
//!   reductions and expressiveness encodings (crate `kbt-reductions`).
//!
//! ## Quickstart
//!
//! The "robot vehicles orbiting Venus" example (Example 1.1 / Example 4 of
//! the paper): see `examples/quickstart.rs`, or the
//! [`core::examples`] module.
//!
//! ## Performance
//!
//! The Theorem 4.8 fast path (`Strategy::Datalog`, picked automatically for
//! Horn sentences over fresh head relations) runs on `kbt-engine`: the
//! least fixpoint is computed by semi-naive rounds whose joins are hash
//! index probes keyed by the binding patterns each rule body demands.  The
//! `engine_joins` benchmark compares the engine against the preserved
//! nested-loop oracle; [`core::EvalStats`] and
//! [`datalog::EvalStats`] expose iterations, index
//! probes and tuples scanned so regressions are observable.
//!
//! Composition chains get a second layer: repeated Horn `τ_φ` steps inside
//! one `Seq` share a persistent
//! [`engine::IncrementalSession`] — the
//! diff between consecutive databases is fed into the live fixpoint
//! (semi-naive propagation for insertions, DRed overdelete/rederive for
//! deletions) instead of re-deriving it from scratch.  The
//! `chain_incremental` benchmark measures the win; `reused_facts` /
//! `rederived_facts` in the stats records make it observable per run.
//!
//! ## Serving
//!
//! [`service`] turns the library into a concurrent,
//! multi-session server: readers take `O(1)` MVCC snapshots of the
//! committed knowledgebase (the copy-on-write relations make this free)
//! and evaluate queries without ever blocking writers, while all mutation
//! serializes through a commit pipeline that publishes epochs atomically
//! and advances persistent incremental chain sessions per `APPLY`.  A
//! textual command language (`LOAD`, `ASSERT`, `RETRACT`, `DEFINE`,
//! `APPLY`, `QUERY`, `STATS`) fronts it, driven by the `kbt-shell` REPL /
//! batch runner; the `service_throughput` benchmark measures concurrent
//! readers against a committing writer.
//!
//! The same language travels over TCP: `kbt-serve` is a std-only network
//! front (one session per connection, bounded session workers with
//! explicit rejection at capacity, idle timeouts, graceful signal
//! shutdown) and `kbt-shell --connect host:port` runs the same scripts
//! remotely.  See the wire-protocol section of the
//! [`service`] crate docs for the framing and response
//! grammar; the `net_throughput` benchmark measures pipelined round-trips
//! under a committing writer, and CI's `e2e-net` job replays a golden
//! session over a live socket.
//!
//! The engine's fixpoint rounds can also run **in parallel**:
//! [`core::EvalOptions::threads`] sets the
//! evaluation width (`0` = the process default — `KBT_THREADS` or the
//! machine's available parallelism; `1` = the exact sequential path).  The
//! rounds fan out over the vendored `kbt-par` work-sharing pool with
//! private per-worker buffers merged deterministically, so fixpoints *and*
//! statistics are byte-identical at every width — the `engine_parallel`
//! benchmark records the 1/2/4-thread scaling.
//!
//! ## Observability
//!
//! [`obs`] is a std-only metrics layer: a registry of named
//! counters, gauges and log-scale latency histograms with mergeable
//! snapshots, a drop-timed span API, and structured text/JSON log sinks.
//! The engine, the `kbt-par` pool and the service layer are instrumented
//! with it; a running `kbt-serve` exposes everything through the
//! `METRICS` wire command as Prometheus-style text exposition, and
//! `kbt-serve --log-format {text,json} --slow-query-ms N` turns on
//! structured logging with a slow-query log.  The "Observability" section
//! of the [`service`] crate docs catalogues every metric
//! name.  Instrumentation never feeds back into evaluation: fixpoints and
//! `EngineStats` stay byte-identical at every width with metrics on or
//! off.

pub use kbt_core as core;
pub use kbt_data as data;
pub use kbt_datalog as datalog;
pub use kbt_engine as engine;
pub use kbt_logic as logic;
pub use kbt_obs as obs;
pub use kbt_par as par;
pub use kbt_reductions as reductions;
pub use kbt_service as service;
pub use kbt_solver as solver;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use kbt_core::{EvalOptions, Strategy, Transform, TransformResult, Transformer};
    pub use kbt_data::{
        Const, Database, DatabaseBuilder, Knowledgebase, KnowledgebaseBuilder, RelId, Relation,
        Schema, Tuple, Vocabulary,
    };
    pub use kbt_engine::{EngineStats, EvalMode};
    pub use kbt_logic::{Formula, Sentence, Term, Var};
}
