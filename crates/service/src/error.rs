//! Service-level errors: command parsing, name resolution, durability, and
//! everything the underlying layers can report.
//!
//! Every error carries a stable machine-readable code ([`ServiceError::code`])
//! — the `<code>` of an `ERR <code> <message>` wire response.  The full
//! code table, net-level codes included, is [`CODE_TABLE`]; a unit test
//! holds it exhaustive against the enum.

use std::fmt;
use std::io;

/// Any error a service operation can produce.
#[derive(Debug)]
pub enum ServiceError {
    /// A command line could not be parsed.
    Parse {
        /// What went wrong (with enough context to fix the input).
        message: String,
    },
    /// `APPLY` named a transformation that was never `DEFINE`d.
    UnknownTransform(String),
    /// A command referenced a relation name the vocabulary does not know.
    UnknownRelation(String),
    /// A `RETRACT` referenced a constant name never seen before (a typo:
    /// retracting a fact over a brand-new name is always a no-op).
    UnknownConstant(String),
    /// A bound query named a known relation with the wrong argument count.
    ArityMismatch {
        /// The relation's surface name.
        relation: String,
        /// The arity the vocabulary records for it.
        expected: usize,
        /// The number of arguments the query supplied.
        found: usize,
    },
    /// Script execution nested `LOAD`s too deeply (a cycle, most likely).
    ScriptDepth(usize),
    /// A `CHECKPOINT`/`WALSTAT` command reached a service configured
    /// without durability.
    DurabilityDisabled,
    /// A WAL record *before* the final one failed its length or checksum
    /// frame: the log is corrupt in the middle and replaying past the
    /// damage could serve silently wrong state, so recovery refuses.
    /// (A torn **final** record is normal crash debris and is truncated
    /// instead — see the crate-level *Durability* section.)
    WalCorrupt {
        /// Byte offset of the bad record.
        offset: u64,
        /// What failed (frame, checksum, payload).
        detail: String,
    },
    /// A checkpoint file failed its header, format, or checksum check.
    CheckpointCorrupt {
        /// The file that failed.
        path: String,
        /// What failed.
        detail: String,
    },
    /// The WAL and checkpoint disagree about epoch numbering (a gap,
    /// regression, or a replayed command committing a different epoch
    /// than its record claims).  Serving would mean serving state that
    /// never existed, so recovery refuses.
    EpochMismatch {
        /// The epoch recovery expected next.
        expected: u64,
        /// The epoch actually found.
        found: u64,
    },
    /// An error from the data layer (arities, schemas).
    Data(kbt_data::DataError),
    /// An error from the logic layer (sentence parsing).
    Logic(kbt_logic::LogicError),
    /// An error from the evaluator (strategy limits, world limits).
    Core(kbt_core::CoreError),
    /// A script file could not be read, or a WAL/checkpoint write failed.
    Io(io::Error),
}

/// Every stable wire code, service- and net-level, with a one-line
/// description — the single documented table the crate docs reproduce.
/// Codes above the `line-too-long` entry are [`ServiceError::code`] values;
/// the rest are net-level conditions defined in [`crate::net::proto`].
pub const CODE_TABLE: &[(&str, &str)] = &[
    ("parse", "command line could not be parsed"),
    (
        "unknown-transform",
        "APPLY named an undefined transformation",
    ),
    ("unknown-relation", "relation name not in the vocabulary"),
    ("unknown-constant", "RETRACT named a never-seen constant"),
    (
        "arity-mismatch",
        "bound query with the wrong argument count",
    ),
    ("script-depth", "LOAD nesting exceeded the limit"),
    (
        "durability-disabled",
        "CHECKPOINT/WALSTAT without a configured data dir",
    ),
    ("wal-corrupt", "corrupt interior WAL record at recovery"),
    (
        "checkpoint-corrupt",
        "checkpoint failed its format/checksum check",
    ),
    ("epoch-mismatch", "WAL/checkpoint epoch numbering disagrees"),
    ("data", "data-layer error (arities, schemas)"),
    ("logic", "logic-layer error (sentence parsing)"),
    ("eval", "evaluator error (strategy/world limits)"),
    ("io", "file or WAL/checkpoint I/O failed"),
    ("line-too-long", "net: command line exceeded the length cap"),
    ("invalid-utf8", "net: command line was not valid UTF-8"),
    ("idle-timeout", "net: session idle past the timeout"),
    ("unavailable", "net: all session workers busy"),
    ("shutting-down", "net: server is shutting down"),
];

impl ServiceError {
    /// The stable machine-readable code this error carries on the wire
    /// (the `<code>` of an `ERR <code> <message>` response).  Every code,
    /// including the net-level ones that never pass through a
    /// `ServiceError`, is listed in [`CODE_TABLE`].
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Parse { .. } => "parse",
            ServiceError::UnknownTransform(_) => "unknown-transform",
            ServiceError::UnknownRelation(_) => "unknown-relation",
            ServiceError::UnknownConstant(_) => "unknown-constant",
            ServiceError::ArityMismatch { .. } => "arity-mismatch",
            ServiceError::ScriptDepth(_) => "script-depth",
            ServiceError::DurabilityDisabled => "durability-disabled",
            ServiceError::WalCorrupt { .. } => "wal-corrupt",
            ServiceError::CheckpointCorrupt { .. } => "checkpoint-corrupt",
            ServiceError::EpochMismatch { .. } => "epoch-mismatch",
            ServiceError::Data(_) => "data",
            ServiceError::Logic(_) => "logic",
            ServiceError::Core(_) => "eval",
            ServiceError::Io(_) => "io",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Parse { message } => write!(f, "parse error: {message}"),
            ServiceError::UnknownTransform(name) => {
                write!(f, "unknown transformation {name:?} (DEFINE it first)")
            }
            ServiceError::UnknownRelation(name) => write!(f, "unknown relation {name:?}"),
            ServiceError::UnknownConstant(name) => write!(f, "unknown constant {name:?}"),
            ServiceError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation {relation:?} has arity {expected}, query supplied {found} arguments"
            ),
            ServiceError::ScriptDepth(depth) => {
                write!(f, "LOAD nesting exceeds {depth} levels (cycle?)")
            }
            ServiceError::DurabilityDisabled => {
                write!(f, "durability is not configured (start with a data dir)")
            }
            ServiceError::WalCorrupt { offset, detail } => {
                write!(f, "corrupt WAL record at byte {offset}: {detail}")
            }
            ServiceError::CheckpointCorrupt { path, detail } => {
                write!(f, "corrupt checkpoint {path}: {detail}")
            }
            ServiceError::EpochMismatch { expected, found } => {
                write!(
                    f,
                    "epoch mismatch during recovery: expected e{expected}, found e{found}"
                )
            }
            ServiceError::Data(e) => write!(f, "data error: {e}"),
            ServiceError::Logic(e) => write!(f, "logic error: {e}"),
            ServiceError::Core(e) => write!(f, "evaluation error: {e}"),
            ServiceError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<kbt_data::DataError> for ServiceError {
    fn from(e: kbt_data::DataError) -> Self {
        ServiceError::Data(e)
    }
}

impl From<kbt_logic::LogicError> for ServiceError {
    fn from(e: kbt_logic::LogicError) -> Self {
        ServiceError::Logic(e)
    }
}

impl From<kbt_core::CoreError> for ServiceError {
    fn from(e: kbt_core::CoreError) -> Self {
        ServiceError::Core(e)
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServiceError>;

#[cfg(test)]
mod tests {
    use super::*;

    /// One exemplar per variant.  A new variant fails the exhaustive match
    /// in `every_code_is_documented` at compile time until it is added
    /// both here and to [`CODE_TABLE`].
    fn exemplars() -> Vec<ServiceError> {
        vec![
            ServiceError::Parse {
                message: String::new(),
            },
            ServiceError::UnknownTransform(String::new()),
            ServiceError::UnknownRelation(String::new()),
            ServiceError::UnknownConstant(String::new()),
            ServiceError::ArityMismatch {
                relation: String::new(),
                expected: 0,
                found: 0,
            },
            ServiceError::ScriptDepth(0),
            ServiceError::DurabilityDisabled,
            ServiceError::WalCorrupt {
                offset: 0,
                detail: String::new(),
            },
            ServiceError::CheckpointCorrupt {
                path: String::new(),
                detail: String::new(),
            },
            ServiceError::EpochMismatch {
                expected: 0,
                found: 0,
            },
            ServiceError::Data(kbt_data::DataError::ArityMismatch {
                rel: kbt_data::RelId::new(0),
                expected: 0,
                found: 0,
            }),
            ServiceError::Logic(kbt_logic::LogicError::Parse {
                message: String::new(),
                offset: 0,
            }),
            ServiceError::Core(kbt_core::CoreError::TooManyWorlds {
                worlds: 0,
                limit: 0,
            }),
            ServiceError::Io(io::Error::other("x")),
        ]
    }

    #[test]
    fn every_code_is_documented_and_every_variant_covered() {
        let exemplars = exemplars();
        // Compile-time exhaustiveness: this match has no wildcard arm, so
        // adding a ServiceError variant forces an update here (and the
        // exemplar list above panics the count check until extended).
        let mut seen = 0usize;
        for e in &exemplars {
            match e {
                ServiceError::Parse { .. }
                | ServiceError::UnknownTransform(_)
                | ServiceError::UnknownRelation(_)
                | ServiceError::UnknownConstant(_)
                | ServiceError::ArityMismatch { .. }
                | ServiceError::ScriptDepth(_)
                | ServiceError::DurabilityDisabled
                | ServiceError::WalCorrupt { .. }
                | ServiceError::CheckpointCorrupt { .. }
                | ServiceError::EpochMismatch { .. }
                | ServiceError::Data(_)
                | ServiceError::Logic(_)
                | ServiceError::Core(_)
                | ServiceError::Io(_) => seen += 1,
            }
            assert!(
                CODE_TABLE.iter().any(|(code, _)| *code == e.code()),
                "code {:?} missing from CODE_TABLE",
                e.code()
            );
        }
        assert_eq!(seen, exemplars.len());
        // every service-level code in the table is produced by a variant …
        let net_codes = [
            "line-too-long",
            "invalid-utf8",
            "idle-timeout",
            "unavailable",
            "shutting-down",
        ];
        for (code, _) in CODE_TABLE {
            let produced = exemplars.iter().any(|e| e.code() == *code);
            let net = net_codes.contains(code);
            assert!(
                produced || net,
                "table code {code:?} is neither a ServiceError code nor a net code"
            );
        }
        // … and the net-level tail matches the proto constants exactly.
        use crate::net::proto;
        for code in [
            proto::CODE_LINE_TOO_LONG,
            proto::CODE_INVALID_UTF8,
            proto::CODE_IDLE_TIMEOUT,
            proto::CODE_UNAVAILABLE,
            proto::CODE_SHUTTING_DOWN,
        ] {
            assert!(
                CODE_TABLE.iter().any(|(c, _)| *c == code),
                "net code {code:?} missing from CODE_TABLE"
            );
        }
        // codes are unique
        for (i, (a, _)) in CODE_TABLE.iter().enumerate() {
            assert!(
                CODE_TABLE.iter().skip(i + 1).all(|(b, _)| a != b),
                "duplicate code {a:?}"
            );
        }
    }
}
