//! Service-level errors: command parsing, name resolution, and everything
//! the underlying layers can report.

use std::fmt;
use std::io;

/// Any error a service operation can produce.
#[derive(Debug)]
pub enum ServiceError {
    /// A command line could not be parsed.
    Parse {
        /// What went wrong (with enough context to fix the input).
        message: String,
    },
    /// `APPLY` named a transformation that was never `DEFINE`d.
    UnknownTransform(String),
    /// A command referenced a relation name the vocabulary does not know.
    UnknownRelation(String),
    /// A `RETRACT` referenced a constant name never seen before (a typo:
    /// retracting a fact over a brand-new name is always a no-op).
    UnknownConstant(String),
    /// A bound query named a known relation with the wrong argument count.
    ArityMismatch {
        /// The relation's surface name.
        relation: String,
        /// The arity the vocabulary records for it.
        expected: usize,
        /// The number of arguments the query supplied.
        found: usize,
    },
    /// Script execution nested `LOAD`s too deeply (a cycle, most likely).
    ScriptDepth(usize),
    /// An error from the data layer (arities, schemas).
    Data(kbt_data::DataError),
    /// An error from the logic layer (sentence parsing).
    Logic(kbt_logic::LogicError),
    /// An error from the evaluator (strategy limits, world limits).
    Core(kbt_core::CoreError),
    /// A script file could not be read.
    Io(io::Error),
}

impl ServiceError {
    /// The stable machine-readable code this error carries on the wire
    /// (the `<code>` of an `ERR <code> <message>` response — see the wire
    /// protocol section of the crate docs).  Net-level conditions that
    /// never pass through `ServiceError` (`line-too-long`, `invalid-utf8`,
    /// `idle-timeout`, `unavailable`, `shutting-down`) have their codes
    /// defined in [`crate::net::proto`].
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::Parse { .. } => "parse",
            ServiceError::UnknownTransform(_) => "unknown-transform",
            ServiceError::UnknownRelation(_) => "unknown-relation",
            ServiceError::UnknownConstant(_) => "unknown-constant",
            ServiceError::ArityMismatch { .. } => "arity-mismatch",
            ServiceError::ScriptDepth(_) => "script-depth",
            ServiceError::Data(_) => "data",
            ServiceError::Logic(_) => "logic",
            ServiceError::Core(_) => "eval",
            ServiceError::Io(_) => "io",
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Parse { message } => write!(f, "parse error: {message}"),
            ServiceError::UnknownTransform(name) => {
                write!(f, "unknown transformation {name:?} (DEFINE it first)")
            }
            ServiceError::UnknownRelation(name) => write!(f, "unknown relation {name:?}"),
            ServiceError::UnknownConstant(name) => write!(f, "unknown constant {name:?}"),
            ServiceError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation {relation:?} has arity {expected}, query supplied {found} arguments"
            ),
            ServiceError::ScriptDepth(depth) => {
                write!(f, "LOAD nesting exceeds {depth} levels (cycle?)")
            }
            ServiceError::Data(e) => write!(f, "data error: {e}"),
            ServiceError::Logic(e) => write!(f, "logic error: {e}"),
            ServiceError::Core(e) => write!(f, "evaluation error: {e}"),
            ServiceError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<kbt_data::DataError> for ServiceError {
    fn from(e: kbt_data::DataError) -> Self {
        ServiceError::Data(e)
    }
}

impl From<kbt_logic::LogicError> for ServiceError {
    fn from(e: kbt_logic::LogicError) -> Self {
        ServiceError::Logic(e)
    }
}

impl From<kbt_core::CoreError> for ServiceError {
    fn from(e: kbt_core::CoreError) -> Self {
        ServiceError::Core(e)
    }
}

impl From<io::Error> for ServiceError {
    fn from(e: io::Error) -> Self {
        ServiceError::Io(e)
    }
}

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ServiceError>;
