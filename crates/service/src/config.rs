//! Service configuration: the **explicit** evaluation width, observability
//! switches, and the durability options, assembled through
//! [`ServiceConfig::builder`].
//!
//! `kbt_par::default_threads` freezes the `KBT_THREADS` environment
//! variable on first read for the lifetime of the process — fine for a
//! one-shot CLI, wrong for a long-lived service that must be
//! reconfigurable.  The service therefore carries its width here: it is
//! resolved **once, at configuration time**, from an explicit setting or a
//! fresh (uncached) environment read, and every evaluation triggered
//! through the service passes it down as a concrete positive number.
//! Nothing on the serving path ever consults the frozen process default.
//!
//! Durability is opt-in: a config without a [`DurabilityConfig`] describes
//! the classic in-memory service.  With one, every commit appends its
//! canonical wire text to a write-ahead log under `data_dir` and the
//! service checkpoints / recovers as described in the crate-level
//! *Durability* section.

use std::path::PathBuf;
use std::time::Duration;

use kbt_core::EvalOptions;

/// When the WAL is flushed to stable storage relative to commits.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Every commit fsyncs before its response is produced.  Maximum
    /// safety, one fsync per commit.
    Always,
    /// Commits are acknowledged durable, but concurrent committers share
    /// fsyncs: one leader flushes the whole appended tail while followers
    /// wait for their record to become durable.  Under load this *raises*
    /// throughput over [`FsyncPolicy::Always`] — the cost of an fsync is
    /// amortized over the batch.
    GroupCommit {
        /// Stop accumulating and flush once this many commits are pending.
        max_batch: usize,
        /// How long a leader may wait for more committers to join its
        /// batch before flushing what it has.
        max_wait: Duration,
    },
    /// Append to the WAL but never fsync (the OS flushes eventually).
    /// Commits report `durable=false`; a crash may lose the recent tail
    /// but recovery still replays everything that reached the disk.
    Never,
}

impl FsyncPolicy {
    /// The default group-commit shape: flush at 64 pending commits or
    /// after 100 µs of accumulation, whichever comes first.
    pub fn group_commit() -> Self {
        FsyncPolicy::GroupCommit {
            max_batch: 64,
            max_wait: Duration::from_micros(100),
        }
    }

    /// Short lowercase name used in `WALSTAT` output and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FsyncPolicy::Always => "always",
            FsyncPolicy::GroupCommit { .. } => "group-commit",
            FsyncPolicy::Never => "never",
        }
    }
}

/// Durability options: where the WAL and checkpoints live and how they are
/// flushed.  See the crate-level *Durability* section for the on-disk
/// formats and the recovery procedure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DurabilityConfig {
    /// Directory holding `wal.kbtl` and `checkpoint-*.kbtc`; created on
    /// open when missing.
    pub data_dir: PathBuf,
    /// When commits are flushed to stable storage.
    pub fsync_policy: FsyncPolicy,
    /// Write a checkpoint every this many commits (`0` disables automatic
    /// checkpoints; the `CHECKPOINT` command always works).
    pub checkpoint_every_n_commits: u64,
}

impl DurabilityConfig {
    /// Durability under `data_dir` with the default group-commit policy
    /// and a checkpoint every 1024 commits.
    pub fn new(data_dir: impl Into<PathBuf>) -> Self {
        DurabilityConfig {
            data_dir: data_dir.into(),
            fsync_policy: FsyncPolicy::group_commit(),
            checkpoint_every_n_commits: 1024,
        }
    }
}

/// Configuration of a [`crate::Service`], assembled via [`Self::builder`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Evaluation width used for every query and commit evaluation:
    /// always an explicit positive number (`1` = the exact sequential
    /// path).  Defaults to a *fresh* read of `KBT_THREADS`, falling back
    /// to the machine's available parallelism — deliberately not
    /// `kbt_par::default_threads`, which is frozen on first read.
    pub threads: usize,
    /// Evaluation options for `τ_φ` (strategy selection, world and
    /// grounding limits, chain reuse).  The `threads` field in here is
    /// overridden by [`Self::threads`] — see [`Self::eval_options`].
    pub options: EvalOptions,
    /// Whether span *timing* records (clock reads feeding the `_ns`
    /// histograms and the slow-query log) are enabled on the service's
    /// registry.  Counters and gauges always record.
    pub metrics_timing: bool,
    /// Durability options; `None` (the default) is the in-memory service.
    pub durability: Option<DurabilityConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            // same policy as the process default, but resolved freshly
            threads: kbt_par::fresh_threads(),
            options: EvalOptions::default(),
            metrics_timing: true,
            durability: None,
        }
    }
}

impl ServiceConfig {
    /// Starts building a configuration from the defaults.
    pub fn builder() -> ServiceConfigBuilder {
        ServiceConfigBuilder {
            config: ServiceConfig::default(),
        }
    }

    /// The default configuration with an explicit width.  `0` follows the
    /// workspace-wide convention and means "use the default" (a fresh
    /// resolution of the `KBT_THREADS`/available-parallelism policy).
    #[deprecated(
        since = "0.1.0",
        note = "use ServiceConfig::builder().threads(n).build()"
    )]
    pub fn with_threads(threads: usize) -> Self {
        ServiceConfig::builder().threads(threads).build()
    }

    /// The options handed to every [`kbt_core::Transformer`] the service
    /// builds: [`Self::options`] with the width forced to the explicit
    /// [`Self::threads`] (never `0`, so the evaluator can never fall back
    /// to the frozen process default).
    pub fn eval_options(&self) -> EvalOptions {
        EvalOptions {
            threads: self.threads.max(1),
            ..self.options
        }
    }
}

/// Builder for [`ServiceConfig`] — the one place every knob is set.
#[derive(Clone, Debug)]
pub struct ServiceConfigBuilder {
    config: ServiceConfig,
}

impl ServiceConfigBuilder {
    /// Sets the evaluation width (`0` = resolve the default freshly).
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = if threads == 0 {
            kbt_par::fresh_threads()
        } else {
            threads
        };
        self
    }

    /// Sets the evaluator options (the width inside is still overridden by
    /// [`Self::threads`] at use time).
    pub fn options(mut self, options: EvalOptions) -> Self {
        self.config.options = options;
        self
    }

    /// Enables or disables span timing on the service registry (counters
    /// always record).
    pub fn metrics_timing(mut self, enabled: bool) -> Self {
        self.config.metrics_timing = enabled;
        self
    }

    /// Enables durability under `data_dir` with the default group-commit
    /// policy (see [`DurabilityConfig::new`]).
    pub fn durable(mut self, data_dir: impl Into<PathBuf>) -> Self {
        self.config.durability = Some(DurabilityConfig::new(data_dir));
        self
    }

    /// Sets the full durability configuration (or `None` to disable).
    pub fn durability(mut self, durability: Option<DurabilityConfig>) -> Self {
        self.config.durability = durability;
        self
    }

    /// Sets the fsync policy; enables durability under `data_dir` first
    /// via [`Self::durable`] — panics when durability is not configured.
    pub fn fsync_policy(mut self, policy: FsyncPolicy) -> Self {
        self.config
            .durability
            .as_mut()
            .expect("set a data_dir (durable(..)) before the fsync policy")
            .fsync_policy = policy;
        self
    }

    /// Sets the automatic-checkpoint interval (`0` disables automatic
    /// checkpoints); requires durability to be configured first.
    pub fn checkpoint_every_n_commits(mut self, n: u64) -> Self {
        self.config
            .durability
            .as_mut()
            .expect("set a data_dir (durable(..)) before the checkpoint interval")
            .checkpoint_every_n_commits = n;
        self
    }

    /// Finishes the build.
    pub fn build(self) -> ServiceConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_width_is_positive_and_explicit() {
        let c = ServiceConfig::default();
        assert!(c.threads >= 1);
        assert!(
            c.eval_options().threads >= 1,
            "0 would mean 'frozen default'"
        );
        assert!(c.metrics_timing);
        assert!(c.durability.is_none());
    }

    #[test]
    fn explicit_width_overrides_the_options_field() {
        let c = ServiceConfig::builder().threads(3).build();
        assert_eq!(c.threads, 3);
        assert_eq!(c.eval_options().threads, 3);
        // 0 = "use the default", per the workspace convention
        assert_eq!(
            ServiceConfig::builder().threads(0).build().threads,
            kbt_par::fresh_threads()
        );
    }

    #[test]
    fn builder_assembles_durability() {
        let c = ServiceConfig::builder()
            .threads(2)
            .durable("/tmp/kbt-data")
            .fsync_policy(FsyncPolicy::Always)
            .checkpoint_every_n_commits(10)
            .build();
        let d = c.durability.expect("durability configured");
        assert_eq!(d.data_dir, PathBuf::from("/tmp/kbt-data"));
        assert_eq!(d.fsync_policy, FsyncPolicy::Always);
        assert_eq!(d.checkpoint_every_n_commits, 10);
        assert_eq!(FsyncPolicy::group_commit().name(), "group-commit");
    }

    #[test]
    #[allow(deprecated)]
    fn the_deprecated_shim_still_builds_the_same_config() {
        assert_eq!(
            ServiceConfig::with_threads(3),
            ServiceConfig::builder().threads(3).build()
        );
    }
}
