//! Service configuration, most importantly the **explicit** evaluation
//! width.
//!
//! `kbt_par::default_threads` freezes the `KBT_THREADS` environment
//! variable on first read for the lifetime of the process — fine for a
//! one-shot CLI, wrong for a long-lived service that must be
//! reconfigurable.  The service therefore carries its width here: it is
//! resolved **once, at configuration time**, from an explicit setting or a
//! fresh (uncached) environment read, and every evaluation triggered
//! through the service passes it down as a concrete positive number.
//! Nothing on the serving path ever consults the frozen process default.

use kbt_core::EvalOptions;

/// Configuration of a [`crate::Service`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Evaluation width used for every query and commit evaluation:
    /// always an explicit positive number (`1` = the exact sequential
    /// path).  Defaults to a *fresh* read of `KBT_THREADS`, falling back
    /// to the machine's available parallelism — deliberately not
    /// `kbt_par::default_threads`, which is frozen on first read.
    pub threads: usize,
    /// Evaluation options for `τ_φ` (strategy selection, world and
    /// grounding limits, chain reuse).  The `threads` field in here is
    /// overridden by [`Self::threads`] — see [`Self::eval_options`].
    pub options: EvalOptions,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            // same policy as the process default, but resolved freshly
            threads: kbt_par::fresh_threads(),
            options: EvalOptions::default(),
        }
    }
}

impl ServiceConfig {
    /// The default configuration with an explicit width.  `0` follows the
    /// workspace-wide convention and means "use the default" (a fresh
    /// resolution of the `KBT_THREADS`/available-parallelism policy).
    pub fn with_threads(threads: usize) -> Self {
        ServiceConfig {
            threads: if threads == 0 {
                kbt_par::fresh_threads()
            } else {
                threads
            },
            ..ServiceConfig::default()
        }
    }

    /// The options handed to every [`kbt_core::Transformer`] the service
    /// builds: [`Self::options`] with the width forced to the explicit
    /// [`Self::threads`] (never `0`, so the evaluator can never fall back
    /// to the frozen process default).
    pub fn eval_options(&self) -> EvalOptions {
        EvalOptions {
            threads: self.threads.max(1),
            ..self.options
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_width_is_positive_and_explicit() {
        let c = ServiceConfig::default();
        assert!(c.threads >= 1);
        assert!(
            c.eval_options().threads >= 1,
            "0 would mean 'frozen default'"
        );
    }

    #[test]
    fn explicit_width_overrides_the_options_field() {
        let c = ServiceConfig::with_threads(3);
        assert_eq!(c.threads, 3);
        assert_eq!(c.eval_options().threads, 3);
        // 0 = "use the default", per the workspace convention
        assert_eq!(
            ServiceConfig::with_threads(0).threads,
            kbt_par::fresh_threads()
        );
    }
}
