//! Crash recovery: turn a data directory back into the exact committed
//! state the last durable commit left behind.
//!
//! Recovery is `checkpoint + WAL tail`:
//!
//! 1. Load the **newest valid checkpoint** (if any) — a full state at some
//!    epoch `c` (a checkpoint that fails its checksum is refused with
//!    [`ServiceError::CheckpointCorrupt`]; it is never silently skipped,
//!    because a half-trusted base state could replay into garbage).
//! 2. Scan the WAL.  Records with `epoch ≤ c` are already inside the
//!    checkpoint and are skipped; the remainder is the **tail** the
//!    service replays through its normal commit pipeline.
//! 3. A torn *final* record (the crash hit mid-write) is normal debris:
//!    the scan stops before it and [`crate::wal::Wal::open`] truncates it.
//!    A corrupt *interior* record or an epoch gap — including a tail whose
//!    first record is not `c + 1` — is refused with a typed error instead,
//!    because replaying past damage would serve state that never existed.
//!
//! This module only plans; the replay itself runs in
//! [`crate::Service::open`], which owns the commit pipeline.

use std::fs;
use std::path::Path;

use crate::checkpoint::{self, CheckpointData};
use crate::error::{Result, ServiceError};
use crate::wal::{Wal, WalRecord, WAL_FILE};

/// Everything [`crate::Service::open`] needs to rebuild state and then
/// open the WAL for appending.
#[derive(Debug)]
pub struct RecoveryPlan {
    /// The newest valid checkpoint, when one exists.
    pub checkpoint: Option<CheckpointData>,
    /// WAL records newer than the checkpoint, in commit order, each
    /// verified (length, checksum, epoch contiguity).
    pub tail: Vec<WalRecord>,
    /// Byte length of the valid WAL prefix — [`crate::wal::Wal::open`]
    /// truncates a torn tail down to this.
    pub wal_valid_len: u64,
    /// Whether the scan found (and the open will drop) a torn final record.
    pub torn_tail: bool,
    /// The epoch the recovered state ends at (`0` for a fresh directory).
    pub epoch: u64,
}

/// Reads `data_dir` (creating it when missing) and plans the recovery.
pub fn plan(data_dir: &Path) -> Result<RecoveryPlan> {
    fs::create_dir_all(data_dir)?;

    let checkpoint = match checkpoint::newest_checkpoint(data_dir)? {
        Some((_, path)) => Some(checkpoint::load(&path)?),
        None => None,
    };
    let base_epoch = checkpoint.as_ref().map_or(0, |c| c.epoch);

    let scan = Wal::scan(&data_dir.join(WAL_FILE))?;
    let tail: Vec<WalRecord> = scan
        .records
        .into_iter()
        .skip_while(|r| r.epoch <= base_epoch)
        .collect();
    if let Some(first) = tail.first() {
        // the scan already proved the tail internally contiguous; it must
        // also pick up exactly where the checkpoint stops
        if first.epoch != base_epoch + 1 {
            return Err(ServiceError::EpochMismatch {
                expected: base_epoch + 1,
                found: first.epoch,
            });
        }
    }
    // records *older* than the checkpoint in the middle of the log would
    // mean epochs went backwards — the scan's contiguity check already
    // refused that, so skip_while is safe; assert the invariant anyway.
    debug_assert!(tail.windows(2).all(|w| w[1].epoch == w[0].epoch + 1));

    let epoch = tail.last().map_or(base_epoch, |r| r.epoch);
    Ok(RecoveryPlan {
        checkpoint,
        tail,
        wal_valid_len: scan.valid_len,
        torn_tail: scan.torn_tail,
        epoch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kbt-recover-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn a_fresh_directory_plans_to_epoch_zero() {
        let dir = scratch("fresh");
        let plan = plan(&dir).expect("plan");
        assert!(plan.checkpoint.is_none());
        assert!(plan.tail.is_empty());
        assert_eq!(plan.epoch, 0);
        assert!(!plan.torn_tail);
        assert!(dir.is_dir(), "the data dir is created");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_wal_gap_after_the_checkpoint_is_refused() {
        let dir = scratch("gap");
        fs::create_dir_all(&dir).unwrap();
        // WAL holding epochs 3,4 with no checkpoint: expected first is 1
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&Wal::encode(3, "ASSERT edge(1, 2)"));
        bytes.extend_from_slice(&Wal::encode(4, "ASSERT edge(2, 3)"));
        fs::write(dir.join(WAL_FILE), &bytes).unwrap();
        match plan(&dir) {
            Err(ServiceError::EpochMismatch { expected, found }) => {
                assert_eq!((expected, found), (1, 3));
            }
            other => panic!("wanted EpochMismatch, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
