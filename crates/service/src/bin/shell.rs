//! `kbt-shell` — the service's textual frontend, local or remote.
//!
//! * `kbt-shell script.kbt …` — batch mode: run each script through one
//!   in-process service instance, print every response, exit non-zero on
//!   the first error (CI smoke-runs this on `examples/service_demo.kbt`).
//! * `kbt-shell --connect HOST:PORT [script.kbt …]` — the same, but every
//!   command goes to a running `kbt-serve` over TCP and the printed output
//!   is the wire response verbatim (`= ` data lines + `OK`/`ERR` status) —
//!   the same scripts run locally or remotely.
//! * `kbt-shell` — REPL mode: read commands from stdin (with a prompt when
//!   stdin is a terminal); errors are printed and the session continues.
//!   A line ending inside an open `'…'` quote continues onto the next one.
//! * `--threads N` — set the evaluation width explicitly (local mode only;
//!   a server's width is fixed server-side).
//! * `--data-dir DIR` — local mode only: open the service durably over the
//!   directory (recovering any existing state), so shell sessions and
//!   `kbt-serve` runs can share one committed history.  `CHECKPOINT` and
//!   `WALSTAT` work; commits append to the write-ahead log.
//! * `--time` — print each command's client-observed latency to **stderr**
//!   (stdout transcripts stay byte-identical), and a p50/p95/p99 summary at
//!   exit from the same log-scale histogram the server-side metrics use.
//!   With `--connect` that is the full round trip over the wire.
//! * `--profile` — after every successful `QUERY`, re-run it as `PROFILE`
//!   and print the per-rule breakdown to **stderr** (stdout transcripts
//!   stay byte-identical; `PROFILE` never commits, so state is untouched).
//!   Implies the `--time` exit summary so the breakdown comes with
//!   end-to-end quantiles.
//!
//! Scripts are segmented into **logical** command lines (a quoted constant
//! may contain newlines) by the same splitter the service and the network
//! framer use, so a script means the same thing in every mode.

use std::io::{BufRead, IsTerminal, Write};
use std::process::ExitCode;
use std::time::Instant;

use kbt_obs::HistogramCell;
use kbt_service::command::{quote_open, split_lines};
use kbt_service::net::Client;
use kbt_service::{Response, Service, ServiceConfig};

fn main() -> ExitCode {
    let mut scripts = Vec::new();
    let mut config = ServiceConfig::default();
    let mut connect: Option<String> = None;
    let mut time = false;
    let mut profile = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                // 0 is rejected rather than coerced: everywhere else in the
                // workspace 0 means "use the default", and silently running
                // sequentially would contradict the operator's intent
                let Some(n) = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::FAILURE;
                };
                config.threads = n;
            }
            "--connect" => {
                let Some(addr) = args.next() else {
                    eprintln!("--connect needs HOST:PORT");
                    return ExitCode::FAILURE;
                };
                connect = Some(addr);
            }
            "--data-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("--data-dir needs a directory path");
                    return ExitCode::FAILURE;
                };
                config.durability = Some(kbt_service::DurabilityConfig::new(dir));
            }
            "--time" => time = true,
            "--profile" => profile = true,
            "--help" | "-h" => {
                println!(
                    "usage: kbt-shell [--threads N] [--connect HOST:PORT] [--data-dir DIR] \
                     [--time] [--profile] [script …]"
                );
                println!("       (no scripts: interactive REPL on stdin)");
                return ExitCode::SUCCESS;
            }
            _ => scripts.push(arg),
        }
    }

    let backend = match connect {
        Some(addr) => {
            if config.durability.is_some() {
                eprintln!("--data-dir is local-mode only (the server owns its own data dir)");
                return ExitCode::FAILURE;
            }
            match Client::connect(addr.as_str()) {
                Ok(client) => Backend::Remote(client),
                Err(e) => {
                    eprintln!("cannot connect to {addr}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => match Service::open(config) {
            Ok(service) => Backend::Local(Box::new(service)),
            Err(e) => {
                eprintln!("cannot open service state: {e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let mut shell = Shell {
        backend,
        timing: (time || profile).then(|| Box::new(HistogramCell::new())),
        show_time: time,
        profile,
    };
    let code = if scripts.is_empty() {
        repl(&mut shell)
    } else {
        batch(&mut shell, &scripts)
    };
    shell.report_timing();
    code
}

/// The backend plus the optional `--time` instrumentation around it.
struct Shell {
    backend: Backend,
    /// When `--time` or `--profile` is set: the latency histogram every
    /// command records into (the same log-scale cell the server-side
    /// metrics use).
    timing: Option<Box<HistogramCell>>,
    /// `--time`: print each command's latency line (the exit summary is
    /// printed whenever `timing` is live).
    show_time: bool,
    /// `--profile`: re-run each successful `QUERY` as `PROFILE` and print
    /// the per-rule breakdown to stderr.
    profile: bool,
}

impl Shell {
    /// Runs one command through the backend, timing it when `--time` is
    /// set.  The latency and profile lines go to stderr so stdout
    /// transcripts stay byte-identical with and without the flags.
    fn run(&mut self, command: &str, err_line: impl FnOnce() -> String) -> bool {
        let ok = match &self.timing {
            None => self.backend.run(command, err_line),
            Some(cell) => {
                let start = Instant::now();
                let ok = self.backend.run(command, err_line);
                let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                cell.record(ns);
                if self.show_time {
                    let verb = command.split_whitespace().next().unwrap_or("");
                    eprintln!("time: {:.3} ms  {verb}", ns as f64 / 1e6);
                }
                ok
            }
        };
        // the PROFILE re-run happens outside the timed window: the --time
        // histogram keeps measuring exactly what ran without --profile
        if ok && self.profile {
            if let Some(rest) = query_rest(command) {
                self.backend.profile(rest);
            }
        }
        ok
    }

    /// The timing exit summary (quantiles are log-bucket upper bounds,
    /// hence the `<=`).
    fn report_timing(&self) {
        let Some(cell) = &self.timing else { return };
        let snap = cell.snapshot();
        if snap.count == 0 {
            return;
        }
        let q = |q: f64| snap.quantile(q).unwrap_or(0);
        eprintln!(
            "time: {} command(s), p50<={}ns p95<={}ns p99<={}ns",
            snap.count,
            q(0.5),
            q(0.95),
            q(0.99)
        );
    }
}

/// The query form of a `QUERY` command, when `command` is one (the part
/// `--profile` re-runs as `PROFILE <rest>`).
fn query_rest(command: &str) -> Option<&str> {
    let (verb, rest) = command.trim_start().split_once(char::is_whitespace)?;
    verb.eq_ignore_ascii_case("QUERY")
        .then(|| rest.trim_start())
        .filter(|rest| !rest.is_empty())
}

/// Where commands go: an in-process service or a remote `kbt-serve`.
enum Backend {
    Local(Box<Service>),
    Remote(Client),
}

impl Backend {
    /// Executes one command, prints its output, and reports whether it
    /// succeeded (with the error already printed via `err_line`).
    fn run(&mut self, command: &str, err_line: impl FnOnce() -> String) -> bool {
        match self {
            Backend::Local(service) => match service.execute(command) {
                Ok(Response::Ok) => true,
                Ok(response) => {
                    println!("{response}");
                    true
                }
                Err(e) => {
                    eprintln!("{}: {e}", err_line());
                    false
                }
            },
            Backend::Remote(client) => {
                // never put an unterminated quote on the wire: the server's
                // framer would buffer waiting for the continuation while we
                // block waiting for a response — a deadlock until its idle
                // timeout.  Local mode gets an instant parse error; match it.
                if quote_open(command) {
                    eprintln!(
                        "{}: unterminated quoted constant (command not sent)",
                        err_line()
                    );
                    return false;
                }
                match client.roundtrip(command) {
                    Ok(response) => {
                        for line in &response.data {
                            println!("{line}");
                        }
                        println!("{}", response.status);
                        response.is_ok() || {
                            eprintln!("{}: {}", err_line(), response.status);
                            false
                        }
                    }
                    Err(e) => {
                        eprintln!("{}: connection error: {e}", err_line());
                        false
                    }
                }
            }
        }
    }

    /// `--profile`: runs `PROFILE <rest>` and prints the per-rule
    /// breakdown to stderr.  A profile failure is reported but never fails
    /// the command — the `QUERY` itself already succeeded.
    fn profile(&mut self, rest: &str) {
        let command = format!("PROFILE {rest}");
        match self {
            Backend::Local(service) => match service.execute(&command) {
                Ok(Response::Profile { worlds, rows, .. }) => {
                    eprintln!("profile: {worlds} world(s), {} row(s)", rows.len());
                    for row in rows {
                        eprintln!("profile: {row}");
                    }
                }
                Ok(other) => eprintln!("profile: unexpected response: {other}"),
                Err(e) => eprintln!("profile: {e}"),
            },
            Backend::Remote(client) => match client.roundtrip(&command) {
                Ok(response) => {
                    eprintln!("profile: {}", response.status);
                    for line in &response.data {
                        eprintln!("profile: {line}");
                    }
                }
                Err(e) => eprintln!("profile: connection error: {e}"),
            },
        }
    }
}

/// Is this line nothing but whitespace or a comment (not worth a network
/// round-trip — and, remotely, not worth an `OK` line in the transcript)?
fn is_nop(line: &str) -> bool {
    let line = line.trim();
    line.is_empty() || line.starts_with('#')
}

/// Runs every script, one logical command line at a time, printing each
/// response and stopping at the first error.
fn batch(shell: &mut Shell, scripts: &[String]) -> ExitCode {
    for path in scripts {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut lineno = 1usize;
        for command in split_lines(&text) {
            let at = format!("{path}:{lineno}");
            lineno += 1 + command.matches('\n').count();
            if is_nop(command) {
                continue;
            }
            if !shell.run(command, || at) {
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// Interactive loop: one command per line (continued while a quote stays
/// open), errors do not end the session.
fn repl(shell: &mut Shell) -> ExitCode {
    let interactive = std::io::stdin().is_terminal();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    if interactive {
        println!(
            "kbt-service shell — commands: LOAD, ASSERT, RETRACT, DEFINE, APPLY, QUERY, EXPLAIN, \
             PROFILE, STATS, METRICS"
        );
    }
    let mut pending = String::new();
    loop {
        if interactive {
            print!("{}", if pending.is_empty() { "kbt> " } else { "...> " });
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => {
                // EOF with input pending: run it as-is (an open-quoted
                // trailer errors — locally from the parser, remotely from
                // the client-side unterminated-quote check)
                if !pending.is_empty() && !is_nop(&pending) {
                    shell.run(&pending, || "stdin".to_string());
                }
                return ExitCode::SUCCESS;
            }
            Ok(_) => {
                pending.push_str(&line);
                if quote_open(&pending) {
                    continue; // the quoted constant continues on the next line
                }
                let command = std::mem::take(&mut pending);
                let command = command.strip_suffix('\n').unwrap_or(&command);
                if !is_nop(command) {
                    shell.run(command, || "error".to_string());
                }
            }
            Err(e) => {
                eprintln!("stdin: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nop_lines_are_detected() {
        assert!(is_nop(""));
        assert!(is_nop("   "));
        assert!(is_nop("# comment"));
        assert!(!is_nop("STATS"));
    }

    #[test]
    fn query_commands_yield_their_profile_form() {
        assert_eq!(query_rest("QUERY CERTAIN edge"), Some("CERTAIN edge"));
        assert_eq!(query_rest("  query   lub"), Some("lub"));
        assert_eq!(query_rest("QUERY"), None);
        assert_eq!(query_rest("QUERY   "), None);
        assert_eq!(query_rest("ASSERT edge(1, 2)"), None);
        assert_eq!(query_rest("PROFILE lub"), None);
    }
}
