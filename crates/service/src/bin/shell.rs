//! `kbt-shell` — the service's textual frontend.
//!
//! * `kbt-shell script.kbt …` — batch mode: run each script through one
//!   service instance, print every response, exit non-zero on the first
//!   error (CI smoke-runs this on `examples/service_demo.kbt`).
//! * `kbt-shell` — REPL mode: read commands from stdin (with a prompt when
//!   stdin is a terminal); errors are printed and the session continues.
//! * `--threads N` — set the evaluation width explicitly (otherwise a
//!   fresh `KBT_THREADS` read, falling back to available parallelism).

use std::io::{BufRead, IsTerminal, Write};
use std::process::ExitCode;

use kbt_service::{Response, Service, ServiceConfig};

fn main() -> ExitCode {
    let mut scripts = Vec::new();
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                // 0 is rejected rather than coerced: everywhere else in the
                // workspace 0 means "use the default", and silently running
                // sequentially would contradict the operator's intent
                let Some(n) = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::FAILURE;
                };
                config.threads = n;
            }
            "--help" | "-h" => {
                println!("usage: kbt-shell [--threads N] [script …]");
                println!("       (no scripts: interactive REPL on stdin)");
                return ExitCode::SUCCESS;
            }
            _ => scripts.push(arg),
        }
    }

    let service = Service::new(config);
    if scripts.is_empty() {
        repl(&service)
    } else {
        batch(&service, &scripts)
    }
}

/// Runs every script through the service line by line, printing each
/// response and stopping at the first error.
fn batch(service: &Service, scripts: &[String]) -> ExitCode {
    for path in scripts {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for (lineno, line) in text.lines().enumerate() {
            match service.execute(line) {
                Ok(Response::Ok) => {}
                Ok(response) => println!("{response}"),
                Err(e) => {
                    eprintln!("{path}:{}: {e}", lineno + 1);
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}

/// Interactive loop: one command per line, errors do not end the session.
fn repl(service: &Service) -> ExitCode {
    let interactive = std::io::stdin().is_terminal();
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    if interactive {
        println!(
            "kbt-service shell — commands: LOAD, ASSERT, RETRACT, DEFINE, APPLY, QUERY, STATS"
        );
    }
    loop {
        if interactive {
            print!("kbt> ");
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return ExitCode::SUCCESS, // EOF
            Ok(_) => match service.execute(&line) {
                Ok(Response::Ok) => {}
                Ok(response) => println!("{response}"),
                Err(e) => eprintln!("error: {e}"),
            },
            Err(e) => {
                eprintln!("stdin: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
}
