//! `kbt-serve` — the network front of the knowledgebase service.
//!
//! Binds a TCP listener and serves the line-oriented command language to
//! concurrent connections, one session per connection, all multiplexed on
//! one shared MVCC [`kbt_service::Service`] (see the wire-protocol section
//! of the `kbt_service` crate docs).
//!
//! ```text
//! kbt-serve [--addr HOST:PORT] [--threads N] [--max-sessions N]
//!           [--idle-timeout-ms N] [--preload script.kbt]
//!           [--data-dir DIR] [--fsync always|group|never]
//!           [--checkpoint-every N]
//!           [--log-format text|json] [--slow-query-ms N]
//! ```
//!
//! * `--addr` defaults to `127.0.0.1:7341`; port `0` picks an ephemeral
//!   port (the `listening on` line names the actual one).
//! * `--preload` runs a script server-side before accepting connections —
//!   initial state, not a client session.
//! * `--data-dir` makes the service durable: commits append to a
//!   write-ahead log under the directory, `CHECKPOINT`/`WALSTAT` work,
//!   and startup recovers the committed state (newest checkpoint + WAL
//!   replay; the `recovered` line reports the epoch).  `--fsync` picks
//!   the flush policy (default `group`: group-commit fsync batching) and
//!   `--checkpoint-every` the automatic checkpoint interval in commits
//!   (`0` = manual checkpoints only); both require `--data-dir`.
//! * `--log-format` installs a structured stderr log sink (`text` =
//!   `key=value` lines, `json` = one object per line) for session
//!   lifecycle events and slow spans.
//! * `--slow-query-ms` sets the slow-span threshold: any timed span at or
//!   over it (`slow_query` with the query text, commit phases, per-verb
//!   command spans) is logged.  Implies `--log-format text` unless
//!   `--log-format` says otherwise; `0` is rejected — it would log every
//!   span and means "off" in no convention this workspace uses.
//! * SIGINT / SIGTERM shut down gracefully: the acceptor stops, live
//!   sessions are told `ERR shutting-down` at their next poll tick, every
//!   thread is joined, and the process exits 0.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use kbt_obs::{LogFormat, StderrSink};
use kbt_service::net::{NetConfig, NetServer};
use kbt_service::{DurabilityConfig, FsyncPolicy, Service, ServiceConfig};

fn main() -> ExitCode {
    let mut config = ServiceConfig::default();
    let mut fsync: Option<FsyncPolicy> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut net = NetConfig {
        addr: "127.0.0.1:7341".to_string(),
        ..NetConfig::default()
    };
    let mut preload: Option<String> = None;
    let mut log_format: Option<LogFormat> = None;
    let mut slow_query_ms: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                let Some(addr) = args.next() else {
                    eprintln!("--addr needs HOST:PORT");
                    return ExitCode::FAILURE;
                };
                net.addr = addr;
            }
            "--threads" => {
                let Some(n) = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--threads needs a positive integer");
                    return ExitCode::FAILURE;
                };
                config.threads = n;
            }
            "--max-sessions" => {
                let Some(n) = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--max-sessions needs a positive integer");
                    return ExitCode::FAILURE;
                };
                net.max_sessions = n;
            }
            "--idle-timeout-ms" => {
                // 0 is rejected: a zero read timeout is invalid at the
                // socket layer and would silently kill every session
                let Some(n) = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--idle-timeout-ms needs a positive integer");
                    return ExitCode::FAILURE;
                };
                net.idle_timeout = Duration::from_millis(n);
            }
            "--preload" => {
                let Some(path) = args.next() else {
                    eprintln!("--preload needs a script path");
                    return ExitCode::FAILURE;
                };
                preload = Some(path);
            }
            "--data-dir" => {
                let Some(dir) = args.next() else {
                    eprintln!("--data-dir needs a directory path");
                    return ExitCode::FAILURE;
                };
                config.durability = Some(DurabilityConfig::new(dir));
            }
            "--fsync" => {
                let policy = match args.next().as_deref() {
                    Some("always") => FsyncPolicy::Always,
                    Some("group") => FsyncPolicy::group_commit(),
                    Some("never") => FsyncPolicy::Never,
                    _ => {
                        eprintln!("--fsync needs 'always', 'group' or 'never'");
                        return ExitCode::FAILURE;
                    }
                };
                fsync = Some(policy);
            }
            "--checkpoint-every" => {
                // 0 is allowed here: it means "manual checkpoints only"
                let Some(n) = args.next().and_then(|v| v.parse::<u64>().ok()) else {
                    eprintln!("--checkpoint-every needs a non-negative integer");
                    return ExitCode::FAILURE;
                };
                checkpoint_every = Some(n);
            }
            "--log-format" => {
                let Some(format) = args.next().as_deref().and_then(LogFormat::parse) else {
                    eprintln!("--log-format needs 'text' or 'json'");
                    return ExitCode::FAILURE;
                };
                log_format = Some(format);
            }
            "--slow-query-ms" => {
                // 0 is rejected: it would log *every* span, and `0 = off`
                // is a convention nothing else in this workspace uses —
                // same footgun policy as --idle-timeout-ms
                let Some(n) = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .filter(|&n| n > 0)
                else {
                    eprintln!("--slow-query-ms needs a positive integer");
                    return ExitCode::FAILURE;
                };
                slow_query_ms = Some(n);
            }
            "--help" | "-h" => {
                println!(
                    "usage: kbt-serve [--addr HOST:PORT] [--threads N] [--max-sessions N] \
                     [--idle-timeout-ms N] [--preload script.kbt] \
                     [--data-dir DIR] [--fsync always|group|never] [--checkpoint-every N] \
                     [--log-format text|json] [--slow-query-ms N]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument {other:?} (try --help)");
                return ExitCode::FAILURE;
            }
        }
    }

    match (&mut config.durability, fsync, checkpoint_every) {
        (Some(d), fsync, every) => {
            if let Some(policy) = fsync {
                d.fsync_policy = policy;
            }
            if let Some(n) = every {
                d.checkpoint_every_n_commits = n;
            }
        }
        (None, Some(_), _) | (None, _, Some(_)) => {
            eprintln!("--fsync / --checkpoint-every require --data-dir");
            return ExitCode::FAILURE;
        }
        (None, None, None) => {}
    }

    let durability = config.durability.clone();
    let service = match Service::open(config) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("cannot open service state: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(d) = durability {
        println!(
            "kbt-serve recovered epoch {} from {} (fsync {}, checkpoint every {})",
            service.epoch(),
            d.data_dir.display(),
            d.fsync_policy.name(),
            d.checkpoint_every_n_commits
        );
    }
    if log_format.is_some() || slow_query_ms.is_some() {
        service
            .obs_registry()
            .set_sink(Some(Arc::new(StderrSink::new(
                log_format.unwrap_or(LogFormat::Text),
            ))));
    }
    if let Some(ms) = slow_query_ms {
        service
            .obs_registry()
            .set_slow_span_ns(ms.saturating_mul(1_000_000));
    }
    if let Some(path) = preload {
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = service.execute_script(&text) {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("kbt-serve preloaded {path} (epoch {})", service.epoch());
    }

    let server = match NetServer::start(service.clone(), net.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", net.addr);
            return ExitCode::FAILURE;
        }
    };
    // the readiness line: supervisors (the CI e2e job) wait for it before
    // connecting, so readiness probes never inflate the session counters
    println!(
        "kbt-serve listening on {} (threads {}, max sessions {}, idle timeout {} ms)",
        server.local_addr(),
        service.config().threads,
        net.max_sessions,
        net.idle_timeout.as_millis()
    );

    signals::install();
    while !signals::requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    let counters = service.session_counters();
    server.shutdown();
    println!(
        "kbt-serve shut down at epoch {} ({} session(s) accepted, {} rejected, {} idle-closed)",
        service.epoch(),
        counters.accepted.get(),
        counters.rejected.get(),
        counters.idle_closed.get()
    );
    ExitCode::SUCCESS
}

/// Async-signal-safe shutdown request: the handler only stores a flag the
/// main loop polls.  `std` exposes no signal API, so the registration goes
/// through libc's `signal(2)` directly (libc is always linked on the unix
/// targets this gate covers).
#[cfg(unix)]
mod signals {
    use std::os::raw::c_int;
    use std::sync::atomic::{AtomicBool, Ordering};

    const SIGINT: c_int = 2;
    const SIGTERM: c_int = 15;

    static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: c_int) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: c_int, handler: extern "C" fn(c_int)) -> usize;
    }

    pub fn install() {
        // SAFETY: `signal` is the C standard library function; the handler
        // only performs an atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

/// Non-unix fallback: no signal handling; the process runs until killed.
#[cfg(not(unix))]
mod signals {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}
