//! A blocking protocol client: send command lines, receive framed
//! responses.
//!
//! [`Client::send`] buffers; [`Client::recv`] flushes and then reads lines
//! until the terminating status line — so `N × send` followed by
//! `N × recv` pipelines N commands into (at best) one TCP segment each
//! way, which is where the round-trips/s in the `net_throughput` bench
//! come from.  [`Client::roundtrip`] is the one-command convenience.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::net::proto::{is_status_line, WireResponse};

/// A connected protocol client (see module docs).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running `kbt-serve`.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Queues one command line (not flushed until [`recv`](Self::recv) or
    /// [`flush`](Self::flush)).  The command may span physical lines when a
    /// quoted constant contains newlines — the server's framer handles the
    /// continuation.
    pub fn send(&mut self, command: &str) -> std::io::Result<()> {
        self.writer.write_all(command.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Flushes queued commands to the socket.
    pub fn flush(&mut self) -> std::io::Result<()> {
        self.writer.flush()
    }

    /// Reads one full response (data lines up to and including the status
    /// line), flushing queued commands first.
    pub fn recv(&mut self) -> std::io::Result<WireResponse> {
        self.writer.flush()?;
        let mut data = Vec::new();
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-response",
                ));
            }
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            if is_status_line(&line) {
                return Ok(WireResponse { data, status: line });
            }
            data.push(line);
        }
    }

    /// Sends one command and reads its response.
    pub fn roundtrip(&mut self, command: &str) -> std::io::Result<WireResponse> {
        self.send(command)?;
        self.recv()
    }
}
