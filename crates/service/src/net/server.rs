//! The TCP server: an acceptor thread feeding a bounded worker set of
//! session handlers.
//!
//! Concurrency shape: one acceptor thread owns the listener; each accepted
//! connection is handed to a [`kbt_par::WorkerSet`] of long-lived session
//! workers.  A connection that arrives while every worker is busy is
//! answered `ERR unavailable` and closed immediately — bounded concurrency
//! with explicit rejection, never an unbounded thread-per-connection spawn.
//! Sessions multiplex onto the shared [`Service`]: queries evaluate against
//! `O(1)` MVCC epoch snapshots without blocking anything, writes serialize
//! through the service's single commit pipeline, so N concurrent
//! connections get exactly the epoch/commit/snapshot contract of the crate
//! docs.
//!
//! Sessions poll their socket on a short tick so they can notice — without
//! a dedicated signalling channel — both the **idle timeout** (answered
//! `ERR idle-timeout`, counted in `idle_closed`) and **graceful shutdown**
//! (answered `ERR shutting-down`).  [`NetServer::shutdown`] stops the
//! acceptor, lets in-flight sessions drain, and joins every thread; the
//! `kbt-serve` binary wires SIGINT/SIGTERM to it.

use std::io::{BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use kbt_par::WorkerSet;

use crate::command::split_command;
use crate::metrics::{verb_label, NetMetrics};
use crate::net::frame::{FrameError, LineFramer, MAX_LINE_BYTES};
use crate::net::proto;
use crate::service::Service;

/// How often a blocked session wakes to check the idle deadline and the
/// shutdown flag.
const POLL_TICK: Duration = Duration::from_millis(100);

/// How long the acceptor sleeps when no connection is pending.
const ACCEPT_TICK: Duration = Duration::from_millis(25);

/// Network front configuration.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// Address to bind (`host:port`; port `0` picks an ephemeral port —
    /// [`NetServer::local_addr`] reports the actual one).
    pub addr: String,
    /// Maximum concurrently served sessions; further connections are
    /// refused with `ERR unavailable`.
    pub max_sessions: usize,
    /// Close a session after this much time without a byte from the
    /// client.
    pub idle_timeout: Duration,
    /// Cap on one logical command line, in bytes.
    pub max_line_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            addr: "127.0.0.1:0".to_string(),
            max_sessions: 32,
            idle_timeout: Duration::from_secs(300),
            max_line_bytes: MAX_LINE_BYTES,
        }
    }
}

/// A running network front over one shared [`Service`].
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl NetServer {
    /// Binds `config.addr` and starts serving `service`.  Returns once the
    /// listener is bound — connections are accepted from that point on.
    pub fn start(service: Arc<Service>, config: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(resolve(&config.addr)?)?;
        let local_addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        // register the network series before serving: a scrape right after
        // the readiness line must see the whole verb taxonomy, traffic or not
        let metrics = Arc::new(NetMetrics::register(service.obs_registry()));
        let shutdown = Arc::new(AtomicBool::new(false));
        let acceptor = {
            let shutdown = shutdown.clone();
            std::thread::Builder::new()
                .name("kbt-acceptor".to_string())
                .spawn(move || accept_loop(listener, service, metrics, config, &shutdown))
                .expect("spawning the acceptor thread")
        };
        Ok(NetServer {
            local_addr,
            shutdown,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (the actual port when `addr` asked for `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The flag a signal handler (or any supervisor) may set to request a
    /// graceful stop; [`NetServer::shutdown`] / drop complete it.
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        self.shutdown.clone()
    }

    /// Graceful shutdown: stop accepting, close sessions at their next
    /// poll tick (they answer `ERR shutting-down`), join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn resolve(addr: &str) -> std::io::Result<SocketAddr> {
    addr.to_socket_addrs()?.next().ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("{addr:?} resolves to no address"),
        )
    })
}

fn accept_loop(
    listener: TcpListener,
    service: Arc<Service>,
    metrics: Arc<NetMetrics>,
    config: NetConfig,
    shutdown: &Arc<AtomicBool>,
) {
    let counters = service.session_counters();
    // Dropping the set at the end joins the session workers; sessions
    // notice the shutdown flag within one poll tick.
    let workers = WorkerSet::new("kbt-session", config.max_sessions.max(1), 0);
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                counters.accepted.inc();
                service
                    .obs_registry()
                    .event("session_open", &[("peer", peer.to_string())]);
                // a duplicate handle, because the stream itself moves into
                // the session job: on refusal the job is dropped unrun and
                // the rejection must still be answered on the socket
                let reject_handle = stream.try_clone();
                let service = service.clone();
                let session_metrics = metrics.clone();
                let session_counters = counters.clone();
                let session_config = config.clone();
                let shutdown = shutdown.clone();
                let admitted = workers.try_submit(move || {
                    // a drop guard, not a trailing decrement: the worker set
                    // contains session panics, and a panicking session must
                    // not inflate the active gauge forever
                    struct ActiveGuard(Arc<Service>, std::net::SocketAddr);
                    impl Drop for ActiveGuard {
                        fn drop(&mut self) {
                            self.0.session_counters().active.sub(1);
                            self.0
                                .obs_registry()
                                .event("session_close", &[("peer", self.1.to_string())]);
                        }
                    }
                    session_counters.active.add(1);
                    let _guard = ActiveGuard(service.clone(), peer);
                    let _ = serve_session(
                        &service,
                        &session_metrics,
                        &session_config,
                        &shutdown,
                        stream,
                    );
                });
                if !admitted {
                    counters.rejected.inc();
                    if let Ok(mut s) = reject_handle {
                        let _ = writeln!(
                            s,
                            "{}",
                            proto::encode_error(
                                proto::CODE_UNAVAILABLE,
                                &format!("server at capacity ({} sessions)", config.max_sessions),
                            )
                        );
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_TICK);
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => break, // listener gone; nothing sensible left to do
        }
    }
}

/// Serves one connection: frame commands, execute, answer — until EOF,
/// idle timeout, frame error or shutdown.
fn serve_session(
    service: &Service,
    metrics: &NetMetrics,
    config: &NetConfig,
    shutdown: &AtomicBool,
    stream: TcpStream,
) -> std::io::Result<()> {
    let counters = service.session_counters();
    stream.set_nodelay(true)?;
    // wake regularly even with no traffic: both the idle deadline and the
    // shutdown flag are checked per tick
    stream.set_read_timeout(Some(config.idle_timeout.min(POLL_TICK)))?;
    let mut reader = stream.try_clone()?;
    let mut writer = BufWriter::new(stream);
    let mut framer = LineFramer::new(config.max_line_bytes);
    let mut buf = [0u8; 4096];
    let mut last_activity = Instant::now();
    // per-session trace sequence: commands without a client-supplied
    // `#id=` prefix are assigned `t1`, `t2`, … deterministically
    let mut trace_seq = 0u64;
    loop {
        // drain every complete command already buffered, then flush once —
        // pipelined commands cost one write-flush per batch, not per command
        let mut responded = false;
        loop {
            match framer.next_line() {
                Ok(Some(line)) => {
                    respond(&mut writer, service, metrics, &mut trace_seq, &line)?;
                    responded = true;
                }
                Ok(None) => break,
                Err(e) => {
                    metrics.framing_errors_total.inc();
                    writeln!(writer, "{}", frame_error_status(&e))?;
                    return writer.flush();
                }
            }
        }
        if responded {
            writer.flush()?;
        }
        if shutdown.load(Ordering::SeqCst) {
            writeln!(
                writer,
                "{}",
                proto::encode_error(proto::CODE_SHUTTING_DOWN, "server stopping")
            )?;
            return writer.flush();
        }
        match reader.read(&mut buf) {
            Ok(0) => {
                // EOF: a final command need not be newline-terminated
                match framer.finish() {
                    Ok(Some(line)) => {
                        respond(&mut writer, service, metrics, &mut trace_seq, &line)?
                    }
                    Ok(None) => {}
                    Err(e) => {
                        metrics.framing_errors_total.inc();
                        writeln!(writer, "{}", frame_error_status(&e))?;
                    }
                }
                return writer.flush();
            }
            Ok(n) => {
                framer.push(&buf[..n]);
                last_activity = Instant::now();
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if last_activity.elapsed() >= config.idle_timeout {
                    counters.idle_closed.inc();
                    writeln!(
                        writer,
                        "{}",
                        proto::encode_error(
                            proto::CODE_IDLE_TIMEOUT,
                            &format!("session idle for {} ms", config.idle_timeout.as_millis()),
                        )
                    )?;
                    return writer.flush();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e), // peer reset or similar: just close
        }
    }
}

/// Splits an optional `#id=<token>` trace prefix off a command line,
/// returning `(token, command)`.  The `#` lead keeps traced lines inert
/// for parsers that do not know the prefix (they read a comment); a bare
/// `#id=` with no token stays an ordinary comment.
fn client_trace(line: &str) -> Option<(&str, &str)> {
    let rest = line.trim_start().strip_prefix("#id=")?;
    let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
    let (id, cmd) = rest.split_at(end);
    (!id.is_empty()).then_some((id, cmd.trim_start()))
}

fn respond(
    writer: &mut impl Write,
    service: &Service,
    metrics: &NetMetrics,
    trace_seq: &mut u64,
    line: &str,
) -> std::io::Result<()> {
    // every wire command carries a trace ID — client-supplied via the
    // `#id=` prefix or assigned from the per-session sequence — echoed on
    // the status line, attached to slow-query records, and logged per
    // command, so wire traffic, logs and histograms correlate
    let (trace, line) = match client_trace(line) {
        Some((id, rest)) => (id.to_string(), rest),
        None => {
            *trace_seq += 1;
            (format!("t{trace_seq}"), line)
        }
    };
    // the per-verb latency series (unparsable lines time under
    // `verb="error"`); the verb peek re-runs in `execute`, but it is one
    // word-split against a ~17 µs round trip
    let verb = split_command(line).map(|(verb, _)| verb).ok();
    let _span = metrics.command_ns(verb).span();
    service.obs_registry().event(
        "command",
        &[
            ("id", trace.clone()),
            ("verb", verb_label(verb).to_string()),
        ],
    );
    match service.execute_traced(line, Some(&trace)) {
        Ok(response) => {
            // the trace ID travels inside the status builder (leading
            // `id=` key); ERR lines carry it trailing, after the message
            let (data, status) = proto::encode_response(&response, Some(&trace));
            for line in data {
                writeln!(writer, "{line}")?;
            }
            writeln!(writer, "{status}")
        }
        Err(e) => writeln!(writer, "{} id={trace}", proto::encode_service_error(&e)),
    }
}

fn frame_error_status(e: &FrameError) -> String {
    let code = match e {
        FrameError::LineTooLong { .. } => proto::CODE_LINE_TOO_LONG,
        FrameError::InvalidUtf8 => proto::CODE_INVALID_UTF8,
    };
    proto::encode_error(code, &e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use crate::net::client::Client;

    fn start(config: NetConfig) -> (NetServer, Arc<Service>) {
        let service = Arc::new(Service::new(ServiceConfig::builder().threads(1).build()));
        let server = NetServer::start(service.clone(), config).expect("bind loopback");
        (server, service)
    }

    #[test]
    fn commands_round_trip_over_tcp() {
        let (server, _service) = start(NetConfig::default());
        let mut client = Client::connect(server.local_addr()).unwrap();
        let r = client.roundtrip("ASSERT edge(1, 2), edge(2, 3)").unwrap();
        assert_eq!(r.status, "OK id=t1 epoch=1 worlds=1 facts=2");
        let r = client.roundtrip("QUERY CERTAIN edge").unwrap();
        assert_eq!(r.data, ["= edge(1, 2)", "= edge(2, 3)"]);
        assert_eq!(r.epoch(), Some(1));
        let r = client.roundtrip("QUERY CERTAIN ghost").unwrap();
        assert_eq!(r.err_code(), Some("unknown-relation"));
        assert!(r.status.ends_with(" id=t3"), "{}", r.status);
        // errors do not poison the session
        let r = client.roundtrip("STATS").unwrap();
        assert!(r.is_ok());
        server.shutdown();
    }

    #[test]
    fn trace_ids_echo_and_client_supplied_ids_round_trip() {
        let (server, _service) = start(NetConfig::default());
        let mut client = Client::connect(server.local_addr()).unwrap();
        // server-assigned IDs count per session, client IDs pass through
        let r = client.roundtrip("STATS").unwrap();
        assert!(r.status.starts_with("OK id=t1 "), "{}", r.status);
        let r = client.roundtrip("#id=req-42 ASSERT edge(1, 2)").unwrap();
        assert_eq!(r.status, "OK id=req-42 epoch=1 worlds=1 facts=1");
        // the sequence resumes after a client-supplied ID
        let r = client.roundtrip("STATS").unwrap();
        assert!(r.status.starts_with("OK id=t2 "), "{}", r.status);
        // a bare "#id=" (no token) stays an ordinary comment
        let r = client.roundtrip("#id= not a command").unwrap();
        assert_eq!(r.status, "OK id=t3");
        // EXPLAIN and PROFILE answer over the wire with deterministic
        // status lines (timing only ever appears in data rows)
        let r = client
            .roundtrip("EXPLAIN tau[forall x0 x1. edge(x0, x1) -> path(x0, x1)]")
            .unwrap();
        assert_eq!(r.status, "OK id=t4 epoch=1 rows=1");
        assert!(r.data[0].contains("scan"), "{:?}", r.data);
        let r = client
            .roundtrip("PROFILE tau[forall x0 x1. edge(x0, x1) -> path(x0, x1)]")
            .unwrap();
        assert_eq!(r.status, "OK id=t5 epoch=1 worlds=1 rows=1");
        assert!(r.data[0].contains("elapsed_ns="), "{:?}", r.data);
        server.shutdown();
    }

    #[test]
    fn pipelined_commands_get_one_response_each() {
        let (server, _service) = start(NetConfig::default());
        let mut client = Client::connect(server.local_addr()).unwrap();
        for i in 0..16 {
            client
                .send(&format!("ASSERT edge({i}, {})", i + 1))
                .unwrap();
        }
        for i in 0..16 {
            let r = client.recv().unwrap();
            assert_eq!(r.epoch(), Some(i + 1), "{}", r.status);
        }
        server.shutdown();
    }

    #[test]
    fn quoted_newlines_cross_the_wire() {
        let (server, _service) = start(NetConfig::default());
        let mut client = Client::connect(server.local_addr()).unwrap();
        let r = client.roundtrip("ASSERT note('one\ntwo')").unwrap();
        assert!(r.is_ok(), "{}", r.status);
        let r = client.roundtrip("QUERY POSSIBLE note").unwrap();
        assert_eq!(r.data, ["= note('one\\ntwo')"]);
        server.shutdown();
    }

    #[test]
    fn oversized_lines_are_refused_and_the_connection_closes() {
        let (server, _service) = start(NetConfig {
            max_line_bytes: 64,
            ..NetConfig::default()
        });
        let mut client = Client::connect(server.local_addr()).unwrap();
        let r = client
            .roundtrip(&format!("ASSERT edge({}, 2)", "9".repeat(100)))
            .unwrap();
        assert_eq!(r.err_code(), Some("line-too-long"));
        assert!(client.recv().is_err(), "the server must have closed");
        server.shutdown();
    }

    #[test]
    fn sessions_beyond_capacity_are_rejected_and_counted() {
        let (server, service) = start(NetConfig {
            max_sessions: 1,
            ..NetConfig::default()
        });
        let mut first = Client::connect(server.local_addr()).unwrap();
        assert!(first.roundtrip("STATS").unwrap().is_ok());
        // the second connection is refused by the supervisor with an
        // explicit status, then closed
        let mut second = Client::connect(server.local_addr()).unwrap();
        let rejected = second.recv().unwrap();
        assert_eq!(rejected.err_code(), Some("unavailable"));
        assert!(second.recv().is_err(), "rejected session must be closed");
        let counters = service.session_counters();
        // the acceptor may need a moment to process the second connection
        for _ in 0..100 {
            if counters.rejected.get() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(counters.rejected.get(), 1);
        assert_eq!(counters.accepted.get(), 2);
        // the first session is still healthy
        assert!(first.roundtrip("STATS").unwrap().is_ok());
        server.shutdown();
    }

    #[test]
    fn idle_sessions_are_closed_and_counted() {
        let (server, service) = start(NetConfig {
            idle_timeout: Duration::from_millis(50),
            ..NetConfig::default()
        });
        let mut client = Client::connect(server.local_addr()).unwrap();
        let r = client.recv().unwrap();
        assert_eq!(r.err_code(), Some("idle-timeout"));
        for _ in 0..100 {
            if service.session_counters().idle_closed.get() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(service.session_counters().idle_closed.get(), 1);
        server.shutdown();
    }

    #[test]
    fn metrics_scrape_over_tcp_covers_every_layer() {
        let (server, _service) = start(NetConfig::default());
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(client.roundtrip("ASSERT edge(1, 2)").unwrap().is_ok());
        assert!(client.roundtrip("QUERY CERTAIN edge").unwrap().is_ok());
        let r = client.roundtrip("METRICS").unwrap();
        assert!(r.is_ok(), "{}", r.status);
        let text: Vec<&str> = r
            .data
            .iter()
            .map(|line| line.strip_prefix("= ").unwrap())
            .collect();
        // one scrape sees the service core, the net front (full verb
        // taxonomy, traffic or not), and the engine/par library series
        for needle in [
            "kbt_service_commits_total 1",
            "kbt_service_queries_total 1",
            "kbt_net_sessions_accepted_total 1",
            "kbt_net_framing_errors_total 0",
            "# TYPE kbt_net_command_ns histogram",
            "kbt_engine_evals_total",
            "kbt_par_scopes_total",
        ] {
            assert!(
                text.iter().any(|line| line.contains(needle)),
                "missing {needle:?} in scrape"
            );
        }
        assert!(
            text.iter()
                .any(|line| line.starts_with("kbt_net_command_ns_count{verb=\"assert\"} 1")),
            "the ASSERT round trip must have been timed"
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_closes_live_sessions_gracefully() {
        let (server, _service) = start(NetConfig::default());
        let mut client = Client::connect(server.local_addr()).unwrap();
        assert!(client.roundtrip("STATS").unwrap().is_ok());
        let flag = server.shutdown_flag();
        flag.store(true, Ordering::SeqCst);
        let r = client.recv().unwrap();
        assert_eq!(r.err_code(), Some("shutting-down"));
        let addr = server.local_addr();
        server.shutdown();
        // the listener is gone: new connections are refused (or, at worst,
        // accepted by a later unrelated process — so only assert that *this*
        // server no longer answers the protocol)
        if let Ok(mut probe) = Client::connect(addr) {
            assert!(probe.roundtrip("STATS").is_err());
        }
    }
}
