//! The network front: a std-only TCP server and client for the command
//! language.
//!
//! The command language was line-oriented from the start, so the wire
//! protocol is the thinnest possible layer over it (see the *wire
//! protocol* section of the crate docs for the full grammar):
//!
//! * [`frame`] — [`LineFramer`], the request framing layer: an incremental,
//!   quote-aware, length-capped logical-line splitter over a raw byte
//!   stream.  It segments exactly like [`crate::command::split_lines`]
//!   segments script text — `tests/net_framing.rs` holds the two to the
//!   same output on the same bytes, chunked adversarially.
//! * [`proto`] — the response encoding: zero or more `= `-prefixed data
//!   lines followed by one `OK key=value…` / `ERR code message` status
//!   line, with control characters escaped so every response line is
//!   exactly one physical line.
//! * [`server`] — [`NetServer`]: an acceptor thread plus a bounded
//!   [`kbt_par::WorkerSet`] of session workers (connections beyond
//!   capacity are refused with `ERR unavailable`, not queued without
//!   bound), idle timeouts, and cooperative graceful shutdown.
//! * [`client`] — [`Client`]: a blocking client speaking the same
//!   protocol, with split `send`/`recv` so callers can pipeline many
//!   commands per round-trip (`kbt-shell --connect` and the
//!   `net_throughput` bench both use it).

pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

pub use client::Client;
pub use frame::{FrameError, LineFramer, MAX_LINE_BYTES};
pub use proto::WireResponse;
pub use server::{NetConfig, NetServer};
