//! Request framing: an incremental, quote-aware, length-capped splitter of
//! a byte stream into logical command lines.
//!
//! The framer is the streaming twin of [`crate::command::split_lines`]: a
//! command ends at the first newline that is **not** inside a `'…'` quoted
//! constant (the sentence lexer admits any character but `'` there,
//! newlines included), so one command may span several physical lines and
//! several pipelined commands may arrive in one TCP segment.  Bytes are
//! buffered until a complete logical line is available — a read that splits
//! a multi-byte UTF-8 character (or a quoted constant) mid-way is handled
//! by construction, because decoding happens per complete line, never per
//! chunk.
//!
//! Two failure modes are detected instead of buffered forever:
//!
//! * [`FrameError::LineTooLong`] — the buffered, still-unterminated line
//!   exceeded the configured cap.  There is no way to resynchronise (the
//!   overflow may sit inside a quote), so the server answers
//!   `ERR line-too-long` and closes the connection.
//! * [`FrameError::InvalidUtf8`] — a complete line was not valid UTF-8.
//!   Same answer: `ERR invalid-utf8`, close.

use std::collections::VecDeque;

/// Default cap on one logical command line, in bytes (64 KiB).
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// A framing failure (the connection is beyond recovery; see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// An unterminated line exceeded the length cap.
    LineTooLong {
        /// The configured cap the line overflowed.
        limit: usize,
    },
    /// A complete line was not valid UTF-8.
    InvalidUtf8,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::LineTooLong { limit } => {
                write!(f, "command line exceeds {limit} bytes")
            }
            FrameError::InvalidUtf8 => write!(f, "command line is not valid UTF-8"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Byte-level scanner state, mirroring `command::LineScan` (the two are
/// held to identical segmentation by `tests/net_framing.rs`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Scan {
    /// At the start of a logical line (only ASCII whitespace seen so far).
    Start,
    /// Inside a `#` comment line: runs to the newline, quotes inert.
    Comment,
    /// Inside a command; `true` = a `'…'` constant is open.
    Command { in_quote: bool },
}

impl Scan {
    /// Advances over one byte; `true` means the logical line ends at this
    /// byte.  Scanning bytes is UTF-8 safe: every state transition is on
    /// an ASCII byte, and multi-byte characters' bytes are all >= 0x80.
    fn step(&mut self, byte: u8) -> bool {
        match self {
            Scan::Start => match byte {
                b'\n' => return true,
                b' ' | b'\t' | b'\r' => {}
                b'#' => *self = Scan::Comment,
                byte => {
                    *self = Scan::Command {
                        in_quote: byte == b'\'',
                    }
                }
            },
            Scan::Comment => {
                if byte == b'\n' {
                    *self = Scan::Start;
                    return true;
                }
            }
            Scan::Command { in_quote } => match byte {
                b'\'' => *in_quote = !*in_quote,
                b'\n' if !*in_quote => {
                    *self = Scan::Start;
                    return true;
                }
                _ => {}
            },
        }
        false
    }
}

/// The incremental framer (see module docs).  Push raw bytes in with
/// [`push`](LineFramer::push), take complete logical lines out with
/// [`next_line`](LineFramer::next_line), and flush the unterminated tail at
/// EOF with [`finish`](LineFramer::finish).
#[derive(Debug)]
pub struct LineFramer {
    buf: VecDeque<u8>,
    /// `buf[..scanned]` is known to contain no line-terminating newline.
    scanned: usize,
    /// Scanner state at `scanned`.
    scan: Scan,
    max_line: usize,
}

impl LineFramer {
    /// A framer capping logical lines at `max_line` bytes.
    pub fn new(max_line: usize) -> Self {
        LineFramer {
            buf: VecDeque::new(),
            scanned: 0,
            scan: Scan::Start,
            max_line,
        }
    }

    /// Appends raw bytes from the stream.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend(bytes);
    }

    /// Bytes buffered but not yet yielded.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// The next complete logical line (terminating newline excluded), or
    /// `Ok(None)` when more bytes are needed.
    pub fn next_line(&mut self) -> Result<Option<String>, FrameError> {
        // scan forward from where the last call stopped ([`Scan::step`]
        // explains why byte-wise scanning is UTF-8 safe)
        while self.scanned < self.buf.len() {
            let byte = self.buf[self.scanned];
            if self.scan.step(byte) {
                if self.scanned > self.max_line {
                    return Err(FrameError::LineTooLong {
                        limit: self.max_line,
                    });
                }
                let line: Vec<u8> = self.buf.drain(..self.scanned).collect();
                self.buf.pop_front(); // the newline itself
                self.scanned = 0;
                return match String::from_utf8(line) {
                    Ok(line) => Ok(Some(line)),
                    Err(_) => Err(FrameError::InvalidUtf8),
                };
            }
            self.scanned += 1;
        }
        if self.buf.len() > self.max_line {
            return Err(FrameError::LineTooLong {
                limit: self.max_line,
            });
        }
        Ok(None)
    }

    /// Flushes the trailing line at EOF (a final command need not be
    /// newline-terminated), leaving the framer empty.
    pub fn finish(&mut self) -> Result<Option<String>, FrameError> {
        if let Some(line) = self.next_line()? {
            return Ok(Some(line));
        }
        if self.buf.is_empty() {
            return Ok(None);
        }
        let line: Vec<u8> = self.buf.drain(..).collect();
        self.scanned = 0;
        self.scan = Scan::Start;
        match String::from_utf8(line) {
            Ok(line) => Ok(Some(line)),
            Err(_) => Err(FrameError::InvalidUtf8),
        }
    }
}

impl Default for LineFramer {
    fn default() -> Self {
        LineFramer::new(MAX_LINE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(framer: &mut LineFramer) -> Vec<String> {
        let mut out = Vec::new();
        while let Some(line) = framer.next_line().unwrap() {
            out.push(line);
        }
        out
    }

    #[test]
    fn pipelined_commands_in_one_segment_all_come_out() {
        let mut f = LineFramer::default();
        f.push(b"STATS\nASSERT edge(1, 2)\nQUERY CERTAIN edge\n");
        assert_eq!(
            drain(&mut f),
            ["STATS", "ASSERT edge(1, 2)", "QUERY CERTAIN edge"]
        );
        assert_eq!(f.buffered(), 0);
    }

    #[test]
    fn quoted_newlines_continue_the_command() {
        let mut f = LineFramer::default();
        f.push(b"ASSERT note('line one\nline two')\nSTATS\n");
        assert_eq!(
            drain(&mut f),
            ["ASSERT note('line one\nline two')", "STATS"]
        );
    }

    #[test]
    fn comment_lines_are_quote_inert() {
        let mut f = LineFramer::default();
        f.push(b"# CI's job drives this\nSTATS\n  # trailing note, isn't it\nSTATS\n");
        assert_eq!(
            drain(&mut f),
            [
                "# CI's job drives this",
                "STATS",
                "  # trailing note, isn't it",
                "STATS"
            ]
        );
        // …but a '#' inside an open quote is payload, not a comment
        let mut f = LineFramer::default();
        f.push(b"ASSERT note('x\n# still quoted\ny')\nSTATS\n");
        assert_eq!(
            drain(&mut f),
            ["ASSERT note('x\n# still quoted\ny')", "STATS"]
        );
    }

    #[test]
    fn partial_reads_split_anywhere_reassemble() {
        // byte-at-a-time delivery, including mid-UTF-8 ('é' is two bytes)
        let text = "ASSERT city('Montréal')\nSTATS\n".as_bytes();
        let mut f = LineFramer::default();
        let mut out = Vec::new();
        for &b in text {
            f.push(&[b]);
            out.extend(drain(&mut f));
        }
        assert_eq!(out, ["ASSERT city('Montréal')", "STATS"]);
    }

    #[test]
    fn oversized_lines_hit_the_cap() {
        let mut f = LineFramer::new(16);
        f.push(&[b'a'; 17]);
        assert_eq!(f.next_line(), Err(FrameError::LineTooLong { limit: 16 }));
        // an open quote must not defeat the cap either
        let mut f = LineFramer::new(16);
        f.push(b"ASSERT r('aaaaaaaaaaaaaaaa");
        assert!(matches!(f.next_line(), Err(FrameError::LineTooLong { .. })));
    }

    #[test]
    fn exactly_at_the_cap_is_still_fine() {
        let mut f = LineFramer::new(16);
        f.push(&[b'a'; 16]);
        assert_eq!(f.next_line(), Ok(None));
        f.push(b"\n");
        assert_eq!(f.next_line().unwrap().unwrap().len(), 16);
    }

    #[test]
    fn invalid_utf8_is_rejected_per_line() {
        let mut f = LineFramer::default();
        f.push(b"STATS\n\xff\xfe\nSTATS\n");
        assert_eq!(f.next_line().unwrap().unwrap(), "STATS");
        assert_eq!(f.next_line(), Err(FrameError::InvalidUtf8));
    }

    #[test]
    fn finish_flushes_the_unterminated_tail() {
        let mut f = LineFramer::default();
        f.push(b"STATS\nQUERY CERTAIN edge");
        assert_eq!(f.next_line().unwrap().unwrap(), "STATS");
        assert_eq!(f.next_line(), Ok(None));
        assert_eq!(f.finish().unwrap().unwrap(), "QUERY CERTAIN edge");
        assert_eq!(f.finish(), Ok(None));
    }
}
