//! The response encoding: data lines plus one status line.
//!
//! Every command receives exactly one response:
//!
//! ```text
//! response := ("= " data-line "\n")* status-line "\n"
//! status   := "OK" (" " key "=" value)*          -- success
//!           | "ERR " code " " message            -- failure (code is stable)
//! ```
//!
//! Data lines carry the payload (one fact, one world, one stats row per
//! line); the status line both terminates the response — a client reads
//! lines until it sees one — and names the epoch a committed or snapshot
//! response speaks for.  Because payloads may legally contain newlines
//! (quoted constants admit them), every emitted line is passed through
//! [`escape_line`], so one response line is always exactly one physical
//! line on the wire.
//!
//! Error codes: [`crate::ServiceError::code`] defines the service-level
//! codes (`parse`, `unknown-relation`, …); the net layer adds
//! [`CODE_LINE_TOO_LONG`], [`CODE_INVALID_UTF8`], [`CODE_IDLE_TIMEOUT`],
//! [`CODE_UNAVAILABLE`] and [`CODE_SHUTTING_DOWN`] for conditions that
//! never pass through a [`crate::ServiceError`].

use crate::error::ServiceError;
use crate::service::Response;

/// Prefix of every data line.
pub const DATA_PREFIX: &str = "= ";

/// The framer's length cap was exceeded (connection closes).
pub const CODE_LINE_TOO_LONG: &str = "line-too-long";
/// A command line was not valid UTF-8 (connection closes).
pub const CODE_INVALID_UTF8: &str = "invalid-utf8";
/// The session sat idle past the configured timeout (connection closes).
pub const CODE_IDLE_TIMEOUT: &str = "idle-timeout";
/// Every session worker is busy; the connection was refused.
pub const CODE_UNAVAILABLE: &str = "unavailable";
/// The server is shutting down; the session is being closed.
pub const CODE_SHUTTING_DOWN: &str = "shutting-down";

/// Escapes a payload so it occupies exactly one physical line: `\` → `\\`,
/// newline → `\n`, carriage return → `\r`.
pub fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Encodes one successful response as `(data_lines, status_line)` — the
/// data lines already carry [`DATA_PREFIX`] and are escaped.
pub fn encode_response(response: &Response) -> (Vec<String>, String) {
    let data_line = |s: &str| format!("{DATA_PREFIX}{}", escape_line(s));
    match response {
        Response::Ok => (Vec::new(), "OK".to_string()),
        Response::Committed {
            epoch,
            worlds,
            facts,
        } => (
            Vec::new(),
            format!("OK epoch={} worlds={worlds} facts={facts}", epoch.get()),
        ),
        Response::Defined { epoch, name, text } => (
            vec![data_line(text)],
            format!("OK epoch={} defined={name}", epoch.get()),
        ),
        Response::Applied {
            epoch,
            name,
            worlds,
            facts,
            reused_facts,
        } => (
            Vec::new(),
            format!(
                "OK epoch={} applied={name} worlds={worlds} facts={facts} reused={reused_facts}",
                epoch.get()
            ),
        ),
        Response::Worlds { epoch, worlds } => (
            worlds
                .iter()
                .enumerate()
                .map(|(i, world)| data_line(&format!("world {i}: {{{}}}", world.join(", "))))
                .collect(),
            format!("OK epoch={} worlds={}", epoch.get(), worlds.len()),
        ),
        Response::Facts {
            epoch,
            kind,
            relation,
            facts,
            strategy,
        } => (facts.iter().map(|fact| data_line(fact)).collect(), {
            let mut status = format!(
                "OK epoch={} kind={kind} relation={relation} count={}",
                epoch.get(),
                facts.len()
            );
            // only bound goals carry a strategy; the bare form's status
            // line is unchanged
            if let Some(strategy) = strategy {
                status.push_str(&format!(" strategy={strategy}"));
            }
            status
        }),
        Response::Explain { epoch, rows } => (
            rows.iter().map(|row| data_line(row)).collect(),
            format!("OK epoch={} rows={}", epoch.get(), rows.len()),
        ),
        Response::Profile {
            epoch,
            worlds,
            rows,
        } => (
            rows.iter().map(|row| data_line(row)).collect(),
            format!(
                "OK epoch={} worlds={worlds} rows={}",
                epoch.get(),
                rows.len()
            ),
        ),
        Response::Stats(report) => (
            response
                .to_string()
                .lines()
                .map(|line| data_line(line.trim_start()))
                .collect(),
            format!("OK epoch={}", report.epoch.get()),
        ),
        Response::Metrics { epoch, text } => (
            text.lines().map(data_line).collect(),
            format!("OK epoch={} lines={}", epoch.get(), text.lines().count()),
        ),
        Response::Loaded { commands } => (Vec::new(), format!("OK commands={commands}")),
    }
}

/// Encodes a service error as its `ERR code message` status line.
pub fn encode_service_error(e: &ServiceError) -> String {
    encode_error(e.code(), &e.to_string())
}

/// Encodes an `ERR code message` status line (message escaped to one
/// physical line).
pub fn encode_error(code: &str, message: &str) -> String {
    format!("ERR {code} {}", escape_line(message))
}

/// Whether a received line is a status line (terminates a response).
pub fn is_status_line(line: &str) -> bool {
    line == "OK" || line.starts_with("OK ") || line.starts_with("ERR ")
}

/// One decoded response: the data lines (prefix intact) and the status
/// line, as received.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireResponse {
    /// The `= `-prefixed data lines, in order.
    pub data: Vec<String>,
    /// The terminating `OK …` / `ERR …` line.
    pub status: String,
}

impl WireResponse {
    /// Whether the status line reports success.
    pub fn is_ok(&self) -> bool {
        self.status == "OK" || self.status.starts_with("OK ")
    }

    /// The `epoch=N` field of an `OK` status line, when present.
    pub fn epoch(&self) -> Option<u64> {
        self.status
            .split_whitespace()
            .find_map(|field| field.strip_prefix("epoch="))
            .and_then(|v| v.parse().ok())
    }

    /// The error code of an `ERR` status line, when this is one.
    pub fn err_code(&self) -> Option<&str> {
        self.status
            .strip_prefix("ERR ")
            .and_then(|rest| rest.split_whitespace().next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use crate::service::Service;

    #[test]
    fn escaping_keeps_every_line_physical() {
        assert_eq!(escape_line("plain"), "plain");
        assert_eq!(escape_line("a\nb\r\\c"), "a\\nb\\r\\\\c");
    }

    #[test]
    fn responses_encode_with_epoch_and_terminating_status() {
        let s = Service::new(ServiceConfig::with_threads(1));
        let r = s.execute("ASSERT edge(1, 2), edge(2, 3)").unwrap();
        let (data, status) = encode_response(&r);
        assert!(data.is_empty());
        assert_eq!(status, "OK epoch=1 worlds=1 facts=2");

        let r = s.execute("QUERY CERTAIN edge").unwrap();
        let (data, status) = encode_response(&r);
        assert_eq!(data, ["= edge(1, 2)", "= edge(2, 3)"]);
        assert_eq!(status, "OK epoch=1 kind=certain relation=edge count=2");

        let r = s.execute("QUERY lub").unwrap();
        let (data, status) = encode_response(&r);
        assert_eq!(data, ["= world 0: {edge(1, 2), edge(2, 3)}"]);
        assert_eq!(status, "OK epoch=1 worlds=1");
    }

    #[test]
    fn facts_with_newlines_stay_one_wire_line() {
        let s = Service::new(ServiceConfig::with_threads(1));
        s.execute("ASSERT note('one\ntwo')").unwrap();
        let r = s.execute("QUERY POSSIBLE note").unwrap();
        let (data, _) = encode_response(&r);
        assert_eq!(data, ["= note('one\\ntwo')"]);
    }

    #[test]
    fn errors_carry_stable_codes() {
        let s = Service::new(ServiceConfig::with_threads(1));
        let e = s.execute("QUERY CERTAIN nowhere").unwrap_err();
        let status = encode_service_error(&e);
        assert!(status.starts_with("ERR unknown-relation "), "{status}");
        let wire = WireResponse {
            data: vec![],
            status,
        };
        assert!(!wire.is_ok());
        assert_eq!(wire.err_code(), Some("unknown-relation"));
    }

    #[test]
    fn status_lines_are_recognised() {
        assert!(is_status_line("OK"));
        assert!(is_status_line("OK epoch=3"));
        assert!(is_status_line("ERR parse bad"));
        assert!(!is_status_line("= edge(1, 2)"));
        assert!(!is_status_line("OKepoch=3"));
        let wire = WireResponse {
            data: vec![],
            status: "OK epoch=12 worlds=1".into(),
        };
        assert_eq!(wire.epoch(), Some(12));
        assert!(wire.is_ok());
    }
}
