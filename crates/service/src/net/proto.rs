//! The response encoding: data lines plus one status line.
//!
//! Every command receives exactly one response:
//!
//! ```text
//! response := ("= " data-line "\n")* status-line "\n"
//! status   := "OK" (" " key "=" value)*          -- success
//!           | "ERR " code " " message (" id=" trace)?   -- failure
//! ```
//!
//! Data lines carry the payload (one fact, one world, one stats row per
//! line); the status line both terminates the response — a client reads
//! lines until it sees one — and names the epoch a committed or snapshot
//! response speaks for.  Because payloads may legally contain newlines
//! (quoted constants admit them), every emitted line is passed through
//! [`escape_line`], so one response line is always exactly one physical
//! line on the wire.
//!
//! # Status key order
//!
//! `OK` keys appear in one **fixed order**, produced by a single builder
//! (there is no second place that formats a status line):
//!
//! 1. `id=<trace>` — the command's trace ID, when the front attached one;
//! 2. `epoch=<n>` — the epoch the response speaks for;
//! 3. `strategy=<s>` — how a bound goal was answered;
//! 4. `durable=<true|false>` — whether a commit was flushed to stable
//!    storage before this status (present only on durable services:
//!    `true` under `always`/`group-commit`, `false` under `never`);
//! 5. the command-specific keys (`worlds=`, `facts=`, `applied=`, …).
//!
//! Keys a response does not carry are simply absent — clients parse by
//! key, never by position, but the fixed order keeps statuses stable for
//! golden tests and log diffing.  `ERR` lines instead carry a trailing
//! ` id=<trace>` after the human-readable message (the message itself
//! never contains a newline, so the last field is unambiguous).
//!
//! Error codes: [`crate::ServiceError::code`] defines the service-level
//! codes (`parse`, `unknown-relation`, …); the net layer adds
//! [`CODE_LINE_TOO_LONG`], [`CODE_INVALID_UTF8`], [`CODE_IDLE_TIMEOUT`],
//! [`CODE_UNAVAILABLE`] and [`CODE_SHUTTING_DOWN`] for conditions that
//! never pass through a [`crate::ServiceError`].  The full code table
//! lives in [`crate::error`] (`CODE_TABLE`), with an exhaustiveness test
//! holding it to the error enum.

use crate::error::ServiceError;
use crate::service::Response;

/// Prefix of every data line.
pub const DATA_PREFIX: &str = "= ";

/// The framer's length cap was exceeded (connection closes).
pub const CODE_LINE_TOO_LONG: &str = "line-too-long";
/// A command line was not valid UTF-8 (connection closes).
pub const CODE_INVALID_UTF8: &str = "invalid-utf8";
/// The session sat idle past the configured timeout (connection closes).
pub const CODE_IDLE_TIMEOUT: &str = "idle-timeout";
/// Every session worker is busy; the connection was refused.
pub const CODE_UNAVAILABLE: &str = "unavailable";
/// The server is shutting down; the session is being closed.
pub const CODE_SHUTTING_DOWN: &str = "shutting-down";

/// Escapes a payload so it occupies exactly one physical line: `\` → `\\`,
/// newline → `\n`, carriage return → `\r`.
pub fn escape_line(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// The single producer of `OK` status lines, enforcing the module-level
/// fixed key order: `id=`, `epoch=`, `strategy=`, `durable=`, then the
/// command-specific keys in the order [`key`](StatusBuilder::key) is
/// called.
struct StatusBuilder {
    line: String,
}

impl StatusBuilder {
    fn new(trace: Option<&str>) -> Self {
        let mut line = String::from("OK");
        if let Some(id) = trace {
            line.push_str(" id=");
            line.push_str(id);
        }
        StatusBuilder { line }
    }

    /// Appends one `key=value` field.
    fn key(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        use std::fmt::Write;
        write!(self.line, " {key}={value}").expect("writing to a String cannot fail");
        self
    }

    fn epoch(self, epoch: kbt_data::EpochId) -> Self {
        self.key("epoch", epoch.get())
    }

    fn strategy(self, strategy: Option<&'static str>) -> Self {
        match strategy {
            Some(s) => self.key("strategy", s),
            None => self,
        }
    }

    fn durable(self, durable: Option<bool>) -> Self {
        match durable {
            Some(d) => self.key("durable", d),
            None => self,
        }
    }

    fn finish(self) -> String {
        self.line
    }
}

/// Encodes one successful response as `(data_lines, status_line)` — the
/// data lines already carry [`DATA_PREFIX`] and are escaped, and the
/// status line carries `trace` as its leading `id=` key (when given) per
/// the module-level fixed key order.
pub fn encode_response(response: &Response, trace: Option<&str>) -> (Vec<String>, String) {
    let data_line = |s: &str| format!("{DATA_PREFIX}{}", escape_line(s));
    let status = StatusBuilder::new(trace);
    match response {
        Response::Ok => (Vec::new(), status.finish()),
        Response::Committed {
            epoch,
            worlds,
            facts,
            durable,
        } => (
            Vec::new(),
            status
                .epoch(*epoch)
                .durable(*durable)
                .key("worlds", worlds)
                .key("facts", facts)
                .finish(),
        ),
        Response::Defined {
            epoch,
            name,
            text,
            durable,
        } => (
            vec![data_line(text)],
            status
                .epoch(*epoch)
                .durable(*durable)
                .key("defined", name)
                .finish(),
        ),
        Response::Applied {
            epoch,
            name,
            worlds,
            facts,
            reused_facts,
            durable,
        } => (
            Vec::new(),
            status
                .epoch(*epoch)
                .durable(*durable)
                .key("applied", name)
                .key("worlds", worlds)
                .key("facts", facts)
                .key("reused", reused_facts)
                .finish(),
        ),
        Response::Worlds { epoch, worlds } => (
            worlds
                .iter()
                .enumerate()
                .map(|(i, world)| data_line(&format!("world {i}: {{{}}}", world.join(", "))))
                .collect(),
            status.epoch(*epoch).key("worlds", worlds.len()).finish(),
        ),
        Response::Facts {
            epoch,
            kind,
            relation,
            facts,
            strategy,
        } => (
            facts.iter().map(|fact| data_line(fact)).collect(),
            status
                .epoch(*epoch)
                // only bound goals carry a strategy; the bare form's
                // status line has no strategy key
                .strategy(*strategy)
                .key("kind", kind)
                .key("relation", relation)
                .key("count", facts.len())
                .finish(),
        ),
        Response::Explain { epoch, rows } => (
            rows.iter().map(|row| data_line(row)).collect(),
            status.epoch(*epoch).key("rows", rows.len()).finish(),
        ),
        Response::Profile {
            epoch,
            worlds,
            rows,
        } => (
            rows.iter().map(|row| data_line(row)).collect(),
            status
                .epoch(*epoch)
                .key("worlds", worlds)
                .key("rows", rows.len())
                .finish(),
        ),
        Response::Stats(report) => (
            response
                .to_string()
                .lines()
                .map(|line| data_line(line.trim_start()))
                .collect(),
            status.epoch(report.epoch).finish(),
        ),
        Response::Metrics { epoch, text } => (
            text.lines().map(data_line).collect(),
            status
                .epoch(*epoch)
                .key("lines", text.lines().count())
                .finish(),
        ),
        Response::Loaded { commands } => (Vec::new(), status.key("commands", commands).finish()),
        Response::Checkpointed { epoch, file } => {
            (Vec::new(), status.epoch(*epoch).key("file", file).finish())
        }
        Response::WalStat {
            epoch,
            policy,
            records,
            bytes,
            fsyncs,
            durable_epoch,
            checkpoint_epoch,
        } => (
            Vec::new(),
            status
                .epoch(*epoch)
                .key("policy", policy)
                .key("records", records)
                .key("bytes", bytes)
                .key("fsyncs", fsyncs)
                .key("synced", durable_epoch)
                .key("checkpoint", checkpoint_epoch)
                .finish(),
        ),
    }
}

/// Encodes a service error as its `ERR code message` status line.
pub fn encode_service_error(e: &ServiceError) -> String {
    encode_error(e.code(), &e.to_string())
}

/// Encodes an `ERR code message` status line (message escaped to one
/// physical line).
pub fn encode_error(code: &str, message: &str) -> String {
    format!("ERR {code} {}", escape_line(message))
}

/// Whether a received line is a status line (terminates a response).
pub fn is_status_line(line: &str) -> bool {
    line == "OK" || line.starts_with("OK ") || line.starts_with("ERR ")
}

/// One decoded response: the data lines (prefix intact) and the status
/// line, as received.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireResponse {
    /// The `= `-prefixed data lines, in order.
    pub data: Vec<String>,
    /// The terminating `OK …` / `ERR …` line.
    pub status: String,
}

impl WireResponse {
    /// Whether the status line reports success.
    pub fn is_ok(&self) -> bool {
        self.status == "OK" || self.status.starts_with("OK ")
    }

    /// The `epoch=N` field of an `OK` status line, when present.
    pub fn epoch(&self) -> Option<u64> {
        self.status
            .split_whitespace()
            .find_map(|field| field.strip_prefix("epoch="))
            .and_then(|v| v.parse().ok())
    }

    /// The error code of an `ERR` status line, when this is one.
    pub fn err_code(&self) -> Option<&str> {
        self.status
            .strip_prefix("ERR ")
            .and_then(|rest| rest.split_whitespace().next())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServiceConfig;
    use crate::service::Service;

    #[test]
    fn escaping_keeps_every_line_physical() {
        assert_eq!(escape_line("plain"), "plain");
        assert_eq!(escape_line("a\nb\r\\c"), "a\\nb\\r\\\\c");
    }

    fn service() -> Service {
        Service::new(ServiceConfig::builder().threads(1).build())
    }

    #[test]
    fn responses_encode_with_epoch_and_terminating_status() {
        let s = service();
        let r = s.execute("ASSERT edge(1, 2), edge(2, 3)").unwrap();
        let (data, status) = encode_response(&r, None);
        assert!(data.is_empty());
        assert_eq!(status, "OK epoch=1 worlds=1 facts=2");

        let r = s.execute("QUERY CERTAIN edge").unwrap();
        let (data, status) = encode_response(&r, None);
        assert_eq!(data, ["= edge(1, 2)", "= edge(2, 3)"]);
        assert_eq!(status, "OK epoch=1 kind=certain relation=edge count=2");

        let r = s.execute("QUERY lub").unwrap();
        let (data, status) = encode_response(&r, None);
        assert_eq!(data, ["= world 0: {edge(1, 2), edge(2, 3)}"]);
        assert_eq!(status, "OK epoch=1 worlds=1");
    }

    #[test]
    fn status_keys_appear_in_the_fixed_order() {
        // id before epoch, durable before command keys — straight from
        // the builder, for every commit shape
        let r = Response::Committed {
            epoch: kbt_data::EpochId::new(7),
            worlds: 2,
            facts: 5,
            durable: Some(true),
        };
        let (_, status) = encode_response(&r, Some("req-9"));
        assert_eq!(status, "OK id=req-9 epoch=7 durable=true worlds=2 facts=5");

        let r = Response::Applied {
            epoch: kbt_data::EpochId::new(8),
            name: "tc".into(),
            worlds: 1,
            facts: 3,
            reused_facts: 2,
            durable: Some(false),
        };
        let (_, status) = encode_response(&r, Some("t4"));
        assert_eq!(
            status,
            "OK id=t4 epoch=8 durable=false applied=tc worlds=1 facts=3 reused=2"
        );

        // strategy slots between epoch and the command keys
        let s = service();
        s.execute("ASSERT edge(1, 2)").unwrap();
        let r = s.execute("QUERY CERTAIN edge(1, x)").unwrap();
        let (_, status) = encode_response(&r, Some("t2"));
        assert_eq!(
            status,
            "OK id=t2 epoch=1 strategy=materialize kind=certain relation=edge count=1"
        );
    }

    #[test]
    fn facts_with_newlines_stay_one_wire_line() {
        let s = service();
        s.execute("ASSERT note('one\ntwo')").unwrap();
        let r = s.execute("QUERY POSSIBLE note").unwrap();
        let (data, _) = encode_response(&r, None);
        assert_eq!(data, ["= note('one\\ntwo')"]);
    }

    #[test]
    fn errors_carry_stable_codes() {
        let s = service();
        let e = s.execute("QUERY CERTAIN nowhere").unwrap_err();
        let status = encode_service_error(&e);
        assert!(status.starts_with("ERR unknown-relation "), "{status}");
        let wire = WireResponse {
            data: vec![],
            status,
        };
        assert!(!wire.is_ok());
        assert_eq!(wire.err_code(), Some("unknown-relation"));
    }

    #[test]
    fn status_lines_are_recognised() {
        assert!(is_status_line("OK"));
        assert!(is_status_line("OK epoch=3"));
        assert!(is_status_line("ERR parse bad"));
        assert!(!is_status_line("= edge(1, 2)"));
        assert!(!is_status_line("OKepoch=3"));
        let wire = WireResponse {
            data: vec![],
            status: "OK epoch=12 worlds=1".into(),
        };
        assert_eq!(wire.epoch(), Some(12));
        assert!(wire.is_ok());
    }
}
