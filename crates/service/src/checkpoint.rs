//! Epoch-snapshot checkpoints: a whole committed state serialized to one
//! checksummed text file, so recovery replays only the WAL *tail*.
//!
//! # Capture vs. serialization
//!
//! Capture is `O(1)`: the committed state is copy-on-write underneath
//! (`Arc`-backed relations, vocabulary and registry), so cloning the
//! [`CommittedState`] out of the epoch cell costs a handful of `Arc`
//! bumps and **never blocks the commit pipeline**.  Serialization — the
//! expensive part — runs on a background thread against that frozen
//! snapshot ([`CheckpointManager::trigger`]); at most one serialization is
//! in flight, later triggers are skipped until it finishes.
//!
//! # File format (`checkpoint-<epoch>.kbtc`)
//!
//! Line-oriented text; every name/text field is escaped to one physical
//! line (`\\`, `\n`, `\r`).  Interning is append-only and Vec-ordered in
//! [`kbt_data::Vocabulary`], so writing constants and relations **in id
//! order** and re-interning them on load reproduces identical
//! `Const`/`RelId` assignments — fact rows serialize as raw indices.
//!
//! ```text
//! kbt-checkpoint v1
//! epoch <n>
//! stats <commits> <applies> <defines>
//! eval <updates> <candidates> <models> <ops> <rounds> <probes> <scanned> <reused> <rederived>
//! constants <n>      then per constant:   c <name>
//! relations <n>      then per relation:   r <arity> <name>
//! transforms <n>     then per transform:  t <applications> <name> <text>
//! worlds <n>         then per world:      world <n-relations>
//!                    then per relation:   rel <id> <arity> <n-rows>
//!                    then per row:        w <c0> <c1> …
//! checksum <crc32-hex-of-everything-above>
//! ```
//!
//! The file is written to a `.tmp` sibling, fsynced, and atomically
//! renamed into place (then the directory is fsynced), so a crash never
//! leaves a half-written checkpoint under the real name.  A file that
//! fails its header, shape, or checksum check surfaces as
//! [`ServiceError::CheckpointCorrupt`].

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;

use kbt_core::EvalStats;
use kbt_data::{Const, Database, RelId, Tuple, Vocabulary};
use kbt_obs::Counter;

use crate::error::{Result, ServiceError};
use crate::service::{CommittedState, ServiceStats};

/// File-name prefix of checkpoints inside the data dir.
pub const CHECKPOINT_PREFIX: &str = "checkpoint-";
/// File-name suffix of checkpoints inside the data dir.
pub const CHECKPOINT_SUFFIX: &str = ".kbtc";
/// How many finished checkpoints are retained (older ones are deleted
/// after a newer one lands).
pub const KEEP_CHECKPOINTS: usize = 2;

/// Escapes a name/text field to one physical line.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`].
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => out.push(other),
            None => out.push('\\'),
        }
    }
    out
}

/// The canonical file name of the checkpoint for `epoch` (zero-padded so
/// lexical order is epoch order).
pub fn checkpoint_file_name(epoch: u64) -> String {
    format!("{CHECKPOINT_PREFIX}{epoch:012}{CHECKPOINT_SUFFIX}")
}

/// The epoch a checkpoint file name encodes, when it is one.
fn parse_file_name(name: &str) -> Option<u64> {
    name.strip_prefix(CHECKPOINT_PREFIX)?
        .strip_suffix(CHECKPOINT_SUFFIX)?
        .parse()
        .ok()
}

/// A deserialized checkpoint, ready for the recovery path to rebuild a
/// service around (transform texts still need re-parsing against the
/// restored vocabulary).
#[derive(Debug)]
pub struct CheckpointData {
    /// The epoch the checkpoint captured.
    pub epoch: u64,
    /// Writer-side cumulative counters at that epoch.
    pub stats: ServiceStats,
    /// The restored vocabulary (identical id assignments — see module
    /// docs).
    pub vocab: Vocabulary,
    /// Registered transformations: `(name, applications, wire text)`.
    pub transforms: Vec<(String, u64, String)>,
    /// The possible worlds, fully materialized.
    pub worlds: Vec<Database>,
}

/// Serializes one committed state (see the module-level format).
pub fn render(epoch: u64, state: &CommittedState) -> String {
    let mut out = String::new();
    out.push_str("kbt-checkpoint v1\n");
    out.push_str(&format!("epoch {epoch}\n"));
    let s = &state.stats;
    out.push_str(&format!(
        "stats {} {} {}\n",
        s.commits, s.applies, s.defines
    ));
    let e = &s.eval;
    out.push_str(&format!(
        "eval {} {} {} {} {} {} {} {} {}\n",
        e.updates,
        e.candidate_atoms,
        e.minimal_models,
        e.operators,
        e.fixpoint_iterations,
        e.index_probes,
        e.tuples_scanned,
        e.reused_facts,
        e.rederived_facts
    ));
    let vocab = state.vocab.as_ref();
    out.push_str(&format!("constants {}\n", vocab.constant_count()));
    for i in 0..vocab.constant_count() {
        let name = vocab
            .constant_name(Const::new(i as u32))
            .expect("interned constants are dense");
        out.push_str(&format!("c {}\n", escape(name)));
    }
    out.push_str(&format!("relations {}\n", vocab.relation_count()));
    for i in 0..vocab.relation_count() {
        let rel = RelId::new(i as u32);
        let name = vocab
            .relation_name(rel)
            .expect("interned relations are dense");
        let arity = vocab.relation_arity(rel).expect("registered above");
        out.push_str(&format!("r {arity} {}\n", escape(name)));
    }
    out.push_str(&format!("transforms {}\n", state.transforms.len()));
    for (name, info) in state.transforms.iter() {
        out.push_str(&format!(
            "t {} {name} {}\n",
            info.applications,
            escape(&info.text)
        ));
    }
    out.push_str(&format!("worlds {}\n", state.kb.len()));
    for db in state.kb.iter() {
        let rels: Vec<(RelId, &kbt_data::Relation)> = db.iter().collect();
        out.push_str(&format!("world {}\n", rels.len()));
        for (rel, relation) in rels {
            out.push_str(&format!(
                "rel {} {} {}\n",
                rel.index(),
                relation.arity(),
                relation.len()
            ));
            for row in relation.iter() {
                out.push('w');
                for c in row {
                    out.push_str(&format!(" {}", c.index()));
                }
                out.push('\n');
            }
        }
    }
    let crc = crate::wal::crc32(out.as_bytes());
    out.push_str(&format!("checksum {crc:08x}\n"));
    out
}

/// Parses a checkpoint file's text (see the module-level format),
/// verifying the checksum first.
pub fn parse(path_for_errors: &str, text: &str) -> Result<CheckpointData> {
    let corrupt = |detail: &str| ServiceError::CheckpointCorrupt {
        path: path_for_errors.to_string(),
        detail: detail.to_string(),
    };
    // the checksum line covers every byte before it
    let body_end = text
        .trim_end_matches('\n')
        .rfind('\n')
        .ok_or_else(|| corrupt("missing checksum line"))?
        + 1;
    let (body, tail) = text.split_at(body_end);
    let declared = tail
        .trim()
        .strip_prefix("checksum ")
        .ok_or_else(|| corrupt("missing checksum line"))?;
    let declared = u32::from_str_radix(declared, 16).map_err(|_| corrupt("bad checksum field"))?;
    if crate::wal::crc32(body.as_bytes()) != declared {
        return Err(corrupt("checksum mismatch"));
    }

    let mut lines = body.lines();
    let mut expect = |prefix: &str| -> Result<String> {
        let line = lines
            .next()
            .ok_or_else(|| corrupt(&format!("unexpected EOF, wanted {prefix:?}")))?;
        line.strip_prefix(prefix)
            .map(str::to_string)
            .ok_or_else(|| corrupt(&format!("expected {prefix:?}, found {line:?}")))
    };
    let field = |s: &str| -> Result<u64> { s.trim().parse().map_err(|_| corrupt("bad number")) };

    expect("kbt-checkpoint v1")?;
    let epoch = field(&expect("epoch ")?)?;
    let stats_line = expect("stats ")?;
    let nums: Vec<u64> = stats_line
        .split_whitespace()
        .map(field)
        .collect::<Result<_>>()?;
    let [commits, applies, defines] = nums[..] else {
        return Err(corrupt("stats line needs 3 fields"));
    };
    let eval_line = expect("eval ")?;
    let nums: Vec<u64> = eval_line
        .split_whitespace()
        .map(field)
        .collect::<Result<_>>()?;
    let [updates, candidate_atoms, minimal_models, operators, fixpoint_iterations, index_probes, tuples_scanned, reused_facts, rederived_facts] =
        nums[..]
    else {
        return Err(corrupt("eval line needs 9 fields"));
    };
    let stats = ServiceStats {
        commits,
        applies,
        defines,
        eval: EvalStats {
            updates: updates as usize,
            candidate_atoms: candidate_atoms as usize,
            minimal_models: minimal_models as usize,
            operators: operators as usize,
            fixpoint_iterations: fixpoint_iterations as usize,
            index_probes: index_probes as usize,
            tuples_scanned: tuples_scanned as usize,
            reused_facts: reused_facts as usize,
            rederived_facts: rederived_facts as usize,
        },
    };

    let mut vocab = Vocabulary::new();
    let n_constants = field(&expect("constants ")?)?;
    for _ in 0..n_constants {
        vocab.constant(&unescape(&expect("c ")?));
    }
    let n_relations = field(&expect("relations ")?)?;
    for _ in 0..n_relations {
        let line = expect("r ")?;
        let (arity, name) = line
            .split_once(' ')
            .ok_or_else(|| corrupt("relation line needs arity and name"))?;
        vocab
            .relation(&unescape(name), field(arity)? as usize)
            .map_err(|_| corrupt("conflicting relation arity"))?;
    }

    let n_transforms = field(&expect("transforms ")?)?;
    let mut transforms = Vec::with_capacity(n_transforms as usize);
    for _ in 0..n_transforms {
        let line = expect("t ")?;
        let mut parts = line.splitn(3, ' ');
        let applications = field(parts.next().unwrap_or_default())?;
        let name = parts
            .next()
            .ok_or_else(|| corrupt("transform line needs a name"))?
            .to_string();
        let text = unescape(parts.next().unwrap_or_default());
        transforms.push((name, applications, text));
    }

    let n_worlds = field(&expect("worlds ")?)?;
    let mut worlds = Vec::with_capacity(n_worlds as usize);
    for _ in 0..n_worlds {
        let n_rels = field(&expect("world ")?)?;
        let mut db = Database::new();
        for _ in 0..n_rels {
            let line = expect("rel ")?;
            let nums: Vec<u64> = line.split_whitespace().map(field).collect::<Result<_>>()?;
            let [rel, arity, rows] = nums[..] else {
                return Err(corrupt("rel line needs id, arity, rows"));
            };
            let rel_id = RelId::new(rel as u32);
            db.ensure_relation(rel_id, arity as usize)
                .map_err(|_| corrupt("conflicting world schema"))?;
            for _ in 0..rows {
                // `"w"` not `"w "`: an arity-0 row is the bare line `w`
                let row = expect("w")?;
                let consts: Vec<Const> = row
                    .split_whitespace()
                    .map(|c| field(c).map(|i| Const::new(i as u32)))
                    .collect::<Result<_>>()?;
                if consts.len() != arity as usize {
                    return Err(corrupt("row arity mismatch"));
                }
                db.insert_fact(rel_id, Tuple::new(consts))
                    .map_err(|_| corrupt("row rejected"))?;
            }
        }
        worlds.push(db);
    }
    if lines.next().is_some() {
        return Err(corrupt("trailing content after worlds"));
    }
    Ok(CheckpointData {
        epoch,
        stats,
        vocab,
        transforms,
        worlds,
    })
}

/// Writes `text` to `dir/name` via a fsynced temp file and an atomic
/// rename, then fsyncs the directory.
fn write_atomically(dir: &Path, name: &str, text: &str) -> Result<()> {
    let tmp = dir.join(format!("{name}.tmp"));
    let target = dir.join(name);
    {
        let mut f = File::create(&tmp)?;
        f.write_all(text.as_bytes())?;
        f.sync_data()?;
    }
    fs::rename(&tmp, &target)?;
    // make the rename itself durable
    File::open(dir)?.sync_all()?;
    Ok(())
}

/// The newest checkpoint file in `dir`, as `(epoch, path)`.
pub fn newest_checkpoint(dir: &Path) -> Result<Option<(u64, PathBuf)>> {
    let mut best: Option<(u64, PathBuf)> = None;
    let entries = match fs::read_dir(dir) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(epoch) = parse_file_name(name) {
            if best.as_ref().is_none_or(|(b, _)| epoch > *b) {
                best = Some((epoch, entry.path()));
            }
        }
    }
    Ok(best)
}

/// Loads and verifies the checkpoint at `path`.
pub fn load(path: &Path) -> Result<CheckpointData> {
    let text = fs::read_to_string(path)?;
    parse(&path.display().to_string(), &text)
}

/// Deletes all but the newest [`KEEP_CHECKPOINTS`] checkpoint files.
fn prune(dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut found: Vec<(u64, PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name();
            parse_file_name(name.to_str()?).map(|epoch| (epoch, e.path()))
        })
        .collect();
    found.sort_by_key(|(epoch, _)| *epoch);
    let excess = found.len().saturating_sub(KEEP_CHECKPOINTS);
    for (_, path) in found.into_iter().take(excess) {
        let _ = fs::remove_file(path);
    }
}

/// Owns checkpoint scheduling for one service: the commit counter that
/// triggers automatic checkpoints, the in-flight guard, and the background
/// serialization thread.
#[derive(Debug)]
pub struct CheckpointManager {
    dir: PathBuf,
    /// Automatic checkpoint interval in commits (`0` = manual only).
    every: u64,
    /// Commits since the last (triggered) checkpoint.
    commits_since: AtomicU64,
    /// Epoch of the newest checkpoint known written.
    last_epoch: AtomicU64,
    /// Guard: at most one serialization in flight.
    in_flight: Arc<AtomicBool>,
    /// The current/most recent background writer, joined before the next
    /// one starts (and on drop) so threads never accumulate.
    worker: Mutex<Option<JoinHandle<()>>>,
    /// `kbt_service_checkpoints_total`.
    written_total: Counter,
}

impl CheckpointManager {
    /// A manager writing into `dir` every `every` commits.
    pub fn new(dir: PathBuf, every: u64, last_epoch: u64, written_total: Counter) -> Self {
        CheckpointManager {
            dir,
            every,
            commits_since: AtomicU64::new(0),
            last_epoch: AtomicU64::new(last_epoch),
            in_flight: Arc::new(AtomicBool::new(false)),
            worker: Mutex::new(None),
            written_total,
        }
    }

    /// The epoch of the newest checkpoint written (or recovered from).
    pub fn last_epoch(&self) -> u64 {
        self.last_epoch.load(Ordering::Acquire)
    }

    /// Counts one commit; returns whether the automatic interval is due.
    pub fn note_commit(&self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.commits_since.fetch_add(1, Ordering::Relaxed) + 1 >= self.every
    }

    /// Triggers a background checkpoint of `state` at `epoch` — `O(1)` on
    /// the caller: serialization runs on a spawned thread.  Skipped (false)
    /// when a serialization is already in flight or `epoch` is not newer
    /// than the last checkpoint.
    pub fn trigger(&self, epoch: u64, state: CommittedState) -> bool {
        if epoch <= self.last_epoch.load(Ordering::Acquire) {
            return false;
        }
        if self.in_flight.swap(true, Ordering::AcqRel) {
            return false;
        }
        self.commits_since.store(0, Ordering::Relaxed);
        let dir = self.dir.clone();
        let in_flight = self.in_flight.clone();
        let written_total = self.written_total.clone();
        let handle = std::thread::Builder::new()
            .name("kbt-checkpoint".to_string())
            .spawn(move || {
                // rendering happens here, off the commit path
                let rendered = render(epoch, &state);
                if write_atomically(&dir, &checkpoint_file_name(epoch), &rendered).is_ok() {
                    written_total.inc();
                    prune(&dir);
                }
                in_flight.store(false, Ordering::Release);
            });
        match handle {
            Ok(handle) => {
                let mut worker = self.worker.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(prev) = worker.replace(handle) {
                    let _ = prev.join();
                }
                // the epoch is recorded optimistically; a failed write
                // simply means the next recovery replays a longer tail
                self.last_epoch.store(epoch, Ordering::Release);
                true
            }
            Err(_) => {
                self.in_flight.store(false, Ordering::Release);
                false
            }
        }
    }

    /// Writes a checkpoint of `state` at `epoch` synchronously (the
    /// `CHECKPOINT` command), returning the file name.
    pub fn write_now(&self, epoch: u64, state: &CommittedState) -> Result<String> {
        self.join();
        let name = checkpoint_file_name(epoch);
        write_atomically(&self.dir, &name, &render(epoch, state))?;
        self.written_total.inc();
        self.commits_since.store(0, Ordering::Relaxed);
        self.last_epoch.fetch_max(epoch, Ordering::AcqRel);
        prune(&self.dir);
        Ok(name)
    }

    /// Waits for an in-flight background checkpoint to finish.
    pub fn join(&self) {
        let handle = {
            let mut worker = self.worker.lock().unwrap_or_else(PoisonError::into_inner);
            worker.take()
        };
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for CheckpointManager {
    fn drop(&mut self) {
        self.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips() {
        for s in ["plain", "new\nline", "back\\slash\r", "\\n literal"] {
            assert_eq!(unescape(&escape(s)), s, "{s:?}");
        }
    }

    #[test]
    fn file_names_sort_by_epoch() {
        assert_eq!(checkpoint_file_name(7), "checkpoint-000000000007.kbtc");
        assert!(checkpoint_file_name(9) < checkpoint_file_name(10));
        assert_eq!(parse_file_name("checkpoint-000000000042.kbtc"), Some(42));
        assert_eq!(parse_file_name("wal.kbtl"), None);
    }
}
