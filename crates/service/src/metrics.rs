//! The service's metric handles — the one place the whole name catalogue
//! for the serving layers is constructed.
//!
//! A [`crate::Service`] owns a **per-instance** [`kbt_obs::Registry`]
//! (tests and embedded services must not share counters through process
//! globals); the library crates underneath it (`kbt-engine`, `kbt-par`)
//! record into [`Registry::global`].  The `METRICS` command merges both
//! snapshots, so one scrape sees every layer.
//!
//! Two families live here:
//!
//! * [`ServiceMetrics`] — the commit pipeline, the snapshot/query read
//!   path, and the epoch-holder gauges.  Registered by [`crate::Service::new`].
//! * [`NetMetrics`] — the TCP front: per-verb command latency and framing
//!   errors.  Registered when a [`crate::net::NetServer`] starts, so an
//!   in-process service carries no network series.
//!
//! The full catalogue (names, types, semantics) is documented in the
//! crate-level *Observability* section, which the CI doc-drift check
//! asserts against a live `METRICS` scrape.

use kbt_obs::{Counter, Gauge, Histogram, Registry};

use crate::command::Verb;

/// Metric handles for the service core (commit pipeline + read path).
#[derive(Debug)]
pub struct ServiceMetrics {
    /// The per-service registry every handle below records into.
    pub registry: Registry,
    /// Committed epochs — mirrors `ServiceStats::commits` (one truth,
    /// written at publish time).
    pub commits_total: Counter,
    /// `APPLY` commits — mirrors `ServiceStats::applies`.
    pub applies_total: Counter,
    /// `DEFINE` commands — mirrors `ServiceStats::defines`.
    pub defines_total: Counter,
    /// Snapshot reads served (`QUERY CERTAIN/POSSIBLE/<texpr>`, typed or
    /// textual) — the counter `STATS` reports as `queries`.
    pub queries_total: Counter,
    /// Bound goals answered through the magic-set rewrite.
    pub queries_magic_total: Counter,
    /// Bound goals answered from the subsumptive table.
    pub queries_tabled_total: Counter,
    /// Bound goals answered by full materialization plus a filter.
    pub queries_materialize_total: Counter,
    /// MVCC snapshots taken ([`crate::Service::snapshot`]).
    pub snapshots_total: Counter,
    /// The currently committed epoch.
    pub epoch: Gauge,
    /// Past epochs still pinned by at least one outstanding snapshot
    /// (the current epoch is excluded).
    pub held_epochs: Gauge,
    /// Age of the oldest pinned epoch, in epochs behind the current one
    /// (`0` when nothing old is held).
    pub held_epoch_lag: Gauge,
    /// Commit phase: parsing the command payload (under the writer lock).
    pub commit_parse_ns: Histogram,
    /// Commit phase: applying the change to the working state (world
    /// updates / fixpoint evaluation).
    pub commit_apply_ns: Histogram,
    /// Commit phase: publishing the next epoch and pruning holders.
    pub commit_publish_ns: Histogram,
    /// Facts per `ASSERT`/`RETRACT` commit (a size, not a duration).
    pub commit_batch_facts: Histogram,
    /// End-to-end latency of textual `QUERY` commands (parse included);
    /// the span that feeds the slow-query log (`slow_query` events).
    pub query_ns: Histogram,
    /// WAL records appended (one per durable commit).
    pub wal_records_total: Counter,
    /// WAL bytes appended (frames included).
    pub wal_bytes_total: Counter,
    /// WAL fsyncs issued — under group commit this grows slower than
    /// `wal_records_total`; the gap is the batching win.
    pub wal_fsyncs_total: Counter,
    /// Commits made durable per fsync (the group-commit batch size; always
    /// records 1 under `FsyncPolicy::Always`).
    pub group_commit_batch: Histogram,
    /// Checkpoint files written (automatic and `CHECKPOINT`-commanded).
    pub checkpoints_total: Counter,
    /// WAL records replayed during crash recovery.
    pub recovery_replayed_total: Counter,
}

impl ServiceMetrics {
    /// Registers every service-core series in `registry` (idempotent —
    /// re-registration returns the same cells), with `# HELP` descriptions
    /// for the exposition.
    pub fn register(registry: Registry) -> Self {
        for (name, help) in [
            (
                "kbt_service_commits_total",
                "Committed epochs (every successful write command).",
            ),
            ("kbt_service_applies_total", "APPLY commits."),
            ("kbt_service_defines_total", "DEFINE commands processed."),
            ("kbt_service_queries_total", "Snapshot reads served."),
            (
                "kbt_service_queries_magic_total",
                "Bound goals answered through the magic-set rewrite.",
            ),
            (
                "kbt_service_queries_tabled_total",
                "Bound goals answered from the subsumptive table.",
            ),
            (
                "kbt_service_queries_materialize_total",
                "Bound goals answered by full materialization plus a filter.",
            ),
            ("kbt_service_snapshots_total", "MVCC snapshots taken."),
            ("kbt_service_epoch", "The currently committed epoch."),
            (
                "kbt_service_held_epochs",
                "Past epochs still pinned by outstanding snapshots.",
            ),
            (
                "kbt_service_held_epoch_lag",
                "Age of the oldest pinned epoch, in epochs behind current.",
            ),
            (
                "kbt_service_commit_parse_ns",
                "Commit phase: parsing the command payload.",
            ),
            (
                "kbt_service_commit_apply_ns",
                "Commit phase: applying the change to the working state.",
            ),
            (
                "kbt_service_commit_publish_ns",
                "Commit phase: publishing the next epoch.",
            ),
            (
                "kbt_service_commit_batch_facts",
                "Facts per ASSERT/RETRACT commit.",
            ),
            (
                "kbt_service_query_ns",
                "End-to-end latency of textual QUERY/PROFILE commands.",
            ),
            (
                "kbt_service_wal_records_total",
                "WAL records appended (one per durable commit).",
            ),
            (
                "kbt_service_wal_bytes_total",
                "WAL bytes appended (frames included).",
            ),
            ("kbt_service_wal_fsyncs_total", "WAL fsyncs issued."),
            (
                "kbt_service_group_commit_batch",
                "Commits made durable per fsync (group-commit batch size).",
            ),
            ("kbt_service_checkpoints_total", "Checkpoint files written."),
            (
                "kbt_service_recovery_replayed_total",
                "WAL records replayed during crash recovery.",
            ),
            (
                "kbt_net_sessions_accepted_total",
                "Connections accepted over the process lifetime.",
            ),
            (
                "kbt_net_sessions_active",
                "Sessions currently being served.",
            ),
            (
                "kbt_net_sessions_rejected_total",
                "Connections refused at session capacity.",
            ),
            (
                "kbt_net_sessions_idle_closed_total",
                "Sessions closed by the idle timeout.",
            ),
        ] {
            registry.describe(name, help);
        }
        ServiceMetrics {
            commits_total: registry.counter("kbt_service_commits_total"),
            applies_total: registry.counter("kbt_service_applies_total"),
            defines_total: registry.counter("kbt_service_defines_total"),
            queries_total: registry.counter("kbt_service_queries_total"),
            queries_magic_total: registry.counter("kbt_service_queries_magic_total"),
            queries_tabled_total: registry.counter("kbt_service_queries_tabled_total"),
            queries_materialize_total: registry.counter("kbt_service_queries_materialize_total"),
            snapshots_total: registry.counter("kbt_service_snapshots_total"),
            epoch: registry.gauge("kbt_service_epoch"),
            held_epochs: registry.gauge("kbt_service_held_epochs"),
            held_epoch_lag: registry.gauge("kbt_service_held_epoch_lag"),
            commit_parse_ns: registry.histogram("kbt_service_commit_parse_ns"),
            commit_apply_ns: registry.histogram("kbt_service_commit_apply_ns"),
            commit_publish_ns: registry.histogram("kbt_service_commit_publish_ns"),
            commit_batch_facts: registry.histogram("kbt_service_commit_batch_facts"),
            query_ns: registry.histogram("kbt_service_query_ns"),
            wal_records_total: registry.counter("kbt_service_wal_records_total"),
            wal_bytes_total: registry.counter("kbt_service_wal_bytes_total"),
            wal_fsyncs_total: registry.counter("kbt_service_wal_fsyncs_total"),
            group_commit_batch: registry.histogram("kbt_service_group_commit_batch"),
            checkpoints_total: registry.counter("kbt_service_checkpoints_total"),
            recovery_replayed_total: registry.counter("kbt_service_recovery_replayed_total"),
            registry,
        }
    }
}

/// The verbs a network command line can carry, as exposition label values
/// (plus `"error"` for lines that fail verb parsing — they are timed too).
pub(crate) const VERB_LABELS: [&str; 14] = [
    "nop",
    "load",
    "assert",
    "retract",
    "define",
    "apply",
    "query",
    "stats",
    "metrics",
    "explain",
    "profile",
    "checkpoint",
    "walstat",
    "error",
];

fn verb_slot(verb: Option<Verb>) -> usize {
    match verb {
        Some(Verb::Nop) => 0,
        Some(Verb::Load) => 1,
        Some(Verb::Assert) => 2,
        Some(Verb::Retract) => 3,
        Some(Verb::Define) => 4,
        Some(Verb::Apply) => 5,
        Some(Verb::Query) => 6,
        Some(Verb::Stats) => 7,
        Some(Verb::Metrics) => 8,
        Some(Verb::Explain) => 9,
        Some(Verb::Profile) => 10,
        Some(Verb::Checkpoint) => 11,
        Some(Verb::Walstat) => 12,
        None => 13,
    }
}

/// The exposition label value for a verb (`None` = `"error"`).
pub(crate) fn verb_label(verb: Option<Verb>) -> &'static str {
    VERB_LABELS[verb_slot(verb)]
}

/// Metric handles for the TCP front.
#[derive(Debug)]
pub struct NetMetrics {
    /// Per-verb command latency over the wire, one labelled series per
    /// entry in [`VERB_LABELS`] — all pre-registered at server start, so a
    /// scrape sees the full verb taxonomy before any traffic.
    command_ns: [Histogram; VERB_LABELS.len()],
    /// Command lines the framer refused (too long / invalid UTF-8).
    pub framing_errors_total: Counter,
}

impl NetMetrics {
    /// Registers every network series in `registry`, with `# HELP`
    /// descriptions for the exposition.
    pub fn register(registry: &Registry) -> Self {
        registry.describe(
            "kbt_net_command_ns",
            "Per-verb command latency over the wire.",
        );
        registry.describe(
            "kbt_net_framing_errors_total",
            "Command lines the framer refused (too long / invalid UTF-8).",
        );
        NetMetrics {
            command_ns: VERB_LABELS
                .map(|label| registry.histogram_labeled("kbt_net_command_ns", "verb", label)),
            framing_errors_total: registry.counter("kbt_net_framing_errors_total"),
        }
    }

    /// The latency histogram for one command verb (`None` = the line
    /// failed verb parsing and is timed under `verb="error"`).
    pub fn command_ns(&self, verb: Option<Verb>) -> &Histogram {
        &self.command_ns[verb_slot(verb)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_metrics_register_the_catalogue() {
        let m = ServiceMetrics::register(Registry::new());
        m.commits_total.inc();
        m.query_ns.record(42);
        let snap = m.registry.snapshot();
        assert_eq!(snap.value("kbt_service_commits_total"), Some(1));
        assert_eq!(snap.histogram("kbt_service_query_ns").unwrap().count, 1);
        // registration is eager: a never-touched series still scrapes
        assert_eq!(snap.value("kbt_service_applies_total"), Some(0));
        assert!(snap.render().contains("kbt_service_commit_publish_ns"));
    }

    #[test]
    fn net_metrics_cover_every_verb_label() {
        let registry = Registry::new();
        let m = NetMetrics::register(&registry);
        m.command_ns(Some(Verb::Query)).record(10);
        m.command_ns(None).record(99);
        let snap = registry.snapshot();
        for label in VERB_LABELS {
            let name = format!("kbt_net_command_ns{{verb=\"{label}\"}}");
            assert!(snap.histogram(&name).is_some(), "{name} must pre-register");
        }
        assert_eq!(
            snap.histogram("kbt_net_command_ns{verb=\"query\"}")
                .unwrap()
                .count,
            1
        );
        assert_eq!(
            snap.histogram("kbt_net_command_ns{verb=\"error\"}")
                .unwrap()
                .count,
            1
        );
    }
}
