//! The write-ahead log: append-only, length-and-checksum-framed records of
//! committed commands, with group-commit fsync batching.
//!
//! # Record framing
//!
//! ```text
//! record  := len:u32le  crc:u32le  body
//! body    := epoch:u64le  command-utf8-bytes
//! ```
//!
//! `len` is the body length (so `len >= 8`); `crc` is the IEEE CRC-32 of
//! the body.  The command bytes are the committed command's **canonical
//! wire text** — the same bytes a follower would replay over TCP — so the
//! log is replayed through the ordinary command pipeline and the enforced
//! `parse(pretty(φ)) == φ` identity makes the round trip exact.
//!
//! # Ordering and group commit
//!
//! Appends happen inside the commit pipeline **under the writer lock**, so
//! record order is exactly epoch order and each record's epoch is the
//! epoch its commit published.  Durability waits happen *after* the lock
//! is released: under [`FsyncPolicy::GroupCommit`] one committer becomes
//! the **leader**, optionally waits `max_wait` for more committers to
//! append (up to `max_batch` pending), issues one fsync covering the whole
//! appended tail, and wakes every follower whose record it covered.  The
//! cost of an fsync (~100 µs on commodity storage) is amortized over the
//! batch, which is why durable throughput under concurrency *exceeds*
//! one-fsync-per-commit throughput.
//!
//! # Torn tails
//!
//! A crash mid-append leaves a torn final record: a partial header, a
//! body shorter than `len`, or a checksum mismatch ending exactly at EOF.
//! [`Wal::scan`] reports these as a truncation point — normal crash
//! debris.  A framing or checksum failure **before** the final record is
//! real corruption and surfaces as [`ServiceError::WalCorrupt`]; recovery
//! refuses rather than serve a silently wrong state.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::Duration;

use kbt_obs::{Counter, Histogram};

use crate::config::FsyncPolicy;
use crate::error::{Result, ServiceError};

/// File name of the log inside the data dir.
pub const WAL_FILE: &str = "wal.kbtl";

/// Bytes of framing per record (`len` + `crc`).
const HEADER_BYTES: usize = 8;
/// Bytes of the `epoch` field inside the body.
const EPOCH_BYTES: usize = 8;

/// IEEE CRC-32 (the polynomial Ethernet, gzip and PNG use), computed
/// bitwise with an 8-entry nibble table — small, std-only, and fast enough
/// for commit-sized payloads.
pub fn crc32(bytes: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = !0u32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (POLY & mask);
        }
    }
    !crc
}

/// One decoded WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// The epoch the command committed.
    pub epoch: u64,
    /// The committed command's canonical wire text.
    pub command: String,
}

/// The result of scanning a WAL file: the valid records, the byte length
/// of the valid prefix, and whether a torn final record was dropped.
#[derive(Debug)]
pub struct WalScan {
    /// Every record of the valid prefix, in append (= epoch) order.
    pub records: Vec<WalRecord>,
    /// Byte length of the valid prefix (the truncation point when torn).
    pub valid_len: u64,
    /// Whether bytes past `valid_len` were recognised as a torn final
    /// record (to be truncated before the log is appended to again).
    pub torn_tail: bool,
}

/// Counter/histogram handles the WAL records into (registered by
/// [`crate::metrics::ServiceMetrics`]).
#[derive(Clone, Debug)]
pub struct WalMetrics {
    /// `kbt_service_wal_records_total`.
    pub records_total: Counter,
    /// `kbt_service_wal_bytes_total`.
    pub bytes_total: Counter,
    /// `kbt_service_wal_fsyncs_total`.
    pub fsyncs_total: Counter,
    /// `kbt_service_group_commit_batch` — commits covered per fsync.
    pub batch: Histogram,
}

/// Group-commit bookkeeping, shared by every committer.
#[derive(Debug, Default)]
struct SyncState {
    /// Highest epoch appended to the file.
    appended: u64,
    /// Highest epoch known flushed to stable storage.
    durable: u64,
    /// Whether a leader currently owns the fsync.
    leader_busy: bool,
}

/// The open write-ahead log (see module docs).
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: Mutex<File>,
    policy: FsyncPolicy,
    sync: Mutex<SyncState>,
    synced: Condvar,
    metrics: WalMetrics,
}

impl Wal {
    /// Encodes one record frame.
    pub(crate) fn encode(epoch: u64, command: &str) -> Vec<u8> {
        let body_len = EPOCH_BYTES + command.len();
        let mut frame = Vec::with_capacity(HEADER_BYTES + body_len);
        frame.extend_from_slice(&(body_len as u32).to_le_bytes());
        frame.extend_from_slice(&[0; 4]); // crc placeholder
        frame.extend_from_slice(&epoch.to_le_bytes());
        frame.extend_from_slice(command.as_bytes());
        let crc = crc32(&frame[HEADER_BYTES..]);
        frame[4..8].copy_from_slice(&crc.to_le_bytes());
        frame
    }

    /// Scans `bytes` (a whole WAL file), decoding the valid prefix and
    /// classifying what follows it: nothing, a torn final record, or
    /// interior corruption (see module docs).
    pub fn scan_bytes(bytes: &[u8]) -> Result<WalScan> {
        let mut records = Vec::new();
        let mut offset = 0usize;
        while offset < bytes.len() {
            let rest = &bytes[offset..];
            if rest.len() < HEADER_BYTES {
                // partial header at EOF: torn tail
                return Ok(WalScan {
                    records,
                    valid_len: offset as u64,
                    torn_tail: true,
                });
            }
            let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
            let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
            let frame_end = HEADER_BYTES.saturating_add(len);
            if rest.len() < frame_end {
                // body shorter than its header claims, ending at EOF:
                // torn tail
                return Ok(WalScan {
                    records,
                    valid_len: offset as u64,
                    torn_tail: true,
                });
            }
            let body = &rest[HEADER_BYTES..frame_end];
            let at_eof = offset + frame_end == bytes.len();
            let fail = |detail: String| -> Result<WalScan> {
                if at_eof {
                    // the damage is the final record: crash debris
                    Ok(WalScan {
                        records: Vec::new(), // replaced below
                        valid_len: offset as u64,
                        torn_tail: true,
                    })
                } else {
                    Err(ServiceError::WalCorrupt {
                        offset: offset as u64,
                        detail,
                    })
                }
            };
            if crc32(body) != crc {
                let mut scan = fail("checksum mismatch".to_string())?;
                scan.records = records;
                return Ok(scan);
            }
            if len < EPOCH_BYTES {
                let mut scan = fail(format!("body too short ({len} bytes)"))?;
                scan.records = records;
                return Ok(scan);
            }
            let epoch = u64::from_le_bytes(body[0..EPOCH_BYTES].try_into().expect("8 bytes"));
            let command = match std::str::from_utf8(&body[EPOCH_BYTES..]) {
                Ok(s) => s.to_string(),
                Err(_) => {
                    let mut scan = fail("command bytes are not UTF-8".to_string())?;
                    scan.records = records;
                    return Ok(scan);
                }
            };
            if let Some(last) = records.last() {
                if epoch != last.epoch + 1 {
                    // a checksum-valid record with a wrong epoch is never
                    // crash debris — refuse even at the tail
                    return Err(ServiceError::EpochMismatch {
                        expected: last.epoch + 1,
                        found: epoch,
                    });
                }
            }
            records.push(WalRecord { epoch, command });
            offset += frame_end;
        }
        Ok(WalScan {
            records,
            valid_len: offset as u64,
            torn_tail: false,
        })
    }

    /// Reads and scans the log at `path` (empty scan when absent).
    pub fn scan(path: &Path) -> Result<WalScan> {
        let mut bytes = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(e.into()),
        }
        Self::scan_bytes(&bytes)
    }

    /// Opens the log at `path` for appending, truncating it to
    /// `valid_len` first (dropping a torn tail found by [`Wal::scan`]).
    /// `last_epoch` is the epoch of the last valid record (or the
    /// recovered epoch when the log starts beyond a checkpoint).
    pub fn open(
        path: PathBuf,
        policy: FsyncPolicy,
        valid_len: u64,
        last_epoch: u64,
        metrics: WalMetrics,
    ) -> Result<Wal> {
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        if file.metadata()?.len() > valid_len {
            // a torn tail survives until here; drop it so the next append
            // starts at a record boundary
            file.set_len(valid_len)?;
        }
        Ok(Wal {
            path,
            file: Mutex::new(file),
            policy,
            sync: Mutex::new(SyncState {
                appended: last_epoch,
                durable: last_epoch,
                leader_busy: false,
            }),
            synced: Condvar::new(),
            metrics,
        })
    }

    /// The log's path (reported by `WALSTAT`).
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> &FsyncPolicy {
        &self.policy
    }

    /// Appends one record.  Must be called with commit order pinned (the
    /// service calls it under the writer lock), so the log's record order
    /// is exactly epoch order.
    pub fn append(&self, epoch: u64, command: &str) -> Result<()> {
        let frame = Self::encode(epoch, command);
        {
            let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
            file.write_all(&frame)?;
        }
        self.metrics.records_total.inc();
        self.metrics.bytes_total.add(frame.len() as u64);
        let mut st = self.sync.lock().unwrap_or_else(PoisonError::into_inner);
        st.appended = st.appended.max(epoch);
        drop(st);
        // a leader may be accumulating its batch: let it see the new record
        self.synced.notify_all();
        Ok(())
    }

    /// Waits until the record for `epoch` is durable per the configured
    /// policy.  Returns whether the record was actually flushed (`false`
    /// under [`FsyncPolicy::Never`]).  Called *outside* the writer lock.
    pub fn sync(&self, epoch: u64) -> Result<bool> {
        match &self.policy {
            FsyncPolicy::Never => Ok(false),
            FsyncPolicy::Always => {
                let covered = {
                    let st = self.sync.lock().unwrap_or_else(PoisonError::into_inner);
                    st.appended.saturating_sub(st.durable).max(1)
                };
                {
                    let file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
                    file.sync_data()?;
                }
                let mut st = self.sync.lock().unwrap_or_else(PoisonError::into_inner);
                st.durable = st.durable.max(epoch);
                self.metrics.fsyncs_total.inc();
                self.metrics.batch.record(covered);
                Ok(true)
            }
            FsyncPolicy::GroupCommit {
                max_batch,
                max_wait,
            } => self.group_sync(epoch, *max_batch, *max_wait),
        }
    }

    /// Leader/follower group commit: see module docs.
    fn group_sync(&self, epoch: u64, max_batch: usize, max_wait: Duration) -> Result<bool> {
        let mut st = self.sync.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if st.durable >= epoch {
                return Ok(true); // someone else's fsync covered us
            }
            if !st.leader_busy {
                st.leader_busy = true;
                break;
            }
            st = self.synced.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
        // Leader: optionally wait for more committers to append, then
        // flush the whole appended tail with one fsync.
        let pending = (st.appended - st.durable) as usize;
        if pending < max_batch && !max_wait.is_zero() {
            // appenders notify; one bounded wait is enough — this is an
            // amortization heuristic, not a correctness condition
            let (guard, _timeout) = self
                .synced
                .wait_timeout(st, max_wait)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
        let target = st.appended;
        let batch = target - st.durable;
        drop(st);
        let sync_result = {
            let file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
            file.sync_data()
        };
        let mut st = self.sync.lock().unwrap_or_else(PoisonError::into_inner);
        st.leader_busy = false;
        match sync_result {
            Ok(()) => {
                st.durable = st.durable.max(target);
                self.metrics.fsyncs_total.inc();
                self.metrics.batch.record(batch);
                drop(st);
                self.synced.notify_all();
                Ok(true)
            }
            Err(e) => {
                drop(st);
                // wake followers so they can elect a new leader and retry
                self.synced.notify_all();
                Err(e.into())
            }
        }
    }

    /// Point-in-time counters for `WALSTAT`.
    pub fn stat(&self) -> WalStat {
        let st = self.sync.lock().unwrap_or_else(PoisonError::into_inner);
        WalStat {
            records: self.metrics.records_total.get(),
            bytes: self.metrics.bytes_total.get(),
            fsyncs: self.metrics.fsyncs_total.get(),
            appended_epoch: st.appended,
            durable_epoch: st.durable,
        }
    }
}

/// A point-in-time `WALSTAT` report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalStat {
    /// Records appended since this process opened the log.
    pub records: u64,
    /// Bytes appended since this process opened the log (framing included).
    pub bytes: u64,
    /// fsyncs issued since this process opened the log.
    pub fsyncs: u64,
    /// Highest epoch appended.
    pub appended_epoch: u64,
    /// Highest epoch known durable (equals appended under `Always` once
    /// quiescent; trails it under `Never`).
    pub durable_epoch: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_obs::Registry;

    fn metrics() -> WalMetrics {
        let r = Registry::new();
        WalMetrics {
            records_total: r.counter("w_records"),
            bytes_total: r.counter("w_bytes"),
            fsyncs_total: r.counter("w_fsyncs"),
            batch: r.histogram("w_batch"),
        }
    }

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("kbt-wal-test-{}-{tag}.kbtl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // the standard IEEE check value
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_scan_round_trip() {
        let path = temp_path("roundtrip");
        let wal = Wal::open(path.clone(), FsyncPolicy::Always, 0, 0, metrics()).unwrap();
        wal.append(1, "ASSERT edge(1, 2)").unwrap();
        assert!(wal.sync(1).unwrap());
        wal.append(2, "RETRACT edge(1, 2)").unwrap();
        assert!(wal.sync(2).unwrap());
        let stat = wal.stat();
        assert_eq!(stat.records, 2);
        assert_eq!(stat.durable_epoch, 2);
        assert!(stat.fsyncs >= 2);
        drop(wal);

        let scan = Wal::scan(&path).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(
            scan.records,
            vec![
                WalRecord {
                    epoch: 1,
                    command: "ASSERT edge(1, 2)".into()
                },
                WalRecord {
                    epoch: 2,
                    command: "RETRACT edge(1, 2)".into()
                },
            ]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tails_truncate_interior_corruption_refuses() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&Wal::encode(1, "ASSERT a(1)"));
        bytes.extend_from_slice(&Wal::encode(2, "ASSERT a(2)"));
        let full = bytes.len();

        // torn: partial header
        let scan =
            Wal::scan_bytes(&bytes[..full - Wal::encode(2, "ASSERT a(2)").len() + 3]).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 1);

        // torn: body shorter than its header claims
        let scan = Wal::scan_bytes(&bytes[..full - 2]).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.valid_len, Wal::encode(1, "ASSERT a(1)").len() as u64);

        // torn: flipped byte in the *final* record
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        let scan = Wal::scan_bytes(&flipped).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.records.len(), 1);

        // interior: flipped byte in the *first* record with a valid record
        // following — refuse with the typed error
        let mut interior = bytes.clone();
        interior[HEADER_BYTES + EPOCH_BYTES] ^= 0xFF;
        match Wal::scan_bytes(&interior) {
            Err(ServiceError::WalCorrupt { offset: 0, .. }) => {}
            other => panic!("expected WalCorrupt at offset 0, got {other:?}"),
        }
    }

    #[test]
    fn epoch_gaps_refuse_even_at_the_tail() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&Wal::encode(1, "ASSERT a(1)"));
        bytes.extend_from_slice(&Wal::encode(5, "ASSERT a(2)"));
        match Wal::scan_bytes(&bytes) {
            Err(ServiceError::EpochMismatch {
                expected: 2,
                found: 5,
            }) => {}
            other => panic!("expected EpochMismatch, got {other:?}"),
        }
    }

    #[test]
    fn open_truncates_a_torn_tail_for_appending() {
        let path = temp_path("truncate");
        let good = Wal::encode(1, "ASSERT a(1)");
        let mut bytes = good.clone();
        bytes.extend_from_slice(&Wal::encode(2, "ASSERT a(2)")[..5]);
        std::fs::write(&path, &bytes).unwrap();

        let scan = Wal::scan(&path).unwrap();
        assert!(scan.torn_tail);
        let wal = Wal::open(
            path.clone(),
            FsyncPolicy::Never,
            scan.valid_len,
            1,
            metrics(),
        )
        .unwrap();
        wal.append(2, "ASSERT a(2)").unwrap();
        assert!(!wal.sync(2).unwrap(), "Never policy reports not-flushed");
        drop(wal);
        let scan = Wal::scan(&path).unwrap();
        assert!(!scan.torn_tail);
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.records[1].epoch, 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn group_commit_wakes_every_follower() {
        let path = temp_path("group");
        let wal = std::sync::Arc::new(
            Wal::open(path.clone(), FsyncPolicy::group_commit(), 0, 0, metrics()).unwrap(),
        );
        let epoch = std::sync::Arc::new(std::sync::Mutex::new(0u64));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let wal = wal.clone();
                let epoch = epoch.clone();
                std::thread::spawn(move || {
                    for _ in 0..25 {
                        // simulate the writer lock: appends are serialized
                        let e = {
                            let mut guard = epoch.lock().unwrap();
                            *guard += 1;
                            let e = *guard;
                            wal.append(e, "ASSERT probe(1)").unwrap();
                            e
                        };
                        assert!(wal.sync(e).unwrap());
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }
        let stat = wal.stat();
        assert_eq!(stat.records, 100);
        assert_eq!(stat.durable_epoch, 100);
        assert!(
            stat.fsyncs < 100,
            "group commit must batch: {} fsyncs for 100 commits",
            stat.fsyncs
        );
        let _ = std::fs::remove_file(&path);
    }
}
