//! # kbt-service — a concurrent MVCC knowledgebase service
//!
//! The paper's transformations `τ_φ`, `⊓`, `⊔`, `π` are functions
//! `KB → KB`; this crate serves them to many concurrent sessions over one
//! shared knowledgebase.  Everything below `kbt-service` was built for
//! this: `kbt-data`'s relations are copy-on-write (`O(1)` clones),
//! `kbt-engine`'s `IncrementalSession` keeps a fixpoint alive across fact
//! deltas, and `kbt-core`'s `Transformer` can carry a persistent
//! [`kbt_core::ChainSession`] between applications.
//!
//! ## The epoch / commit / snapshot contract
//!
//! The committed state — knowledgebase, vocabulary, transform registry,
//! statistics — is published in a [`kbt_data::EpochCell`] under a
//! monotonically increasing [`kbt_data::EpochId`].
//!
//! * **Readers never block on writers.**  [`Service::snapshot`] is an
//!   `O(1)` `Arc` clone of the committed cell.  Query evaluation —
//!   arbitrarily expensive transformation expressions included — runs
//!   entirely against that immutable snapshot; the copy-on-write relations
//!   underneath guarantee a later commit can never mutate what a snapshot
//!   observes.  Every read names the epoch it evaluated against.
//! * **Writers serialize; publication is atomic.**  All mutating commands
//!   (`ASSERT`, `RETRACT`, `DEFINE`, `APPLY`) funnel through one writer
//!   mutex: they parse against the authoritative vocabulary, compute the
//!   next knowledgebase, and publish it with a single atomic swap.  A
//!   reader sees epoch `n` in full or epoch `n+1` in full — never a torn
//!   mix, never an aborted commit's partial effects.
//! * **Registered chains are incremental across commits.**  `DEFINE`
//!   registers a transformation once; each `APPLY` advances a persistent
//!   chain session, so the engine re-derives only what the delta since the
//!   previous application demands (`reused_facts` in the responses makes
//!   the saving observable).  Results are byte-identical to from-scratch
//!   evaluation — `tests/service_concurrent.rs` enforces this against a
//!   sequential oracle under concurrent readers at widths 1 and 4.
//! * **The evaluation width is explicit.**  [`ServiceConfig::threads`] is
//!   resolved once at configuration time (fresh `KBT_THREADS` read or an
//!   explicit value) and passed down as a concrete number — the serving
//!   path never depends on `kbt_par::default_threads`, which freezes its
//!   first environment read for the process lifetime.
//!
//! ## The command language
//!
//! One command per line; `#` starts a comment.  Sentences reuse
//! [`kbt_logic::parser`] verbatim, and transformations are stored and
//! re-transmitted in the rendering of [`command::render_transform`] — the
//! `parse(pretty(φ)) == φ` round-trip identity (enforced in
//! `crates/logic/tests/roundtrip.rs`) is what makes that wire format safe.
//!
//! ```text
//! LOAD <path>                   run a script file
//! ASSERT <fact>, <fact>, …      commit: add ground facts to every world
//! RETRACT <fact>, …             commit: remove ground facts from every world
//! DEFINE <name> := <texpr>      register a named transformation
//! APPLY <name>                  commit: kb := T(kb), incrementally
//! QUERY CERTAIN <relation>      snapshot read: facts true in every world
//! QUERY POSSIBLE <relation>     snapshot read: facts true in some world
//! QUERY <texpr>                 snapshot read: evaluate an expression
//! STATS                         epoch, worlds, counters, registry
//!
//! texpr := step (";" step)*
//! step  := tau[<sentence>] | glb | lub | id | project[<relation>, …]
//! fact  := <relation>(<const>, …)        const := NUMBER | 'name'
//! ```
//!
//! ## Example
//!
//! ```
//! use kbt_service::{Service, ServiceConfig, Response};
//!
//! let s = Service::new(ServiceConfig::with_threads(1));
//! s.execute("ASSERT edge(1, 2), edge(2, 3)").unwrap();
//! s.execute("DEFINE tc := tau[(forall x0 x1. edge(x0, x1) -> path(x0, x1)) & \
//!            (forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2))]").unwrap();
//! s.execute("APPLY tc").unwrap();
//! match s.execute("QUERY CERTAIN path").unwrap() {
//!     Response::Facts { facts, .. } => assert_eq!(facts.len(), 3),
//!     _ => unreachable!(),
//! }
//! ```

pub mod command;
pub mod config;
pub mod error;
pub mod service;

pub use command::{parse_transform, render_transform, QueryCmd, Verb};
pub use config::ServiceConfig;
pub use error::{Result, ServiceError};
pub use service::{
    CommittedState, QueryResult, Response, Service, ServiceStats, Snapshot, StatsReport,
    TransformInfo,
};
