//! # kbt-service — a concurrent MVCC knowledgebase service
//!
//! The paper's transformations `τ_φ`, `⊓`, `⊔`, `π` are functions
//! `KB → KB`; this crate serves them to many concurrent sessions over one
//! shared knowledgebase.  Everything below `kbt-service` was built for
//! this: `kbt-data`'s relations are copy-on-write (`O(1)` clones),
//! `kbt-engine`'s `IncrementalSession` keeps a fixpoint alive across fact
//! deltas, and `kbt-core`'s `Transformer` can carry a persistent
//! [`kbt_core::ChainSession`] between applications.
//!
//! ## The epoch / commit / snapshot contract
//!
//! The committed state — knowledgebase, vocabulary, transform registry,
//! statistics — is published in a [`kbt_data::EpochCell`] under a
//! monotonically increasing [`kbt_data::EpochId`].
//!
//! * **Readers never block on writers.**  [`Service::snapshot`] is an
//!   `O(1)` `Arc` clone of the committed cell.  Query evaluation —
//!   arbitrarily expensive transformation expressions included — runs
//!   entirely against that immutable snapshot; the copy-on-write relations
//!   underneath guarantee a later commit can never mutate what a snapshot
//!   observes.  Every read names the epoch it evaluated against.
//! * **Writers serialize; publication is atomic.**  All mutating commands
//!   (`ASSERT`, `RETRACT`, `DEFINE`, `APPLY`) funnel through one writer
//!   mutex: they parse against the authoritative vocabulary, compute the
//!   next knowledgebase, and publish it with a single atomic swap.  A
//!   reader sees epoch `n` in full or epoch `n+1` in full — never a torn
//!   mix, never an aborted commit's partial effects.
//! * **Registered chains are incremental across commits.**  `DEFINE`
//!   registers a transformation once; each `APPLY` advances a persistent
//!   chain session, so the engine re-derives only what the delta since the
//!   previous application demands (`reused_facts` in the responses makes
//!   the saving observable).  Results are byte-identical to from-scratch
//!   evaluation — `tests/service_concurrent.rs` enforces this against a
//!   sequential oracle under concurrent readers at widths 1 and 4.
//! * **The evaluation width is explicit.**  [`ServiceConfig::threads`] is
//!   resolved once at configuration time (fresh `KBT_THREADS` read or an
//!   explicit value) and passed down as a concrete number — the serving
//!   path never depends on `kbt_par::default_threads`, which freezes its
//!   first environment read for the process lifetime.
//!
//! ## The command language
//!
//! One command per line; `#` starts a comment.  Sentences reuse
//! [`kbt_logic::parser`] verbatim, and transformations are stored and
//! re-transmitted in the rendering of [`command::render_transform`] — the
//! `parse(pretty(φ)) == φ` round-trip identity (enforced in
//! `crates/logic/tests/roundtrip.rs`) is what makes that wire format safe.
//!
//! ```text
//! LOAD <path>                   run a script file
//! ASSERT <fact>, <fact>, …      commit: add ground facts to every world
//! RETRACT <fact>, …             commit: remove ground facts from every world
//! DEFINE <name> := <texpr>      register a named transformation
//! APPLY <name>                  commit: kb := T(kb), incrementally
//! QUERY CERTAIN <goal>          snapshot read: facts true in every world
//! QUERY POSSIBLE <goal>         snapshot read: facts true in some world
//! QUERY <texpr>                 snapshot read: evaluate an expression
//! EXPLAIN <query>               render the query's plan, evaluating nothing
//! PROFILE <query>               evaluate + per-rule fixpoint breakdown
//! STATS                         epoch, worlds, counters, registry
//! METRICS                       metrics text exposition (see Observability)
//! CHECKPOINT                    durable mode: write a checkpoint now
//! WALSTAT                       durable mode: log/checkpoint positions
//!
//! query := CERTAIN <goal> | POSSIBLE <goal> | <texpr>
//! goal  := <relation> | <relation> "(" arg ("," arg)* ")"
//! arg   := <const> | IDENT                 (IDENT names a free variable)
//! texpr := step (";" step)*
//! step  := tau[<sentence>] | glb | lub | id | project[<relation>, …]
//! fact  := <relation>(<const>, …)        const := NUMBER | 'name'
//! ```
//!
//! ## Goal-directed bound queries
//!
//! The bare form `QUERY CERTAIN path` reads the **stored** facts of a
//! relation.  The bound form `QUERY CERTAIN path('a', x)` instead asks a
//! *goal*: the service re-derives the fixpoint of every registered `τ`
//! rulebase over each world — the same fixpoint `APPLY` would commit —
//! restricted to tuples matching the goal's constants (repeated variables
//! impose equality), and folds the worlds certain/possible as usual.  A
//! bound goal must name an existing relation with its exact arity
//! (`unknown-relation` / `arity-mismatch` otherwise) and never interns new
//! symbols: an unknown constant is a legal empty answer, not an error.
//!
//! Three strategies serve a bound goal, reported as `strategy=` in the
//! wire status line and counted per strategy in the metrics catalogue:
//!
//! * **`magic`** — the rulebase is adorned around the goal's bound/free
//!   pattern and rewritten with magic (demand) predicates
//!   (`kbt_datalog::magic_rewrite`), so the fixpoint only derives facts
//!   the goal can reach.  On a 10k-edge transitive closure a point query
//!   runs in microseconds where materialization takes milliseconds
//!   (`query_point` in `BENCH_engine.json`).
//! * **`tabled`** — answered from the per-epoch subsumptive table
//!   (`kbt_engine::table::SubsumptiveTable`): a memoized call whose bound
//!   positions are a subset of the goal's (agreeing where shared) already
//!   contains every answer; the extra bound columns are filtered
//!   residually.  The table is keyed by packed call patterns, shared by
//!   the whole reader pool, and **evicted atomically on every commit** —
//!   a memoized answer can never survive its epoch, and a reader holding
//!   an older snapshot re-derives rather than polluting the cache
//!   (inserts are dropped unless the snapshot still matches the cache
//!   epoch).
//! * **`materialize`** — the fallback: evaluate the full program (or, with
//!   no rulebase registered, read the stored facts) and filter.  Taken
//!   when the magic rewrite refuses — e.g. a rewrite that would break
//!   stratification — so bound queries are *always* answerable, and
//!   byte-identical to this oracle by construction
//!   (`tests/magic_differential.rs` pins this at widths 1 and 4).
//!
//! `EXPLAIN` on a bound goal renders the adorned magic plan — the seed
//! facts and every guarded/magic rule with `p_bf` / `m_p_bf`-style
//! adorned names — and `PROFILE` evaluates it with the per-rule fixpoint
//! breakdown (bypassing the table: a memo hit profiles nothing).
//!
//! ## The wire protocol
//!
//! [`net`] serves the same command language over TCP (`kbt-serve` /
//! `kbt-shell --connect`), one session per connection, all sessions
//! multiplexed onto one shared [`Service`] — so remote readers get the
//! same `O(1)` epoch snapshots and remote writers the same serialized
//! commit pipeline as in-process callers.  The protocol is plain UTF-8
//! lines, std-only on both ends.
//!
//! **Requests.**  One command per *logical* line: a command ends at the
//! first newline outside a `'…'` quoted constant (quoted constants may
//! contain newlines — the framer treats the next physical line as a
//! continuation), and comment lines (`#` after optional ASCII whitespace)
//! are line-scoped with quotes inert.  [`command::split_lines`] applies
//! exactly the same segmentation to script text, so a script means the
//! same thing locally and over the wire.  Commands may be pipelined:
//! responses come back in order, one per command.  A logical line is
//! capped at [`net::MAX_LINE_BYTES`] (configurable); an overflowing or
//! non-UTF-8 line is unrecoverable mid-stream, so the server answers
//! `ERR line-too-long` / `ERR invalid-utf8` and closes the connection.
//!
//! **Responses.**  Zero or more data lines, each prefixed `= `, then
//! exactly one status line:
//!
//! ```text
//! response := ("= " data "\n")* status "\n"
//! status   := "OK" (" id=" trace)? (" epoch=" N)? (" strategy=" name)?
//!             (" durable=" bool)? (" " key "=" value)*
//!           | "ERR " code " " message (" id=" trace)?
//! ```
//!
//! **Status key order.**  `OK` status keys appear in one fixed order —
//! the trace `id` first, then `epoch`, then `strategy` (bound goals),
//! then `durable` (durable commits), then the command-specific keys —
//! and every status line is produced by the one response builder in
//! [`net::proto`], so clients may parse positionally or by key.  Over
//! the wire the trace `id` is always present; `ERR` lines carry it
//! trailing, after the human-readable message.
//!
//! **Trace IDs.**  Every wire command carries a trace identifier, echoed
//! as the final `id=<trace>` field of its status line.  A client may
//! supply one by prefixing the command with `#id=<token> ` (the `#` lead
//! keeps traced lines inert for parsers that do not know the prefix — and
//! a bare `#id=` with no token stays an ordinary comment); otherwise the
//! server assigns `t1`, `t2`, … from a deterministic per-session
//! sequence.  The same ID is attached to the command's log records — one
//! `event=command` record per wire command (with the verb), plus the `id`
//! field on any `slow_query` record the command produces — so wire
//! traffic, logs and latency histograms correlate per request.
//!
//! Every payload line is escaped (`\` → `\\`, newline → `\n`, CR → `\r`)
//! so one response line is always one physical line.  Snapshot reads and
//! commits name the epoch they speak for in `epoch=N`.  Error codes are
//! stable: the service-level ones come from [`ServiceError::code`]
//! (`parse`, `unknown-transform`, `unknown-relation`, `unknown-constant`,
//! `arity-mismatch`, `script-depth`, `durability-disabled`, `wal-corrupt`,
//! `checkpoint-corrupt`, `epoch-mismatch`, `data`, `logic`, `eval`,
//! `io` — the consolidated table with descriptions is
//! [`error::CODE_TABLE`], exhaustiveness-tested against the enum), and
//! the net layer adds
//! `line-too-long`, `invalid-utf8`, `idle-timeout` (session sat idle past
//! the server's timeout), `unavailable` (all session workers busy —
//! connections beyond [`net::NetConfig::max_sessions`] are refused, not
//! queued unboundedly) and `shutting-down` (graceful stop: `kbt-serve`
//! converts SIGINT/SIGTERM into a drain-and-join).  An `ERR` response
//! never ends the session except for those five net-level conditions.
//!
//! CI's `e2e-net` job replays `examples/net_client_session.kbt` through a
//! live server and diffs the transcript against
//! `tests/golden/net_session.golden`; `tests/net_concurrent.rs` checks
//! concurrent TCP readers against a sequential oracle byte-for-byte.
//!
//! ## Durability
//!
//! An in-memory service loses everything at process exit.  Configuring a
//! [`DurabilityConfig`] (builder: `.durable(dir)`; `kbt-serve
//! --data-dir DIR`) makes commits survive crashes, built from three
//! pieces that all live off the evaluation path:
//!
//! * **Write-ahead log.**  Every committed command appends one record to
//!   an append-only log (`wal.kbtl`) *before* the commit publishes:
//!   `len:u32le crc:u32le epoch:u64le command-utf8`, where the CRC-32
//!   covers the body and the command text is the canonical wire form the
//!   parser itself accepts — the log replays through the ordinary command
//!   pipeline, no second interpreter.  Appends happen under the writer
//!   mutex, so record order **is** epoch order by construction.
//! * **Fsync policy** ([`FsyncPolicy`]).  `Always` fsyncs every commit;
//!   `Never` appends without flushing (the OS decides); `GroupCommit` —
//!   the default — batches concurrent committers under one fsync: a
//!   commit enqueues its appended epoch, one leader flushes the whole
//!   appended tail, and every commit at or below the flushed epoch
//!   returns together.  `N` writers pay ~1 fsync, not `N` (the
//!   `commit_durable` bench enforces ≥2× over per-commit fsync at 4
//!   writers).  Commit responses report the outcome as `durable=true`
//!   (flushed before the reply) or `durable=false` (appended, not yet
//!   flushed); the key is absent on an in-memory service.
//! * **Epoch checkpoints.**  Every `checkpoint_every_n_commits` commits
//!   (or on the `CHECKPOINT` command) the service captures the committed
//!   MVCC snapshot — `O(1)`, copy-on-write, no writer stall — and a
//!   background thread serializes it to `checkpoint-<epoch>.kbtc`
//!   (checksummed, written tmp + fsync + rename, newest two kept).
//!   Checkpoints only bound replay length; the WAL alone is already
//!   complete.
//!
//! **Recovery** ([`Service::open`]) loads the newest valid checkpoint,
//! scans the WAL, and replays the records after the checkpoint epoch
//! through the normal pipeline, verifying each replayed commit produces
//! exactly the epoch its record claims.  A *torn final* record — a crash
//! mid-append: partial bytes or a bad checksum ending exactly at EOF —
//! is truncated away and recovery proceeds; a corrupt *interior* record,
//! or a checkpoint/WAL epoch gap, is damage and refuses to open with the
//! typed `wal-corrupt` / `checkpoint-corrupt` / `epoch-mismatch` errors
//! rather than serve a silently wrong state.  `WALSTAT` reports the log
//! and checkpoint positions (records, bytes, fsyncs, durable epoch).
//! `tests/durability_differential.rs` pins recovery against an in-memory
//! oracle — randomized command streams, crashes at commit boundaries,
//! torn-tail truncation injection, interior corruption — at widths 1
//! and 4, and CI's `e2e-net` job SIGKILLs a durable server mid-session
//! and asserts the restarted one serves the same answers.
//!
//! ## Observability
//!
//! Every serving layer records into `kbt-obs` ([`kbt_obs::Registry`]):
//! each [`Service`] owns a **per-instance** registry (two services never
//! share a counter — essential for tests and embedded use), while the
//! library crates underneath (`kbt-engine`, `kbt-par`) record into the
//! process-global one.  The `METRICS` command merges both and returns a
//! Prometheus-style text exposition, one `= `-prefixed data line per
//! sample over the wire:
//!
//! ```text
//! exposition := family*
//! family     := help? "# TYPE " base-name " " ("counter"|"gauge"|"histogram") "\n" sample*
//! help       := "# HELP " base-name " " description "\n"
//! sample     := series-name " " integer "\n"
//! ```
//!
//! Every series in the catalogue below carries a `# HELP` description
//! (CI's doc-drift gate asserts this against a live scrape).
//!
//! Histograms are 64-bucket log-scale cells; they expand into cumulative
//! `<base>_bucket{le="2^i - 1"}` samples (nanoseconds for `_ns` series), a
//! `+Inf` bucket and `_sum` / `_count` samples.  Counters and byte-size
//! style histograms record **always** (they are deterministic inputs and
//! the truth `STATS` reports); only *timing spans* are gated by the
//! registry's enabled flag — one relaxed load when disabled — and
//! `tests/metrics_differential.rs` proves fixpoints and `EngineStats` stay
//! byte-identical at widths 1 and 4 whether metrics are on or off.
//!
//! The catalogue (CI scrapes a live server and asserts every name below
//! appears — keep this list in sync with [`metrics`]):
//!
//! * `kbt_service_commits_total` (counter): committed epochs.
//! * `kbt_service_applies_total` (counter): `APPLY` commits.
//! * `kbt_service_defines_total` (counter): `DEFINE` commands.
//! * `kbt_service_queries_total` (counter): snapshot reads served.
//! * `kbt_service_queries_magic_total` (counter): bound goals answered
//!   through the magic-set rewrite.
//! * `kbt_service_queries_tabled_total` (counter): bound goals answered
//!   from the subsumptive table.
//! * `kbt_service_queries_materialize_total` (counter): bound goals
//!   answered by full materialization plus a filter.
//! * `kbt_service_snapshots_total` (counter): MVCC snapshots taken.
//! * `kbt_service_epoch` (gauge): the committed epoch.
//! * `kbt_service_held_epochs` (gauge): past epochs still pinned by readers.
//! * `kbt_service_held_epoch_lag` (gauge): age of the oldest pinned epoch.
//! * `kbt_service_commit_parse_ns` (histogram): commit phase — parse.
//! * `kbt_service_commit_apply_ns` (histogram): commit phase — apply/evaluate.
//! * `kbt_service_commit_publish_ns` (histogram): commit phase — publish.
//! * `kbt_service_commit_batch_facts` (histogram): facts per fact commit.
//! * `kbt_service_query_ns` (histogram): textual `QUERY`/`PROFILE`
//!   latency (the slow-query span).
//! * `kbt_service_wal_records_total` (counter): WAL records appended.
//! * `kbt_service_wal_bytes_total` (counter): WAL bytes appended.
//! * `kbt_service_wal_fsyncs_total` (counter): WAL fsyncs issued.
//! * `kbt_service_group_commit_batch` (histogram): commits made durable
//!   per fsync (group-commit batch size).
//! * `kbt_service_checkpoints_total` (counter): checkpoints written.
//! * `kbt_service_recovery_replayed_total` (counter): WAL records
//!   replayed during recovery.
//! * `kbt_net_sessions_accepted_total` (counter): connections accepted.
//! * `kbt_net_sessions_active` (gauge): sessions being served now.
//! * `kbt_net_sessions_rejected_total` (counter): refused at capacity.
//! * `kbt_net_sessions_idle_closed_total` (counter): closed by idle timeout.
//! * `kbt_net_command_ns` (histogram): per-verb wire command latency,
//!   labelled `{verb="nop"|"load"|"assert"|"retract"|"define"|"apply"|
//!   "query"|"stats"|"metrics"|"explain"|"profile"|"checkpoint"|
//!   "walstat"|"error"}` — all pre-registered at server start.
//! * `kbt_net_framing_errors_total` (counter): lines the framer refused.
//! * `kbt_engine_evals_total` (counter): from-scratch fixpoint evaluations.
//! * `kbt_engine_deltas_total` (counter): incremental delta applications.
//! * `kbt_engine_rounds_total` (counter): semi-naive rounds run.
//! * `kbt_engine_derived_facts_total` (counter): facts derived.
//! * `kbt_engine_index_probes_total` (counter): index probes.
//! * `kbt_engine_tuples_scanned_total` (counter): tuples scanned.
//! * `kbt_engine_table_hits` (counter): subsumptive-table lookups answered
//!   from a memoized call.
//! * `kbt_engine_table_misses` (counter): subsumptive-table lookups that
//!   found no memoized call.
//! * `kbt_engine_table_evictions` (counter): memoized calls dropped when
//!   their snapshot was superseded.
//! * `kbt_engine_eval_ns` (histogram): full evaluation latency.
//! * `kbt_engine_round_ns` (histogram): per-round latency.
//! * `kbt_engine_delta_ns` (histogram): per-delta latency.
//! * `kbt_par_scopes_total` (counter): pool scopes entered.
//! * `kbt_par_contended_scopes_total` (counter): scopes that waited.
//! * `kbt_par_workerset_jobs_total` (counter): worker-set jobs admitted.
//! * `kbt_par_workerset_rejected_total` (counter): jobs refused at capacity.
//!
//! **Span taxonomy.**  Timed spans feed the `_ns` histograms above:
//! `eval` / `round` / `delta` (engine), `commit_parse` / `commit_apply` /
//! `commit_publish` (the commit pipeline), `slow_query` (textual queries;
//! carries the query text and, over the wire, the trace `id`), and the
//! per-verb net command spans.  With `kbt-serve --log-format text|json` a
//! structured stderr sink receives session lifecycle events
//! (`session_open` / `session_close`, with the peer address), one
//! `command` event per wire command (with `id` and `verb`) and — with
//! `--slow-query-ms N` — every span at or over the threshold, e.g.
//! `event=slow_query elapsed_ns=12345678 query="QUERY CERTAIN path"
//! id=t7`.  `STATS` and `METRICS` read the same counter cells; neither
//! ever perturbs evaluation results.
//!
//! **EXPLAIN / PROFILE rows.**  Both answer with one data line per plan
//! row.  An `EXPLAIN` row is fully deterministic:
//!
//! ```text
//! s<stratum> <rule> :: <plan>
//! ```
//!
//! where `<rule>` is the source `τ_φ` clause (user vocabulary) and
//! `<plan>` the engine's join-plan rendering (`scan R(…)`,
//! `probe R mask=0b… key=(…)`, `d<rel>:` for delta variants).  A
//! `PROFILE` row inserts the rule's share of the fixpoint work between
//! rule and plan:
//!
//! ```text
//! s<stratum> <rule> | rounds=<n> derived=<n> probes=<n> scanned=<n> elapsed_ns=<n> :: <plan>
//! ```
//!
//! `elapsed_ns` is wall-clock and therefore the only nondeterministic
//! field; it appears in data rows only — status lines (`OK epoch=…
//! rows=…` / `OK epoch=… worlds=… rows=…`) stay deterministic, and
//! profiled evaluation returns byte-identical results, statistics and
//! epochs to its unprofiled twin (`tests/profile_differential.rs` pins
//! this at widths 1 and 4).  Operators without a Datalog rule plan —
//! lattice steps, non-Horn insertions, `CERTAIN`/`POSSIBLE` folds — render
//! a single descriptive row marked `(no rule plan)`.
//!
//! ## Example
//!
//! ```
//! use kbt_service::{Service, ServiceConfig, Response};
//!
//! let s = Service::new(ServiceConfig::builder().threads(1).build());
//! s.execute("ASSERT edge(1, 2), edge(2, 3)").unwrap();
//! s.execute("DEFINE tc := tau[(forall x0 x1. edge(x0, x1) -> path(x0, x1)) & \
//!            (forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2))]").unwrap();
//! s.execute("APPLY tc").unwrap();
//! match s.execute("QUERY CERTAIN path").unwrap() {
//!     Response::Facts { facts, .. } => assert_eq!(facts.len(), 3),
//!     _ => unreachable!(),
//! }
//! ```

pub mod checkpoint;
pub mod command;
pub mod config;
pub mod error;
pub mod metrics;
pub mod net;
pub mod recover;
pub mod service;
pub mod wal;

pub use command::{parse_transform, render_transform, QueryCmd, Verb};
pub use config::{DurabilityConfig, FsyncPolicy, ServiceConfig, ServiceConfigBuilder};
pub use error::{Result, ServiceError};
pub use metrics::{NetMetrics, ServiceMetrics};
pub use net::{Client, LineFramer, NetConfig, NetServer, WireResponse};
pub use service::{
    CommittedState, QueryResult, Response, Service, ServiceStats, SessionCounters, SessionSnapshot,
    Snapshot, StatsReport, TransformInfo,
};
