//! The service itself: MVCC snapshots, the serialized commit pipeline, and
//! the command dispatcher.
//!
//! See the crate docs for the epoch/commit/snapshot contract.  The
//! concurrency structure in one paragraph: the committed state (an epoch
//! number, the knowledgebase, the vocabulary, the transform registry and
//! the cumulative statistics) lives in a [`kbt_data::EpochCell`]; readers
//! take `O(1)` snapshots of it and never block on evaluation work.  All
//! mutation goes through one writer [`Mutex`]: a commit parses/evaluates
//! under that lock against the writer's working state and then atomically
//! publishes the next epoch.  Registered transformations keep a persistent
//! [`ChainSession`] in the writer state, so re-`APPLY`ing one feeds only
//! the *delta* since its previous application into the live engine
//! fixpoint ([`kbt_engine::IncrementalSession`] underneath).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock, PoisonError, Weak};

use kbt_core::{ChainSession, CoreError, EvalStats, RuleProfile, Transform, Transformer};
use kbt_data::{
    Const, Database, EpochCell, EpochId, Knowledgebase, RelId, Relation, Tuple, Versioned,
    Vocabulary,
};
use kbt_datalog::{
    explain_plans, magic_rewrite, program_from_sentence, semi_naive_eval_profiled,
    semi_naive_eval_threads, DatalogError, MagicPlan, Program,
};
use kbt_engine::table::{filter_rows, SubsumptiveTable};
use kbt_logic::Term;
use kbt_obs::{Counter, Gauge, Registry};

use crate::checkpoint::CheckpointManager;
use crate::command::{
    parse_define, parse_fact_list, parse_query, parse_transform, render_fact, render_relation,
    render_transform, split_command, split_lines, QueryCmd, QueryGoal, Verb,
};
use crate::config::ServiceConfig;
use crate::error::{Result, ServiceError};
use crate::metrics::ServiceMetrics;
use crate::recover;
use crate::wal::{Wal, WalMetrics, WAL_FILE};

/// How deep `LOAD`ed scripts may nest before the service assumes a cycle.
const MAX_SCRIPT_DEPTH: usize = 8;

/// Cumulative writer-side counters, published with every epoch (so a
/// snapshot's statistics are consistent with its knowledgebase).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Committed epochs (every successful write command).
    pub commits: u64,
    /// `APPLY` commands among the commits.
    pub applies: u64,
    /// `DEFINE` commands processed.
    pub defines: u64,
    /// Cumulative evaluator statistics over all commits.
    pub eval: EvalStats,
}

/// Shared connection/session counters for a network front serving this
/// service.  The service owns one instance (so `STATS` can always report
/// it — all zeros when no network front is attached) and a server bumps it
/// through [`Service::session_counters`].
///
/// The cells are the service registry's `kbt_net_sessions_*` series —
/// `STATS` and `METRICS` read the **same** storage, never two sets of
/// books that could drift apart.
#[derive(Clone, Debug)]
pub struct SessionCounters {
    /// Connections accepted over the lifetime of the process
    /// (`kbt_net_sessions_accepted_total`).
    pub accepted: Counter,
    /// Sessions currently being served (`kbt_net_sessions_active`).
    pub active: Gauge,
    /// Connections refused because the session workers were at capacity
    /// (`kbt_net_sessions_rejected_total`).
    pub rejected: Counter,
    /// Sessions closed by the idle timeout
    /// (`kbt_net_sessions_idle_closed_total`).
    pub idle_closed: Counter,
}

impl SessionCounters {
    fn register(registry: &Registry) -> Self {
        SessionCounters {
            accepted: registry.counter("kbt_net_sessions_accepted_total"),
            active: registry.gauge("kbt_net_sessions_active"),
            rejected: registry.counter("kbt_net_sessions_rejected_total"),
            idle_closed: registry.counter("kbt_net_sessions_idle_closed_total"),
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            accepted: self.accepted.get(),
            active: self.active.get(),
            rejected: self.rejected.get(),
            idle_closed: self.idle_closed.get(),
        }
    }
}

/// A point-in-time copy of [`SessionCounters`], carried by [`StatsReport`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SessionSnapshot {
    /// Connections accepted.
    pub accepted: u64,
    /// Sessions currently active.
    pub active: u64,
    /// Connections rejected at capacity.
    pub rejected: u64,
    /// Sessions closed idle.
    pub idle_closed: u64,
}

/// Registry metadata for one `DEFINE`d transformation, published with the
/// committed state (the live [`ChainSession`] stays writer-private).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransformInfo {
    /// The canonical wire-format rendering of the expression (shared:
    /// registry refreshes bump a pointer, they do not re-allocate texts).
    pub text: Arc<str>,
    /// How many times it has been `APPLY`ed.
    pub applications: u64,
}

/// One committed version of the service state.
#[derive(Clone, Debug)]
pub struct CommittedState {
    /// The knowledgebase — the set of possible worlds being served.
    pub kb: Knowledgebase,
    /// The name registry the knowledgebase and transformations speak.
    /// Shared behind an `Arc`: commits that intern no new names publish
    /// it in `O(1)` instead of re-cloning every registered string.
    pub vocab: Arc<Vocabulary>,
    /// Registered transformations (metadata only).  Shared behind an `Arc`
    /// so fact commits — which cannot change the registry — publish it in
    /// `O(1)` instead of re-cloning every wire-text string.
    pub transforms: Arc<BTreeMap<String, TransformInfo>>,
    /// Cumulative statistics as of this epoch.
    pub stats: ServiceStats,
}

/// An immutable `O(1)` snapshot of the committed state at some epoch.
#[derive(Clone, Debug)]
pub struct Snapshot {
    inner: Arc<Versioned<CommittedState>>,
}

impl Snapshot {
    /// The epoch this snapshot observes.
    pub fn epoch(&self) -> EpochId {
        self.inner.epoch()
    }

    /// The knowledgebase at this epoch.
    pub fn kb(&self) -> &Knowledgebase {
        &self.inner.value().kb
    }

    /// The vocabulary at this epoch.
    pub fn vocab(&self) -> &Vocabulary {
        self.inner.value().vocab.as_ref()
    }

    /// The transform registry metadata at this epoch.
    pub fn transforms(&self) -> &BTreeMap<String, TransformInfo> {
        self.inner.value().transforms.as_ref()
    }

    /// The cumulative statistics as of this epoch.
    pub fn stats(&self) -> &ServiceStats {
        &self.inner.value().stats
    }
}

/// Writer-private state: the working copies a commit mutates before
/// publishing.
struct Writer {
    kb: Knowledgebase,
    vocab: Arc<Vocabulary>,
    transforms: BTreeMap<String, Registered>,
    /// The published registry view, rebuilt only when the registry changes
    /// (`DEFINE` / `APPLY`); fact commits publish the `Arc` as-is.
    transforms_meta: Arc<BTreeMap<String, TransformInfo>>,
    stats: ServiceStats,
}

impl Writer {
    /// Rebuilds the published metadata view from the live registry.
    fn refresh_transforms_meta(&mut self) {
        self.transforms_meta = Arc::new(
            self.transforms
                .iter()
                .map(|(name, reg)| {
                    (
                        name.clone(),
                        TransformInfo {
                            text: reg.text.clone(),
                            applications: reg.applications,
                        },
                    )
                })
                .collect(),
        );
    }
}

struct Registered {
    transform: Transform,
    text: Arc<str>,
    /// Persistent incremental engine state, advanced per `APPLY`.
    chain: Option<ChainSession>,
    applications: u64,
}

/// The result of a read-only `QUERY` over a transformation expression.
#[derive(Clone, Debug)]
pub struct QueryResult {
    /// The epoch the query evaluated against.
    pub epoch: EpochId,
    /// The resulting knowledgebase.
    pub kb: Knowledgebase,
    /// Evaluator statistics for this query.
    pub stats: EvalStats,
}

/// The response to one command (see [`Service::execute`]); renders
/// human-readably through `Display`.
#[derive(Clone, Debug)]
pub enum Response {
    /// A blank line or comment.
    Ok,
    /// A fact commit went through.
    Committed {
        /// The newly published epoch.
        epoch: EpochId,
        /// Possible worlds after the commit.
        worlds: usize,
        /// Total facts across all worlds after the commit.
        facts: usize,
        /// Whether the commit was flushed to stable storage before this
        /// response: `Some(true)` under `always`/`group-commit`,
        /// `Some(false)` under `never`, `None` without durability.
        durable: Option<bool>,
    },
    /// A transformation was registered.
    Defined {
        /// The published epoch carrying the updated registry.
        epoch: EpochId,
        /// The registered name.
        name: String,
        /// The canonical wire-format text.
        text: String,
        /// Durability of the commit (see [`Response::Committed::durable`]).
        durable: Option<bool>,
    },
    /// A named transformation was applied and committed.
    Applied {
        /// The newly published epoch.
        epoch: EpochId,
        /// The applied name.
        name: String,
        /// Possible worlds after the commit.
        worlds: usize,
        /// Total facts across all worlds after the commit.
        facts: usize,
        /// Facts the persistent chain reused from the previous application.
        reused_facts: usize,
        /// Durability of the commit (see [`Response::Committed::durable`]).
        durable: Option<bool>,
    },
    /// A `QUERY <texpr>` result: the rendered worlds.
    Worlds {
        /// The epoch the query evaluated against.
        epoch: EpochId,
        /// One entry per world: the rendered facts, in canonical order.
        worlds: Vec<Vec<String>>,
    },
    /// A `QUERY CERTAIN/POSSIBLE` result.
    Facts {
        /// The epoch the query evaluated against.
        epoch: EpochId,
        /// `"certain"` or `"possible"`.
        kind: &'static str,
        /// The queried relation's surface name.
        relation: String,
        /// The rendered facts, in canonical order.
        facts: Vec<String>,
        /// How a *bound* goal was answered (`"magic"`, `"tabled"` or
        /// `"materialize"`); `None` for the bare all-facts form.
        strategy: Option<&'static str>,
    },
    /// An `EXPLAIN <query>` result: the rendered evaluation plan, nothing
    /// evaluated.
    Explain {
        /// The epoch the plan was rendered against.
        epoch: EpochId,
        /// One rendered line per plan row (see the crate-level
        /// *Observability* section for the row format).
        rows: Vec<String>,
    },
    /// A `PROFILE <query>` result: the query ran to completion and every
    /// rule of its fixpoints reports its share of the work.
    Profile {
        /// The epoch the query evaluated against.
        epoch: EpochId,
        /// Possible worlds in the query result.
        worlds: usize,
        /// One rendered line per profiled rule (see the crate-level
        /// *Observability* section for the row format).
        rows: Vec<String>,
    },
    /// A `STATS` report.
    Stats(StatsReport),
    /// A `METRICS` scrape: the text exposition of every metric.
    Metrics {
        /// The committed epoch at scrape time.
        epoch: EpochId,
        /// The Prometheus-style exposition ([`Service::metrics_text`]).
        text: String,
    },
    /// A script ran to completion.
    Loaded {
        /// Commands executed (nops included).
        commands: usize,
    },
    /// A `CHECKPOINT` command wrote an epoch snapshot.
    Checkpointed {
        /// The epoch the checkpoint captured.
        epoch: EpochId,
        /// The checkpoint file name inside the data directory.
        file: String,
    },
    /// A `WALSTAT` report: write-ahead-log state.
    WalStat {
        /// The committed epoch at report time.
        epoch: EpochId,
        /// The configured fsync policy (`always`/`group-commit`/`never`).
        policy: &'static str,
        /// Records appended over the log's lifetime.
        records: u64,
        /// Bytes appended over the log's lifetime.
        bytes: u64,
        /// Fsyncs issued over the log's lifetime.
        fsyncs: u64,
        /// Highest epoch known flushed to stable storage.
        durable_epoch: u64,
        /// Epoch of the newest checkpoint (0 = none yet).
        checkpoint_epoch: u64,
    },
}

/// The `STATS` payload.
#[derive(Clone, Debug)]
pub struct StatsReport {
    /// The committed epoch the report describes.
    pub epoch: EpochId,
    /// Possible worlds at that epoch.
    pub worlds: usize,
    /// Total facts across all worlds.
    pub facts: usize,
    /// The explicit evaluation width the service runs at.
    pub threads: usize,
    /// Queries served so far (process lifetime, all epochs).
    pub queries: u64,
    /// Registered transformations: `(name, wire text, applications)`.
    pub transforms: Vec<(String, String, u64)>,
    /// Writer-side cumulative counters as of the epoch.
    pub stats: ServiceStats,
    /// Connection/session counters of the attached network front (all
    /// zeros when the service is used in-process only).
    pub sessions: SessionSnapshot,
    /// Epochs with outstanding snapshot holders, as `(epoch, holders)` —
    /// the report's own snapshot and the cell's reference to the current
    /// epoch are excluded, so an entry means a *reader* is genuinely
    /// holding that version alive.  A racy gauge by nature (snapshots come
    /// and go concurrently), which is all eviction/GC planning needs.
    pub held_epochs: Vec<(u64, u64)>,
}

/// Per-epoch goal-directed query state: the rulebase assembled from the
/// snapshot's transform registry (built lazily, once per epoch) and the
/// subsumptive answer table.  The whole cache is evicted when a new epoch
/// publishes — the table memoizes answers over one immutable snapshot, so
/// staleness is impossible by construction.
struct QueryCache {
    /// The epoch the cached state speaks for.
    epoch: EpochId,
    /// The assembled rulebase: `None` until first needed, `Some(None)` when
    /// the registry defines no Horn rules at all.
    rulebase: Option<Option<Arc<Program>>>,
    /// Memoized goal answers over this epoch's snapshot (tag 0 = certain,
    /// tag 1 = possible).
    table: SubsumptiveTable,
}

/// The durability machinery of one durable service: the open write-ahead
/// log and the checkpoint scheduler.  Installed **after** recovery replay
/// ([`Service::open`]), so replayed commands never re-append to the log
/// they are being read from.
struct DurabilityState {
    wal: Wal,
    checkpoints: CheckpointManager,
}

/// A concurrent, multi-session knowledgebase service (see crate docs).
pub struct Service {
    config: ServiceConfig,
    committed: EpochCell<CommittedState>,
    writer: Mutex<Writer>,
    /// Goal-directed query state, shared across the reader pool.  Readers
    /// hold the lock only to consult/update the memo — evaluation runs
    /// unlocked — so a long derivation never blocks the commit pipeline.
    query_cache: Mutex<QueryCache>,
    /// Per-instance metric handles (and the registry they live in) — see
    /// the crate-level *Observability* section for the catalogue.
    metrics: ServiceMetrics,
    /// Session counters a network front bumps (zeros otherwise).
    sessions: Arc<SessionCounters>,
    /// Weak handles to every published version still alive somewhere:
    /// `STATS` derives per-epoch snapshot holder counts from the strong
    /// counts.  Pruned on every publish, so it holds at most one entry per
    /// epoch a reader is still pinning (plus the current one).
    holders: Mutex<Vec<(EpochId, Weak<Versioned<CommittedState>>)>>,
    /// Durability, when configured — empty until [`Service::open`] finishes
    /// recovery replay, and always empty for [`Service::new`] services.
    durability: OnceLock<Arc<DurabilityState>>,
}

impl Default for Service {
    fn default() -> Self {
        Service::new(ServiceConfig::default())
    }
}

impl Service {
    /// A service over the initial knowledgebase `{∅}` — one empty world —
    /// at [`EpochId::ZERO`].  Any durability in `config` is **ignored**
    /// here: the durable entry point is [`Service::open`], which must be
    /// fallible (it touches the filesystem and replays the log).
    pub fn new(config: ServiceConfig) -> Self {
        Service::from_parts(
            config,
            EpochId::ZERO,
            Knowledgebase::singleton(Database::new()),
            Arc::new(Vocabulary::new()),
            BTreeMap::new(),
            ServiceStats::default(),
        )
    }

    /// Assembles a service around an arbitrary committed state — the shared
    /// constructor behind [`Service::new`] (the empty state at epoch zero)
    /// and [`Service::open`] (a checkpoint-recovered state).
    fn from_parts(
        config: ServiceConfig,
        epoch: EpochId,
        kb: Knowledgebase,
        vocab: Arc<Vocabulary>,
        transforms: BTreeMap<String, Registered>,
        stats: ServiceStats,
    ) -> Self {
        // Touch the library-level registries eagerly: every engine/par
        // series must exist from the first scrape, not the first fixpoint.
        kbt_engine::metrics();
        kbt_par::metrics();
        let metrics = ServiceMetrics::register(Registry::new());
        metrics.registry.set_enabled(config.metrics_timing);
        let sessions = Arc::new(SessionCounters::register(&metrics.registry));
        let mut writer = Writer {
            kb: kb.clone(),
            vocab: vocab.clone(),
            transforms,
            transforms_meta: Arc::new(BTreeMap::new()),
            stats,
        };
        writer.refresh_transforms_meta();
        let committed = EpochCell::at(
            epoch,
            CommittedState {
                kb,
                vocab,
                transforms: writer.transforms_meta.clone(),
                stats,
            },
        );
        metrics.epoch.set(epoch.get());
        metrics.commits_total.set(stats.commits);
        metrics.applies_total.set(stats.applies);
        metrics.defines_total.set(stats.defines);
        let holders = Mutex::new(vec![(epoch, Arc::downgrade(&committed.load()))]);
        Service {
            config,
            committed,
            writer: Mutex::new(writer),
            query_cache: Mutex::new(QueryCache {
                epoch,
                rulebase: None,
                table: SubsumptiveTable::new(),
            }),
            metrics,
            sessions,
            holders,
            durability: OnceLock::new(),
        }
    }

    /// Opens a service with the durability described by `config`: loads the
    /// newest valid checkpoint, replays the write-ahead-log tail through
    /// the normal commit pipeline, truncates a torn final record, and
    /// starts logging new commits.  Without a [`crate::DurabilityConfig`]
    /// this is [`Service::new`] (and always succeeds).
    ///
    /// Refuses — with a typed error, never a silent partial state — on a
    /// corrupt checkpoint, a corrupt *interior* WAL record, or any epoch
    /// disagreement between the checkpoint and the log (see the crate-level
    /// *Durability* section).
    pub fn open(config: ServiceConfig) -> Result<Self> {
        let Some(dur_config) = config.durability.clone() else {
            return Ok(Service::new(config));
        };
        let plan = recover::plan(&dur_config.data_dir)?;
        let checkpoint_epoch = plan.checkpoint.as_ref().map_or(0, |c| c.epoch);
        let service =
            match plan.checkpoint {
                None => Service::new(config),
                Some(data) => {
                    let vocab = Arc::new(data.vocab);
                    let mut transforms = BTreeMap::new();
                    for (name, applications, text) in data.transforms {
                        // the text was rendered from this vocabulary, so
                        // re-parsing interns nothing — failure means the file
                        // lies about its own vocabulary
                        let transform = parse_transform(&text, &mut vocab.as_ref().clone())
                            .map_err(|e| ServiceError::CheckpointCorrupt {
                                path: crate::checkpoint::checkpoint_file_name(data.epoch),
                                detail: format!("transform {name:?} does not re-parse: {e}"),
                            })?;
                        transforms.insert(
                            name,
                            Registered {
                                transform,
                                text: text.into(),
                                chain: None,
                                applications,
                            },
                        );
                    }
                    let kb = Knowledgebase::from_databases(data.worlds)?;
                    Service::from_parts(
                        config,
                        EpochId::new(data.epoch),
                        kb,
                        vocab,
                        transforms,
                        data.stats,
                    )
                }
            };
        // Replay the tail through the normal pipeline.  Durability is not
        // installed yet, so nothing re-appends to the log; each command
        // must commit exactly the epoch its record claims.
        for record in &plan.tail {
            let response = service.execute(&record.command)?;
            let produced = commit_epoch(&response).ok_or_else(|| ServiceError::WalCorrupt {
                offset: 0,
                detail: format!(
                    "replayed record e{} is not a write command: {:?}",
                    record.epoch, record.command
                ),
            })?;
            if produced.get() != record.epoch {
                return Err(ServiceError::EpochMismatch {
                    expected: record.epoch,
                    found: produced.get(),
                });
            }
            service.metrics.recovery_replayed_total.inc();
        }
        let wal = Wal::open(
            dur_config.data_dir.join(WAL_FILE),
            dur_config.fsync_policy.clone(),
            plan.wal_valid_len,
            service.epoch().get(),
            WalMetrics {
                records_total: service.metrics.wal_records_total.clone(),
                bytes_total: service.metrics.wal_bytes_total.clone(),
                fsyncs_total: service.metrics.wal_fsyncs_total.clone(),
                batch: service.metrics.group_commit_batch.clone(),
            },
        )?;
        let checkpoints = CheckpointManager::new(
            dur_config.data_dir.clone(),
            dur_config.checkpoint_every_n_commits,
            checkpoint_epoch,
            service.metrics.checkpoints_total.clone(),
        );
        let installed = service
            .durability
            .set(Arc::new(DurabilityState { wal, checkpoints }))
            .is_ok();
        debug_assert!(installed, "open() owns the only handle before here");
        Ok(service)
    }

    /// The session counters a network front attached to this service
    /// updates; `STATS` reports them (all zeros without a network front).
    pub fn session_counters(&self) -> Arc<SessionCounters> {
        self.sessions.clone()
    }

    /// This service's metric handles (per-instance — two services never
    /// share a counter).
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }

    /// The per-instance observability registry: the network front
    /// registers its series here, hosts install log sinks / slow-span
    /// thresholds here, and `METRICS` scrapes it (merged with
    /// [`kbt_obs::Registry::global`], where the library crates record).
    pub fn obs_registry(&self) -> &Registry {
        &self.metrics.registry
    }

    /// The configuration in use.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// An `O(1)` MVCC snapshot of the committed state.
    pub fn snapshot(&self) -> Snapshot {
        self.metrics.snapshots_total.inc();
        Snapshot {
            inner: self.committed.load(),
        }
    }

    /// The currently committed epoch.
    pub fn epoch(&self) -> EpochId {
        self.committed.epoch()
    }

    /// Parses and executes one command line (see the grammar in
    /// [`crate::command`]).  Write commands serialize on the commit
    /// pipeline; `QUERY`/`STATS` run against a snapshot without blocking
    /// writers.
    pub fn execute(&self, line: &str) -> Result<Response> {
        self.execute_traced(line, None)
    }

    /// [`Self::execute`] with a trace identifier attached: slow-query log
    /// records carry it as an `id` field, so a wire front's per-command
    /// trace IDs correlate with the log stream (see the crate-level
    /// *Observability* section).  `execute` is `execute_traced(line, None)`.
    pub fn execute_traced(&self, line: &str, trace: Option<&str>) -> Result<Response> {
        self.execute_at_depth(line, 0, trace)
    }

    /// Executes a whole script (one command per line), stopping at the
    /// first error.
    pub fn execute_script(&self, text: &str) -> Result<Vec<Response>> {
        self.script_at_depth(text, 0)
    }

    fn execute_at_depth(&self, line: &str, depth: usize, trace: Option<&str>) -> Result<Response> {
        let (verb, rest) = split_command(line)?;
        match verb {
            Verb::Nop => Ok(Response::Ok),
            Verb::Stats => Ok(Response::Stats(self.stats_report())),
            Verb::Metrics => Ok(Response::Metrics {
                epoch: self.epoch(),
                text: self.metrics_text(),
            }),
            Verb::Query => self.query_text(rest, trace),
            Verb::Explain => self.explain_text(rest),
            Verb::Profile => self.profile_text(rest, trace),
            Verb::Load => self.load(rest, depth),
            Verb::Checkpoint => self.checkpoint_now(),
            Verb::Walstat => self.walstat(),
            Verb::Assert | Verb::Retract | Verb::Define | Verb::Apply => {
                self.write_command(verb, rest)
            }
        }
    }

    fn script_at_depth(&self, text: &str, depth: usize) -> Result<Vec<Response>> {
        // logical lines, not physical ones: a quoted constant may contain
        // a newline, and the net framer segments its byte stream the same
        // way — scripts mean the same thing locally and over the wire
        split_lines(text)
            .into_iter()
            .map(|line| self.execute_at_depth(line, depth, None))
            .collect()
    }

    fn load(&self, rest: &str, depth: usize) -> Result<Response> {
        if depth >= MAX_SCRIPT_DEPTH {
            return Err(ServiceError::ScriptDepth(MAX_SCRIPT_DEPTH));
        }
        let path = rest.trim();
        if path.is_empty() {
            return Err(ServiceError::Parse {
                message: "expected LOAD <path>".to_string(),
            });
        }
        let text = std::fs::read_to_string(path)?;
        let responses = self.script_at_depth(&text, depth + 1)?;
        Ok(Response::Loaded {
            commands: responses.len(),
        })
    }

    // ------------------------------------------------------------------
    // Write path: the serialized commit pipeline.
    // ------------------------------------------------------------------

    fn lock_writer(&self) -> std::sync::MutexGuard<'_, Writer> {
        self.writer.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_query_cache(&self) -> std::sync::MutexGuard<'_, QueryCache> {
        self.query_cache
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Publishes the writer's current state as the next epoch and registers
    /// it in the holder registry (pruning versions nobody holds anymore).
    fn publish(&self, w: &Writer) -> EpochId {
        let _span = self.metrics.commit_publish_ns.span();
        let epoch = self.committed.publish(CommittedState {
            kb: w.kb.clone(),
            vocab: w.vocab.clone(),
            transforms: w.transforms_meta.clone(),
            stats: w.stats,
        });
        // The goal-directed cache memoizes answers over the *previous*
        // snapshot: evict it before anyone can read against the new epoch.
        {
            let mut cache = self.lock_query_cache();
            cache.table.evict();
            cache.rulebase = None;
            cache.epoch = epoch;
        }
        // Publishes serialize on the writer lock, so this load observes the
        // version published one line above.
        let current = self.committed.load();
        let mut reg = self.holders.lock().unwrap_or_else(PoisonError::into_inner);
        reg.retain(|(_, weak)| weak.strong_count() > 0);
        reg.push((epoch, Arc::downgrade(&current)));
        // Mirror the writer's cumulative totals into the registry — the
        // writer stats stay the single source of truth (they are published
        // with the epoch); the counters are a read-only reflection.
        self.metrics.commits_total.set(w.stats.commits);
        self.metrics.applies_total.set(w.stats.applies);
        self.metrics.defines_total.set(w.stats.defines);
        self.metrics.epoch.set(epoch.get());
        Self::refresh_holder_gauges(&self.metrics, &reg, epoch);
        epoch
    }

    /// Recomputes the epoch-holder gauges from the (already pruned) holder
    /// registry: how many **past** epochs readers still pin, and how far
    /// behind the oldest of them is.
    fn refresh_holder_gauges(
        metrics: &ServiceMetrics,
        reg: &[(EpochId, Weak<Versioned<CommittedState>>)],
        current: EpochId,
    ) {
        let pinned = reg
            .iter()
            .filter(|(epoch, weak)| *epoch != current && weak.strong_count() > 0);
        let (mut held, mut oldest) = (0u64, None::<u64>);
        for (epoch, _) in pinned {
            held += 1;
            oldest = Some(oldest.map_or(epoch.get(), |o: u64| o.min(epoch.get())));
        }
        metrics.held_epochs.set(held);
        metrics
            .held_epoch_lag
            .set(oldest.map_or(0, |o| current.get().saturating_sub(o)));
    }

    /// Appends `command` to the WAL as the record of the epoch the writer
    /// is about to publish.  A no-op without durability — which includes
    /// recovery replay, where durability is installed only *after* the
    /// tail has been replayed (so a replayed command never re-appends to
    /// the log it came from).  Must run under the writer lock: the lock
    /// pins the next epoch to `committed + 1` and makes record order equal
    /// epoch order.
    fn wal_append(&self, command: &str) -> Result<()> {
        if let Some(dur) = self.durability.get() {
            dur.wal
                .append(self.committed.epoch().next().get(), command)?;
        }
        Ok(())
    }

    /// The post-publish durability step, run *outside* the writer lock so
    /// fsync waits never serialize unrelated commits: waits until the
    /// commit's WAL record is durable per the fsync policy, stamps the
    /// response's `durable` field, and hands the committed state to the
    /// checkpoint scheduler when the interval has elapsed.
    fn finish_commit(&self, response: &mut Response) -> Result<()> {
        let Some(dur) = self.durability.get() else {
            return Ok(());
        };
        let (epoch, durable) = match response {
            Response::Committed { epoch, durable, .. }
            | Response::Defined { epoch, durable, .. }
            | Response::Applied { epoch, durable, .. } => (*epoch, durable),
            _ => return Ok(()),
        };
        *durable = Some(dur.wal.sync(epoch.get())?);
        if dur.checkpoints.note_commit() {
            // re-load rather than reuse: another commit may have published
            // since we dropped the writer lock, and the scheduler needs an
            // (epoch, state) pair that actually belong together
            let snap = self.committed.load();
            dur.checkpoints
                .trigger(snap.epoch().get(), snap.value().clone());
        }
        Ok(())
    }

    /// `CHECKPOINT`: synchronously writes an epoch snapshot of the current
    /// committed state into the data directory.
    fn checkpoint_now(&self) -> Result<Response> {
        let dur = self
            .durability
            .get()
            .ok_or(ServiceError::DurabilityDisabled)?;
        let snap = self.committed.load();
        let file = dur
            .checkpoints
            .write_now(snap.epoch().get(), snap.value())?;
        Ok(Response::Checkpointed {
            epoch: snap.epoch(),
            file,
        })
    }

    /// `WALSTAT`: reports the write-ahead log's point-in-time counters.
    fn walstat(&self) -> Result<Response> {
        let dur = self
            .durability
            .get()
            .ok_or(ServiceError::DurabilityDisabled)?;
        let stat = dur.wal.stat();
        Ok(Response::WalStat {
            epoch: self.epoch(),
            policy: dur.wal.policy().name(),
            records: stat.records,
            bytes: stat.bytes,
            fsyncs: stat.fsyncs,
            durable_epoch: stat.durable_epoch,
            checkpoint_epoch: dur.checkpoints.last_epoch(),
        })
    }

    fn write_command(&self, verb: Verb, rest: &str) -> Result<Response> {
        let mut response = {
            let mut w = self.lock_writer();
            // Parse against a *scratch copy* of the authoritative
            // vocabulary: a rejected command must leave no trace, and
            // interning is only adopted once the whole commit has
            // succeeded.  (A failed `ASSERT ghost(x)` must not make a
            // later `QUERY CERTAIN ghost` resolve.)
            let mut vocab = w.vocab.as_ref().clone();
            match verb {
                Verb::Assert => {
                    let facts = {
                        let _parse = self.metrics.commit_parse_ns.span();
                        parse_fact_list(rest, &mut vocab)?
                    };
                    self.commit_facts(&mut w, vocab, &facts, true)
                }
                Verb::Retract => {
                    let facts = {
                        let _parse = self.metrics.commit_parse_ns.span();
                        parse_fact_list(rest, &mut vocab)?
                    };
                    // A RETRACT must not *introduce* names: a relation or named
                    // constant first seen here cannot match any stored fact, so
                    // the command is a guaranteed no-op — almost certainly a
                    // typo — and silently committing it (and publishing the
                    // bogus name) would mask the mistake forever.
                    for (rel, _) in &facts {
                        if rel.index() as usize >= w.vocab.relation_count() {
                            return Err(ServiceError::UnknownRelation(
                                vocab.relation_name(*rel).unwrap_or_default().to_string(),
                            ));
                        }
                    }
                    if vocab.constant_count() > w.vocab.constant_count() {
                        let first_new = kbt_data::Const::new(w.vocab.constant_count() as u32);
                        return Err(ServiceError::UnknownConstant(
                            vocab
                                .constant_name(first_new)
                                .unwrap_or_default()
                                .to_string(),
                        ));
                    }
                    self.commit_facts(&mut w, vocab, &facts, false)
                }
                Verb::Define => {
                    let (name, transform) = {
                        let _parse = self.metrics.commit_parse_ns.span();
                        parse_define(rest, &mut vocab)?
                    };
                    let text: Arc<str> = render_transform(&transform, &vocab).into();
                    // log the *canonical* rendering, not the user's spelling:
                    // replay must re-intern names in exactly this order
                    self.wal_append(&format!("DEFINE {name} := {text}"))?;
                    w.vocab = Arc::new(vocab);
                    // Re-registration under an existing name replaces the
                    // expression and drops the stale chain session.
                    w.transforms.insert(
                        name.clone(),
                        Registered {
                            transform,
                            text: text.clone(),
                            chain: None,
                            applications: 0,
                        },
                    );
                    w.refresh_transforms_meta();
                    w.stats.defines += 1;
                    w.stats.commits += 1;
                    let epoch = self.publish(&w);
                    Ok(Response::Defined {
                        epoch,
                        name,
                        text: text.to_string(),
                        durable: None,
                    })
                }
                Verb::Apply => self.apply_named(&mut w, rest.trim()),
                _ => unreachable!("write_command only receives write verbs"),
            }
            // the writer guard drops here: durability waits below never
            // block the next commit's evaluation work
        }?;
        self.finish_commit(&mut response)?;
        Ok(response)
    }

    /// Applies ground fact deltas to every possible world — the
    /// Winslett-exact fast path for `τ` of a conjunction of ground
    /// positive literals (`ASSERT`) or their retraction (`RETRACT`).
    fn commit_facts(
        &self,
        w: &mut Writer,
        vocab: Vocabulary,
        facts: &[(RelId, kbt_data::Tuple)],
        insert: bool,
    ) -> Result<Response> {
        // batch size is a deterministic input, so it records regardless of
        // the timing toggle (like every counter)
        self.metrics.commit_batch_facts.record(facts.len() as u64);
        let apply_span = self.metrics.commit_apply_ns.span();
        let mut worlds = Vec::with_capacity(w.kb.len());
        for db in w.kb.iter() {
            let mut db = db.clone();
            for (rel, t) in facts {
                if insert {
                    db.insert_fact(*rel, t.clone())?;
                } else {
                    db.remove_fact(*rel, t);
                }
            }
            worlds.push(db);
        }
        // worlds that differed only in the changed facts may collapse
        let kb = Knowledgebase::from_databases(worlds)?;
        drop(apply_span);
        // every fallible step is behind us: log the commit (canonical
        // rendering against the scratch vocabulary, which has every name
        // this command interned), then adopt the state
        let rendered: Vec<String> = facts
            .iter()
            .map(|(rel, t)| render_fact(*rel, t.components(), &vocab))
            .collect();
        let verb = if insert { "ASSERT" } else { "RETRACT" };
        self.wal_append(&format!("{verb} {}", rendered.join(", ")))?;
        // only allocate a new shared vocabulary handle when this command
        // actually interned something (interning is append-only, so equal
        // counts mean identical content)
        if vocab.relation_count() != w.vocab.relation_count()
            || vocab.constant_count() != w.vocab.constant_count()
        {
            w.vocab = Arc::new(vocab);
        }
        w.kb = kb;
        w.stats.commits += 1;
        let epoch = self.publish(w);
        Ok(Response::Committed {
            epoch,
            worlds: w.kb.len(),
            facts: total_facts(&w.kb),
            durable: None,
        })
    }

    fn apply_named(&self, w: &mut Writer, name: &str) -> Result<Response> {
        let Some(reg) = w.transforms.get_mut(name) else {
            return Err(ServiceError::UnknownTransform(name.to_string()));
        };
        let transform = reg.transform.clone();
        // take the persistent chain out so the registry borrow can end
        // while the evaluator borrows the writer's knowledgebase
        let mut chain = reg.chain.take();
        let transformer = Transformer::with_options(self.config.eval_options());
        let apply_span = self.metrics.commit_apply_ns.span();
        let result = transformer.apply_with_chain(&transform, &w.kb, &mut chain);
        drop(apply_span);
        let reg = w.transforms.get_mut(name).expect("present above");
        reg.chain = chain;
        let result = result?;
        if let Err(e) = self.wal_append(&format!("APPLY {name}")) {
            // the chain session already consumed this application's delta;
            // restoring it against an *unpublished* commit would desync it
            // from the committed knowledgebase — drop it and rebuild fresh
            // on the next successful APPLY
            reg.chain = None;
            return Err(e);
        }
        reg.applications += 1;
        w.refresh_transforms_meta();
        w.kb = result.kb;
        w.stats.applies += 1;
        w.stats.commits += 1;
        w.stats.eval.absorb(&result.stats);
        let epoch = self.publish(w);
        Ok(Response::Applied {
            epoch,
            name: name.to_string(),
            worlds: w.kb.len(),
            facts: total_facts(&w.kb),
            reused_facts: result.stats.reused_facts,
            durable: None,
        })
    }

    // ------------------------------------------------------------------
    // Read path: snapshot queries, never touching the writer lock.
    // ------------------------------------------------------------------

    /// Evaluates a transformation expression read-only against the current
    /// snapshot (the typed counterpart of `QUERY <texpr>`).
    pub fn query(&self, transform: &Transform) -> Result<QueryResult> {
        let snap = self.snapshot();
        self.query_on(&snap, transform)
    }

    /// Evaluates a transformation expression read-only against a specific
    /// snapshot.
    pub fn query_on(&self, snap: &Snapshot, transform: &Transform) -> Result<QueryResult> {
        self.metrics.queries_total.inc();
        let transformer = Transformer::with_options(self.config.eval_options());
        let result = transformer.apply(transform, snap.kb())?;
        Ok(QueryResult {
            epoch: snap.epoch(),
            kb: result.kb,
            stats: result.stats,
        })
    }

    /// The facts of `rel` holding in **every** world of the snapshot.
    pub fn certain(&self, snap: &Snapshot, rel: RelId) -> Relation {
        self.metrics.queries_total.inc();
        fold_relation(snap.kb(), rel, |a, b| {
            a.intersection(b).expect("one schema per knowledgebase")
        })
    }

    /// The facts of `rel` holding in **at least one** world of the
    /// snapshot.
    pub fn possible(&self, snap: &Snapshot, rel: RelId) -> Relation {
        self.metrics.queries_total.inc();
        fold_relation(snap.kb(), rel, |a, b| {
            a.union(b).expect("one schema per knowledgebase")
        })
    }

    /// Builds the `Response::Facts` for a `CERTAIN`/`POSSIBLE` goal: the
    /// bare form folds the stored relation as ever (no strategy); the bound
    /// form goes through the goal-directed planner and reports which
    /// strategy answered it.
    fn goal_response(
        &self,
        snap: &Snapshot,
        vocab: &Vocabulary,
        goal: &QueryGoal,
        certain: bool,
    ) -> Result<Response> {
        let kind = if certain { "certain" } else { "possible" };
        let (facts, strategy) = match &goal.terms {
            None => {
                let facts = if certain {
                    self.certain(snap, goal.rel)
                } else {
                    self.possible(snap, goal.rel)
                };
                (facts, None)
            }
            Some(terms) => {
                let (facts, strategy) = self.query_goal(snap, vocab, goal.rel, terms, certain)?;
                (facts, Some(strategy))
            }
        };
        Ok(Response::Facts {
            epoch: snap.epoch(),
            kind,
            relation: render_relation(goal.rel, vocab),
            facts: render_relation_facts(goal.rel, &facts, vocab),
            strategy,
        })
    }

    /// Answers a bound goal (`QUERY CERTAIN reach('a', x)`) goal-directedly.
    ///
    /// Strategy order: the per-epoch [`SubsumptiveTable`] first (`tabled` —
    /// an exact or subsuming memoized call answers without evaluating);
    /// then the magic-set rewrite of the registry's rulebase around the
    /// goal's binding pattern (`magic` — only the facts the goal demands
    /// are derived); and when the rewrite refuses (negation reached through
    /// the goal) or no rulebase exists, full materialization plus a filter
    /// (`materialize`).  Answers from *every* path are memoized, so a
    /// repeated or more specific same-snapshot goal is a table hit.
    ///
    /// The bound form answers against the **derived** fixpoint of the
    /// registered `tau` rules over each world (the same fixpoint `APPLY`
    /// would commit), filtered to the goal — whereas the bare form reads
    /// stored facts only.  Positions bound by repeated variables
    /// (`reach(x, x)`) are equality-filtered after memo retrieval, so the
    /// memoized answer stays reusable for other patterns.
    fn query_goal(
        &self,
        snap: &Snapshot,
        vocab: &Vocabulary,
        rel: RelId,
        terms: &[Term],
        certain: bool,
    ) -> Result<(Relation, &'static str)> {
        self.metrics.queries_total.inc();
        let bound: Vec<(usize, Const)> = terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_const().map(|c| (i, c)))
            .collect();
        let groups = var_groups(terms);
        let tag = if certain { 0u8 } else { 1u8 };

        let rulebase = {
            let mut cache = self.lock_query_cache();
            if cache.epoch != snap.epoch() {
                cache.table.evict();
                cache.rulebase = None;
                cache.epoch = snap.epoch();
            }
            if let Some(answer) = cache.table.lookup(tag, rel.index(), &bound) {
                self.metrics.queries_tabled_total.inc();
                return Ok((filter_equal(&answer, &groups), "tabled"));
            }
            match &cache.rulebase {
                Some(rb) => rb.clone(),
                None => {
                    let rb = build_rulebase(snap).map(Arc::new);
                    cache.rulebase = Some(rb.clone());
                    rb
                }
            }
            // the lock drops here: evaluation must not block the commit
            // pipeline (publish evicts this cache under the same lock)
        };

        let (answer, strategy) = match &rulebase {
            Some(program) => {
                match magic_rewrite(program, rel, terms, vocab.relation_count() as u32) {
                    Ok(plan) => (
                        self.eval_goal_plan(snap, &plan, &bound, terms.len(), certain)?,
                        "magic",
                    ),
                    Err(DatalogError::GoalDirected { .. }) => (
                        self.materialize_goal(snap, program, rel, &bound, terms.len(), certain)?,
                        "materialize",
                    ),
                    Err(e) => return Err(datalog_err(e)),
                }
            }
            // No rules at all: the stored relation is its own fixpoint.
            None => {
                let folded = fold_goal(snap.kb(), rel, certain);
                (filter_rows(&folded, &bound), "materialize")
            }
        };
        match strategy {
            "magic" => self.metrics.queries_magic_total.inc(),
            _ => self.metrics.queries_materialize_total.inc(),
        }
        let mut cache = self.lock_query_cache();
        if cache.epoch == snap.epoch() {
            cache.table.insert(tag, rel.index(), &bound, answer.clone());
        }
        Ok((filter_equal(&answer, &groups), strategy))
    }

    /// Evaluates a magic plan against every world of the snapshot and folds
    /// the per-world answers (intersection for certain, union for
    /// possible).  The answer predicate may also carry tuples derived for
    /// recursive sub-calls with other bindings, so each world's answers are
    /// filtered to the goal's own bound constants before folding.
    fn eval_goal_plan(
        &self,
        snap: &Snapshot,
        plan: &MagicPlan,
        bound: &[(usize, Const)],
        arity: usize,
        certain: bool,
    ) -> Result<Relation> {
        let mut acc: Option<Relation> = None;
        for db in snap.kb().iter() {
            let mut edb = db.clone();
            for (seed_rel, consts) in &plan.seeds {
                edb.insert_fact(*seed_rel, Tuple::new(consts.clone()))?;
            }
            let (result, _stats) =
                semi_naive_eval_threads(&plan.program, &edb, self.config.threads)
                    .map_err(datalog_err)?;
            let answers = result
                .relation(plan.answer)
                .map(|r| filter_rows(r, bound))
                .unwrap_or_else(|| Relation::empty(arity));
            acc = Some(fold_step(acc, answers, certain));
        }
        Ok(acc.unwrap_or_else(|| Relation::empty(arity)))
    }

    /// The materializing fallback: the full rulebase fixpoint over every
    /// world, the goal relation filtered to the bound constants, folded
    /// across worlds.  This is also the oracle the differential suite holds
    /// the magic path to.
    fn materialize_goal(
        &self,
        snap: &Snapshot,
        program: &Program,
        rel: RelId,
        bound: &[(usize, Const)],
        arity: usize,
        certain: bool,
    ) -> Result<Relation> {
        let mut acc: Option<Relation> = None;
        for db in snap.kb().iter() {
            let (result, _stats) =
                semi_naive_eval_threads(program, db, self.config.threads).map_err(datalog_err)?;
            let answers = result
                .relation(rel)
                .map(|r| filter_rows(r, bound))
                .unwrap_or_else(|| Relation::empty(arity));
            acc = Some(fold_step(acc, answers, certain));
        }
        Ok(acc.unwrap_or_else(|| Relation::empty(arity)))
    }

    fn query_text(&self, rest: &str, trace: Option<&str>) -> Result<Response> {
        // the slow-query span: end-to-end latency of the textual command,
        // emitted to the log sink (with the query text) when it crosses
        // the registry's slow-span threshold
        let mut span = self.metrics.query_ns.span_event("slow_query");
        if span.enabled() {
            span.field("query", rest.trim());
            if let Some(id) = trace {
                span.field("id", id);
            }
        }
        let snap = self.snapshot();
        // parse against a clone: query-local names must not leak into (or
        // wait on) the committed vocabulary
        let mut vocab = snap.vocab().clone();
        match parse_query(rest, &mut vocab)? {
            QueryCmd::Certain(goal) => self.goal_response(&snap, &vocab, &goal, true),
            QueryCmd::Possible(goal) => self.goal_response(&snap, &vocab, &goal, false),
            QueryCmd::Transform(t) => {
                let result = self.query_on(&snap, &t)?;
                let worlds = result
                    .kb
                    .iter()
                    .map(|db| {
                        db.facts()
                            .map(|(rel, t)| render_fact(rel, t.components(), &vocab))
                            .collect()
                    })
                    .collect();
                Ok(Response::Worlds {
                    epoch: result.epoch,
                    worlds,
                })
            }
        }
    }

    /// `EXPLAIN <query>`: renders the query's evaluation plan against the
    /// current snapshot without evaluating anything (and without counting
    /// as a served query).
    fn explain_text(&self, rest: &str) -> Result<Response> {
        let snap = self.snapshot();
        let mut vocab = snap.vocab().clone();
        let query = parse_query(rest, &mut vocab)?;
        let namer = |rel: RelId| render_relation(rel, &vocab);
        let rows = match query {
            QueryCmd::Certain(QueryGoal {
                rel,
                terms: Some(terms),
            }) => self.explain_goal(&snap, &vocab, rel, &terms, true)?,
            QueryCmd::Possible(QueryGoal {
                rel,
                terms: Some(terms),
            }) => self.explain_goal(&snap, &vocab, rel, &terms, false)?,
            QueryCmd::Certain(goal) => vec![format!(
                "certain({}): intersection across worlds (no rule plan)",
                namer(goal.rel)
            )],
            QueryCmd::Possible(goal) => vec![format!(
                "possible({}): union across worlds (no rule plan)",
                namer(goal.rel)
            )],
            QueryCmd::Transform(t) => {
                let transformer = Transformer::with_options(self.config.eval_options());
                transformer
                    .explain(&t, snap.kb(), &namer)?
                    .iter()
                    .map(render_explain_row)
                    .collect()
            }
        };
        Ok(Response::Explain {
            epoch: snap.epoch(),
            rows,
        })
    }

    /// `EXPLAIN` of a bound goal: the binding pattern, the invented magic
    /// predicates with their seeds, and the join plans of the rewritten
    /// program — all in the stable renderings the golden tests pin down.
    /// A refused rewrite explains the fallback instead.
    fn explain_goal(
        &self,
        snap: &Snapshot,
        vocab: &Vocabulary,
        rel: RelId,
        terms: &[Term],
        certain: bool,
    ) -> Result<Vec<String>> {
        let kind = if certain { "certain" } else { "possible" };
        let namer = |r: RelId| render_relation(r, vocab);
        let pattern = kbt_datalog::Adornment::from_terms(terms);
        let Some(program) = build_rulebase(snap) else {
            return Ok(vec![format!(
                "{kind}({}) pattern={pattern}: no rulebase, stored facts filtered ({} across worlds)",
                namer(rel),
                if certain { "intersection" } else { "union" }
            )]);
        };
        match magic_rewrite(&program, rel, terms, vocab.relation_count() as u32) {
            Ok(plan) => {
                let plan_namer = |r: RelId| plan.render_relation(r, &namer);
                let mut rows = vec![format!(
                    "{kind}({}) pattern={pattern}: magic plan, answer={}",
                    namer(rel),
                    plan_namer(plan.answer)
                )];
                for (seed_rel, consts) in &plan.seeds {
                    let args: Vec<String> = consts
                        .iter()
                        .map(|c| match vocab.constant_name(*c) {
                            Some(name) => format!("'{name}'"),
                            None => format!("{}", c.index()),
                        })
                        .collect();
                    rows.push(format!(
                        "seed {}({})",
                        plan_namer(*seed_rel),
                        args.join(", ")
                    ));
                }
                let edb = snap
                    .kb()
                    .iter()
                    .next()
                    .cloned()
                    .unwrap_or_else(Database::new);
                rows.extend(
                    explain_plans(&plan.program, &edb, &plan_namer)
                        .map_err(datalog_err)?
                        .iter()
                        .map(render_explain_row),
                );
                Ok(rows)
            }
            Err(e @ DatalogError::GoalDirected { .. }) => Ok(vec![format!(
                "{kind}({}) pattern={pattern}: {e}; falling back to full materialization + filter",
                namer(rel)
            )]),
            Err(e) => Err(datalog_err(e)),
        }
    }

    /// `PROFILE` of a bound goal: runs the goal-directed evaluation with
    /// per-rule profiling (bypassing the answer table — a memo hit would
    /// profile nothing) and reports a summary row followed by the rewritten
    /// program's per-rule fixpoint breakdown, merged across worlds.
    fn profile_goal(
        &self,
        snap: &Snapshot,
        vocab: &Vocabulary,
        rel: RelId,
        terms: &[Term],
        certain: bool,
    ) -> Result<Vec<String>> {
        self.metrics.queries_total.inc();
        let kind = if certain { "certain" } else { "possible" };
        let namer = |r: RelId| render_relation(r, vocab);
        let pattern = kbt_datalog::Adornment::from_terms(terms);
        let bound: Vec<(usize, Const)> = terms
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.as_const().map(|c| (i, c)))
            .collect();
        let groups = var_groups(terms);
        let start = std::time::Instant::now();
        let Some(program) = build_rulebase(snap) else {
            let facts = filter_equal(
                &filter_rows(&fold_goal(snap.kb(), rel, certain), &bound),
                &groups,
            );
            let elapsed = start.elapsed().as_nanos() as u64;
            return Ok(vec![format!(
                "{kind}({}) pattern={pattern} strategy=materialize: facts={} elapsed_ns={elapsed} (no rule plan)",
                namer(rel),
                facts.len()
            )]);
        };
        let rewrite = magic_rewrite(&program, rel, terms, vocab.relation_count() as u32);
        let (plan, strategy, note) = match rewrite {
            Ok(plan) => (Some(plan), "magic", String::new()),
            Err(e @ DatalogError::GoalDirected { .. }) => (None, "materialize", format!(" ({e})")),
            Err(e) => return Err(datalog_err(e)),
        };
        let eval_program = plan.as_ref().map_or(&program, |p| &p.program);
        let answer_rel = plan.as_ref().map_or(rel, |p| p.answer);
        let base_namer = namer;
        let plan_namer = |r: RelId| match &plan {
            Some(p) => p.render_relation(r, &base_namer),
            None => base_namer(r),
        };
        let mut acc: Option<Relation> = None;
        let mut merged: Vec<RuleProfile> = Vec::new();
        for db in snap.kb().iter() {
            let mut edb = db.clone();
            if let Some(p) = &plan {
                for (seed_rel, consts) in &p.seeds {
                    edb.insert_fact(*seed_rel, Tuple::new(consts.clone()))?;
                }
            }
            let (result, _stats, profiles) =
                semi_naive_eval_profiled(eval_program, &edb, self.config.threads, &plan_namer)
                    .map_err(datalog_err)?;
            let answers = result
                .relation(answer_rel)
                .map(|r| filter_rows(r, &bound))
                .unwrap_or_else(|| Relation::empty(terms.len()));
            acc = Some(fold_step(acc, answers, certain));
            merge_profiles(&mut merged, profiles);
        }
        let facts = filter_equal(
            &acc.unwrap_or_else(|| Relation::empty(terms.len())),
            &groups,
        );
        let elapsed = start.elapsed().as_nanos() as u64;
        let mut rows = vec![format!(
            "{kind}({}) pattern={pattern} strategy={strategy}: facts={} elapsed_ns={elapsed}{note}",
            namer(rel),
            facts.len()
        )];
        rows.extend(merged.iter().map(render_profile_row));
        Ok(rows)
    }

    /// `PROFILE <query>`: evaluates the query like `QUERY` does (it counts
    /// as a served query and feeds the slow-query span) and reports the
    /// per-rule fixpoint breakdown alongside the result summary.
    fn profile_text(&self, rest: &str, trace: Option<&str>) -> Result<Response> {
        let mut span = self.metrics.query_ns.span_event("slow_query");
        if span.enabled() {
            span.field("query", rest.trim());
            if let Some(id) = trace {
                span.field("id", id);
            }
        }
        let snap = self.snapshot();
        let mut vocab = snap.vocab().clone();
        let query = parse_query(rest, &mut vocab)?;
        let namer = |rel: RelId| render_relation(rel, &vocab);
        match query {
            QueryCmd::Certain(QueryGoal {
                rel,
                terms: Some(terms),
            }) => {
                let rows = self.profile_goal(&snap, &vocab, rel, &terms, true)?;
                Ok(Response::Profile {
                    epoch: snap.epoch(),
                    worlds: snap.kb().len(),
                    rows,
                })
            }
            QueryCmd::Possible(QueryGoal {
                rel,
                terms: Some(terms),
            }) => {
                let rows = self.profile_goal(&snap, &vocab, rel, &terms, false)?;
                Ok(Response::Profile {
                    epoch: snap.epoch(),
                    worlds: snap.kb().len(),
                    rows,
                })
            }
            // certain/possible bump queries_total themselves
            certain_or_possible @ (QueryCmd::Certain(_) | QueryCmd::Possible(_)) => {
                let start = std::time::Instant::now();
                let (kind, rel, facts) = match certain_or_possible {
                    QueryCmd::Certain(goal) => ("certain", goal.rel, self.certain(&snap, goal.rel)),
                    QueryCmd::Possible(goal) => {
                        ("possible", goal.rel, self.possible(&snap, goal.rel))
                    }
                    QueryCmd::Transform(_) => unreachable!("matched above"),
                };
                let elapsed = start.elapsed().as_nanos() as u64;
                let rows = vec![format!(
                    "{kind}({}): facts={} elapsed_ns={elapsed} (no rule plan)",
                    namer(rel),
                    facts.len()
                )];
                Ok(Response::Profile {
                    epoch: snap.epoch(),
                    worlds: snap.kb().len(),
                    rows,
                })
            }
            QueryCmd::Transform(t) => {
                self.metrics.queries_total.inc();
                let transformer = Transformer::with_options(self.config.eval_options());
                let (result, profiles) = transformer.apply_profiled(&t, snap.kb(), &namer)?;
                let rows = profiles.iter().map(render_profile_row).collect();
                Ok(Response::Profile {
                    epoch: snap.epoch(),
                    worlds: result.kb.len(),
                    rows,
                })
            }
        }
    }

    fn stats_report(&self) -> StatsReport {
        let snap = self.snapshot();
        let held_epochs = {
            let mut reg = self.holders.lock().unwrap_or_else(PoisonError::into_inner);
            reg.retain(|(_, weak)| weak.strong_count() > 0);
            Self::refresh_holder_gauges(&self.metrics, &reg, snap.epoch());
            reg.iter()
                .filter_map(|(epoch, weak)| {
                    let mut holders = weak.strong_count() as u64;
                    if *epoch == snap.epoch() {
                        // exclude the cell's own reference and the snapshot
                        // this report is being built from
                        holders = holders.saturating_sub(2);
                    }
                    (holders > 0).then_some((epoch.get(), holders))
                })
                .collect()
        };
        StatsReport {
            epoch: snap.epoch(),
            worlds: snap.kb().len(),
            facts: total_facts(snap.kb()),
            threads: self.config.threads,
            queries: self.metrics.queries_total.get(),
            transforms: snap
                .transforms()
                .iter()
                .map(|(name, info)| (name.clone(), info.text.to_string(), info.applications))
                .collect(),
            stats: *snap.stats(),
            sessions: self.sessions.snapshot(),
            held_epochs,
        }
    }

    /// The Prometheus-style text exposition behind the `METRICS` command:
    /// this service's registry merged with the process-global one (where
    /// `kbt-engine` / `kbt-par` record), point-in-time gauges refreshed.
    pub fn metrics_text(&self) -> String {
        {
            // refresh the scrape-time gauges so a scrape between commits
            // still reports current holder state
            let current = self.committed.epoch();
            self.metrics.epoch.set(current.get());
            let mut reg = self.holders.lock().unwrap_or_else(PoisonError::into_inner);
            reg.retain(|(_, weak)| weak.strong_count() > 0);
            Self::refresh_holder_gauges(&self.metrics, &reg, current);
        }
        let mut snap = self.metrics.registry.snapshot();
        snap.merge(&Registry::global().snapshot());
        snap.render()
    }
}

/// One `EXPLAIN` row: stratum, rule provenance, and the plan rendering —
/// fully deterministic (no counters, no timing).
fn render_explain_row(p: &RuleProfile) -> String {
    format!("s{} {} :: {}", p.stratum, p.rule, p.plan)
}

/// Merges per-world rule profiles positionally (the worlds all evaluate
/// the same lowered program, so index `i` is the same rule everywhere).
fn merge_profiles(acc: &mut Vec<RuleProfile>, more: Vec<RuleProfile>) {
    if acc.is_empty() {
        *acc = more;
        return;
    }
    for (a, b) in acc.iter_mut().zip(more) {
        a.rounds += b.rounds;
        a.derived += b.derived;
        a.probes += b.probes;
        a.scanned += b.scanned;
        a.elapsed_ns += b.elapsed_ns;
    }
}

/// One `PROFILE` row: the `EXPLAIN` row plus the rule's share of the
/// fixpoint work.  `elapsed_ns` is wall-clock and therefore the only
/// nondeterministic field; it lives in data rows, never in status lines.
fn render_profile_row(p: &RuleProfile) -> String {
    format!(
        "s{} {} | rounds={} derived={} probes={} scanned={} elapsed_ns={} :: {}",
        p.stratum, p.rule, p.rounds, p.derived, p.probes, p.scanned, p.elapsed_ns, p.plan
    )
}

/// Total facts across all worlds.
fn total_facts(kb: &Knowledgebase) -> usize {
    kb.iter().map(Database::fact_count).sum()
}

/// The epoch a *commit* response published (`None` for read responses) —
/// recovery replay uses it to hold each replayed command to the epoch its
/// WAL record claims.
fn commit_epoch(response: &Response) -> Option<EpochId> {
    match response {
        Response::Committed { epoch, .. }
        | Response::Defined { epoch, .. }
        | Response::Applied { epoch, .. } => Some(*epoch),
        _ => None,
    }
}

/// Maps a Datalog-substrate error onto the service error space (bound
/// queries drive the evaluator directly, without going through `kbt-core`).
fn datalog_err(e: DatalogError) -> ServiceError {
    ServiceError::Core(CoreError::Datalog(e))
}

/// One fold step of the per-world answer combination: intersection for
/// certain, union for possible.
fn fold_step(acc: Option<Relation>, next: Relation, certain: bool) -> Relation {
    match acc {
        None => next,
        Some(prev) if certain => prev
            .intersection(&next)
            .expect("one schema per knowledgebase"),
        Some(prev) => prev.union(&next).expect("one schema per knowledgebase"),
    }
}

/// Folds the *stored* goal relation across worlds (the no-rulebase
/// materialization path).
fn fold_goal(kb: &Knowledgebase, rel: RelId, certain: bool) -> Relation {
    fold_relation(kb, rel, |a, b| {
        if certain {
            a.intersection(b).expect("one schema per knowledgebase")
        } else {
            a.union(b).expect("one schema per knowledgebase")
        }
    })
}

/// Position groups the goal binds to one repeated variable (`reach(x, x)`
/// → `[[0, 1]]`): rows must carry equal constants across each group.
fn var_groups(terms: &[Term]) -> Vec<Vec<usize>> {
    let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for (i, t) in terms.iter().enumerate() {
        if let Term::Var(v) = t {
            groups.entry(v.index()).or_default().push(i);
        }
    }
    groups.into_values().filter(|g| g.len() > 1).collect()
}

/// Keeps the rows whose columns agree across every repeated-variable group.
fn filter_equal(rel: &Relation, groups: &[Vec<usize>]) -> Relation {
    if groups.is_empty() {
        return rel.clone();
    }
    let mut out = Relation::empty(rel.arity());
    for row in rel.iter() {
        if groups
            .iter()
            .all(|g| g.iter().all(|&i| row[i] == row[g[0]]))
        {
            out.insert_row(row);
        }
    }
    out
}

/// Assembles the goal-directed rulebase from a snapshot's transform
/// registry: every `tau[…]` step whose sentence lowers to safe Horn rules
/// contributes them.  Steps that are not Horn (disjunctive updates, say)
/// simply contribute nothing — the goal planner only ever speaks for the
/// Datalog-restricted fragment (Theorem 4.8), and relations those steps
/// define fall back to stored-fact materialization.  Returns `None` when
/// no step yields any rule.
fn build_rulebase(snap: &Snapshot) -> Option<Program> {
    let mut vocab = snap.vocab().clone();
    let mut rules = Vec::new();
    for info in snap.transforms().values() {
        // the wire text was rendered from this vocabulary, so re-parsing
        // interns nothing new and cannot fail — but stay defensive
        let Ok(t) = parse_transform(&info.text, &mut vocab) else {
            continue;
        };
        for step in t.steps() {
            if let Transform::Insert(sentence) = step {
                if let Ok(p) = program_from_sentence(sentence) {
                    rules.extend(p.rules().iter().cloned());
                }
            }
        }
    }
    if rules.is_empty() {
        None
    } else {
        Program::new(rules).ok()
    }
}

/// Folds one relation across all worlds (empty-at-right-arity for worlds
/// missing it; the empty knowledgebase yields a zero-ary empty relation).
fn fold_relation(
    kb: &Knowledgebase,
    rel: RelId,
    combine: impl Fn(&Relation, &Relation) -> Relation,
) -> Relation {
    let arity = kb
        .iter()
        .find_map(|db| db.relation(rel))
        .map_or(0, Relation::arity);
    let mut acc: Option<Relation> = None;
    for db in kb.iter() {
        let r = db
            .relation(rel)
            .cloned()
            .unwrap_or_else(|| Relation::empty(arity));
        acc = Some(match acc {
            None => r,
            Some(prev) => combine(&prev, &r),
        });
    }
    acc.unwrap_or_else(|| Relation::empty(arity))
}

fn render_relation_facts(rel: RelId, facts: &Relation, vocab: &Vocabulary) -> Vec<String> {
    facts
        .iter()
        .map(|row| render_fact(rel, row, vocab))
        .collect()
}

impl fmt::Display for Response {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Response::Ok => write!(f, "ok"),
            // `durable` stays out of the human rendering: scripts and the
            // shell read the same lines durable or not (the wire status is
            // where the flag travels)
            Response::Committed {
                epoch,
                worlds,
                facts,
                durable: _,
            } => write!(f, "committed {epoch}: {worlds} world(s), {facts} fact(s)"),
            Response::Defined {
                epoch,
                name,
                text,
                durable: _,
            } => {
                write!(f, "defined {name} := {text} ({epoch})")
            }
            Response::Applied {
                epoch,
                name,
                worlds,
                facts,
                reused_facts,
                durable: _,
            } => write!(
                f,
                "applied {name} at {epoch}: {worlds} world(s), {facts} fact(s), {reused_facts} reused"
            ),
            Response::Worlds { epoch, worlds } => {
                write!(f, "{epoch}: {} world(s)", worlds.len())?;
                for (i, world) in worlds.iter().enumerate() {
                    write!(f, "\n  world {i}: {{{}}}", world.join(", "))?;
                }
                Ok(())
            }
            Response::Facts {
                epoch,
                kind,
                relation,
                facts,
                strategy,
            } => {
                write!(
                    f,
                    "{kind}({relation}) at {epoch}: {{{}}}",
                    facts.join(", ")
                )?;
                if let Some(strategy) = strategy {
                    write!(f, " [{strategy}]")?;
                }
                Ok(())
            }
            Response::Explain { epoch, rows } => {
                write!(f, "explain at {epoch}: {} row(s)", rows.len())?;
                for row in rows {
                    write!(f, "\n  {row}")?;
                }
                Ok(())
            }
            Response::Profile {
                epoch,
                worlds,
                rows,
            } => {
                write!(
                    f,
                    "profile at {epoch}: {worlds} world(s), {} row(s)",
                    rows.len()
                )?;
                for row in rows {
                    write!(f, "\n  {row}")?;
                }
                Ok(())
            }
            Response::Stats(report) => {
                write!(
                    f,
                    "epoch {} | {} world(s), {} fact(s) | threads {} | commits {} (applies {}, defines {}) | queries {}",
                    report.epoch,
                    report.worlds,
                    report.facts,
                    report.threads,
                    report.stats.commits,
                    report.stats.applies,
                    report.stats.defines,
                    report.queries
                )?;
                write!(
                    f,
                    "\n  eval: {} update(s), {} fixpoint round(s), {} reused, {} rederived",
                    report.stats.eval.updates,
                    report.stats.eval.fixpoint_iterations,
                    report.stats.eval.reused_facts,
                    report.stats.eval.rederived_facts
                )?;
                write!(
                    f,
                    "\n  sessions: accepted {}, active {}, rejected-at-capacity {}, idle-closed {}",
                    report.sessions.accepted,
                    report.sessions.active,
                    report.sessions.rejected,
                    report.sessions.idle_closed
                )?;
                if !report.held_epochs.is_empty() {
                    let held: Vec<String> = report
                        .held_epochs
                        .iter()
                        .map(|(epoch, holders)| format!("e{epoch} x{holders}"))
                        .collect();
                    write!(f, "\n  held epochs: {}", held.join(", "))?;
                }
                for (name, text, applications) in &report.transforms {
                    write!(f, "\n  transform {name} := {text} (applied {applications}x)")?;
                }
                Ok(())
            }
            Response::Metrics { text, .. } => f.write_str(text.trim_end()),
            Response::Loaded { commands } => write!(f, "loaded: {commands} command(s)"),
            Response::Checkpointed { epoch, file } => {
                write!(f, "checkpointed {epoch}: {file}")
            }
            Response::WalStat {
                epoch,
                policy,
                records,
                bytes,
                fsyncs,
                durable_epoch,
                checkpoint_epoch,
            } => write!(
                f,
                "wal at {epoch}: policy {policy}, {records} record(s), {bytes} byte(s), \
                 {fsyncs} fsync(s), durable e{durable_epoch}, checkpoint e{checkpoint_epoch}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> Service {
        Service::new(ServiceConfig::builder().threads(1).build())
    }

    #[test]
    fn starts_with_one_empty_world_at_epoch_zero() {
        let s = service();
        let snap = s.snapshot();
        assert_eq!(snap.epoch(), EpochId::ZERO);
        assert_eq!(snap.kb().len(), 1);
        assert_eq!(total_facts(snap.kb()), 0);
    }

    #[test]
    fn asserts_commit_new_epochs_and_snapshots_stay_frozen() {
        let s = service();
        let before = s.snapshot();
        let r = s.execute("ASSERT edge(1, 2), edge(2, 3)").unwrap();
        match r {
            Response::Committed {
                epoch,
                worlds,
                facts,
                durable,
            } => {
                assert_eq!(epoch, EpochId::new(1));
                assert_eq!(worlds, 1);
                assert_eq!(facts, 2);
                assert_eq!(durable, None, "no durability configured");
            }
            other => panic!("expected Committed, got {other:?}"),
        }
        assert_eq!(total_facts(before.kb()), 0, "snapshot must be frozen");
        assert_eq!(total_facts(s.snapshot().kb()), 2);

        let r = s.execute("RETRACT edge(1, 2)").unwrap();
        assert!(matches!(r, Response::Committed { facts: 1, .. }));
    }

    #[test]
    fn define_apply_query_round_trip() {
        let s = service();
        s.execute("ASSERT edge(1, 2), edge(2, 3), edge(3, 4)")
            .unwrap();
        s.execute(
            "DEFINE tc := tau[(forall x0 x1. edge(x0, x1) -> path(x0, x1)) & \
             (forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2))]",
        )
        .unwrap();
        let r = s.execute("APPLY tc").unwrap();
        match r {
            Response::Applied { worlds, facts, .. } => {
                assert_eq!(worlds, 1);
                // 3 edges + 6 paths
                assert_eq!(facts, 9);
            }
            other => panic!("expected Applied, got {other:?}"),
        }
        let r = s.execute("QUERY CERTAIN path").unwrap();
        match r {
            Response::Facts { kind, facts, .. } => {
                assert_eq!(kind, "certain");
                assert_eq!(facts.len(), 6);
                assert!(facts.contains(&"path(1, 4)".to_string()));
            }
            other => panic!("expected Facts, got {other:?}"),
        }
    }

    #[test]
    fn repeated_apply_reuses_the_persistent_chain() {
        let s = service();
        s.execute("ASSERT edge(1, 2), edge(2, 3)").unwrap();
        s.execute(
            "DEFINE tc := tau[(forall x0 x1. edge(x0, x1) -> path(x0, x1)) & \
             (forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2))]; project[edge]",
        )
        .unwrap();
        let first = s.execute("APPLY tc").unwrap();
        assert!(matches!(
            first,
            Response::Applied {
                reused_facts: 0,
                ..
            }
        ));
        s.execute("ASSERT edge(3, 4)").unwrap();
        let second = s.execute("APPLY tc").unwrap();
        match second {
            Response::Applied { reused_facts, .. } => {
                assert!(reused_facts > 0, "the chain session must be reused");
            }
            other => panic!("expected Applied, got {other:?}"),
        }
    }

    #[test]
    fn queries_run_on_snapshots_and_count() {
        let s = service();
        s.execute("ASSERT edge(1, 2)").unwrap();
        let r = s.execute("QUERY lub; project[edge]").unwrap();
        match r {
            Response::Worlds { epoch, worlds } => {
                assert_eq!(epoch, EpochId::new(1));
                assert_eq!(worlds, vec![vec!["edge(1, 2)".to_string()]]);
            }
            other => panic!("expected Worlds, got {other:?}"),
        }
        // the query committed nothing
        assert_eq!(s.epoch(), EpochId::new(1));
        match s.execute("STATS").unwrap() {
            Response::Stats(report) => {
                assert_eq!(report.queries, 1);
                assert_eq!(report.stats.commits, 1);
            }
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn query_transforms_can_split_worlds_without_committing() {
        let s = service();
        s.execute("ASSERT r(1)").unwrap();
        let r = s.execute("QUERY tau[r(2) | r(3)]").unwrap();
        match r {
            Response::Worlds { worlds, .. } => assert_eq!(worlds.len(), 2),
            other => panic!("expected Worlds, got {other:?}"),
        }
        // … and the committed state is untouched
        assert_eq!(s.snapshot().kb().len(), 1);
        assert_eq!(total_facts(s.snapshot().kb()), 1);
    }

    #[test]
    fn errors_leave_the_committed_state_unchanged() {
        let s = service();
        s.execute("ASSERT edge(1, 2)").unwrap();
        let epoch = s.epoch();
        assert!(s.execute("APPLY missing").is_err());
        assert!(s.execute("ASSERT edge(1, 2, 3)").is_err()); // arity conflict
        assert!(s.execute("QUERY project[nowhere]").is_err());
        assert!(s.execute("NONSENSE").is_err());
        assert_eq!(s.epoch(), epoch);
        assert_eq!(total_facts(s.snapshot().kb()), 1);
    }

    #[test]
    fn failed_commands_leave_no_vocabulary_trace() {
        // a rejected command's interning must not reach the committed
        // state through a later, unrelated successful commit
        let s = service();
        s.execute("ASSERT edge(1, 2)").unwrap();
        assert!(s.execute("ASSERT ghost(x)").is_err()); // non-ground → rejected
        s.execute("ASSERT edge(2, 3)").unwrap(); // publishes the vocabulary
        assert!(
            matches!(
                s.execute("QUERY CERTAIN ghost"),
                Err(ServiceError::UnknownRelation(_))
            ),
            "the rejected ASSERT must not have interned 'ghost'"
        );
        assert!(s.snapshot().vocab().lookup_relation("ghost").is_none());
    }

    #[test]
    fn retracts_cannot_introduce_names() {
        let s = service();
        s.execute("ASSERT edge(1, 2)").unwrap();
        let epoch = s.epoch();
        // a typo'd relation or constant is a guaranteed no-op → rejected
        assert!(matches!(
            s.execute("RETRACT egde(1, 2)"),
            Err(ServiceError::UnknownRelation(_))
        ));
        assert!(matches!(
            s.execute("RETRACT edge('Ghost', 1)"),
            Err(ServiceError::UnknownConstant(_))
        ));
        assert_eq!(s.epoch(), epoch, "rejected retracts must not commit");
        assert!(s.snapshot().vocab().lookup_relation("egde").is_none());
        // retracting an *absent fact* over known names stays a legal no-op
        s.execute("RETRACT edge(2, 1)").unwrap();
        assert_eq!(s.epoch(), EpochId::new(epoch.get() + 1));
    }

    #[test]
    fn named_constants_survive_the_command_round_trip() {
        let s = service();
        s.execute("ASSERT flight('Toronto', 'Ottawa')").unwrap();
        match s.execute("QUERY POSSIBLE flight").unwrap() {
            Response::Facts { facts, .. } => {
                assert_eq!(facts, vec!["flight('Toronto', 'Ottawa')".to_string()]);
            }
            other => panic!("expected Facts, got {other:?}"),
        }
    }

    #[test]
    fn stats_reports_held_epochs_and_session_counters() {
        let s = service();
        s.execute("ASSERT edge(1, 2)").unwrap();
        let held = s.snapshot(); // pin epoch 1
        s.execute("ASSERT edge(2, 3)").unwrap(); // epoch 2
        match s.execute("STATS").unwrap() {
            Response::Stats(report) => {
                assert_eq!(report.sessions, SessionSnapshot::default());
                assert_eq!(
                    report.held_epochs,
                    vec![(1, 1)],
                    "the pinned epoch-1 snapshot must show up as a holder"
                );
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        drop(held);
        match s.execute("STATS").unwrap() {
            Response::Stats(report) => {
                assert!(
                    report.held_epochs.is_empty(),
                    "nothing outstanding once the snapshot is dropped: {:?}",
                    report.held_epochs
                );
            }
            other => panic!("expected Stats, got {other:?}"),
        }
        // the counters the network front bumps are visible through STATS
        s.session_counters().accepted.add(3);
        match s.execute("STATS").unwrap() {
            Response::Stats(report) => assert_eq!(report.sessions.accepted, 3),
            other => panic!("expected Stats, got {other:?}"),
        }
    }

    #[test]
    fn metrics_exposition_reflects_commits_and_queries() {
        let s = service();
        s.execute("ASSERT edge(1, 2)").unwrap();
        s.execute("QUERY CERTAIN edge").unwrap();
        let r = s.execute("METRICS").unwrap();
        let Response::Metrics { epoch, text } = r else {
            panic!("expected Metrics");
        };
        assert_eq!(epoch, EpochId::new(1));
        assert!(text.contains("# TYPE kbt_service_commits_total counter"));
        assert!(text.contains("kbt_service_commits_total 1\n"));
        assert!(text.contains("kbt_service_queries_total 1\n"));
        assert!(text.contains("kbt_service_epoch 1\n"));
        assert!(text.contains("kbt_service_commit_batch_facts_count 1\n"));
        // the global registry (engine/par series) is merged into the scrape
        assert!(text.contains("kbt_engine_evals_total"));
        assert!(text.contains("kbt_par_scopes_total"));
        // … and registries are per-service: a fresh instance starts at zero
        let other = service();
        assert!(other
            .metrics_text()
            .contains("kbt_service_commits_total 0\n"));
    }

    #[test]
    fn metrics_report_held_epoch_gauges() {
        let s = service();
        s.execute("ASSERT edge(1, 2)").unwrap();
        let held = s.snapshot(); // pin epoch 1
        s.execute("ASSERT edge(2, 3)").unwrap(); // epoch 2
        let text = s.metrics_text();
        assert!(text.contains("kbt_service_held_epochs 1\n"), "{text}");
        assert!(text.contains("kbt_service_held_epoch_lag 1\n"), "{text}");
        drop(held);
        let text = s.metrics_text();
        assert!(text.contains("kbt_service_held_epochs 0\n"), "{text}");
        assert!(text.contains("kbt_service_held_epoch_lag 0\n"), "{text}");
    }

    #[test]
    fn stats_and_metrics_share_one_set_of_books() {
        let s = service();
        s.session_counters().accepted.add(2);
        s.session_counters().idle_closed.inc();
        let Response::Stats(report) = s.execute("STATS").unwrap() else {
            panic!("expected Stats");
        };
        assert_eq!(report.sessions.accepted, 2);
        assert_eq!(report.sessions.idle_closed, 1);
        let text = s.metrics_text();
        assert!(
            text.contains("kbt_net_sessions_accepted_total 2\n"),
            "{text}"
        );
        assert!(
            text.contains("kbt_net_sessions_idle_closed_total 1\n"),
            "{text}"
        );
    }

    #[test]
    fn scripts_split_on_logical_lines() {
        // a quoted constant containing a newline is one command
        let s = service();
        let responses = s
            .execute_script("ASSERT note('line one\nline two')\nQUERY POSSIBLE note")
            .unwrap();
        assert_eq!(responses.len(), 2);
        match &responses[1] {
            Response::Facts { facts, .. } => {
                assert_eq!(facts, &["note('line one\nline two')".to_string()]);
            }
            other => panic!("expected Facts, got {other:?}"),
        }
    }

    /// The facts and strategy of a bound goal response.
    fn bound_facts(r: Response) -> (Vec<String>, &'static str) {
        match r {
            Response::Facts {
                facts,
                strategy: Some(strategy),
                ..
            } => (facts, strategy),
            other => panic!("expected bound Facts, got {other:?}"),
        }
    }

    #[test]
    fn bound_goals_derive_goal_directed_then_hit_the_table() {
        let s = service();
        s.execute("ASSERT edge(1, 2), edge(2, 3), edge(3, 4)")
            .unwrap();
        s.execute(
            "DEFINE tc := tau[(forall x0 x1. edge(x0, x1) -> path(x0, x1)) & \
             (forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2))]",
        )
        .unwrap();
        // no APPLY: the bound goal derives against the registered rules
        let (facts, strategy) = bound_facts(s.execute("QUERY CERTAIN path(1, x)").unwrap());
        assert_eq!(strategy, "magic");
        assert_eq!(facts, ["path(1, 2)", "path(1, 3)", "path(1, 4)"]);
        // the identical goal on the same snapshot is a table hit
        let (facts, strategy) = bound_facts(s.execute("QUERY CERTAIN path(1, x)").unwrap());
        assert_eq!(strategy, "tabled");
        assert_eq!(facts.len(), 3);
        // … and so is a *more specific* goal (subsumption)
        let (facts, strategy) = bound_facts(s.execute("QUERY CERTAIN path(1, 4)").unwrap());
        assert_eq!(strategy, "tabled");
        assert_eq!(facts, ["path(1, 4)"]);
        // a commit publishes a new epoch and evicts the memo
        s.execute("ASSERT edge(4, 5)").unwrap();
        let (facts, strategy) = bound_facts(s.execute("QUERY CERTAIN path(1, x)").unwrap());
        assert_eq!(strategy, "magic");
        assert_eq!(facts.len(), 4, "the new edge must be visible: {facts:?}");
    }

    #[test]
    fn bound_goals_match_the_materializing_oracle() {
        let s = service();
        s.execute("ASSERT edge(1, 2), edge(2, 3), edge(3, 1), edge(4, 4)")
            .unwrap();
        s.execute(
            "DEFINE tc := tau[(forall x0 x1. edge(x0, x1) -> path(x0, x1)) & \
             (forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2))]",
        )
        .unwrap();
        s.execute("APPLY tc").unwrap();
        // after APPLY the derived relation is stored, so the bare query is
        // the oracle: filtering it gives the expected bound answers …
        let Response::Facts { facts: oracle, .. } = s.execute("QUERY CERTAIN path").unwrap() else {
            panic!("expected Facts");
        };
        let (from_one, strategy) = bound_facts(s.execute("QUERY CERTAIN path(1, x)").unwrap());
        assert_eq!(strategy, "magic");
        let expected: Vec<String> = oracle
            .iter()
            .filter(|f| f.starts_with("path(1,"))
            .cloned()
            .collect();
        assert_eq!(from_one, expected);
        // … and the fully-free goal re-derives the whole oracle
        let (all, strategy) = bound_facts(s.execute("QUERY CERTAIN path(x, y)").unwrap());
        assert_eq!(strategy, "magic");
        assert_eq!(all, oracle);
        // once the all-free call is memoized, it subsumes *every* pattern
        let (from_four, strategy) = bound_facts(s.execute("QUERY CERTAIN path(4, x)").unwrap());
        assert_eq!(strategy, "tabled");
        assert_eq!(from_four, ["path(4, 4)"]);
    }

    #[test]
    fn bound_goals_without_rules_materialize_stored_facts() {
        let s = service();
        s.execute("ASSERT edge(1, 2), edge(1, 3), edge(2, 2)")
            .unwrap();
        let (facts, strategy) = bound_facts(s.execute("QUERY POSSIBLE edge(1, x)").unwrap());
        assert_eq!(strategy, "materialize");
        assert_eq!(facts, ["edge(1, 2)", "edge(1, 3)"]);
        let (facts, strategy) = bound_facts(s.execute("QUERY POSSIBLE edge(1, 2)").unwrap());
        assert_eq!(strategy, "tabled", "the subsuming call must be memoized");
        assert_eq!(facts, ["edge(1, 2)"]);
        // repeated variables constrain positions to be equal
        let (facts, _) = bound_facts(s.execute("QUERY POSSIBLE edge(x, x)").unwrap());
        assert_eq!(facts, ["edge(2, 2)"]);
    }

    #[test]
    fn bound_goals_reject_typos_with_typed_errors() {
        let s = service();
        s.execute("ASSERT edge(1, 2)").unwrap();
        assert!(matches!(
            s.execute("QUERY CERTAIN nowhere(1, x)"),
            Err(ServiceError::UnknownRelation(_))
        ));
        assert!(matches!(
            s.execute("QUERY CERTAIN edge(1)"),
            Err(ServiceError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            })
        ));
        // an unknown *constant* over known names is a legal empty answer,
        // not an error (the goal is well-formed; the fact just isn't there)
        let (facts, _) = bound_facts(s.execute("QUERY POSSIBLE edge('ghost', x)").unwrap());
        assert!(facts.is_empty());
    }

    #[test]
    fn bound_goal_metrics_count_strategies_and_table_hits() {
        let s = service();
        s.execute("ASSERT edge(1, 2)").unwrap();
        s.execute("DEFINE close := tau[forall x0 x1. edge(x0, x1) -> path(x0, x1)]")
            .unwrap();
        s.execute("QUERY CERTAIN path(1, x)").unwrap();
        s.execute("QUERY CERTAIN path(1, x)").unwrap();
        let text = s.metrics_text();
        assert!(
            text.contains("kbt_service_queries_magic_total 1\n"),
            "{text}"
        );
        assert!(
            text.contains("kbt_service_queries_tabled_total 1\n"),
            "{text}"
        );
        assert!(
            text.contains("kbt_service_queries_materialize_total 0\n"),
            "{text}"
        );
        // the engine-level table counters moved too (global registry, so
        // other tests may have bumped them — nonzero is the assertion)
        let hits: u64 = text
            .lines()
            .find_map(|l| l.strip_prefix("kbt_engine_table_hits "))
            .and_then(|v| v.trim().parse().ok())
            .expect("table hit counter must be exposed");
        assert!(hits >= 1);
    }

    #[test]
    fn explain_renders_the_adorned_magic_plan() {
        let s = service();
        s.execute("ASSERT edge(1, 2), edge(2, 3)").unwrap();
        s.execute(
            "DEFINE tc := tau[(forall x0 x1. edge(x0, x1) -> path(x0, x1)) & \
             (forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2))]",
        )
        .unwrap();
        let Response::Explain { rows, .. } = s.execute("EXPLAIN CERTAIN path(1, x)").unwrap()
        else {
            panic!("expected Explain");
        };
        assert_eq!(
            rows[0],
            "certain(path) pattern=bf: magic plan, answer=path_bf"
        );
        assert_eq!(rows[1], "seed m_path_bf(1)");
        assert!(
            rows.iter().any(|r| r.contains("m_path_bf(")),
            "magic guards must appear in the plan rows: {rows:?}"
        );
        assert!(
            rows.iter().any(|r| r.contains("path_bf(")),
            "adorned answer predicates must appear: {rows:?}"
        );
        // EXPLAIN never evaluates: rendering the plan twice changes nothing
        let Response::Explain { rows: again, .. } =
            s.execute("EXPLAIN CERTAIN path(1, x)").unwrap()
        else {
            panic!("expected Explain");
        };
        assert_eq!(rows, again, "the rendering must be stable");
        // PROFILE of the same goal carries the strategy and per-rule rows
        let Response::Profile { rows, .. } = s.execute("PROFILE CERTAIN path(1, x)").unwrap()
        else {
            panic!("expected Profile");
        };
        assert!(
            rows[0].starts_with("certain(path) pattern=bf strategy=magic: facts=2"),
            "{rows:?}"
        );
        assert!(rows.len() > 1, "per-rule profile rows must follow");
    }

    #[test]
    fn define_publishes_registry_metadata() {
        let s = service();
        s.execute("ASSERT edge(1, 2)").unwrap();
        s.execute("DEFINE close := tau[forall x0 x1. edge(x0, x1) -> path(x0, x1)]")
            .unwrap();
        let snap = s.snapshot();
        let info = snap.transforms().get("close").expect("registered");
        assert_eq!(info.applications, 0);
        // the wire text re-parses to the same transform
        let mut vocab = snap.vocab().clone();
        let again = crate::command::parse_transform(&info.text, &mut vocab).unwrap();
        assert!(matches!(again, Transform::Insert(_)));
    }

    // ------------------------------------------------------------------
    // Durability.
    // ------------------------------------------------------------------

    fn scratch_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("kbt-service-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn durable_config(dir: &std::path::Path) -> ServiceConfig {
        ServiceConfig::builder()
            .threads(1)
            .durable(dir)
            .fsync_policy(crate::config::FsyncPolicy::Always)
            .checkpoint_every_n_commits(0)
            .build()
    }

    #[test]
    fn commits_survive_a_reopen_via_wal_replay() {
        let dir = scratch_dir("reopen");
        {
            let s = Service::open(durable_config(&dir)).unwrap();
            let r = s.execute("ASSERT edge(1, 2), edge(2, 3)").unwrap();
            assert!(
                matches!(
                    r,
                    Response::Committed {
                        durable: Some(true),
                        ..
                    }
                ),
                "Always must flush before responding: {r:?}"
            );
            s.execute("DEFINE close := tau[forall x0 x1. edge(x0, x1) -> path(x0, x1)]")
                .unwrap();
            s.execute("APPLY close").unwrap();
            s.execute("RETRACT edge(2, 3)").unwrap();
        }
        let s = Service::open(durable_config(&dir)).unwrap();
        assert_eq!(s.epoch(), EpochId::new(4));
        assert_eq!(s.metrics().recovery_replayed_total.get(), 4);
        let snap = s.snapshot();
        let (path, _) = snap.vocab().lookup_relation("path").expect("replayed");
        assert_eq!(self::total_facts(snap.kb()), 3, "edge(1,2) + 2 paths");
        assert_eq!(s.certain(&snap, path).len(), 2);
        assert_eq!(snap.stats().commits, 4);
        // the chain session rebuilds transparently after recovery
        s.execute("ASSERT edge(5, 6)").unwrap();
        let r = s.execute("APPLY close").unwrap();
        assert!(matches!(r, Response::Applied { .. }));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoints_shorten_replay_and_walstat_reports() {
        let dir = scratch_dir("checkpoint");
        {
            let s = Service::open(durable_config(&dir)).unwrap();
            s.execute("ASSERT edge(1, 2)").unwrap();
            s.execute("ASSERT edge(2, 3)").unwrap();
            let r = s.execute("CHECKPOINT").unwrap();
            match r {
                Response::Checkpointed { epoch, ref file } => {
                    assert_eq!(epoch, EpochId::new(2));
                    assert!(file.starts_with("checkpoint-"), "{file}");
                }
                ref other => panic!("expected Checkpointed, got {other:?}"),
            }
            s.execute("ASSERT edge(3, 4)").unwrap();
            match s.execute("WALSTAT").unwrap() {
                Response::WalStat {
                    policy,
                    records,
                    durable_epoch,
                    checkpoint_epoch,
                    ..
                } => {
                    assert_eq!(policy, "always");
                    assert_eq!(records, 3);
                    assert_eq!(durable_epoch, 3);
                    assert_eq!(checkpoint_epoch, 2);
                }
                other => panic!("expected WalStat, got {other:?}"),
            }
        }
        let s = Service::open(durable_config(&dir)).unwrap();
        assert_eq!(s.epoch(), EpochId::new(3));
        // only the post-checkpoint tail replays
        assert_eq!(s.metrics().recovery_replayed_total.get(), 1);
        assert_eq!(total_facts(s.snapshot().kb()), 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn durability_commands_refuse_on_an_in_memory_service() {
        let s = service();
        for cmd in ["CHECKPOINT", "WALSTAT"] {
            match s.execute(cmd) {
                Err(ServiceError::DurabilityDisabled) => {}
                other => panic!("{cmd}: expected DurabilityDisabled, got {other:?}"),
            }
        }
        // and in-memory commits carry no durability claim
        let r = s.execute("ASSERT edge(1, 2)").unwrap();
        assert!(matches!(r, Response::Committed { durable: None, .. }));
    }

    #[test]
    fn never_policy_reports_not_durable_but_still_replays() {
        let dir = scratch_dir("never");
        let config = || {
            ServiceConfig::builder()
                .threads(1)
                .durable(&dir)
                .fsync_policy(crate::config::FsyncPolicy::Never)
                .build()
        };
        {
            let s = Service::open(config()).unwrap();
            let r = s.execute("ASSERT edge(1, 2)").unwrap();
            assert!(matches!(
                r,
                Response::Committed {
                    durable: Some(false),
                    ..
                }
            ));
        }
        let s = Service::open(config()).unwrap();
        assert_eq!(s.epoch(), EpochId::new(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
