//! The textual command language — parsing and rendering.
//!
//! One command per line.  Verbs are case-insensitive; everything after the
//! verb is parsed against a [`Vocabulary`] (the caller decides *which*
//! vocabulary: the writer path uses the authoritative one, the query path a
//! snapshot's clone).  Sentences inside `tau[…]` reuse
//! [`kbt_logic::parser`] unchanged, so the wire format for transformations
//! is exactly the parser/pretty-printer pair whose round-trip identity
//! `parse(pretty(φ)) == φ` is enforced by `crates/logic/tests/roundtrip.rs`.
//!
//! ```text
//! command  := LOAD <path>                       -- run a script file
//!           | CHECKPOINT                        -- durable only: snapshot the state now
//!           | WALSTAT                           -- durable only: write-ahead-log state
//!           | ASSERT <fact> ("," <fact>)*       -- commit: add facts to every world
//!           | RETRACT <fact> ("," <fact>)*      -- commit: remove facts from every world
//!           | DEFINE <name> := <texpr>          -- register a named transformation
//!           | APPLY <name>                      -- commit: kb := T(kb)
//!           | QUERY CERTAIN <goal>              -- snapshot read: facts true in every world
//!           | QUERY POSSIBLE <goal>             -- snapshot read: facts true in some world
//!           | QUERY <texpr>                     -- snapshot read: evaluate an expression
//!           | EXPLAIN <query>                   -- render the query's plan, no evaluation
//!           | PROFILE <query>                   -- evaluate + per-rule fixpoint breakdown
//!           | STATS                             -- service counters
//!           | METRICS                           -- metrics text exposition
//!           | "#" …                             -- comment (ignored), as are blank lines
//!
//! texpr    := step (";" step)*
//! step     := "tau[" <sentence> "]"             -- τ_φ, sentence per kbt_logic::parser
//!           | "glb" | "lub" | "id"              -- ⊓, ⊔, identity
//!           | "project[" <relation> ("," <relation>)* "]"   -- π
//!
//! goal     := <relation>                        -- every fact of the relation
//!           | <relation> "(" arg ("," arg)* ")" -- goal-directed point query
//! arg      := <const>                           -- a bound argument position
//!           | IDENT                             -- a free argument position
//!
//! fact     := <relation> "(" <const> ("," <const>)* ")" | <relation> "()"
//! const    := NUMBER | "'" chars "'"
//! ```
//!
//! The bound goal form (`QUERY CERTAIN reach('a', x)`) names an existing
//! relation with its exact arity; constants bind argument positions,
//! identifiers leave them free.  The relation must already be known
//! (`unknown-relation`) with the supplied argument count
//! (`arity-mismatch`) — a bound query never interns new names, so a typo
//! is an error rather than a silently empty answer.  Repeating a variable
//! (`reach(x, x)`) constrains the named positions to be equal.

use kbt_core::Transform;
use kbt_data::{Const, RelId, Tuple, Vocabulary};
use kbt_logic::parser::{parse_formula, parse_sentence};
use kbt_logic::{pretty, Formula, Term};

use crate::error::{Result, ServiceError};

/// The verb of a command line (the payload stays unparsed until the caller
/// supplies a vocabulary).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verb {
    /// Blank line or comment.
    Nop,
    Load,
    Assert,
    Retract,
    Define,
    Apply,
    Query,
    /// `EXPLAIN <query>` — render the query's evaluation plan without
    /// evaluating anything (see the crate-level *Observability* section).
    Explain,
    /// `PROFILE <query>` — evaluate the query and report a per-rule
    /// fixpoint breakdown alongside the result summary.
    Profile,
    Stats,
    /// `METRICS` — the Prometheus-style text exposition of every metric
    /// (see the crate-level *Observability* section).
    Metrics,
    /// `CHECKPOINT` — write an epoch snapshot to the data directory now
    /// (durable services only; see the crate-level *Durability* section).
    Checkpoint,
    /// `WALSTAT` — report write-ahead-log state: record/byte/fsync totals,
    /// the durable epoch and the newest checkpoint epoch.
    Walstat,
}

/// A parsed `QUERY` payload.
#[derive(Clone, Debug)]
pub enum QueryCmd {
    /// Facts holding in **every** world of the knowledgebase.
    Certain(QueryGoal),
    /// Facts holding in **at least one** world.
    Possible(QueryGoal),
    /// A transformation expression, evaluated read-only on the snapshot.
    Transform(Transform),
}

/// The goal of a `CERTAIN`/`POSSIBLE` query: a bare relation (all facts) or
/// a bound argument pattern (`reach('a', x)`) for the goal-directed path.
#[derive(Clone, Debug)]
pub struct QueryGoal {
    /// The queried relation.
    pub rel: RelId,
    /// `None` for the bare form; `Some(args)` carries one term per argument
    /// position — constants are bound, variables free.
    pub terms: Option<Vec<Term>>,
}

impl QueryGoal {
    /// A bare (all-facts) goal.
    pub fn bare(rel: RelId) -> Self {
        QueryGoal { rel, terms: None }
    }

    /// Whether any argument position is bound to a constant.
    pub fn is_bound(&self) -> bool {
        self.terms
            .as_ref()
            .is_some_and(|ts| ts.iter().any(|t| matches!(t, Term::Const(_))))
    }
}

fn parse_err(message: impl Into<String>) -> ServiceError {
    ServiceError::Parse {
        message: message.into(),
    }
}

/// Scanner state for logical-line splitting (shared by [`split_lines`] and
/// [`quote_open`]; the byte-level twin lives in [`crate::net::LineFramer`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum LineScan {
    /// At the start of a logical line (only ASCII whitespace seen so far).
    Start,
    /// Inside a `#` comment line: runs to the newline, quotes inert.
    Comment,
    /// Inside a command; `true` = a `'…'` constant is open.
    Command { in_quote: bool },
}

impl LineScan {
    /// Advances over one character; `true` means the logical line ends at
    /// this character (an unquoted newline) and the state has reset.
    pub(crate) fn step(&mut self, c: char) -> bool {
        match self {
            LineScan::Start => match c {
                '\n' => return true,
                ' ' | '\t' | '\r' => {}
                '#' => *self = LineScan::Comment,
                c => {
                    *self = LineScan::Command {
                        in_quote: c == '\'',
                    }
                }
            },
            LineScan::Comment => {
                if c == '\n' {
                    *self = LineScan::Start;
                    return true;
                }
            }
            LineScan::Command { in_quote } => match c {
                '\'' => *in_quote = !*in_quote,
                '\n' if !*in_quote => {
                    *self = LineScan::Start;
                    return true;
                }
                _ => {}
            },
        }
        false
    }
}

/// Splits script text into its **logical command lines**: one command per
/// unquoted newline.  A `'…'` quoted constant may legally contain `\n` (the
/// sentence lexer admits any character but `'` in there), so a command like
/// `ASSERT note('line one\nline two')` spans two physical lines but is one
/// logical command.  Comment lines — optional ASCII whitespace then `#` —
/// are line-scoped and quote-**inert**: an apostrophe in prose (`CI's`)
/// must not swallow the commands below it.  This is exactly the
/// continuation rule the network framer ([`crate::net::LineFramer`])
/// applies to its byte stream, and `tests/net_framing.rs` holds the two
/// splitters to the same output on the same text.
///
/// Lines are returned as written (no trimming, terminating newline
/// excluded); an unterminated quote runs to the end of the text.
pub fn split_lines(text: &str) -> Vec<&str> {
    let mut lines = Vec::new();
    let mut scan = LineScan::Start;
    let mut start = 0;
    for (i, c) in text.char_indices() {
        if scan.step(c) {
            lines.push(&text[start..i]);
            start = i + 1;
        }
    }
    if start < text.len() {
        lines.push(&text[start..]);
    }
    lines
}

/// Whether `text` ends inside an open `'…'` quote — i.e. a physical line
/// that still needs continuation before it forms a complete command (the
/// REPLs keep reading input until this turns false).  Quotes inside
/// comment lines do not count (see [`split_lines`]).
pub fn quote_open(text: &str) -> bool {
    let mut scan = LineScan::Start;
    for c in text.chars() {
        scan.step(c);
    }
    scan == LineScan::Command { in_quote: true }
}

/// Splits a command line into its verb and payload.
pub fn split_command(line: &str) -> Result<(Verb, &str)> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok((Verb::Nop, ""));
    }
    let (verb, rest) = match line.find(char::is_whitespace) {
        Some(i) => (&line[..i], line[i..].trim_start()),
        None => (line, ""),
    };
    let verb = match verb.to_ascii_uppercase().as_str() {
        "LOAD" => Verb::Load,
        "ASSERT" => Verb::Assert,
        "RETRACT" => Verb::Retract,
        "DEFINE" => Verb::Define,
        "APPLY" => Verb::Apply,
        "QUERY" => Verb::Query,
        "EXPLAIN" => Verb::Explain,
        "PROFILE" => Verb::Profile,
        "STATS" => Verb::Stats,
        "METRICS" => Verb::Metrics,
        "CHECKPOINT" => Verb::Checkpoint,
        "WALSTAT" => Verb::Walstat,
        other => return Err(parse_err(format!("unknown command {other:?}"))),
    };
    Ok((verb, rest))
}

/// Splits `text` on `sep` at bracket/paren nesting depth 0, ignoring
/// everything inside `'…'` quoted constants — the sentence lexer allows
/// any character but `'` in there, so `pair('a(b', 1)` is a legal fact
/// whose parenthesis must not desync the depth count.
fn split_top_level(text: &str, sep: char) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_quote = false;
    let mut start = 0;
    for (i, c) in text.char_indices() {
        match c {
            '\'' => in_quote = !in_quote,
            _ if in_quote => {}
            '(' | '[' => depth += 1,
            ')' | ']' => depth = depth.saturating_sub(1),
            c if c == sep && depth == 0 => {
                parts.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&text[start..]);
    parts
}

/// Parses a comma-separated list of ground facts, interning relation names
/// (with the observed arities) into `vocab`.
pub fn parse_fact_list(text: &str, vocab: &mut Vocabulary) -> Result<Vec<(RelId, Tuple)>> {
    if text.trim().is_empty() {
        return Err(parse_err("expected at least one fact"));
    }
    split_top_level(text, ',')
        .into_iter()
        .map(|part| parse_fact(part.trim(), vocab))
        .collect()
}

/// Parses one ground fact `relation(constants…)` by reusing the formula
/// parser and insisting on a ground atom.
fn parse_fact(text: &str, vocab: &mut Vocabulary) -> Result<(RelId, Tuple)> {
    let formula = parse_formula(text, vocab)?;
    let Formula::Atom(rel, args) = formula else {
        return Err(parse_err(format!(
            "expected a fact like edge(1, 2), found {text:?}"
        )));
    };
    let consts = args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Ok(*c),
            Term::Var(_) => Err(parse_err(format!(
                "facts must be ground (no variables): {text:?}"
            ))),
        })
        .collect::<Result<Vec<_>>>()?;
    Ok((rel, Tuple::new(consts)))
}

/// Parses a `DEFINE` payload `name := texpr`.
pub fn parse_define(text: &str, vocab: &mut Vocabulary) -> Result<(String, Transform)> {
    let Some((name, expr)) = text.split_once(":=") else {
        return Err(parse_err("expected DEFINE <name> := <transformation>"));
    };
    let name = name.trim();
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
    {
        return Err(parse_err(format!("invalid transformation name {name:?}")));
    }
    let transform = parse_transform(expr, vocab)?;
    Ok((name.to_string(), transform))
}

/// Parses a transformation expression (see the grammar in the module docs).
///
/// Two passes: `tau[…]` sentences first (interning every relation they
/// mention), then the remaining steps — so a `project[reach]` may name a
/// relation that only a *later* `tau` of the same expression introduces,
/// as in the refresh idiom `project[edge]; tau[…reach…]`.
///
/// The result is composed with [`Transform::then`], so degenerate forms
/// canonicalize (`id` steps drop out, a single remaining step is itself) —
/// rendering and re-parsing is then structurally idempotent.
pub fn parse_transform(text: &str, vocab: &mut Vocabulary) -> Result<Transform> {
    let parts = split_top_level(text, ';');
    let mut steps: Vec<Option<Transform>> = vec![None; parts.len()];
    for (slot, part) in steps.iter_mut().zip(&parts) {
        if let Some(inner) = bracket_payload(part.trim(), "tau") {
            *slot = Some(Transform::Insert(parse_sentence(inner, vocab)?));
        }
    }
    for (slot, part) in steps.iter_mut().zip(&parts) {
        if slot.is_none() {
            *slot = Some(parse_plain_step(part.trim(), vocab)?);
        }
    }
    Ok(steps
        .into_iter()
        .map(|s| s.expect("both passes fill every slot"))
        .fold(Transform::Identity, Transform::then))
}

/// Parses a non-`tau` step (`glb`, `lub`, `id`, `project[…]`).
fn parse_plain_step(step: &str, vocab: &mut Vocabulary) -> Result<Transform> {
    match step.to_ascii_lowercase().as_str() {
        "glb" => return Ok(Transform::Glb),
        "lub" => return Ok(Transform::Lub),
        "id" => return Ok(Transform::Identity),
        _ => {}
    }
    if let Some(inner) = bracket_payload(step, "project") {
        let rels = inner
            .split(',')
            .map(|name| {
                let name = name.trim();
                vocab
                    .lookup_relation(name)
                    .map(|(rel, _)| rel)
                    .ok_or_else(|| ServiceError::UnknownRelation(name.to_string()))
            })
            .collect::<Result<Vec<_>>>()?;
        return Ok(Transform::Project(rels));
    }
    Err(parse_err(format!(
        "expected tau[…], glb, lub, id or project[…], found {step:?}"
    )))
}

/// For `keyword[payload]` returns the payload; `None` if the shape differs.
fn bracket_payload<'a>(step: &'a str, keyword: &str) -> Option<&'a str> {
    step.strip_prefix(keyword)
        .map(str::trim_start)
        .and_then(|rest| rest.strip_prefix('['))
        .and_then(|rest| rest.strip_suffix(']'))
}

/// Parses a `QUERY` payload.
pub fn parse_query(text: &str, vocab: &mut Vocabulary) -> Result<QueryCmd> {
    let first = text.split_whitespace().next().unwrap_or("");
    let kind = first.to_ascii_uppercase();
    if kind == "CERTAIN" || kind == "POSSIBLE" {
        let rest = text.trim_start()[first.len()..].trim();
        let goal = parse_goal(rest, &kind, vocab)?;
        return Ok(match kind.as_str() {
            "CERTAIN" => QueryCmd::Certain(goal),
            _ => QueryCmd::Possible(goal),
        });
    }
    Ok(QueryCmd::Transform(parse_transform(text, vocab)?))
}

/// Parses the goal of a `CERTAIN`/`POSSIBLE` query: a bare relation name,
/// or the bound form `rel(arg, …)`.  The bound form resolves against the
/// vocabulary *before* the formula parser runs, so an unknown relation or
/// a wrong argument count is a typed error — never a silent intern that
/// would make a typo look like an empty answer.
fn parse_goal(rest: &str, kind: &str, vocab: &mut Vocabulary) -> Result<QueryGoal> {
    if rest.is_empty() {
        return Err(parse_err(format!("expected QUERY {kind} <relation>")));
    }
    let Some(paren) = rest.find('(') else {
        // Bare form: exactly one relation name.
        let mut words = rest.split_whitespace();
        let name = words.next().expect("rest is non-empty");
        if words.next().is_some() {
            return Err(parse_err(format!(
                "unexpected input after QUERY {kind} {name}"
            )));
        }
        let (rel, _) = vocab
            .lookup_relation(name)
            .ok_or_else(|| ServiceError::UnknownRelation(name.to_string()))?;
        return Ok(QueryGoal::bare(rel));
    };
    let name = rest[..paren].trim();
    let (rel, arity) = vocab
        .lookup_relation(name)
        .ok_or_else(|| ServiceError::UnknownRelation(name.to_string()))?;
    let inner = rest[paren..]
        .strip_prefix('(')
        .and_then(|s| s.trim_end().strip_suffix(')'))
        .ok_or_else(|| parse_err(format!("expected QUERY {kind} {name}(…)")))?;
    let found = if inner.trim().is_empty() {
        0
    } else {
        split_top_level(inner, ',').len()
    };
    if found != arity {
        return Err(ServiceError::ArityMismatch {
            relation: name.to_string(),
            expected: arity,
            found,
        });
    }
    let formula = parse_formula(rest, vocab)?;
    let Formula::Atom(parsed_rel, args) = formula else {
        return Err(parse_err(format!(
            "expected a goal like reach('a', x), found {rest:?}"
        )));
    };
    debug_assert_eq!(parsed_rel, rel, "goal pre-check resolved the same relation");
    Ok(QueryGoal {
        rel,
        terms: Some(args),
    })
}

/// Renders a transformation in the exact surface syntax [`parse_transform`]
/// accepts — the wire format for `DEFINE`d expressions.  Re-parsing the
/// result against the same vocabulary reproduces the transformation
/// structurally (`Seq` canonicalization included).
pub fn render_transform(t: &Transform, vocab: &Vocabulary) -> String {
    let steps = t.steps();
    if steps.is_empty() {
        return "id".to_string();
    }
    steps
        .iter()
        .map(|s| match s {
            Transform::Insert(phi) => {
                format!("tau[{}]", pretty::render(phi.formula(), Some(vocab)))
            }
            Transform::Glb => "glb".to_string(),
            Transform::Lub => "lub".to_string(),
            Transform::Project(rels) => {
                let names: Vec<String> = rels.iter().map(|r| render_relation(*r, vocab)).collect();
                format!("project[{}]", names.join(", "))
            }
            // steps() flattens Seq and drops Identity
            Transform::Identity | Transform::Seq(_) => unreachable!("flattened by steps()"),
        })
        .collect::<Vec<_>>()
        .join("; ")
}

/// A relation's surface name: the vocabulary name, or the `R<i>` fallback
/// the sentence parser would re-intern.
pub fn render_relation(rel: RelId, vocab: &Vocabulary) -> String {
    vocab
        .relation_name(rel)
        .map(str::to_string)
        .unwrap_or_else(|| format!("R{}", rel.index()))
}

/// Renders one fact in re-`ASSERT`able syntax: `edge(1, 2)`,
/// `city('Toronto')`.  Takes the fact as a raw row slice so callers can
/// feed relation rows without materialising tuples.
pub fn render_fact(rel: RelId, row: &[Const], vocab: &Vocabulary) -> String {
    let args: Vec<String> = row
        .iter()
        .copied()
        .map(|c| match vocab.constant_name(c) {
            Some(name) => format!("'{name}'"),
            None => format!("{}", c.index()),
        })
        .collect();
    format!("{}({})", render_relation(rel, vocab), args.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_lines_is_quote_aware() {
        assert_eq!(split_lines("a\nb\nc"), vec!["a", "b", "c"]);
        assert_eq!(split_lines("a\nb\n"), vec!["a", "b"]);
        assert_eq!(split_lines(""), Vec::<&str>::new());
        // a newline inside a quoted constant does not end the command
        assert_eq!(
            split_lines("ASSERT note('one\ntwo')\nSTATS"),
            vec!["ASSERT note('one\ntwo')", "STATS"]
        );
        // an unterminated quote runs to the end of the text
        assert_eq!(
            split_lines("ASSERT r('open\nrest"),
            vec!["ASSERT r('open\nrest"]
        );
        assert!(quote_open("ASSERT r('open"));
        assert!(!quote_open("ASSERT r('closed')"));
        // comments are line-scoped and quote-inert: an apostrophe in prose
        // must not swallow the commands below it
        assert_eq!(
            split_lines("# CI's job\nASSERT edge(1, 2)\n  # isn't one either\nSTATS"),
            vec![
                "# CI's job",
                "ASSERT edge(1, 2)",
                "  # isn't one either",
                "STATS"
            ]
        );
        assert!(!quote_open("# don't continue"));
        // …but '#' inside an open quote is payload, not a comment
        assert_eq!(
            split_lines("ASSERT note('x\n# quoted\ny')\nSTATS"),
            vec!["ASSERT note('x\n# quoted\ny')", "STATS"]
        );
    }

    #[test]
    fn verbs_are_case_insensitive_and_comments_are_nops() {
        assert_eq!(split_command("  stats ").unwrap().0, Verb::Stats);
        assert_eq!(split_command("Assert edge(1, 2)").unwrap().0, Verb::Assert);
        assert_eq!(split_command("explain lub").unwrap().0, Verb::Explain);
        assert_eq!(
            split_command("Profile CERTAIN edge").unwrap().0,
            Verb::Profile
        );
        assert_eq!(split_command("# hello").unwrap().0, Verb::Nop);
        assert_eq!(split_command("").unwrap().0, Verb::Nop);
        assert!(split_command("FROBNICATE x").is_err());
    }

    #[test]
    fn facts_parse_and_render_round_trip() {
        let mut v = Vocabulary::new();
        let facts = parse_fact_list("edge(1, 2), city('Toronto'), flag()", &mut v).unwrap();
        assert_eq!(facts.len(), 3);
        let rendered: Vec<String> = facts
            .iter()
            .map(|(r, t)| render_fact(*r, t.components(), &v))
            .collect();
        assert_eq!(rendered, ["edge(1, 2)", "city('Toronto')", "flag()"]);
        // and the rendering re-parses to the same typed facts
        let again = parse_fact_list(&rendered.join(", "), &mut v.clone()).unwrap();
        assert_eq!(again, facts);
    }

    #[test]
    fn quoted_constants_with_brackets_do_not_desync_splitting() {
        // the sentence lexer allows any character but ' inside quotes, so
        // the top-level splitters must not count bracketing in there
        let mut v = Vocabulary::new();
        let facts = parse_fact_list("pair('a(b', 1), pair('c]d', 2)", &mut v).unwrap();
        assert_eq!(facts.len(), 2);
        let rendered: Vec<String> = facts
            .iter()
            .map(|(r, t)| render_fact(*r, t.components(), &v))
            .collect();
        assert_eq!(
            parse_fact_list(&rendered.join(", "), &mut v.clone()).unwrap(),
            facts
        );
        let t = parse_transform("tau[R('x]y') | R('(')]; lub", &mut v).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn non_ground_or_non_atomic_facts_are_rejected() {
        let mut v = Vocabulary::new();
        assert!(parse_fact_list("edge(x, 2)", &mut v).is_err());
        assert!(parse_fact_list("edge(1, 2) & edge(2, 3)", &mut v).is_err());
        assert!(parse_fact_list("", &mut v).is_err());
    }

    #[test]
    fn transform_expressions_round_trip_through_the_wire_format() {
        let mut v = Vocabulary::new();
        let (name, t) = parse_define(
            "tc := tau[forall x0 x1. edge(x0, x1) -> path(x0, x1)]; \
             tau[forall x0 x1 x2. path(x0, x1) & edge(x1, x2) -> path(x0, x2)]; \
             project[path]",
            &mut v,
        )
        .unwrap();
        assert_eq!(name, "tc");
        assert_eq!(t.len(), 3);
        let text = render_transform(&t, &v);
        let again = parse_transform(&text, &mut v.clone()).unwrap();
        assert_eq!(again, t, "wire format must round-trip: {text:?}");
    }

    #[test]
    fn degenerate_expressions_canonicalize() {
        let mut v = Vocabulary::new();
        assert_eq!(parse_transform("id", &mut v).unwrap(), Transform::Identity);
        assert_eq!(
            parse_transform("id; id", &mut v).unwrap(),
            Transform::Identity
        );
        assert_eq!(render_transform(&Transform::Identity, &v), "id");
        assert_eq!(
            parse_transform("glb; id", &mut v).unwrap(),
            Transform::Glb,
            "singleton sequences collapse"
        );
    }

    #[test]
    fn project_may_reference_relations_a_later_tau_introduces() {
        // the refresh idiom: drop the derived relation, then re-derive it
        let mut v = Vocabulary::new();
        let t = parse_transform(
            "project[edge]; tau[forall x0 x1. edge(x0, x1) -> reach(x0, x1)]",
            &mut v,
        )
        .unwrap();
        assert_eq!(t.len(), 2);
        let text = render_transform(&t, &v);
        assert_eq!(parse_transform(&text, &mut v.clone()).unwrap(), t);
    }

    #[test]
    fn project_requires_known_relations() {
        let mut v = Vocabulary::new();
        assert!(matches!(
            parse_transform("project[nowhere]", &mut v),
            Err(ServiceError::UnknownRelation(_))
        ));
        v.relation("edge", 2).unwrap();
        assert_eq!(
            parse_transform("project[edge]", &mut v).unwrap(),
            Transform::Project(vec![RelId::new(0)])
        );
    }

    #[test]
    fn queries_parse_into_the_three_shapes() {
        let mut v = Vocabulary::new();
        v.relation("edge", 2).unwrap();
        assert!(matches!(
            parse_query("CERTAIN edge", &mut v).unwrap(),
            QueryCmd::Certain(_)
        ));
        assert!(matches!(
            parse_query("possible edge", &mut v).unwrap(),
            QueryCmd::Possible(_)
        ));
        assert!(matches!(
            parse_query("lub; project[edge]", &mut v).unwrap(),
            QueryCmd::Transform(_)
        ));
        assert!(parse_query("CERTAIN nowhere", &mut v).is_err());
        assert!(parse_query("CERTAIN", &mut v).is_err());
    }

    #[test]
    fn bound_goals_parse_with_constants_and_free_variables() {
        let mut v = Vocabulary::new();
        v.relation("reach", 2).unwrap();
        let QueryCmd::Certain(goal) = parse_query("CERTAIN reach('a', x)", &mut v).unwrap() else {
            panic!("expected a certain goal");
        };
        assert!(goal.is_bound());
        let terms = goal.terms.as_ref().unwrap();
        assert_eq!(terms.len(), 2);
        assert!(matches!(terms[0], Term::Const(_)));
        assert!(matches!(terms[1], Term::Var(_)));

        // All-free and fully-bound patterns are both legal goals.
        let QueryCmd::Possible(goal) = parse_query("POSSIBLE reach(x, y)", &mut v).unwrap() else {
            panic!("expected a possible goal");
        };
        assert!(!goal.is_bound());
        assert!(goal.terms.is_some());
        let QueryCmd::Certain(goal) = parse_query("CERTAIN reach('a', 'b')", &mut v).unwrap()
        else {
            panic!("expected a certain goal");
        };
        assert!(goal.is_bound());

        // The bare form still parses as before.
        let QueryCmd::Certain(goal) = parse_query("CERTAIN reach", &mut v).unwrap() else {
            panic!("expected a certain goal");
        };
        assert!(goal.terms.is_none());
    }

    #[test]
    fn bound_goals_reject_unknown_relations_and_wrong_arity() {
        let mut v = Vocabulary::new();
        v.relation("reach", 2).unwrap();
        assert!(matches!(
            parse_query("CERTAIN nowhere('a', x)", &mut v),
            Err(ServiceError::UnknownRelation(_))
        ));
        assert!(matches!(
            parse_query("CERTAIN reach('a')", &mut v),
            Err(ServiceError::ArityMismatch {
                expected: 2,
                found: 1,
                ..
            })
        ));
        assert!(matches!(
            parse_query("POSSIBLE reach('a', x, y)", &mut v),
            Err(ServiceError::ArityMismatch {
                expected: 2,
                found: 3,
                ..
            })
        ));
        // The pre-checks never intern: the vocabulary is unchanged after
        // a rejected goal.
        assert_eq!(v.relation_count(), 1);
    }
}
