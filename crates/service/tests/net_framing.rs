//! Differential proptest for the wire framing layer: on the same text, the
//! incremental [`LineFramer`] — fed the bytes in adversarial chunks — must
//! yield exactly the logical command lines the batch splitter
//! [`split_lines`] yields.  The framer is what the server trusts to
//! segment a TCP byte stream; the splitter is what scripts and
//! `execute_script` use; if they ever disagreed, the same script would
//! mean different things locally and over the wire.
//!
//! The generated streams are deliberately nasty: quoted constants
//! containing newlines, quote characters toggling state mid-stream
//! (including unbalanced quotes running to EOF), multi-byte UTF-8
//! characters that chunk boundaries split mid-encoding, empty lines, and
//! many pipelined commands in one "segment".  Chunk boundaries are part of
//! the generated input, so every shrinkage of a failure would pinpoint
//! both the text and the read pattern that broke.

use kbt_service::command::split_lines;
use kbt_service::net::LineFramer;
use proptest::prelude::*;

/// One building block of the generated stream text.
#[derive(Clone, Debug)]
enum Piece {
    /// A plausible command fragment (ASCII, no quotes or newlines).
    Word(&'static str),
    /// A quoted constant with adversarial contents (newlines, brackets,
    /// multi-byte UTF-8) — always balanced.
    Quoted(&'static str),
    /// A lone quote character: toggles quote state, may leave it open.
    Quote,
    /// A physical newline: a command boundary iff no quote is open.
    Newline,
    /// Multi-byte UTF-8 outside quotes (chunking must not corrupt it).
    Unicode(&'static str),
}

const WORDS: &[&str] = &[
    "ASSERT edge(1, 2)",
    "QUERY CERTAIN edge",
    "STATS",
    "DEFINE t := lub",
    "RETRACT edge(2, 3), edge(3, 4)",
    " ",
    "#comment",
    "",
];

const QUOTED: &[&str] = &[
    "'Toronto'",
    "'two\nlines'",
    "'a(b'",
    "'c]d,'",
    "'Montréal'",
    "'\n\n'",
    "'→ arrow'",
];

const UNICODE: &[&str] = &["é", "→", "königsberg", "…"];

fn decode_piece(code: (u8, u8)) -> Piece {
    let (kind, pick) = code;
    match kind % 8 {
        0 | 1 => Piece::Word(WORDS[pick as usize % WORDS.len()]),
        2 | 3 => Piece::Quoted(QUOTED[pick as usize % QUOTED.len()]),
        4 => Piece::Quote,
        5 | 6 => Piece::Newline,
        _ => Piece::Unicode(UNICODE[pick as usize % UNICODE.len()]),
    }
}

fn render(pieces: &[Piece]) -> String {
    let mut out = String::new();
    for piece in pieces {
        match piece {
            Piece::Word(w) => out.push_str(w),
            Piece::Quoted(q) => out.push_str(q),
            Piece::Quote => out.push('\''),
            Piece::Newline => out.push('\n'),
            Piece::Unicode(u) => out.push_str(u),
        }
    }
    out
}

/// The stream text, as pieces.
fn arb_pieces() -> impl Strategy<Value = Vec<Piece>> {
    proptest::collection::vec((0u8..255u8, 0u8..255u8), 0..60)
        .prop_map(|codes| codes.into_iter().map(decode_piece).collect())
}

/// The chunk-length schedule the framer is fed with (lengths are in
/// *bytes* and may split UTF-8 encodings).
fn arb_schedule() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..17, 1..80)
}

/// Feeds `text` to a fresh framer in the chunk sizes of `schedule`
/// (cycling; remainder in one chunk), collecting every yielded line.
fn frame_in_chunks(text: &str, schedule: &[usize]) -> Vec<String> {
    let bytes = text.as_bytes();
    // cap far above any generated line so the differential never trips it
    let mut framer = LineFramer::new(1 << 20);
    let mut out = Vec::new();
    let mut offset = 0;
    let mut schedule = schedule.iter().cycle();
    while offset < bytes.len() {
        let n = (*schedule.next().expect("cycled")).min(bytes.len() - offset);
        framer.push(&bytes[offset..offset + n]);
        offset += n;
        while let Some(line) = framer.next_line().expect("valid UTF-8 input") {
            out.push(line);
        }
    }
    if let Some(tail) = framer.finish().expect("valid UTF-8 input") {
        out.push(tail);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn framer_agrees_with_the_batch_splitter(pieces in arb_pieces(), schedule in arb_schedule()) {
        let text = render(&pieces);
        let expected: Vec<String> =
            split_lines(&text).into_iter().map(str::to_string).collect();
        let framed = frame_in_chunks(&text, &schedule);
        // (on failure the shim reports both sides; text and chunk schedule
        // are recoverable from the printed vectors)
        prop_assert_eq!(framed, expected);
    }
}

#[test]
fn framer_agrees_on_handwritten_adversarial_streams() {
    for text in [
        "",
        "\n",
        "STATS",
        "STATS\n",
        "ASSERT note('one\ntwo')\nSTATS\n",
        "ASSERT pair('a(b', 1), pair('c]d', 2)\nQUERY CERTAIN pair",
        "unbalanced 'quote runs\nto the end",
        "'\n'\n'\n",
        "é→…\n'é\n→'\n",
        "a\r\nb\r\n", // CR is payload, not a terminator
    ] {
        let expected: Vec<String> = split_lines(text).into_iter().map(str::to_string).collect();
        for chunk in [1usize, 2, 3, 7] {
            let framed = frame_in_chunks(text, &[chunk]);
            assert_eq!(framed, expected, "text {text:?} at chunk size {chunk}");
        }
    }
}
