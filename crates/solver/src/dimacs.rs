//! DIMACS CNF import and export.
//!
//! Useful for debugging grounded update instances with external tools and for
//! loading standard benchmark formulas into the Theorem 4.2 experiments.

use crate::cnf::{BoolVar, Clause, Cnf, Lit};

/// Renders a CNF formula in DIMACS format.
pub fn to_dimacs(cnf: &Cnf) -> String {
    let mut out = String::new();
    out.push_str(&format!("p cnf {} {}\n", cnf.num_vars(), cnf.num_clauses()));
    for clause in cnf.clauses() {
        for lit in clause.literals() {
            let v = lit.var.index() as i64 + 1;
            out.push_str(&format!("{} ", if lit.positive { v } else { -v }));
        }
        out.push_str("0\n");
    }
    out
}

/// Parses a DIMACS CNF file.
///
/// Comment lines (`c …`) are skipped; the `p cnf` header is optional but, if
/// present, the declared variable count is respected as a lower bound.
pub fn from_dimacs(input: &str) -> Result<Cnf, String> {
    let mut cnf = Cnf::new(0);
    let mut current: Vec<Lit> = Vec::new();
    for (lineno, line) in input.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if line.starts_with('p') {
            let parts: Vec<&str> = line.split_whitespace().collect();
            if parts.len() != 4 || parts[1] != "cnf" {
                return Err(format!("line {}: malformed problem line", lineno + 1));
            }
            let declared: u32 = parts[2]
                .parse()
                .map_err(|_| format!("line {}: bad variable count", lineno + 1))?;
            if declared > 0 {
                cnf.ensure_var(BoolVar::new(declared - 1));
            }
            continue;
        }
        for tok in line.split_whitespace() {
            let n: i64 = tok
                .parse()
                .map_err(|_| format!("line {}: bad literal {tok:?}", lineno + 1))?;
            if n == 0 {
                cnf.add_clause(Clause::new(std::mem::take(&mut current)));
            } else {
                let var = BoolVar::new((n.unsigned_abs() - 1) as u32);
                current.push(Lit::new(var, n > 0));
            }
        }
    }
    if !current.is_empty() {
        cnf.add_clause(Clause::new(current));
    }
    Ok(cnf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpll::Solver;

    #[test]
    fn round_trips_a_small_formula() {
        let mut cnf = Cnf::new(3);
        cnf.add_clause(Clause::new(vec![
            BoolVar::new(0).positive(),
            BoolVar::new(1).negative(),
        ]));
        cnf.add_clause(Clause::new(vec![BoolVar::new(2).positive()]));
        let text = to_dimacs(&cnf);
        assert!(text.starts_with("p cnf 3 2"));
        let parsed = from_dimacs(&text).unwrap();
        assert_eq!(parsed.num_vars(), 3);
        assert_eq!(parsed.num_clauses(), 2);
        assert_eq!(parsed.clauses(), cnf.clauses());
    }

    #[test]
    fn parses_comments_and_multiline_clauses() {
        let text = "c a comment\np cnf 2 2\n1 -2 0\n2\n1 0\n";
        let cnf = from_dimacs(text).unwrap();
        assert_eq!(cnf.num_clauses(), 2);
        assert_eq!(cnf.clauses()[1].literals().len(), 2);
        assert!(Solver::from_cnf(&cnf).is_satisfiable());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_dimacs("p cnf x 2\n").is_err());
        assert!(from_dimacs("1 two 0\n").is_err());
        assert!(from_dimacs("p dnf 2 2\n").is_err());
    }
}
