//! The Tseitin transformation: Boolean circuits to equisatisfiable CNF.
//!
//! Each internal gate of the circuit gets a fresh definition variable and a
//! constant number of clauses, so the CNF stays linear in the circuit size —
//! important because grounding a universally quantified sentence over a
//! domain of size `|B|` already multiplies the formula by `|B|^k`.

use crate::circuit::Bool;
use crate::cnf::{Clause, Cnf, Lit};

/// The result of encoding a sub-circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Encoded {
    /// The sub-circuit is constantly true or false.
    Const(bool),
    /// The sub-circuit's value is carried by this literal.
    Literal(Lit),
}

/// Encodes a circuit into `cnf`, returning a literal (or constant) equivalent
/// to the circuit's output under the added definitional clauses.
pub fn encode_circuit(circuit: &Bool, cnf: &mut Cnf) -> Encoded {
    match circuit {
        Bool::True => Encoded::Const(true),
        Bool::False => Encoded::Const(false),
        Bool::Var(v) => {
            cnf.ensure_var(*v);
            Encoded::Literal(v.positive())
        }
        Bool::Not(inner) => match encode_circuit(inner, cnf) {
            Encoded::Const(b) => Encoded::Const(!b),
            Encoded::Literal(l) => Encoded::Literal(l.negated()),
        },
        Bool::And(parts) => {
            let mut lits = Vec::with_capacity(parts.len());
            for p in parts {
                match encode_circuit(p, cnf) {
                    Encoded::Const(false) => return Encoded::Const(false),
                    Encoded::Const(true) => {}
                    Encoded::Literal(l) => lits.push(l),
                }
            }
            match lits.len() {
                0 => Encoded::Const(true),
                1 => Encoded::Literal(lits[0]),
                _ => {
                    let g = cnf.fresh_var();
                    // (¬g ∨ l_i) for every conjunct
                    for &l in &lits {
                        cnf.add_clause(Clause::new(vec![g.negative(), l]));
                    }
                    // (g ∨ ¬l_1 ∨ … ∨ ¬l_n)
                    let mut big: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
                    big.push(g.positive());
                    cnf.add_clause(Clause::new(big));
                    Encoded::Literal(g.positive())
                }
            }
        }
        Bool::Or(parts) => {
            let mut lits = Vec::with_capacity(parts.len());
            for p in parts {
                match encode_circuit(p, cnf) {
                    Encoded::Const(true) => return Encoded::Const(true),
                    Encoded::Const(false) => {}
                    Encoded::Literal(l) => lits.push(l),
                }
            }
            match lits.len() {
                0 => Encoded::Const(false),
                1 => Encoded::Literal(lits[0]),
                _ => {
                    let g = cnf.fresh_var();
                    // (g ∨ ¬l_i) for every disjunct
                    for &l in &lits {
                        cnf.add_clause(Clause::new(vec![g.positive(), l.negated()]));
                    }
                    // (¬g ∨ l_1 ∨ … ∨ l_n)
                    let mut big: Vec<Lit> = lits.clone();
                    big.push(g.negative());
                    cnf.add_clause(Clause::new(big));
                    Encoded::Literal(g.positive())
                }
            }
        }
    }
}

/// Adds clauses to `cnf` asserting that the circuit is true.
pub fn assert_circuit(circuit: &Bool, cnf: &mut Cnf) {
    match encode_circuit(circuit, cnf) {
        Encoded::Const(true) => {}
        Encoded::Const(false) => cnf.add_clause(Clause::new(vec![])),
        Encoded::Literal(l) => cnf.add_clause(Clause::new(vec![l])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::BoolVar;
    use crate::dpll::{SolveResult, Solver};

    fn v(i: u32) -> Bool {
        Bool::Var(BoolVar::new(i))
    }

    /// Exhaustively checks that the Tseitin encoding preserves the models of
    /// the circuit when projected onto the original variables.
    fn check_equivalence(circuit: &Bool, num_original_vars: u32) {
        let mut cnf = Cnf::new(num_original_vars);
        assert_circuit(circuit, &mut cnf);
        for bits in 0..(1u32 << num_original_vars) {
            let assignment: Vec<bool> = (0..num_original_vars)
                .map(|i| bits & (1 << i) != 0)
                .collect();
            let direct = circuit.evaluate(&assignment);
            // solve with the original variables fixed by assumptions
            let solver = Solver::from_cnf(&cnf);
            let assumptions: Vec<Lit> = (0..num_original_vars)
                .map(|i| Lit::new(BoolVar::new(i), assignment[i as usize]))
                .collect();
            let encoded = matches!(solver.solve(&assumptions), SolveResult::Sat(_));
            assert_eq!(direct, encoded, "mismatch for assignment {assignment:?}");
        }
    }

    #[test]
    fn encodes_and_or_not_faithfully() {
        let c = Bool::or(vec![
            Bool::and(vec![v(0), v(1)]),
            Bool::and(vec![v(2).negate(), v(0)]),
        ]);
        check_equivalence(&c, 3);
    }

    #[test]
    fn encodes_nested_negations() {
        let c = Bool::and(vec![
            Bool::or(vec![v(0), v(1), v(2)]).negate(),
            Bool::or(vec![v(0).negate(), v(1)]),
        ]);
        check_equivalence(&c, 3);
    }

    #[test]
    fn constants_short_circuit() {
        let mut cnf = Cnf::new(2);
        assert_eq!(
            encode_circuit(&Bool::and(vec![Bool::True, Bool::True]), &mut cnf),
            Encoded::Const(true)
        );
        assert_eq!(
            encode_circuit(&Bool::and(vec![v(0), Bool::False]), &mut cnf),
            Encoded::Const(false)
        );
        assert_eq!(cnf.num_clauses(), 0);

        assert_circuit(&Bool::False, &mut cnf);
        assert_eq!(cnf.num_clauses(), 1);
        assert!(cnf.clauses()[0].is_empty());
    }

    #[test]
    fn encoding_is_linear_in_circuit_size() {
        // a long conjunction of disjunctions
        let parts: Vec<Bool> = (0..20)
            .map(|i| Bool::or(vec![v(2 * i), v(2 * i + 1).negate()]))
            .collect();
        let c = Bool::and(parts);
        let mut cnf = Cnf::new(40);
        assert_circuit(&c, &mut cnf);
        assert!(cnf.num_clauses() <= 3 * c.size());
    }
}
