//! Propositional variables, literals, clauses and CNF formulas.

use std::fmt;

/// A propositional variable, identified by a dense index.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoolVar(pub u32);

impl BoolVar {
    /// Creates the variable with the given index.
    pub const fn new(i: u32) -> Self {
        BoolVar(i)
    }

    /// The index of the variable.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub const fn positive(self) -> Lit {
        Lit {
            var: self,
            positive: true,
        }
    }

    /// The negative literal of this variable.
    pub const fn negative(self) -> Lit {
        Lit {
            var: self,
            positive: false,
        }
    }
}

impl fmt::Debug for BoolVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit {
    /// The underlying variable.
    pub var: BoolVar,
    /// `true` for the positive literal, `false` for the negated one.
    pub positive: bool,
}

impl Lit {
    /// Builds a literal.
    pub const fn new(var: BoolVar, positive: bool) -> Self {
        Lit { var, positive }
    }

    /// The complementary literal.
    pub const fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Whether this literal is satisfied by the given value of its variable.
    pub const fn satisfied_by(self, value: bool) -> bool {
        self.positive == value
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{:?}", self.var)
        } else {
            write!(f, "¬{:?}", self.var)
        }
    }
}

/// A clause: a disjunction of literals.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Clause(pub Vec<Lit>);

impl Clause {
    /// Builds a clause from literals.
    pub fn new(lits: impl Into<Vec<Lit>>) -> Self {
        Clause(lits.into())
    }

    /// The literals of the clause.
    pub fn literals(&self) -> &[Lit] {
        &self.0
    }

    /// Whether the clause is empty (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether the clause is a tautology (contains `l` and `¬l`).
    pub fn is_tautology(&self) -> bool {
        self.0.iter().any(|&l| self.0.contains(&l.negated()))
    }
}

/// A CNF formula: a conjunction of clauses over a fixed number of variables.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// An empty formula over `num_vars` variables (trivially satisfiable).
    pub fn new(num_vars: u32) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> BoolVar {
        let v = BoolVar::new(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Makes sure the formula knows about variables up to `v`.
    pub fn ensure_var(&mut self, v: BoolVar) {
        if v.0 >= self.num_vars {
            self.num_vars = v.0 + 1;
        }
    }

    /// Adds a clause, growing the variable count if needed.
    pub fn add_clause(&mut self, clause: Clause) {
        for lit in clause.literals() {
            self.ensure_var(lit.var);
        }
        self.clauses.push(clause);
    }

    /// The clauses of the formula.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Evaluates the formula under a total assignment.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.literals()
                .iter()
                .any(|l| l.satisfied_by(assignment[l.var.index()]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(v: u32, pos: bool) -> Lit {
        Lit::new(BoolVar::new(v), pos)
    }

    #[test]
    fn literal_negation_and_satisfaction() {
        let l = lit(3, true);
        assert_eq!(l.negated(), lit(3, false));
        assert_eq!(l.negated().negated(), l);
        assert!(l.satisfied_by(true));
        assert!(!l.satisfied_by(false));
        assert!(l.negated().satisfied_by(false));
    }

    #[test]
    fn tautology_detection() {
        assert!(Clause::new(vec![lit(1, true), lit(1, false)]).is_tautology());
        assert!(!Clause::new(vec![lit(1, true), lit(2, false)]).is_tautology());
        assert!(Clause::new(vec![]).is_empty());
    }

    #[test]
    fn cnf_bookkeeping_and_evaluation() {
        let mut cnf = Cnf::new(0);
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause(Clause::new(vec![a.positive(), b.positive()]));
        cnf.add_clause(Clause::new(vec![a.negative(), b.negative()]));
        assert_eq!(cnf.num_vars(), 2);
        assert_eq!(cnf.num_clauses(), 2);
        assert!(cnf.evaluate(&[true, false]));
        assert!(cnf.evaluate(&[false, true]));
        assert!(!cnf.evaluate(&[true, true]));
        assert!(!cnf.evaluate(&[false, false]));
    }

    #[test]
    fn add_clause_grows_variable_count() {
        let mut cnf = Cnf::new(0);
        cnf.add_clause(Clause::new(vec![lit(9, true)]));
        assert_eq!(cnf.num_vars(), 10);
    }
}
