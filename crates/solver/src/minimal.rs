//! Enumeration of subset-minimal models.
//!
//! The Winslett order minimises, per relation, the set of facts on which a
//! candidate database differs from the original database — i.e. a *set of
//! propositional variables* once the update has been grounded.  This module
//! provides the two primitives the update evaluator needs:
//!
//! * [`shrink_to_minimal`] — given one satisfying assignment, walk down to a
//!   model whose projection onto the chosen variables is subset-minimal, and
//! * [`enumerate_minimal_models`] — enumerate *all* minimal projections using
//!   the classical blocking-clause loop (each found minimal set `M` is
//!   excluded by the clause `⋁_{v ∈ M} ¬v`, which removes exactly the models
//!   whose projection contains `M` and therefore no other minimal set).

use std::collections::BTreeSet;

use crate::cnf::{BoolVar, Lit};
use crate::dpll::{Model, SolveResult, Solver};

/// Given a model of `solver ∧ assumptions`, returns a set `S` of
/// `minimize_vars` that is subset-minimal among the projections of models of
/// `solver ∧ assumptions` onto `minimize_vars`, with `S` contained in the
/// projection of the starting model.
pub fn shrink_to_minimal(
    solver: &Solver,
    minimize_vars: &[BoolVar],
    assumptions: &[Lit],
    start: &Model,
) -> BTreeSet<BoolVar> {
    let value = |m: &Model, v: BoolVar| m.get(v.index()).copied().unwrap_or(false);
    let mut current: BTreeSet<BoolVar> = minimize_vars
        .iter()
        .copied()
        .filter(|&v| value(start, v))
        .collect();

    'outer: loop {
        for &candidate in current.clone().iter() {
            // Try to find a model where everything outside `current` stays
            // false and `candidate` becomes false as well.
            let mut assump: Vec<Lit> = assumptions.to_vec();
            for &v in minimize_vars {
                if !current.contains(&v) {
                    assump.push(v.negative());
                }
            }
            assump.push(candidate.negative());
            if let SolveResult::Sat(m) = solver.solve(&assump) {
                current = minimize_vars
                    .iter()
                    .copied()
                    .filter(|&v| value(&m, v))
                    .collect();
                continue 'outer;
            }
        }
        return current;
    }
}

/// Enumerates every subset-minimal projection of the models of
/// `solver ∧ assumptions` onto `minimize_vars`.
///
/// The solver is cloned internally, so the caller's solver is left untouched
/// (blocking clauses are local to the enumeration).  `limit` bounds the
/// number of minimal sets returned (`None` for all of them).
pub fn enumerate_minimal_models(
    solver: &Solver,
    minimize_vars: &[BoolVar],
    assumptions: &[Lit],
    limit: Option<usize>,
) -> Vec<BTreeSet<BoolVar>> {
    let mut work = solver.clone();
    let mut results: Vec<BTreeSet<BoolVar>> = Vec::new();
    loop {
        if let Some(l) = limit {
            if results.len() >= l {
                return results;
            }
        }
        match work.solve(assumptions) {
            SolveResult::Unsat => return results,
            SolveResult::Sat(m) => {
                let minimal = shrink_to_minimal(&work, minimize_vars, assumptions, &m);
                let blocking: Vec<Lit> = minimal.iter().map(|v| v.negative()).collect();
                results.push(minimal);
                if blocking.is_empty() {
                    // The empty projection is the unique minimal one.
                    return results;
                }
                work.add_clause(&blocking);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> BoolVar {
        BoolVar::new(i)
    }

    fn set(vars: &[u32]) -> BTreeSet<BoolVar> {
        vars.iter().map(|&i| v(i)).collect()
    }

    #[test]
    fn single_minimal_model_of_a_positive_clause_set() {
        // (a) ∧ (¬a ∨ b): unique minimal model over {a,b} is {a,b}.
        let mut s = Solver::new(2);
        s.add_clause(&[v(0).positive()]);
        s.add_clause(&[v(0).negative(), v(1).positive()]);
        let minimal = enumerate_minimal_models(&s, &[v(0), v(1)], &[], None);
        assert_eq!(minimal, vec![set(&[0, 1])]);
    }

    #[test]
    fn disjunction_yields_two_incomparable_minimal_models() {
        // (a ∨ b): minimal models over {a,b} are {a} and {b}.
        let mut s = Solver::new(2);
        s.add_clause(&[v(0).positive(), v(1).positive()]);
        let mut minimal = enumerate_minimal_models(&s, &[v(0), v(1)], &[], None);
        minimal.sort();
        assert_eq!(minimal, vec![set(&[0]), set(&[1])]);
    }

    #[test]
    fn empty_set_is_the_unique_minimal_model_when_feasible() {
        // (a ∨ ¬b): the all-false assignment works, so {} is the only minimal set.
        let mut s = Solver::new(2);
        s.add_clause(&[v(0).positive(), v(1).negative()]);
        let minimal = enumerate_minimal_models(&s, &[v(0), v(1)], &[], None);
        assert_eq!(minimal, vec![set(&[])]);
    }

    #[test]
    fn minimisation_is_projected_other_variables_are_existential() {
        // (a ∨ x) ∧ (¬x ∨ b) with minimisation over {a, b} only.
        // Models: x=true requires b; x=false requires a.  Minimal projections
        // over {a,b}: {} is impossible (x true forces b, x false forces a);
        // {a} (x=false) and {b} (x=true) are both minimal.
        let mut s = Solver::new(3);
        let (a, b, x) = (v(0), v(1), v(2));
        s.add_clause(&[a.positive(), x.positive()]);
        s.add_clause(&[x.negative(), b.positive()]);
        let mut minimal = enumerate_minimal_models(&s, &[a, b], &[], None);
        minimal.sort();
        assert_eq!(minimal, vec![set(&[0]), set(&[1])]);
    }

    #[test]
    fn assumptions_are_respected() {
        // (a ∨ b), assuming ¬a: only minimal model is {b}.
        let mut s = Solver::new(2);
        s.add_clause(&[v(0).positive(), v(1).positive()]);
        let minimal = enumerate_minimal_models(&s, &[v(0), v(1)], &[v(0).negative()], None);
        assert_eq!(minimal, vec![set(&[1])]);
    }

    #[test]
    fn unsatisfiable_formula_has_no_minimal_models() {
        let mut s = Solver::new(1);
        s.add_clause(&[v(0).positive()]);
        s.add_clause(&[v(0).negative()]);
        assert!(enumerate_minimal_models(&s, &[v(0)], &[], None).is_empty());
    }

    #[test]
    fn limit_truncates_enumeration() {
        // (a ∨ b ∨ c) has three minimal models; ask for at most two.
        let mut s = Solver::new(3);
        s.add_clause(&[v(0).positive(), v(1).positive(), v(2).positive()]);
        let minimal = enumerate_minimal_models(&s, &[v(0), v(1), v(2)], &[], Some(2));
        assert_eq!(minimal.len(), 2);
    }

    #[test]
    fn agrees_with_brute_force_on_random_instances() {
        let mut seed = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..20 {
            let num_vars = 5usize;
            let mut s = Solver::new(num_vars);
            let mut clauses = Vec::new();
            for _ in 0..8 {
                let mut lits = Vec::new();
                for _ in 0..3 {
                    let var = (next() % num_vars as u64) as u32;
                    let pos = next() % 2 == 0;
                    lits.push(Lit::new(BoolVar::new(var), pos));
                }
                clauses.push(lits.clone());
                s.add_clause(&lits);
            }
            let all_vars: Vec<BoolVar> = (0..num_vars as u32).map(BoolVar::new).collect();

            // brute force: all models, then filter the subset-minimal ones
            let models: Vec<BTreeSet<BoolVar>> = (0..(1u32 << num_vars))
                .filter(|bits| {
                    clauses.iter().all(|c| {
                        c.iter()
                            .any(|l| l.satisfied_by(bits & (1 << l.var.index()) != 0))
                    })
                })
                .map(|bits| {
                    (0..num_vars as u32)
                        .filter(|i| bits & (1 << i) != 0)
                        .map(BoolVar::new)
                        .collect::<BTreeSet<_>>()
                })
                .collect();
            let mut expected: Vec<BTreeSet<BoolVar>> = models
                .iter()
                .filter(|m| !models.iter().any(|o| o != *m && o.is_subset(m)))
                .cloned()
                .collect();
            expected.sort();
            expected.dedup();

            let mut found = enumerate_minimal_models(&s, &all_vars, &[], None);
            found.sort();
            assert_eq!(found, expected);
        }
    }
}
