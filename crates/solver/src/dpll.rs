//! A DPLL satisfiability solver with unit propagation and assumptions.
//!
//! The solver is deliberately straightforward — no clause learning, no
//! restarts — because the instances produced by grounding transformation
//! updates over realistic active domains are small, and the minimal-model
//! enumeration loop in [`crate::minimal`] needs nothing more than a correct,
//! incremental `solve(assumptions)` primitive.

use crate::cnf::{BoolVar, Clause, Cnf, Lit};

/// A total assignment: `model[v.index()]` is the value of variable `v`.
pub type Model = Vec<bool>;

/// Outcome of a satisfiability call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolveResult {
    /// Satisfiable, with a witnessing total assignment.
    Sat(Model),
    /// Unsatisfiable under the given assumptions.
    Unsat,
}

impl SolveResult {
    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SolveResult::Sat(m) => Some(m),
            SolveResult::Unsat => None,
        }
    }

    /// Whether the result is satisfiable.
    pub fn is_sat(&self) -> bool {
        matches!(self, SolveResult::Sat(_))
    }
}

/// An incremental DPLL solver.
#[derive(Clone, Debug, Default)]
pub struct Solver {
    num_vars: usize,
    clauses: Vec<Vec<Lit>>,
    has_empty_clause: bool,
}

impl Solver {
    /// A solver over `num_vars` variables with no clauses.
    pub fn new(num_vars: usize) -> Self {
        Solver {
            num_vars,
            clauses: Vec::new(),
            has_empty_clause: false,
        }
    }

    /// Builds a solver from a CNF formula.
    pub fn from_cnf(cnf: &Cnf) -> Self {
        let mut s = Solver::new(cnf.num_vars() as usize);
        for c in cnf.clauses() {
            s.add_clause_from(c);
        }
        s
    }

    /// Number of variables currently known to the solver.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> BoolVar {
        let v = BoolVar::new(self.num_vars as u32);
        self.num_vars += 1;
        v
    }

    /// Adds a clause given as a slice of literals.  Tautological clauses are
    /// dropped; the empty clause marks the solver permanently unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) {
        let clause = Clause::new(lits.to_vec());
        self.add_clause_from(&clause);
    }

    /// Adds an existing [`Clause`].
    pub fn add_clause_from(&mut self, clause: &Clause) {
        if clause.is_tautology() {
            return;
        }
        if clause.is_empty() {
            self.has_empty_clause = true;
            return;
        }
        let mut lits = clause.literals().to_vec();
        lits.sort();
        lits.dedup();
        for l in &lits {
            if l.var.index() >= self.num_vars {
                self.num_vars = l.var.index() + 1;
            }
        }
        self.clauses.push(lits);
    }

    /// Decides satisfiability under the given assumptions (literals forced
    /// true before the search starts).
    pub fn solve(&self, assumptions: &[Lit]) -> SolveResult {
        if self.has_empty_clause {
            return SolveResult::Unsat;
        }
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        for a in assumptions {
            if a.var.index() >= assignment.len() {
                assignment.resize(a.var.index() + 1, None);
            }
            match assignment[a.var.index()] {
                Some(v) if v != a.positive => return SolveResult::Unsat,
                _ => assignment[a.var.index()] = Some(a.positive),
            }
        }
        if self.search(&mut assignment) {
            SolveResult::Sat(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
        } else {
            SolveResult::Unsat
        }
    }

    /// Convenience wrapper: satisfiability with no assumptions.
    pub fn is_satisfiable(&self) -> bool {
        self.solve(&[]).is_sat()
    }

    /// Unit propagation to fixpoint; newly assigned variables are pushed
    /// onto `trail`.  Returns `false` on conflict (without undoing — the
    /// caller owns the trail).
    fn propagate(&self, assignment: &mut [Option<bool>], trail: &mut Vec<BoolVar>) -> bool {
        loop {
            let mut progress = false;
            for clause in &self.clauses {
                let mut satisfied = false;
                let mut unassigned: Option<Lit> = None;
                let mut unassigned_count = 0;
                for &l in clause {
                    match assignment[l.var.index()] {
                        Some(v) if l.satisfied_by(v) => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => return false,
                    1 => {
                        let l = unassigned.expect("counted one unassigned literal");
                        assignment[l.var.index()] = Some(l.positive);
                        trail.push(l.var);
                        progress = true;
                    }
                    _ => {}
                }
            }
            if !progress {
                return true;
            }
        }
    }

    /// Picks a branching variable: the first unassigned variable of the
    /// first not-yet-satisfied clause (cheap, and good enough — the
    /// minimal-model enumeration loop prefers a lean solver over a clever
    /// heuristic).  `None` means every clause is satisfied.
    fn pick_branch(&self, assignment: &[Option<bool>]) -> Option<usize> {
        for clause in &self.clauses {
            let satisfied = clause
                .iter()
                .any(|l| assignment[l.var.index()].is_some_and(|v| l.satisfied_by(v)));
            if satisfied {
                continue;
            }
            for &l in clause {
                if assignment[l.var.index()].is_none() {
                    return Some(l.var.index());
                }
            }
        }
        None
    }

    /// Iterative DPLL search with unit propagation.
    ///
    /// The decision stack lives on the heap: grounded update instances can
    /// carry thousands of candidate-fact variables, and the recursive
    /// formulation overflowed the default thread stack at that depth (the
    /// Theorem 4.2 experiment was the first to hit it).
    fn search(&self, assignment: &mut [Option<bool>]) -> bool {
        struct Decision {
            /// The decision variable.
            branch: usize,
            /// Whether the second value (`true`) has been tried yet.
            tried_true: bool,
            /// Variables assigned by propagation under this decision.
            trail: Vec<BoolVar>,
        }

        // Decision level 0: propagation forced by the clauses alone.  On
        // UNSAT the caller discards the assignment, so nothing to undo.
        let mut root_trail = Vec::new();
        if !self.propagate(assignment, &mut root_trail) {
            return false;
        }

        let mut decisions: Vec<Decision> = Vec::new();
        loop {
            // Try `false` first: the callers minimise sets of positive
            // variables, so models found this way are already close to
            // subset-minimal.
            let Some(branch) = self.pick_branch(assignment) else {
                return true; // every clause satisfied
            };
            assignment[branch] = Some(false);
            decisions.push(Decision {
                branch,
                tried_true: false,
                trail: Vec::new(),
            });

            // Propagate under the newest decision; on conflict, flip the
            // deepest un-flipped decision (undoing everything below it) and
            // propagate again.
            loop {
                let top = decisions.last_mut().expect("pushed above");
                if self.propagate(assignment, &mut top.trail) {
                    break;
                }
                loop {
                    let Some(top) = decisions.last_mut() else {
                        return false; // both values exhausted everywhere
                    };
                    for v in top.trail.drain(..) {
                        assignment[v.index()] = None;
                    }
                    if top.tried_true {
                        assignment[top.branch] = None;
                        decisions.pop();
                    } else {
                        top.tried_true = true;
                        assignment[top.branch] = Some(true);
                        break;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> BoolVar {
        BoolVar::new(i)
    }

    #[test]
    fn trivial_cases() {
        let s = Solver::new(0);
        assert!(s.is_satisfiable());
        let mut s = Solver::new(1);
        s.add_clause(&[]);
        assert!(!s.is_satisfiable());
    }

    #[test]
    fn simple_sat_and_unsat() {
        // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b) is satisfied only by a=b=true
        let mut s = Solver::new(2);
        s.add_clause(&[v(0).positive(), v(1).positive()]);
        s.add_clause(&[v(0).negative(), v(1).positive()]);
        s.add_clause(&[v(0).positive(), v(1).negative()]);
        match s.solve(&[]) {
            SolveResult::Sat(m) => assert_eq!(m, vec![true, true]),
            SolveResult::Unsat => panic!("expected SAT"),
        }
        // adding (¬a ∨ ¬b) makes it unsatisfiable
        s.add_clause(&[v(0).negative(), v(1).negative()]);
        assert!(!s.is_satisfiable());
    }

    #[test]
    fn assumptions_restrict_the_search() {
        let mut s = Solver::new(2);
        s.add_clause(&[v(0).positive(), v(1).positive()]);
        assert!(s.solve(&[v(0).negative()]).is_sat());
        assert!(s.solve(&[v(0).negative(), v(1).negative()]) == SolveResult::Unsat);
        // contradictory assumptions
        assert!(s.solve(&[v(0).positive(), v(0).negative()]) == SolveResult::Unsat);
    }

    #[test]
    fn models_satisfy_all_clauses() {
        // pigeonhole-ish satisfiable instance
        let mut s = Solver::new(6);
        let clauses: Vec<Vec<Lit>> = vec![
            vec![v(0).positive(), v(1).positive(), v(2).positive()],
            vec![v(3).positive(), v(4).positive(), v(5).positive()],
            vec![v(0).negative(), v(3).negative()],
            vec![v(1).negative(), v(4).negative()],
            vec![v(2).negative(), v(5).negative()],
            vec![v(0).negative(), v(1).negative()],
        ];
        for c in &clauses {
            s.add_clause(c);
        }
        match s.solve(&[]) {
            SolveResult::Sat(m) => {
                for c in &clauses {
                    assert!(c.iter().any(|l| l.satisfied_by(m[l.var.index()])));
                }
            }
            SolveResult::Unsat => panic!("expected SAT"),
        }
    }

    #[test]
    fn unsatisfiable_pigeonhole_three_pigeons_two_holes() {
        // p_{i,j}: pigeon i in hole j; i ∈ {0,1,2}, j ∈ {0,1}
        let var = |i: u32, j: u32| BoolVar::new(i * 2 + j);
        let mut s = Solver::new(6);
        for i in 0..3 {
            s.add_clause(&[var(i, 0).positive(), var(i, 1).positive()]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[var(i1, j).negative(), var(i2, j).negative()]);
                }
            }
        }
        assert!(!s.is_satisfiable());
    }

    #[test]
    fn tautological_clauses_are_ignored() {
        let mut s = Solver::new(1);
        s.add_clause(&[v(0).positive(), v(0).negative()]);
        assert_eq!(s.num_clauses(), 0);
        assert!(s.is_satisfiable());
    }

    #[test]
    fn exhaustive_cross_check_on_random_3cnf() {
        // Deterministic pseudo-random small instances, checked against brute force.
        let mut seed = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for _ in 0..30 {
            let num_vars = 6;
            let num_clauses = 20;
            let mut s = Solver::new(num_vars);
            let mut clauses = Vec::new();
            for _ in 0..num_clauses {
                let mut lits = Vec::new();
                for _ in 0..3 {
                    let var = (next() % num_vars as u64) as u32;
                    let pos = next() % 2 == 0;
                    lits.push(Lit::new(BoolVar::new(var), pos));
                }
                clauses.push(lits.clone());
                s.add_clause(&lits);
            }
            let brute = (0..(1u32 << num_vars)).any(|bits| {
                clauses.iter().all(|c| {
                    c.iter()
                        .any(|l| l.satisfied_by(bits & (1 << l.var.index()) != 0))
                })
            });
            assert_eq!(s.is_satisfiable(), brute);
        }
    }
}
