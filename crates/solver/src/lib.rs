//! # kbt-solver — the propositional SAT substrate
//!
//! The update operator `τ_φ` of *Knowledgebase Transformations* asks for the
//! models of a sentence that are *closest* to a given database under the
//! Winslett order.  After grounding (see `kbt-logic::ground`) this becomes a
//! propositional problem: enumerate the truth assignments that satisfy a
//! Boolean formula and are subset-minimal over a designated set of variables.
//! This crate provides everything needed for that, built from scratch:
//!
//! * [`Lit`], [`Clause`], [`Cnf`] — CNF representation,
//! * [`circuit::Bool`] — Boolean circuits (the shape produced by grounding),
//! * [`tseitin`] — the Tseitin transformation from circuits to CNF,
//! * [`Solver`] — an incremental DPLL solver with unit propagation and
//!   assumption support,
//! * [`minimal`] — enumeration of subset-minimal models projected onto a
//!   chosen set of variables (the engine behind the two-stage minimisation of
//!   the Winslett order),
//! * [`dimacs`] — DIMACS CNF import/export, handy for debugging and
//!   cross-checking against external solvers.
//!
//! The solver is deliberately simple (no clause learning): the grounded
//! instances produced by the transformation language over active domains of
//! realistic size are small, and simplicity keeps the minimal-model
//! enumeration loop easy to reason about.  It also serves as the *independent
//! baseline* for the Theorem 4.2 experiment (3CNF satisfiability via a
//! transformation expression versus direct DPLL).

pub mod circuit;
pub mod cnf;
pub mod dimacs;
pub mod dpll;
pub mod minimal;
pub mod tseitin;

pub use circuit::Bool;
pub use cnf::{BoolVar, Clause, Cnf, Lit};
pub use dpll::{Model, SolveResult, Solver};
pub use minimal::{enumerate_minimal_models, shrink_to_minimal};
pub use tseitin::encode_circuit;
