//! Boolean circuits: the intermediate form between grounded first-order
//! sentences and CNF.

use crate::cnf::BoolVar;

/// A Boolean circuit over propositional variables.
///
/// Grounding a first-order sentence over a finite domain (see
/// `kbt_logic::ground`) produces exactly this shape; [`crate::tseitin`]
/// turns it into CNF without exponential blow-up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bool {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// A variable.
    Var(BoolVar),
    /// Negation.
    Not(Box<Bool>),
    /// N-ary conjunction.
    And(Vec<Bool>),
    /// N-ary disjunction.
    Or(Vec<Bool>),
}

impl Bool {
    /// Smart conjunction with constant folding.
    pub fn and(parts: Vec<Bool>) -> Bool {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Bool::True => {}
                Bool::False => return Bool::False,
                Bool::And(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Bool::True,
            1 => flat.pop().expect("len checked"),
            _ => Bool::And(flat),
        }
    }

    /// Smart disjunction with constant folding.
    pub fn or(parts: Vec<Bool>) -> Bool {
        let mut flat = Vec::new();
        for p in parts {
            match p {
                Bool::False => {}
                Bool::True => return Bool::True,
                Bool::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Bool::False,
            1 => flat.pop().expect("len checked"),
            _ => Bool::Or(flat),
        }
    }

    /// Smart negation.
    pub fn negate(self) -> Bool {
        match self {
            Bool::True => Bool::False,
            Bool::False => Bool::True,
            Bool::Not(inner) => *inner,
            other => Bool::Not(Box::new(other)),
        }
    }

    /// Evaluates the circuit under a total assignment.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        match self {
            Bool::True => true,
            Bool::False => false,
            Bool::Var(v) => assignment[v.index()],
            Bool::Not(inner) => !inner.evaluate(assignment),
            Bool::And(parts) => parts.iter().all(|p| p.evaluate(assignment)),
            Bool::Or(parts) => parts.iter().any(|p| p.evaluate(assignment)),
        }
    }

    /// The largest variable index occurring in the circuit, if any.
    pub fn max_var(&self) -> Option<BoolVar> {
        match self {
            Bool::True | Bool::False => None,
            Bool::Var(v) => Some(*v),
            Bool::Not(inner) => inner.max_var(),
            Bool::And(parts) | Bool::Or(parts) => parts.iter().filter_map(Bool::max_var).max(),
        }
    }

    /// Number of nodes in the circuit.
    pub fn size(&self) -> usize {
        match self {
            Bool::True | Bool::False | Bool::Var(_) => 1,
            Bool::Not(inner) => 1 + inner.size(),
            Bool::And(parts) | Bool::Or(parts) => 1 + parts.iter().map(Bool::size).sum::<usize>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Bool {
        Bool::Var(BoolVar::new(i))
    }

    #[test]
    fn smart_constructors_fold_constants() {
        assert_eq!(Bool::and(vec![Bool::True, v(0)]), v(0));
        assert_eq!(Bool::and(vec![Bool::False, v(0)]), Bool::False);
        assert_eq!(Bool::or(vec![Bool::False, v(0)]), v(0));
        assert_eq!(Bool::or(vec![Bool::True, v(0)]), Bool::True);
        assert_eq!(Bool::and(vec![]), Bool::True);
        assert_eq!(Bool::or(vec![]), Bool::False);
        assert_eq!(v(0).negate().negate(), v(0));
    }

    #[test]
    fn evaluation_and_max_var() {
        let c = Bool::or(vec![Bool::and(vec![v(0), v(1)]), v(2).negate()]);
        assert!(c.evaluate(&[true, true, true]));
        assert!(c.evaluate(&[false, false, false]));
        assert!(!c.evaluate(&[true, false, true]));
        assert_eq!(c.max_var(), Some(BoolVar::new(2)));
        assert!(c.size() >= 5);
    }
}
