//! The Katsuno–Mendelzon update postulates — Theorem 2.1.
//!
//! Theorem 2.1 of the paper proves that the insertion operator `τ` satisfies
//! the eight KM postulates (i)–(viii).  This module provides executable
//! checkers for each postulate; the property-based test suites run them on
//! randomly generated knowledgebases and sentences, and the benchmark
//! harness measures how expensive checking them is.
//!
//! Every checker returns `Ok(true)` when the postulate holds on the given
//! inputs, `Ok(false)` when it is violated (which, by Theorem 2.1, would
//! indicate a bug in the evaluator), and `Err` when evaluation itself fails
//! (e.g. resource limits).

use kbt_data::{Database, Knowledgebase};
use kbt_logic::{satisfies, Sentence};

use crate::options::EvalOptions;
use crate::transformer::Transformer;
use crate::Result;

/// All eight postulates bundled, for convenience in tests and benchmarks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PostulateReport {
    /// (i) `τ_φ(kb) ⊨ φ`.
    pub p1: bool,
    /// (ii) if `kb ⊨ φ` then `τ_φ(kb) = kb`.
    pub p2: bool,
    /// (iii) if `kb ≠ ∅` and `φ` is satisfiable over the candidate space
    /// then `τ_φ(kb) ≠ ∅`.
    pub p3: bool,
    /// (v) `τ_φ(kb) ∩ ⟦ψ⟧ ⊆ τ_{φ∧ψ}(kb)`.
    pub p5: bool,
    /// (vi) if `τ_φ(kb) ⊨ ψ` and `τ_ψ(kb) ⊨ φ` then `τ_φ(kb) = τ_ψ(kb)`.
    pub p6: bool,
    /// (vii) `τ_φ([db]) ∩ τ_ψ([db]) ⊆ τ_{φ∨ψ}([db])`.
    pub p7: bool,
    /// (viii) `τ_φ(kb1 ∪ kb2) = τ_φ(kb1) ∪ τ_φ(kb2)`.
    pub p8: bool,
}

impl PostulateReport {
    /// Whether every checked postulate holds.
    pub fn all_hold(&self) -> bool {
        self.p1 && self.p2 && self.p3 && self.p5 && self.p6 && self.p7 && self.p8
    }
}

fn model_of(db: &Database, phi: &Sentence) -> Result<bool> {
    // σ(db) may not dominate σ(φ) for arbitrary inputs; in that case db is
    // not a model of φ by definition (the interpretation is undefined).
    if !phi.schema().is_subschema_of(&db.schema()) {
        return Ok(false);
    }
    Ok(satisfies(db, phi)?)
}

fn kb_models(kb: &Knowledgebase, phi: &Sentence) -> Result<bool> {
    if kb.is_empty() {
        return Ok(false);
    }
    for db in kb.iter() {
        if !model_of(db, phi)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// (i) Every database of `τ_φ(kb)` is a model of `φ`.
pub fn postulate_1(t: &Transformer, phi: &Sentence, kb: &Knowledgebase) -> Result<bool> {
    let result = t.insert(phi, kb)?.kb;
    for db in result.iter() {
        if !model_of(db, phi)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// (ii) If every database of `kb` already models `φ` (over the result
/// schema), then `τ_φ(kb) = kb` up to lifting to the result schema.
pub fn postulate_2(t: &Transformer, phi: &Sentence, kb: &Knowledgebase) -> Result<bool> {
    // the premise requires σ(kb) to dominate σ(φ)
    if !phi.schema().is_subschema_of(&kb.schema()) {
        return Ok(true);
    }
    if !kb_models(kb, phi)? {
        return Ok(true);
    }
    let result = t.insert(phi, kb)?.kb;
    Ok(&result == kb)
}

/// (iii) If `kb` is non-empty and `φ` has a model over the candidate space of
/// each database, then `τ_φ(kb)` is non-empty.  (We check the contrapositive
/// per database: an empty `µ` must mean `φ` has no model over that space.)
pub fn postulate_3(t: &Transformer, phi: &Sentence, kb: &Knowledgebase) -> Result<bool> {
    if kb.is_empty() {
        return Ok(true);
    }
    let result = t.insert(phi, kb)?.kb;
    if !result.is_empty() {
        return Ok(true);
    }
    // result is empty: verify φ is indeed unsatisfiable over the candidate
    // space of every database of kb, by asking the exhaustive evaluator for
    // any model at all (µ is empty iff there is none).
    for db in kb.iter() {
        let outcome = crate::update::minimal_update(phi, db, t.options())?;
        if !outcome.databases.is_empty() {
            return Ok(false);
        }
    }
    Ok(true)
}

/// (v) `τ_φ(kb) ∩ ⟦ψ⟧ ⊆ τ_{φ∧ψ}(kb)`.
pub fn postulate_5(
    t: &Transformer,
    phi: &Sentence,
    psi: &Sentence,
    kb: &Knowledgebase,
) -> Result<bool> {
    let left = t.insert(phi, kb)?.kb;
    let right = t.insert(&phi.clone().and(psi.clone()), kb)?.kb;
    for db in left.iter() {
        if model_of(db, psi)? && !contains_lifted(&right, db)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// (vi) If `τ_φ(kb) ⊨ ψ` and `τ_ψ(kb) ⊨ φ` then `τ_φ(kb) = τ_ψ(kb)`.
pub fn postulate_6(
    t: &Transformer,
    phi: &Sentence,
    psi: &Sentence,
    kb: &Knowledgebase,
) -> Result<bool> {
    let tau_phi = t.insert(phi, kb)?.kb;
    let tau_psi = t.insert(psi, kb)?.kb;
    if kb_models(&tau_phi, psi)? && kb_models(&tau_psi, phi)? {
        Ok(tau_phi == tau_psi)
    } else {
        Ok(true)
    }
}

/// (vii) `τ_φ([db]) ∩ τ_ψ([db]) ⊆ τ_{φ∨ψ}([db])`.
pub fn postulate_7(t: &Transformer, phi: &Sentence, psi: &Sentence, db: &Database) -> Result<bool> {
    let kb = Knowledgebase::singleton(db.clone());
    let tau_phi = t.insert(phi, &kb)?.kb;
    let tau_psi = t.insert(psi, &kb)?.kb;
    let disjunction = Sentence::new(kbt_logic::builder::or(
        phi.formula().clone(),
        psi.formula().clone(),
    ))?;
    let tau_or = t.insert(&disjunction, &kb)?.kb;
    for d in tau_phi.iter() {
        if tau_psi.contains(d) && !contains_lifted(&tau_or, d)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// (viii) `τ_φ(kb1 ∪ kb2) = τ_φ(kb1) ∪ τ_φ(kb2)`.
pub fn postulate_8(
    t: &Transformer,
    phi: &Sentence,
    kb1: &Knowledgebase,
    kb2: &Knowledgebase,
) -> Result<bool> {
    let union = kb1.union(kb2)?;
    let left = t.insert(phi, &union)?.kb;
    let right = t.insert(phi, kb1)?.kb.union(&t.insert(phi, kb2)?.kb)?;
    Ok(left == right)
}

/// Membership of `db` in `kb`, allowing for the fact that databases coming
/// from transformations with different sentences may differ only by empty
/// relations (the result schema differs).  `db` is considered present if
/// some member of `kb` agrees with it on every relation they share and has
/// only empty relations elsewhere.
fn contains_lifted(kb: &Knowledgebase, db: &Database) -> Result<bool> {
    if kb.contains(db) {
        return Ok(true);
    }
    for candidate in kb.iter() {
        let schema = candidate.schema().union(&db.schema())?;
        let a = candidate.extend_schema(&schema)?;
        let b = db.extend_schema(&schema)?;
        if a == b {
            return Ok(true);
        }
    }
    Ok(false)
}

/// Runs all checkable postulates on the given inputs.
pub fn check_all(
    phi: &Sentence,
    psi: &Sentence,
    kb1: &Knowledgebase,
    kb2: &Knowledgebase,
    options: &EvalOptions,
) -> Result<PostulateReport> {
    let t = Transformer::with_options(*options);
    let union = kb1.union(kb2)?;
    let first_db = kb1.iter().next().cloned();
    Ok(PostulateReport {
        p1: postulate_1(&t, phi, &union)?,
        p2: postulate_2(&t, phi, &union)?,
        p3: postulate_3(&t, phi, &union)?,
        p5: postulate_5(&t, phi, psi, &union)?,
        p6: postulate_6(&t, phi, psi, &union)?,
        p7: match first_db {
            Some(db) => postulate_7(&t, phi, psi, &db)?,
            None => true,
        },
        p8: postulate_8(&t, phi, kb1, kb2)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn kb(facts: &[&[u32]]) -> Knowledgebase {
        let dbs = facts.iter().map(|fs| {
            let mut b = DatabaseBuilder::new().relation(r(1), 1);
            for &f in fs.iter() {
                b = b.fact(r(1), [f]);
            }
            b.build().unwrap()
        });
        Knowledgebase::from_databases(dbs).unwrap()
    }

    #[test]
    fn all_postulates_hold_on_the_space_example() {
        let phi = Sentence::new(atom(1, [cst(1)])).unwrap();
        let psi = Sentence::new(not(atom(1, [cst(2)]))).unwrap();
        let kb1 = kb(&[&[1]]);
        let kb2 = kb(&[&[2]]);
        let report = check_all(&phi, &psi, &kb1, &kb2, &EvalOptions::default()).unwrap();
        assert!(report.all_hold(), "violated: {report:?}");
    }

    #[test]
    fn postulate_2_detects_already_satisfied_sentences() {
        let t = Transformer::new();
        let phi = Sentence::new(exists([1], atom(1, [var(1)]))).unwrap();
        let knowledge = kb(&[&[1], &[2]]);
        assert!(postulate_2(&t, &phi, &knowledge).unwrap());
        // directly check the equality it asserts
        let result = t.insert(&phi, &knowledge).unwrap().kb;
        assert_eq!(result, knowledge);
    }

    #[test]
    fn postulate_8_distribution_over_union() {
        let t = Transformer::new();
        let phi = Sentence::new(or(atom(1, [cst(3)]), atom(1, [cst(4)]))).unwrap();
        assert!(postulate_8(&t, &phi, &kb(&[&[1]]), &kb(&[&[2]])).unwrap());
    }

    #[test]
    fn postulate_7_on_a_singleton() {
        let t = Transformer::new();
        let db = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let phi = Sentence::new(atom(1, [cst(2)])).unwrap();
        let psi = Sentence::new(atom(1, [cst(3)])).unwrap();
        assert!(postulate_7(&t, &phi, &psi, &db).unwrap());
    }
}
