//! The quantifier-free fast path — Theorem 4.7.
//!
//! When the inserted sentence is a Boolean combination of *ground* atomic
//! formulas, only the (fixed number of) ground atoms occurring in the
//! sentence can usefully change: flipping or adding any other fact would only
//! enlarge the symmetric difference without affecting the truth of the
//! sentence.  Enumerating the `2^k` truth assignments of those `k ≤ |φ|`
//! atoms and keeping the Winslett-minimal models therefore takes polynomial
//! time in the size of the database (Theorem 4.7).
//!
//! Unlike the grounding evaluator this path never materialises the
//! candidate-atom universe (`Σ_R |B|^arity(R)` facts): it only needs the
//! result schema and the `k` atoms of the sentence, so it stays cheap on
//! arbitrarily large databases — which is what lets ground `τ_φ` steps ride
//! inside long incremental chains over 10k+ fact databases.

use std::collections::BTreeSet;

use kbt_data::{minimal_elements, Database};
use kbt_logic::{ground_sentence, is_ground, GroundAtom, Sentence};

use crate::error::CoreError;
use crate::options::EvalOptions;
use crate::update::UpdateOutcome;
use crate::Result;

/// Computes `µ(φ, db)` for a ground (quantifier- and variable-free) sentence.
///
/// A candidate differs from the input database only on the `k` ground atoms
/// of `φ`, and `φ` mentions no other facts — so the truth of `φ` in a
/// candidate depends only on the chosen bit assignment.  The `2^k`
/// assignments are therefore evaluated symbolically (one membership lookup
/// per atom fixes the base truth values); a candidate database is only
/// materialised for the assignments that satisfy `φ`.
pub fn quantifier_free_update(
    phi: &Sentence,
    db: &Database,
    options: &EvalOptions,
) -> Result<UpdateOutcome> {
    if !is_ground(phi.formula()) {
        return Err(CoreError::StrategyNotApplicable {
            strategy: "QuantifierFree",
            reason: "the sentence contains variables or quantifiers".to_string(),
        });
    }
    // The grounding domain only matters for quantifier expansion, and φ is
    // ground — so the (possibly huge) database constant set is never
    // consulted and must not be collected: τ-chains apply ground steps to
    // databases of 10k+ facts, where a full constant scan per step would
    // dominate the whole update.
    let domain = phi.constants();
    let schema = db.schema().union(&phi.schema())?;
    // Grounding a ground sentence simply rewrites it over ground atoms.
    let ground = ground_sentence(phi, &domain);
    let atoms: Vec<GroundAtom> = ground.atoms().into_iter().collect();
    let k = atoms.len();
    // The enumeration below is 2^k in the *sentence* size (fine for data
    // complexity, Theorem 4.7), but an adversarially wide sentence must not
    // hang the evaluator or overflow the shift: reuse the ground-atom
    // ceiling as the budget for the assignment space.
    let assignments = 1u64
        .checked_shl(k as u32)
        .map(|n| usize::try_from(n).unwrap_or(usize::MAX))
        .unwrap_or(usize::MAX);
    if assignments > options.max_ground_atoms {
        return Err(CoreError::UniverseTooLarge {
            atoms: assignments,
            limit: options.max_ground_atoms,
        });
    }

    let base = db.extend_schema(&schema)?;
    let mut models: Vec<Database> = Vec::new();
    for bits in 0..(1u64 << k) {
        let mut true_atoms: BTreeSet<GroundAtom> = BTreeSet::new();
        for (j, atom) in atoms.iter().enumerate() {
            if bits & (1 << j) != 0 {
                true_atoms.insert(atom.clone());
            }
        }
        if !ground.eval(&true_atoms) {
            continue;
        }
        // Only satisfying assignments pay for a database: start from the
        // lifted base and apply the bit vector as a patch.
        let mut candidate = base.clone();
        for (j, atom) in atoms.iter().enumerate() {
            let value = bits & (1 << j) != 0;
            if value {
                if !db.holds(atom.rel, &atom.tuple) {
                    candidate.insert_fact(atom.rel, atom.tuple.clone())?;
                }
            } else if db.holds(atom.rel, &atom.tuple) {
                candidate.remove_fact(atom.rel, &atom.tuple);
            }
        }
        models.push(candidate);
    }
    let minimal = minimal_elements(&models, db)?;
    Ok(UpdateOutcome {
        databases: minimal,
        candidate_atoms: k,
        fixpoint: None,
        profile: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::exhaustive::exhaustive_update;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn agrees_with_exhaustive_on_ground_sentences() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32])
            .fact(r(1), [2u32])
            .fact(r(2), [1u32, 2])
            .build()
            .unwrap();
        let sentences = [
            Sentence::new(atom(1, [cst(3)])).unwrap(),
            Sentence::new(not(atom(2, [cst(1), cst(2)]))).unwrap(),
            Sentence::new(or(
                and(atom(1, [cst(1)]), not(atom(1, [cst(2)]))),
                atom(2, [cst(2), cst(2)]),
            ))
            .unwrap(),
            Sentence::new(implies(atom(1, [cst(1)]), atom(3, [cst(1)]))).unwrap(),
            Sentence::new(iff(atom(1, [cst(1)]), atom(1, [cst(2)]))).unwrap(),
        ];
        let opts = EvalOptions::default();
        for phi in sentences {
            let mut expected = exhaustive_update(&phi, &db, &opts).unwrap().databases;
            let mut got = quantifier_free_update(&phi, &db, &opts).unwrap().databases;
            expected.sort();
            got.sort();
            assert_eq!(expected, got, "mismatch on {phi}");
        }
    }

    #[test]
    fn data_complexity_is_independent_of_database_size() {
        // the candidate-atom count reported equals the number of atoms in φ,
        // not the size of the database.
        let mut b = DatabaseBuilder::new();
        for i in 0..50u32 {
            b = b.fact(r(1), [i]);
        }
        let db = b.build().unwrap();
        let phi = Sentence::new(or(atom(1, [cst(100)]), atom(1, [cst(101)]))).unwrap();
        let out = quantifier_free_update(&phi, &db, &EvalOptions::default()).unwrap();
        assert_eq!(out.candidate_atoms, 2);
        assert_eq!(out.databases.len(), 2);
        for d in &out.databases {
            assert_eq!(d.fact_count(), 51);
        }
    }

    #[test]
    fn large_databases_do_not_hit_the_universe_ceiling() {
        // 600 constants over a binary relation would be a 360k-atom
        // universe; the quantifier-free path must not materialise it.
        let mut b = DatabaseBuilder::new();
        for i in 0..300u32 {
            b = b.fact(r(1), [2 * i, 2 * i + 1]);
        }
        let db = b.build().unwrap();
        let phi = Sentence::new(atom(1, [cst(5000), cst(5001)])).unwrap();
        let out = quantifier_free_update(&phi, &db, &EvalOptions::default()).unwrap();
        assert_eq!(out.databases.len(), 1);
        assert_eq!(out.databases[0].fact_count(), 301);
    }

    #[test]
    fn adversarially_wide_sentences_hit_the_assignment_budget() {
        // 2^k assignments for a k-atom sentence must be bounded by the
        // ground-atom ceiling instead of hanging (or overflowing the shift).
        let db = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let mut wide = atom(1, [cst(0)]);
        for i in 1..40u32 {
            wide = or(wide, atom(1, [cst(i)]));
        }
        let phi = Sentence::new(wide).unwrap();
        assert!(matches!(
            quantifier_free_update(&phi, &db, &EvalOptions::default()),
            Err(CoreError::UniverseTooLarge { .. })
        ));
    }

    #[test]
    fn rejects_non_ground_sentences() {
        let db = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let phi = Sentence::new(exists([1], atom(1, [var(1)]))).unwrap();
        assert!(matches!(
            quantifier_free_update(&phi, &db, &EvalOptions::default()),
            Err(CoreError::StrategyNotApplicable { .. })
        ));
    }

    #[test]
    fn contradiction_yields_empty_result() {
        let db = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let phi = Sentence::new(and(atom(1, [cst(2)]), not(atom(1, [cst(2)])))).unwrap();
        let out = quantifier_free_update(&phi, &db, &EvalOptions::default()).unwrap();
        assert!(out.databases.is_empty());
    }
}
