//! The reference evaluator: literal enumeration of definition (9).
//!
//! Every subset of the candidate-fact universe is materialised as a database,
//! the models of `φ` among them are collected, and the Winslett-minimal ones
//! are returned.  Exponential in the size of the universe — usable only for
//! tiny instances, which is exactly its purpose: it is the ground truth the
//! optimised evaluators are tested against.

use kbt_data::{minimal_elements, Database};
use kbt_logic::{satisfies_with_domain, Sentence};

use crate::error::CoreError;
use crate::options::EvalOptions;
use crate::update::universe::UpdateContext;
use crate::update::UpdateOutcome;
use crate::Result;

/// Maximum universe size the exhaustive evaluator accepts (2^22 candidate
/// databases is already ~4 million model checks).
const MAX_EXHAUSTIVE_ATOMS: usize = 22;

/// Computes `µ(φ, db)` by brute force.
pub fn exhaustive_update(
    phi: &Sentence,
    db: &Database,
    options: &EvalOptions,
) -> Result<UpdateOutcome> {
    let ctx = UpdateContext::new(phi, db, options)?;
    let n = ctx.atom_count();
    if n > MAX_EXHAUSTIVE_ATOMS {
        return Err(CoreError::StrategyNotApplicable {
            strategy: "Exhaustive",
            reason: format!(
                "the candidate universe has {n} facts, above the exhaustive ceiling of {MAX_EXHAUSTIVE_ATOMS}"
            ),
        });
    }

    let mut models: Vec<Database> = Vec::new();
    for bits in 0..(1u64 << n) {
        let candidate = ctx.database_from(|i| bits & (1 << i) != 0);
        if satisfies_with_domain(&candidate, phi, &ctx.domain)? {
            models.push(candidate);
        }
    }
    let minimal = minimal_elements(&models, db)?;
    Ok(UpdateOutcome {
        databases: minimal,
        candidate_atoms: n,
        fixpoint: None,
        profile: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::{DatabaseBuilder, Knowledgebase, RelId};
    use kbt_logic::builder::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn space_example_from_section_two() {
        // kb = {({v}), ({w})} over R1; inserting R1(v) must produce
        // {({v}), ({v, w})}  (the paper's worked computation in Section 2).
        // Here v = a1 and w = a2.
        let db_v = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let db_w = DatabaseBuilder::new().fact(r(1), [2u32]).build().unwrap();
        let phi = Sentence::new(atom(1, [cst(1)])).unwrap();

        let out_v = exhaustive_update(&phi, &db_v, &EvalOptions::default()).unwrap();
        assert_eq!(out_v.databases, vec![db_v.clone()]);

        let out_w = exhaustive_update(&phi, &db_w, &EvalOptions::default()).unwrap();
        assert_eq!(out_w.databases.len(), 1);
        let expected = DatabaseBuilder::new()
            .fact(r(1), [1u32])
            .fact(r(1), [2u32])
            .build()
            .unwrap();
        assert_eq!(out_w.databases[0], expected);

        // whole-knowledgebase view
        let kb = Knowledgebase::from_databases([db_v.clone(), db_w]).unwrap();
        let union: Vec<Database> = kb
            .iter()
            .flat_map(|d| {
                exhaustive_update(&phi, d, &EvalOptions::default())
                    .unwrap()
                    .databases
            })
            .collect();
        let result = Knowledgebase::from_databases(union).unwrap();
        assert_eq!(result.len(), 2);
        assert!(result.contains(&db_v));
        assert!(result.contains(&expected));
    }

    #[test]
    fn deleting_a_fact_via_negation() {
        // "delete flight AC902" (Example 1.2): insert the negation of the fact.
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [1u32, 3])
            .build()
            .unwrap();
        let phi = Sentence::new(not(atom(1, [cst(1), cst(2)]))).unwrap();
        let out = exhaustive_update(&phi, &db, &EvalOptions::default()).unwrap();
        assert_eq!(out.databases.len(), 1);
        assert!(!out.databases[0].holds(r(1), &kbt_data::tuple![1, 2]));
        assert!(out.databases[0].holds(r(1), &kbt_data::tuple![1, 3]));
    }

    #[test]
    fn disjunctive_insertion_produces_two_worlds() {
        // inserting R1(a3) ∨ R1(a4) into {R1 = {a1}} gives two minimal models.
        let db = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let phi = Sentence::new(or(atom(1, [cst(3)]), atom(1, [cst(4)]))).unwrap();
        let out = exhaustive_update(&phi, &db, &EvalOptions::default()).unwrap();
        assert_eq!(out.databases.len(), 2);
        for d in &out.databases {
            assert!(d.holds(r(1), &kbt_data::tuple![1]));
            assert_eq!(d.fact_count(), 2);
        }
    }

    #[test]
    fn unsatisfiable_sentence_yields_empty_result() {
        let db = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let phi = Sentence::new(and(atom(1, [cst(1)]), not(atom(1, [cst(1)])))).unwrap();
        let out = exhaustive_update(&phi, &db, &EvalOptions::default()).unwrap();
        assert!(out.databases.is_empty());
    }

    #[test]
    fn refuses_oversized_universes() {
        let mut b = DatabaseBuilder::new();
        for i in 0..6u32 {
            b = b.fact(r(1), [i, i + 1]);
        }
        let db = b.build().unwrap();
        let phi = Sentence::new(forall(
            [1, 2],
            implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
        ))
        .unwrap();
        assert!(matches!(
            exhaustive_update(&phi, &db, &EvalOptions::default()),
            Err(CoreError::StrategyNotApplicable { .. })
        ));
    }
}
