//! The SAT-based evaluator: grounding plus two-stage minimal-model
//! enumeration.
//!
//! The Winslett order is lexicographic: first minimise (by componentwise set
//! inclusion) the symmetric difference with the input database on the
//! relations of `σ(db)`, then — among candidates with the *same* difference —
//! minimise the content of the freshly introduced relations.  After grounding
//! `φ` over the finite domain `B`, both stages become subset-minimal model
//! enumeration over propositional variables:
//!
//! 1. introduce a *flip* variable per old candidate fact, constrained to be
//!    true exactly when the candidate's truth value differs from the input
//!    database, and enumerate the ⊆-minimal satisfiable flip-sets;
//! 2. for each minimal flip-set (which pins down the old relations exactly),
//!    enumerate the ⊆-minimal assignments to the new-relation facts.
//!
//! Every pair (minimal flip-set, minimal new-part) is a Winslett-minimal
//! model, and every Winslett-minimal model arises this way.

use kbt_data::Database;
use kbt_logic::{GroundFormula, Sentence};
use kbt_solver::{enumerate_minimal_models, Bool, BoolVar, Cnf, Lit, Solver};

use crate::error::CoreError;
use crate::options::EvalOptions;
use crate::update::universe::UpdateContext;
use crate::update::UpdateOutcome;
use crate::Result;

/// Computes `µ(φ, db)` via grounding and SAT-based minimal-model enumeration.
pub fn grounding_update(
    phi: &Sentence,
    db: &Database,
    options: &EvalOptions,
) -> Result<UpdateOutcome> {
    // The lazy universe: only atoms `ground(φ)` mentions become SAT
    // variables — unmentioned facts cannot change in a Winslett-minimal
    // model and carry over from the input database (through the engine's
    // hashed snapshot) when results are materialised.  Large databases with
    // small-footprint sentences thus stop paying the `Σ_R |B|^arity`
    // ceiling; see `universe` for the soundness argument.
    let (ctx, ground) = UpdateContext::grounded(phi, db, options)?;
    let n = ctx.atom_count();

    // Variables 0..n are the candidate facts; flip variables follow.
    let circuit = to_circuit(&ground, &ctx);

    let mut cnf = Cnf::new(n as u32);
    kbt_solver::tseitin::assert_circuit(&circuit, &mut cnf);
    let mut solver = Solver::from_cnf(&cnf);
    // the solver must know about every candidate-fact variable even if the
    // sentence does not mention it (it may still be flipped / minimised).
    while solver.num_vars() < n {
        solver.new_var();
    }

    // Flip variables for old facts: flip ↔ (fact XOR stored-value).
    let old_atoms: Vec<usize> = (0..n).filter(|&i| ctx.is_old_atom(i)).collect();
    let new_atoms: Vec<usize> = (0..n).filter(|&i| !ctx.is_old_atom(i)).collect();
    let mut flip_var_of = vec![None::<BoolVar>; n];
    for &i in &old_atoms {
        let flip = solver.new_var();
        let fact = BoolVar::new(i as u32);
        if ctx.holds_in_input(i) {
            // stored: flip ↔ ¬fact
            solver.add_clause(&[flip.positive(), fact.positive()]);
            solver.add_clause(&[flip.negative(), fact.negative()]);
        } else {
            // not stored: flip ↔ fact
            solver.add_clause(&[flip.positive(), fact.negative()]);
            solver.add_clause(&[flip.negative(), fact.positive()]);
        }
        flip_var_of[i] = Some(flip);
    }
    let flip_vars: Vec<BoolVar> = old_atoms
        .iter()
        .map(|&i| flip_var_of[i].expect("assigned above"))
        .collect();
    let new_vars: Vec<BoolVar> = new_atoms.iter().map(|&i| BoolVar::new(i as u32)).collect();

    // Stage 1: minimal flip-sets.
    let minimal_flip_sets = enumerate_minimal_models(&solver, &flip_vars, &[], None);

    // Stage 2: per flip-set, minimal new-relation contents.  The world
    // limit is enforced against the *deduplicated* set: duplicate databases
    // (however they arise) must not count toward `max_worlds`, and the
    // error reports the number of distinct worlds actually found.
    let mut result: std::collections::BTreeSet<Database> = std::collections::BTreeSet::new();
    for flips in &minimal_flip_sets {
        let mut assumptions: Vec<Lit> = Vec::with_capacity(flip_vars.len());
        for (&atom_idx, &fv) in old_atoms.iter().zip(&flip_vars) {
            let flipped = flips.contains(&fv);
            // value of the old fact = stored XOR flipped
            let value = ctx.holds_in_input(atom_idx) ^ flipped;
            assumptions.push(Lit::new(BoolVar::new(atom_idx as u32), value));
        }
        let minimal_new = enumerate_minimal_models(&solver, &new_vars, &assumptions, None);
        for new_set in &minimal_new {
            let database = ctx.database_from(|i| {
                if ctx.is_old_atom(i) {
                    let fv = flip_var_of[i].expect("old atoms have flip vars");
                    ctx.holds_in_input(i) ^ flips.contains(&fv)
                } else {
                    new_set.contains(&BoolVar::new(i as u32))
                }
            });
            if result.insert(database) && result.len() > options.max_worlds {
                return Err(CoreError::TooManyWorlds {
                    worlds: result.len(),
                    limit: options.max_worlds,
                });
            }
        }
    }
    Ok(UpdateOutcome {
        databases: result.into_iter().collect(),
        candidate_atoms: n,
        fixpoint: None,
        profile: None,
    })
}

/// Maps a grounded formula to a Boolean circuit over the candidate-fact
/// variables of the universe.
fn to_circuit(g: &GroundFormula, ctx: &UpdateContext) -> Bool {
    match g {
        GroundFormula::True => Bool::True,
        GroundFormula::False => Bool::False,
        GroundFormula::Atom(a) => {
            let idx = *ctx
                .atom_index
                .get(a)
                .expect("every ground atom of φ lies in the candidate universe");
            Bool::Var(BoolVar::new(idx as u32))
        }
        GroundFormula::Not(inner) => to_circuit(inner, ctx).negate(),
        GroundFormula::And(parts) => Bool::and(parts.iter().map(|p| to_circuit(p, ctx)).collect()),
        GroundFormula::Or(parts) => Bool::or(parts.iter().map(|p| to_circuit(p, ctx)).collect()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::exhaustive::exhaustive_update;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn assert_same_as_exhaustive(phi: &Sentence, db: &Database) {
        let opts = EvalOptions::default();
        let mut expected = exhaustive_update(phi, db, &opts).unwrap().databases;
        let mut got = grounding_update(phi, db, &opts).unwrap().databases;
        expected.sort();
        got.sort();
        assert_eq!(
            expected, got,
            "grounding disagrees with exhaustive for {phi}"
        );
    }

    #[test]
    fn matches_exhaustive_on_ground_updates() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32])
            .fact(r(1), [2u32])
            .build()
            .unwrap();
        for phi in [
            Sentence::new(atom(1, [cst(3)])).unwrap(),
            Sentence::new(not(atom(1, [cst(1)]))).unwrap(),
            Sentence::new(or(atom(1, [cst(3)]), not(atom(1, [cst(2)])))).unwrap(),
            Sentence::new(and(atom(1, [cst(1)]), not(atom(1, [cst(1)])))).unwrap(),
            Sentence::new(iff(atom(1, [cst(1)]), atom(1, [cst(3)]))).unwrap(),
        ] {
            assert_same_as_exhaustive(&phi, &db);
        }
    }

    #[test]
    fn matches_exhaustive_on_quantified_updates() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 1])
            .build()
            .unwrap();
        for phi in [
            // make R1 symmetric (already true → no change)
            Sentence::new(forall(
                [1, 2],
                implies(atom(1, [var(1), var(2)]), atom(1, [var(2), var(1)])),
            ))
            .unwrap(),
            // make R1 irreflexive and total on the diagonal — forces changes
            Sentence::new(forall([1], not(atom(1, [var(1), var(1)])))).unwrap(),
            // introduce a fresh unary relation listing sources
            Sentence::new(forall(
                [1, 2],
                implies(atom(1, [var(1), var(2)]), atom(2, [var(1)])),
            ))
            .unwrap(),
            // existential: some self-loop must exist
            Sentence::new(exists([1], atom(1, [var(1), var(1)]))).unwrap(),
        ] {
            assert_same_as_exhaustive(&phi, &db);
        }
    }

    #[test]
    fn matches_exhaustive_when_old_and_new_relations_interact() {
        // R2 fresh, but satisfying φ may also be achieved by shrinking R1:
        // ∀x (R1(x,x) → R2(x)) ∧ ¬R2(a1): either delete R1(1,1) or ... the
        // minimal change keeps R1 and is forced to violate — exercise the
        // flip stage.
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 1])
            .fact(r(1), [2u32, 2])
            .build()
            .unwrap();
        let phi = Sentence::new(and(
            forall([1], implies(atom(1, [var(1), var(1)]), atom(2, [var(1)]))),
            not(atom(2, [cst(1)])),
        ))
        .unwrap();
        assert_same_as_exhaustive(&phi, &db);
    }

    #[test]
    fn empty_database_and_zero_ary_relations() {
        // db empty over R3 (zero-ary); insert R3 ∨ ¬R3 and R3 itself.
        let db = DatabaseBuilder::new().relation(r(3), 0).build().unwrap();
        let taut = Sentence::new(or(atom(3, []), not(atom(3, [])))).unwrap();
        assert_same_as_exhaustive(&taut, &db);
        let force = Sentence::new(atom(3, [])).unwrap();
        assert_same_as_exhaustive(&force, &db);
    }

    #[test]
    fn world_limit_counts_distinct_worlds_only() {
        // (R1(3) ∨ R1(4)) into {R1(1)} has exactly two distinct minimal
        // models; a limit of exactly 2 must succeed (regression: the limit
        // used to be checked against the pre-dedup result vector, so any
        // duplicate database produced along the way counted toward it), and
        // a limit of 1 must fail reporting the true distinct count found.
        let db = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let phi = Sentence::new(or(atom(1, [cst(3)]), atom(1, [cst(4)]))).unwrap();

        let fits = EvalOptions {
            max_worlds: 2,
            ..EvalOptions::default()
        };
        let out = grounding_update(&phi, &db, &fits).unwrap();
        assert_eq!(out.databases.len(), 2);
        // results stay sorted and duplicate-free
        let mut sorted = out.databases.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted, out.databases);

        let too_small = EvalOptions {
            max_worlds: 1,
            ..EvalOptions::default()
        };
        match grounding_update(&phi, &db, &too_small) {
            Err(crate::error::CoreError::TooManyWorlds { worlds, limit }) => {
                assert_eq!(limit, 1);
                assert_eq!(worlds, 2, "the error must report distinct worlds");
            }
            other => panic!("expected TooManyWorlds, got {other:?}"),
        }
    }

    #[test]
    fn large_databases_no_longer_pay_the_eager_universe_ceiling() {
        // 600 constants over a binary relation: the eager universe would be
        // 600² + … ≈ 360 000 candidate facts > the default 200 000 ceiling
        // (UpdateContext::new refuses).  The lazy SAT path only sees the two
        // atoms φ mentions and must agree with the quantifier-free fast
        // path on the result.
        let mut b = DatabaseBuilder::new();
        for i in 1..=300u32 {
            b = b.fact(r(1), [2 * i - 1, 2 * i]);
        }
        let db = b.build().unwrap();
        let phi = Sentence::new(or(
            atom(1, [cst(1), cst(4)]),
            not(atom(1, [cst(1), cst(2)])),
        ))
        .unwrap();
        let opts = EvalOptions::default();
        assert!(matches!(
            UpdateContext::new(&phi, &db, &opts),
            Err(crate::error::CoreError::UniverseTooLarge { .. })
        ));

        let out = grounding_update(&phi, &db, &opts).unwrap();
        assert_eq!(out.candidate_atoms, 2, "only mentioned atoms are variables");
        let mut got = out.databases;
        let mut want = crate::update::quantifier_free::quantifier_free_update(&phi, &db, &opts)
            .unwrap()
            .databases;
        got.sort();
        want.sort();
        assert_eq!(got, want);
        // unmentioned stored facts carry over verbatim in every world
        for world in &got {
            assert!(world.holds(r(1), &kbt_data::tuple![599, 600]));
        }
    }

    #[test]
    fn deep_quantification_over_large_domains_refuses_before_grounding() {
        // ∀x,y,z over 600 constants would materialise ~600³ grounded nodes;
        // the arithmetic pre-grounding budget must refuse immediately (the
        // eager path refused too — via the universe bound), not OOM.
        let mut b = DatabaseBuilder::new();
        for i in 1..=300u32 {
            b = b.fact(r(1), [2 * i - 1, 2 * i]);
        }
        let db = b.build().unwrap();
        let phi = Sentence::new(forall(
            [1, 2, 3],
            implies(
                and(atom(1, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                atom(1, [var(1), var(3)]),
            ),
        ))
        .unwrap();
        assert!(matches!(
            grounding_update(&phi, &db, &EvalOptions::default()),
            Err(crate::error::CoreError::UniverseTooLarge { .. })
        ));
    }

    #[test]
    fn lazy_ceiling_bounds_mentioned_atoms() {
        // ∀x,y R1(x,y) over 40 constants mentions 1 600 atoms; a ceiling of
        // 1 000 passes the (8×) pre-grounding budget but must be rejected by
        // the mentioned-atom check, reporting the mentioned-atom count.
        let mut b = DatabaseBuilder::new();
        for i in 1..=20u32 {
            b = b.fact(r(1), [2 * i - 1, 2 * i]);
        }
        let db = b.build().unwrap();
        let phi = Sentence::new(forall([1, 2], atom(1, [var(1), var(2)]))).unwrap();
        let tight = EvalOptions {
            max_ground_atoms: 1_000,
            ..EvalOptions::default()
        };
        match grounding_update(&phi, &db, &tight) {
            Err(crate::error::CoreError::UniverseTooLarge { atoms, limit }) => {
                assert_eq!(limit, 1_000);
                assert_eq!(atoms, 40 * 40);
            }
            other => panic!("expected UniverseTooLarge, got {other:?}"),
        }

        // a still-tighter ceiling is caught arithmetically before grounding
        let tighter = EvalOptions {
            max_ground_atoms: 100,
            ..EvalOptions::default()
        };
        match grounding_update(&phi, &db, &tighter) {
            Err(crate::error::CoreError::UniverseTooLarge { atoms, limit }) => {
                assert_eq!(limit, 800, "8× the ceiling guards grounding itself");
                assert!(atoms >= 40 * 40);
            }
            other => panic!("expected UniverseTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn transitive_closure_example_1_of_section_3() {
        // Example 1: ?2 τ_φ([(r)]) is the transitive closure of r.
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 3])
            .fact(r(1), [3u32, 4])
            .build()
            .unwrap();
        let phi = Sentence::new(forall(
            [1, 2, 3],
            implies(
                or(
                    and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                    atom(1, [var(1), var(3)]),
                ),
                atom(2, [var(1), var(3)]),
            ),
        ))
        .unwrap();
        let out = grounding_update(&phi, &db, &EvalOptions::default()).unwrap();
        assert_eq!(out.databases.len(), 1);
        let result = &out.databases[0];
        // R1 unchanged
        assert_eq!(result.relation(r(1)).unwrap().len(), 3);
        // R2 = transitive closure of the 4-chain: 6 pairs
        let r2 = result.relation(r(2)).unwrap();
        assert_eq!(r2.len(), 6);
        assert!(result.holds(r(2), &kbt_data::tuple![1, 4]));
        assert!(!result.holds(r(2), &kbt_data::tuple![4, 1]));
    }
}
