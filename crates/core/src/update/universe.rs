//! The candidate universe of an update: the finite domain `B`, the result
//! schema `s = σ(db) ∪ σ(φ)`, and the set of ground facts a candidate
//! database may contain.

use std::collections::{BTreeMap, BTreeSet};

use kbt_data::{Const, Database, Schema, Tuple};
use kbt_engine::FactSet;
use kbt_logic::{GroundAtom, Sentence};

use crate::error::CoreError;
use crate::options::EvalOptions;
use crate::Result;

/// Precomputed context shared by the update evaluators.
#[derive(Clone, Debug)]
pub struct UpdateContext {
    /// The finite domain `B`: constants of the database and of the sentence.
    pub domain: BTreeSet<Const>,
    /// The result schema `s = σ(db) ∪ σ(φ)`.
    pub schema: Schema,
    /// The schema of the input database, `σ(db)`.
    pub old_schema: Schema,
    /// Every candidate ground fact over `schema` and `domain`, in a fixed
    /// order.
    pub atoms: Vec<GroundAtom>,
    /// Index of each atom within [`UpdateContext::atoms`].
    pub atom_index: BTreeMap<GroundAtom, usize>,
    /// Engine-backed hashed snapshot of the input database, for O(1)
    /// candidate-fact membership checks.
    stored: FactSet,
}

impl UpdateContext {
    /// Builds the context for `µ(φ, db)`, enforcing the configured ceiling on
    /// the number of candidate facts.
    pub fn new(phi: &Sentence, db: &Database, options: &EvalOptions) -> Result<Self> {
        let mut domain = db.constants();
        domain.extend(phi.constants());
        let old_schema = db.schema();
        let schema = old_schema.union(&phi.schema())?;

        // number of candidate facts = Σ_{R ∈ s} |B|^{arity(R)}
        let mut expected: usize = 0;
        for (_, arity) in schema.iter() {
            let count = domain.len().checked_pow(arity as u32).unwrap_or(usize::MAX);
            expected = expected.saturating_add(count);
        }
        if expected > options.max_ground_atoms {
            return Err(CoreError::UniverseTooLarge {
                atoms: expected,
                limit: options.max_ground_atoms,
            });
        }

        let mut atoms = Vec::with_capacity(expected);
        for (rel, arity) in schema.iter() {
            for tuple in all_tuples(&domain, arity) {
                atoms.push(GroundAtom::new(rel, tuple));
            }
        }
        let atom_index = atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), i))
            .collect();
        Ok(UpdateContext {
            domain,
            schema,
            old_schema,
            atoms,
            atom_index,
            stored: FactSet::from_database(db),
        })
    }

    /// Number of candidate facts.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Whether candidate fact `i` belongs to a relation of the input
    /// database's schema (an "old" fact, subject to stage one of the
    /// Winslett order).
    pub fn is_old_atom(&self, i: usize) -> bool {
        self.old_schema.contains(self.atoms[i].rel)
    }

    /// Whether candidate fact `i` is stored in the input database the
    /// context was built from (one hash lookup in the engine snapshot).
    pub fn holds_in_input(&self, i: usize) -> bool {
        let a = &self.atoms[i];
        self.stored.holds(a.rel, &a.tuple)
    }

    /// Whether candidate fact `i` is currently stored in `db`.
    pub fn holds_in(&self, i: usize, db: &Database) -> bool {
        let a = &self.atoms[i];
        db.holds(a.rel, &a.tuple)
    }

    /// Materialises a candidate database over the result schema from a
    /// membership predicate on candidate facts.
    pub fn database_from(&self, mut member: impl FnMut(usize) -> bool) -> Database {
        let mut db = Database::empty_over(&self.schema);
        for (i, a) in self.atoms.iter().enumerate() {
            if member(i) {
                db.insert_fact(a.rel, a.tuple.clone())
                    .expect("atom arity matches schema");
            }
        }
        db
    }

    /// The input database lifted to the result schema (new relations empty).
    pub fn lift(&self, db: &Database) -> Result<Database> {
        Ok(db.extend_schema(&self.schema)?)
    }
}

/// All tuples of the given arity over a finite domain, in lexicographic
/// order.  The zero-ary case yields exactly the empty tuple.
pub fn all_tuples(domain: &BTreeSet<Const>, arity: usize) -> Vec<Tuple> {
    let values: Vec<Const> = domain.iter().copied().collect();
    let mut out = Vec::new();
    let mut current = vec![0usize; arity];
    if arity == 0 {
        return vec![Tuple::empty()];
    }
    if values.is_empty() {
        return out;
    }
    loop {
        out.push(Tuple::new(
            current.iter().map(|&i| values[i]).collect::<Vec<_>>(),
        ));
        // increment the counter
        let mut pos = arity;
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            current[pos] += 1;
            if current[pos] < values.len() {
                break;
            }
            current[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn all_tuples_counts() {
        let dom: BTreeSet<Const> = [1u32, 2, 3].into_iter().map(Const::new).collect();
        assert_eq!(all_tuples(&dom, 0).len(), 1);
        assert_eq!(all_tuples(&dom, 1).len(), 3);
        assert_eq!(all_tuples(&dom, 2).len(), 9);
        let empty: BTreeSet<Const> = BTreeSet::new();
        assert_eq!(all_tuples(&empty, 2).len(), 0);
        assert_eq!(all_tuples(&empty, 0).len(), 1);
    }

    #[test]
    fn context_collects_domain_schema_and_atoms() {
        // db: R1 = {(1,2)}, φ mentions R2 (unary) and constant 3.
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .build()
            .unwrap();
        let phi = Sentence::new(exists([1], and(atom(2, [var(1)]), eq(var(1), cst(3))))).unwrap();
        let ctx = UpdateContext::new(&phi, &db, &EvalOptions::default()).unwrap();
        assert_eq!(ctx.domain.len(), 3); // {1, 2, 3}
        assert_eq!(ctx.schema.len(), 2);
        // R1 is binary over 3 constants (9 facts) + R2 unary (3 facts)
        assert_eq!(ctx.atom_count(), 12);
        let old_count = (0..ctx.atom_count())
            .filter(|&i| ctx.is_old_atom(i))
            .count();
        assert_eq!(old_count, 9);
    }

    #[test]
    fn universe_limit_is_enforced() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .build()
            .unwrap();
        let phi = Sentence::new(forall([1, 2], atom(1, [var(1), var(2)]))).unwrap();
        let tight = EvalOptions {
            max_ground_atoms: 3,
            ..EvalOptions::default()
        };
        assert!(matches!(
            UpdateContext::new(&phi, &db, &tight),
            Err(CoreError::UniverseTooLarge { .. })
        ));
    }

    #[test]
    fn database_from_membership_and_lift() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .build()
            .unwrap();
        let phi =
            Sentence::new(forall([1], implies(atom(2, [var(1)]), atom(2, [var(1)])))).unwrap();
        let ctx = UpdateContext::new(&phi, &db, &EvalOptions::default()).unwrap();
        let lifted = ctx.lift(&db).unwrap();
        assert!(lifted.relation(r(2)).unwrap().is_empty());
        assert!(lifted.holds(r(1), &kbt_data::tuple![1, 2]));

        let all = ctx.database_from(|_| true);
        assert_eq!(all.fact_count(), ctx.atom_count());
        let none = ctx.database_from(|_| false);
        assert_eq!(none.fact_count(), 0);
        assert_eq!(none.schema(), ctx.schema);
    }
}
