//! The candidate universe of an update: the finite domain `B`, the result
//! schema `s = σ(db) ∪ σ(φ)`, and the set of ground facts a candidate
//! database may contain.
//!
//! Two constructions exist:
//!
//! * [`UpdateContext::new`] — the **eager** universe of definition (9):
//!   every ground fact over `schema` and `domain`.  The exhaustive oracle
//!   needs exactly this set (it enumerates candidate databases literally).
//! * [`UpdateContext::grounded`] — the **lazy** universe used by the SAT
//!   path: only the atoms the grounded sentence actually mentions become
//!   candidates, and the output database is assembled from the *input
//!   database* (via the engine's hashed snapshot) plus the per-atom model
//!   values.  This is sound for Winslett minimisation because an atom
//!   `ground(φ)` never mentions cannot change in any minimal model: flipping
//!   a stored old fact (or asserting an absent one, old or new) that `φ`
//!   does not constrain only grows the symmetric difference / the new-part,
//!   and reverting it to its input value preserves `φ` — so stage one
//!   (respectively stage two) of the order always prefers the reverted
//!   model.  The `max_ground_atoms` ceiling then bounds the *mentioned*
//!   atoms instead of `Σ_R |B|^arity(R)`, which frees ground or
//!   small-footprint sentences from paying for the database's whole
//!   active-domain universe.

use std::collections::{BTreeMap, BTreeSet};

use kbt_data::{Const, Database, Schema, Tuple};
use kbt_engine::FactSet;
use kbt_logic::{ground_sentence, GroundAtom, GroundFormula, Sentence};

use crate::error::CoreError;
use crate::options::EvalOptions;
use crate::Result;

/// Precomputed context shared by the update evaluators.
#[derive(Clone, Debug)]
pub struct UpdateContext {
    /// The finite domain `B`: constants of the database and of the sentence.
    pub domain: BTreeSet<Const>,
    /// The result schema `s = σ(db) ∪ σ(φ)`.
    pub schema: Schema,
    /// The schema of the input database, `σ(db)`.
    pub old_schema: Schema,
    /// The candidate ground facts, in a fixed order: the full universe for
    /// [`Self::new`], the mentioned atoms for [`Self::grounded`].
    pub atoms: Vec<GroundAtom>,
    /// Index of each atom within [`UpdateContext::atoms`].
    pub atom_index: BTreeMap<GroundAtom, usize>,
    /// Engine-backed hashed snapshot of the input database, for O(1)
    /// candidate-fact membership checks.
    stored: FactSet,
    /// For lazy contexts: the input database lifted to `schema`, the base
    /// every output database starts from (facts outside [`Self::atoms`]
    /// carry over verbatim).  `None` for the eager universe.
    base: Option<Database>,
}

impl UpdateContext {
    /// Builds the eager context for `µ(φ, db)`, enforcing the configured
    /// ceiling on the number of candidate facts.
    pub fn new(phi: &Sentence, db: &Database, options: &EvalOptions) -> Result<Self> {
        let mut domain = db.constants();
        domain.extend(phi.constants());
        let old_schema = db.schema();
        let schema = old_schema.union(&phi.schema())?;

        // number of candidate facts = Σ_{R ∈ s} |B|^{arity(R)}
        let mut expected: usize = 0;
        for (_, arity) in schema.iter() {
            let count = domain.len().checked_pow(arity as u32).unwrap_or(usize::MAX);
            expected = expected.saturating_add(count);
        }
        if expected > options.max_ground_atoms {
            return Err(CoreError::UniverseTooLarge {
                atoms: expected,
                limit: options.max_ground_atoms,
            });
        }

        let mut atoms = Vec::with_capacity(expected);
        for (rel, arity) in schema.iter() {
            for tuple in all_tuples(&domain, arity) {
                atoms.push(GroundAtom::new(rel, tuple));
            }
        }
        let atom_index = atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), i))
            .collect();
        Ok(UpdateContext {
            domain,
            schema,
            old_schema,
            atoms,
            atom_index,
            stored: FactSet::from_database(db),
            base: None,
        })
    }

    /// Builds the lazy context for `µ(φ, db)`: grounds `φ` over the domain
    /// and admits only the mentioned atoms as candidates (see the module
    /// docs for why that is sound).  Returns the grounded sentence alongside
    /// so the caller does not ground twice.
    ///
    /// Grounding itself is budgeted *before* it runs: every quantifier
    /// multiplies the grounded formula's size by `|B|`, so
    /// `grounding_cost` — an exact upper bound on the node count,
    /// computed arithmetically — is checked against a generous multiple of
    /// `max_ground_atoms` first.  Without this, a deeply quantified
    /// sentence over a large database would materialise the blown-up
    /// formula in memory before the mentioned-atom ceiling could fire.
    pub fn grounded(
        phi: &Sentence,
        db: &Database,
        options: &EvalOptions,
    ) -> Result<(Self, GroundFormula)> {
        let mut domain = db.constants();
        domain.extend(phi.constants());
        let old_schema = db.schema();
        let schema = old_schema.union(&phi.schema())?;

        // The grounded node count can never exceed the mentioned-atom
        // ceiling by more than constant folding can shrink; allow 8× for
        // connectives and folded subtrees before refusing to ground at all.
        let cost_ceiling = options.max_ground_atoms.saturating_mul(8);
        let cost = grounding_cost(phi.formula(), domain.len().max(1));
        if cost > cost_ceiling {
            return Err(CoreError::UniverseTooLarge {
                atoms: cost,
                limit: cost_ceiling,
            });
        }

        let ground = ground_sentence(phi, &domain);
        let mentioned = ground.atoms();
        if mentioned.len() > options.max_ground_atoms {
            return Err(CoreError::UniverseTooLarge {
                atoms: mentioned.len(),
                limit: options.max_ground_atoms,
            });
        }
        let atoms: Vec<GroundAtom> = mentioned.into_iter().collect();
        let atom_index = atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), i))
            .collect();
        let base = db.extend_schema(&schema)?;
        let ctx = UpdateContext {
            domain,
            schema,
            old_schema,
            atoms,
            atom_index,
            stored: FactSet::from_database(db),
            base: Some(base),
        };
        Ok((ctx, ground))
    }

    /// Number of candidate facts.
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Whether candidate fact `i` belongs to a relation of the input
    /// database's schema (an "old" fact, subject to stage one of the
    /// Winslett order).
    pub fn is_old_atom(&self, i: usize) -> bool {
        self.old_schema.contains(self.atoms[i].rel)
    }

    /// Whether candidate fact `i` is stored in the input database the
    /// context was built from (one hash lookup in the engine snapshot).
    pub fn holds_in_input(&self, i: usize) -> bool {
        let a = &self.atoms[i];
        self.stored.holds(a.rel, &a.tuple)
    }

    /// Whether candidate fact `i` is currently stored in `db`.
    pub fn holds_in(&self, i: usize, db: &Database) -> bool {
        let a = &self.atoms[i];
        db.holds(a.rel, &a.tuple)
    }

    /// Materialises a candidate database over the result schema from a
    /// membership predicate on candidate facts.
    ///
    /// For the eager universe the database is built from scratch; for the
    /// lazy one it starts as the (lifted) input database, and only the
    /// mentioned atoms are set to their model values — every unmentioned
    /// stored fact carries over, matching definition (9) restricted to the
    /// atoms that can actually change.
    pub fn database_from(&self, mut member: impl FnMut(usize) -> bool) -> Database {
        let mut db = match &self.base {
            Some(base) => base.clone(),
            None => Database::empty_over(&self.schema),
        };
        for (i, a) in self.atoms.iter().enumerate() {
            if member(i) {
                db.insert_fact(a.rel, a.tuple.clone())
                    .expect("atom arity matches schema");
            } else if self.base.is_some() {
                db.remove_fact(a.rel, &a.tuple);
            }
        }
        db
    }

    /// The input database lifted to the result schema (new relations empty).
    pub fn lift(&self, db: &Database) -> Result<Database> {
        Ok(db.extend_schema(&self.schema)?)
    }
}

/// An upper bound on the number of nodes `ground(f)` materialises over a
/// domain of `domain_size` constants: each quantifier multiplies its body by
/// the domain size, everything else is structural.  Saturating, so
/// pathological nesting reports `usize::MAX` instead of overflowing.
fn grounding_cost(f: &kbt_logic::Formula, domain_size: usize) -> usize {
    use kbt_logic::Formula;
    match f {
        Formula::True | Formula::False | Formula::Atom(..) | Formula::Eq(..) => 1,
        Formula::Not(inner) => grounding_cost(inner, domain_size).saturating_add(1),
        Formula::And(a, b) | Formula::Or(a, b) | Formula::Implies(a, b) | Formula::Iff(a, b) => {
            grounding_cost(a, domain_size)
                .saturating_add(grounding_cost(b, domain_size))
                .saturating_add(1)
        }
        Formula::Exists(_, inner) | Formula::Forall(_, inner) => {
            grounding_cost(inner, domain_size).saturating_mul(domain_size)
        }
    }
}

/// All tuples of the given arity over a finite domain, in lexicographic
/// order.  The zero-ary case yields exactly the empty tuple.
pub fn all_tuples(domain: &BTreeSet<Const>, arity: usize) -> Vec<Tuple> {
    let values: Vec<Const> = domain.iter().copied().collect();
    let mut out = Vec::new();
    let mut current = vec![0usize; arity];
    if arity == 0 {
        return vec![Tuple::empty()];
    }
    if values.is_empty() {
        return out;
    }
    loop {
        out.push(Tuple::new(
            current.iter().map(|&i| values[i]).collect::<Vec<_>>(),
        ));
        // increment the counter
        let mut pos = arity;
        loop {
            if pos == 0 {
                return out;
            }
            pos -= 1;
            current[pos] += 1;
            if current[pos] < values.len() {
                break;
            }
            current[pos] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn all_tuples_counts() {
        let dom: BTreeSet<Const> = [1u32, 2, 3].into_iter().map(Const::new).collect();
        assert_eq!(all_tuples(&dom, 0).len(), 1);
        assert_eq!(all_tuples(&dom, 1).len(), 3);
        assert_eq!(all_tuples(&dom, 2).len(), 9);
        let empty: BTreeSet<Const> = BTreeSet::new();
        assert_eq!(all_tuples(&empty, 2).len(), 0);
        assert_eq!(all_tuples(&empty, 0).len(), 1);
    }

    #[test]
    fn context_collects_domain_schema_and_atoms() {
        // db: R1 = {(1,2)}, φ mentions R2 (unary) and constant 3.
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .build()
            .unwrap();
        let phi = Sentence::new(exists([1], and(atom(2, [var(1)]), eq(var(1), cst(3))))).unwrap();
        let ctx = UpdateContext::new(&phi, &db, &EvalOptions::default()).unwrap();
        assert_eq!(ctx.domain.len(), 3); // {1, 2, 3}
        assert_eq!(ctx.schema.len(), 2);
        // R1 is binary over 3 constants (9 facts) + R2 unary (3 facts)
        assert_eq!(ctx.atom_count(), 12);
        let old_count = (0..ctx.atom_count())
            .filter(|&i| ctx.is_old_atom(i))
            .count();
        assert_eq!(old_count, 9);
    }

    #[test]
    fn grounded_context_only_admits_mentioned_atoms() {
        // db: R1 = {(1,2)}, φ = R1(1,3) ∨ ¬R1(1,2): two mentioned atoms out
        // of an eager universe of 9 (+ nothing new).
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .build()
            .unwrap();
        let phi = Sentence::new(or(
            atom(1, [cst(1), cst(3)]),
            not(atom(1, [cst(1), cst(2)])),
        ))
        .unwrap();
        let (ctx, ground) = UpdateContext::grounded(&phi, &db, &EvalOptions::default()).unwrap();
        assert_eq!(ctx.atom_count(), 2);
        assert_eq!(ground.atoms().len(), 2);
        assert!((0..2).all(|i| ctx.is_old_atom(i)));

        // database_from starts from the input: unmentioned facts carry over
        let all = ctx.database_from(|_| true);
        assert!(all.holds(r(1), &kbt_data::tuple![1, 2]));
        assert!(all.holds(r(1), &kbt_data::tuple![1, 3]));
        let none = ctx.database_from(|_| false);
        assert!(!none.holds(r(1), &kbt_data::tuple![1, 2]));
        assert!(!none.holds(r(1), &kbt_data::tuple![1, 3]));
        assert_eq!(none.schema(), ctx.schema);
    }

    #[test]
    fn universe_limit_is_enforced() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .build()
            .unwrap();
        let phi = Sentence::new(forall([1, 2], atom(1, [var(1), var(2)]))).unwrap();
        let tight = EvalOptions {
            max_ground_atoms: 3,
            ..EvalOptions::default()
        };
        assert!(matches!(
            UpdateContext::new(&phi, &db, &tight),
            Err(CoreError::UniverseTooLarge { .. })
        ));
    }

    #[test]
    fn database_from_membership_and_lift() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .build()
            .unwrap();
        let phi =
            Sentence::new(forall([1], implies(atom(2, [var(1)]), atom(2, [var(1)])))).unwrap();
        let ctx = UpdateContext::new(&phi, &db, &EvalOptions::default()).unwrap();
        let lifted = ctx.lift(&db).unwrap();
        assert!(lifted.relation(r(2)).unwrap().is_empty());
        assert!(lifted.holds(r(1), &kbt_data::tuple![1, 2]));

        let all = ctx.database_from(|_| true);
        assert_eq!(all.fact_count(), ctx.atom_count());
        let none = ctx.database_from(|_| false);
        assert_eq!(none.fact_count(), 0);
        assert_eq!(none.schema(), ctx.schema);
    }
}
