//! The Datalog fast path — Theorem 4.8.
//!
//! When the inserted sentence is a conjunction of function-free Horn clauses
//! whose head relations are *fresh* (not part of the input database's
//! schema), the Winslett-minimal update is unique: the input relations stay
//! untouched (an empty symmetric difference is feasible, so stage one of the
//! order forces it) and the fresh relations take the least values satisfying
//! the clauses — i.e. the least fixpoint of the corresponding Datalog
//! program, computable in polynomial time by semi-naive evaluation.

use kbt_data::Database;
use kbt_datalog::{program_from_sentence, semi_naive_eval};
use kbt_logic::{horn_clauses, Sentence};

use crate::error::CoreError;
use crate::options::EvalOptions;
use crate::update::UpdateOutcome;
use crate::Result;

/// Whether the Datalog fast path applies to `φ` and `db`: the sentence is a
/// conjunction of range-restricted Horn clauses, and every head relation is
/// absent from `σ(db)`.
pub fn applicable(phi: &Sentence, db: &Database) -> bool {
    let Some(clauses) = horn_clauses(phi) else {
        return false;
    };
    let old = db.schema();
    if clauses.iter().any(|c| old.contains(c.head_relation())) {
        return false;
    }
    // range-restriction (safety) is re-checked by Program construction
    kbt_datalog::program_from_horn(&clauses).is_ok()
}

/// Computes `µ(φ, db)` for a Horn sentence defining fresh relations.
pub fn datalog_update(
    phi: &Sentence,
    db: &Database,
    options: &EvalOptions,
) -> Result<UpdateOutcome> {
    if !applicable(phi, db) {
        return Err(CoreError::StrategyNotApplicable {
            strategy: "Datalog",
            reason:
                "the sentence is not a conjunction of safe Horn clauses over fresh head relations"
                    .to_string(),
        });
    }
    // No candidate universe is materialised here: the result schema is just
    // σ(db) ∪ σ(φ) and the fixpoint engine works directly on the database,
    // which is what makes this path polynomial (Theorem 4.8).
    let _ = options;
    let program = program_from_sentence(phi)?;
    let schema = db.schema().union(&phi.schema())?;
    let lifted = db.extend_schema(&schema)?;
    let (fixpoint, stats) = semi_naive_eval(&program, &lifted)?;
    Ok(UpdateOutcome {
        databases: vec![fixpoint],
        candidate_atoms: 0,
        fixpoint: Some(stats),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::exhaustive::exhaustive_update;
    use crate::update::grounding::grounding_update;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn tc_sentence() -> Sentence {
        Sentence::new(and(
            forall(
                [1, 2],
                implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
            ),
            forall(
                [1, 2, 3],
                implies(
                    and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                    atom(2, [var(1), var(3)]),
                ),
            ),
        ))
        .unwrap()
    }

    #[test]
    fn applicability_requires_fresh_heads() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .build()
            .unwrap();
        assert!(applicable(&tc_sentence(), &db));

        // if R2 is already stored, the least-fixpoint shortcut is unsound
        let db_with_r2 = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .relation(r(2), 2)
            .build()
            .unwrap();
        assert!(!applicable(&tc_sentence(), &db_with_r2));

        // non-Horn sentences never qualify
        let non_horn = Sentence::new(forall(
            [1, 2],
            iff(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
        ))
        .unwrap();
        assert!(!applicable(&non_horn, &db));
    }

    #[test]
    fn computes_the_transitive_closure_least_fixpoint() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 3])
            .fact(r(1), [3u32, 4])
            .fact(r(1), [4u32, 5])
            .build()
            .unwrap();
        let out = datalog_update(&tc_sentence(), &db, &EvalOptions::default()).unwrap();
        assert_eq!(out.databases.len(), 1);
        let result = &out.databases[0];
        assert_eq!(result.relation(r(1)).unwrap().len(), 4);
        assert_eq!(result.relation(r(2)).unwrap().len(), 10);
        assert!(result.holds(r(2), &kbt_data::tuple![1, 5]));
    }

    #[test]
    fn agrees_with_grounding_and_exhaustive_on_small_inputs() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 1])
            .build()
            .unwrap();
        let phi = Sentence::new(forall(
            [1, 2],
            implies(atom(1, [var(1), var(2)]), atom(2, [var(1)])),
        ))
        .unwrap();
        let opts = EvalOptions::default();
        let mut a = datalog_update(&phi, &db, &opts).unwrap().databases;
        let mut b = grounding_update(&phi, &db, &opts).unwrap().databases;
        let mut c = exhaustive_update(&phi, &db, &opts).unwrap().databases;
        a.sort();
        b.sort();
        c.sort();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn rejects_when_not_applicable() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .relation(r(2), 2)
            .build()
            .unwrap();
        assert!(matches!(
            datalog_update(&tc_sentence(), &db, &EvalOptions::default()),
            Err(CoreError::StrategyNotApplicable { .. })
        ));
    }
}
