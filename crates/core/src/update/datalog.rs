//! The Datalog fast path — Theorem 4.8.
//!
//! When the inserted sentence is a conjunction of function-free Horn clauses
//! whose head relations are *fresh* (not part of the input database's
//! schema), the Winslett-minimal update is unique: the input relations stay
//! untouched (an empty symmetric difference is feasible, so stage one of the
//! order forces it) and the fresh relations take the least values satisfying
//! the clauses — i.e. the least fixpoint of the corresponding Datalog
//! program, computable in polynomial time by semi-naive evaluation.
//!
//! [`ChainSession`] adds the incremental variant used for `τ_φ` *chains*: a
//! `Seq` applying the same Horn sentence to a series of closely related
//! singleton knowledgebases keeps one engine session alive and feeds it the
//! diff between consecutive databases instead of re-deriving every fixpoint
//! from scratch.

use std::collections::BTreeSet;

use kbt_data::{Database, RelId, Relation, Schema, Tuple};
use kbt_datalog::{program_from_sentence, semi_naive_eval_threads, IncrementalEval};
use kbt_logic::{horn_clauses, Sentence};

use crate::error::CoreError;
use crate::options::EvalOptions;
use crate::update::UpdateOutcome;
use crate::Result;

/// Whether the Datalog fast path applies to `φ` and `db`: the sentence is a
/// conjunction of range-restricted Horn clauses, and every head relation is
/// absent from `σ(db)`.
pub fn applicable(phi: &Sentence, db: &Database) -> bool {
    let Some(clauses) = horn_clauses(phi) else {
        return false;
    };
    let old = db.schema();
    if clauses.iter().any(|c| old.contains(c.head_relation())) {
        return false;
    }
    // range-restriction (safety) is re-checked by Program construction
    kbt_datalog::program_from_horn(&clauses).is_ok()
}

/// Computes `µ(φ, db)` for a Horn sentence defining fresh relations.
pub fn datalog_update(
    phi: &Sentence,
    db: &Database,
    options: &EvalOptions,
) -> Result<UpdateOutcome> {
    if !applicable(phi, db) {
        return Err(CoreError::StrategyNotApplicable {
            strategy: "Datalog",
            reason:
                "the sentence is not a conjunction of safe Horn clauses over fresh head relations"
                    .to_string(),
        });
    }
    // No candidate universe is materialised here: the result schema is just
    // σ(db) ∪ σ(φ) and the fixpoint engine works directly on the database,
    // which is what makes this path polynomial (Theorem 4.8).
    let program = program_from_sentence(phi)?;
    let schema = db.schema().union(&phi.schema())?;
    let lifted = db.extend_schema(&schema)?;
    let (fixpoint, stats) = semi_naive_eval_threads(&program, &lifted, options.threads)?;
    Ok(UpdateOutcome {
        databases: vec![fixpoint],
        candidate_atoms: 0,
        fixpoint: Some(stats),
        profile: None,
    })
}

/// [`datalog_update`] with per-rule profiling: identical databases and
/// fixpoint statistics (see [`kbt_engine::profile`] for the determinism
/// contract), plus the per-rule breakdown in the outcome's `profile`.
pub fn datalog_update_profiled(
    phi: &Sentence,
    db: &Database,
    options: &EvalOptions,
    namer: &dyn Fn(RelId) -> String,
) -> Result<UpdateOutcome> {
    if !applicable(phi, db) {
        return Err(CoreError::StrategyNotApplicable {
            strategy: "Datalog",
            reason:
                "the sentence is not a conjunction of safe Horn clauses over fresh head relations"
                    .to_string(),
        });
    }
    let program = program_from_sentence(phi)?;
    let schema = db.schema().union(&phi.schema())?;
    let lifted = db.extend_schema(&schema)?;
    let (fixpoint, stats, profile) =
        kbt_datalog::semi_naive_eval_profiled(&program, &lifted, options.threads, namer)?;
    Ok(UpdateOutcome {
        databases: vec![fixpoint],
        candidate_atoms: 0,
        fixpoint: Some(stats),
        profile: Some(profile),
    })
}

/// Renders the join plans [`datalog_update`] would run for `φ` over `db`,
/// without evaluating: one zeroed [`kbt_datalog::RuleProfile`] per rule.
pub fn datalog_explain(
    phi: &Sentence,
    db: &Database,
    namer: &dyn Fn(RelId) -> String,
) -> Result<Vec<kbt_datalog::RuleProfile>> {
    if !applicable(phi, db) {
        return Err(CoreError::StrategyNotApplicable {
            strategy: "Datalog",
            reason:
                "the sentence is not a conjunction of safe Horn clauses over fresh head relations"
                    .to_string(),
        });
    }
    let program = program_from_sentence(phi)?;
    let schema = db.schema().union(&phi.schema())?;
    let lifted = db.extend_schema(&schema)?;
    kbt_datalog::explain_plans(&program, &lifted, namer).map_err(Into::into)
}

/// A persistent incremental evaluation of one Horn sentence across a chain
/// of closely related databases.
///
/// The transformer keeps at most one of these per `Seq` walk: the first
/// applicable `τ_φ` step builds it (paying one full fixpoint), and every
/// later `τ_φ` step with the *same* sentence advances it by diffing the new
/// input database against the one the session last saw.  The produced
/// outcome is byte-identical to [`datalog_update`]; if the engine rejects a
/// delta (e.g. a relation reappeared with a different arity), the session
/// transparently rebuilds itself from scratch.
#[derive(Clone, Debug)]
pub struct ChainSession {
    phi: Sentence,
    /// The schema of `φ`, cached (the per-step result assembly needs it).
    phi_schema: Schema,
    /// The input database the session is currently synced to.
    base: Database,
    /// Engine evaluation width, kept so transparent rebuilds preserve it.
    threads: usize,
    eval: IncrementalEval,
}

impl ChainSession {
    /// Builds a session for `φ` over `db` (the caller must have checked
    /// [`applicable`]) at the given engine evaluation width (`0` = process
    /// default), and returns the first update outcome.
    pub fn start(phi: &Sentence, db: &Database, threads: usize) -> Result<(Self, UpdateOutcome)> {
        let program = program_from_sentence(phi)?;
        let phi_schema = phi.schema();
        let schema = db.schema().union(&phi_schema)?;
        let lifted = db.extend_schema(&schema)?;
        let eval = IncrementalEval::with_threads(&program, &lifted, threads)?;
        let stats = eval.total_stats();
        let session = ChainSession {
            phi: phi.clone(),
            phi_schema,
            base: db.clone(),
            threads,
            eval,
        };
        let outcome = UpdateOutcome {
            databases: vec![session.eval.current()],
            candidate_atoms: 0,
            fixpoint: Some(stats),
            profile: None,
        };
        Ok((session, outcome))
    }

    /// Whether the session evaluates this sentence.
    pub fn matches(&self, phi: &Sentence) -> bool {
        self.phi == *phi
    }

    /// Advances the session to `db` (the caller must have checked
    /// [`applicable`] for `db`): the diff against the previously seen
    /// database is fed to the engine as a delta, and the maintained fixpoint
    /// is returned restricted to the schema `σ(db) ∪ σ(φ)` — exactly what
    /// [`datalog_update`] would produce from scratch.
    pub fn advance(&mut self, db: &Database) -> Result<UpdateOutcome> {
        // The from-scratch path fails here on a σ(db)/σ(φ) arity conflict;
        // the incremental path must fail identically (a tuple-level diff
        // alone would miss conflicts on *empty* relations).
        db.schema().union(&self.phi_schema)?;
        let (insertions, deletions) = diff(db, &self.base);
        let stats = match self.eval.apply_delta(&insertions, &deletions) {
            Ok(stats) => stats,
            Err(_) => {
                // e.g. a relation came back with a different arity: fall
                // back to rebuilding the whole session on the new input.
                let (rebuilt, outcome) = ChainSession::start(&self.phi, db, self.threads)?;
                *self = rebuilt;
                return Ok(outcome);
            }
        };
        self.base = db.clone();

        // Assemble the result the way the from-scratch path would have:
        // the input database's relations verbatim (the engine mirrors them,
        // but `db` already holds them materialised), plus the relations of
        // σ(φ) absent from σ(db) — the fresh head relations at their
        // maintained fixpoint and φ's body-only relations (empty).  This
        // copies only the intensional output instead of the whole engine
        // storage, and implicitly drops relations earlier chain inputs left
        // behind in the engine.  The engine hands the intensional relations
        // out as copy-on-write snapshots, so a step pays for the tuples its
        // delta changed, not for re-collecting the whole (large) fixpoint
        // relation.
        let mut result = db.clone();
        for (rel, arity) in self.phi_schema.iter() {
            if result.relation(rel).is_none() {
                let relation = self
                    .eval
                    .relation(rel)
                    .unwrap_or_else(|| Relation::empty(arity));
                result.set_relation(rel, relation);
            }
        }
        Ok(UpdateOutcome {
            databases: vec![result],
            candidate_atoms: 0,
            fixpoint: Some(stats),
            profile: None,
        })
    }
}

/// A list of facts, as the engine's delta entry points accept them.
type FactList = Vec<(RelId, Tuple)>;

/// The componentwise diff `new − old` / `old − new` over both schemas,
/// grouped as insertion and deletion fact lists for the engine.
fn diff(new: &Database, old: &Database) -> (FactList, FactList) {
    let rels: BTreeSet<RelId> = new
        .schema()
        .relations()
        .chain(old.schema().relations())
        .collect();
    let mut insertions = Vec::new();
    let mut deletions = Vec::new();
    for rel in rels {
        let new_rel = new.relation(rel);
        let old_rel = old.relation(rel);
        match (new_rel, old_rel) {
            // Copy-on-write fast path: a chain step leaves most relations
            // on the very Arc the previous step produced, so the common
            // case is a pointer check instead of a scan.
            (Some(nr), Some(or)) if nr.shares_rows(or) => {}
            // Same arity: one linear merge walk over the two sorted runs.
            (Some(nr), Some(or)) if nr.arity() == or.arity() && nr.arity() > 0 => {
                let (mut i, mut j) = (0, 0);
                while i < nr.len() || j < or.len() {
                    match (nr.len() - i, or.len() - j) {
                        (0, _) => {
                            deletions.push((rel, Tuple::from_row(or.row(j))));
                            j += 1;
                        }
                        (_, 0) => {
                            insertions.push((rel, Tuple::from_row(nr.row(i))));
                            i += 1;
                        }
                        _ => match nr.row(i).cmp(or.row(j)) {
                            std::cmp::Ordering::Equal => {
                                i += 1;
                                j += 1;
                            }
                            std::cmp::Ordering::Less => {
                                insertions.push((rel, Tuple::from_row(nr.row(i))));
                                i += 1;
                            }
                            std::cmp::Ordering::Greater => {
                                deletions.push((rel, Tuple::from_row(or.row(j))));
                                j += 1;
                            }
                        },
                    }
                }
            }
            // Zero arity, arity conflicts, or a one-sided relation: the
            // generic membership formulation (a row of the wrong length is
            // simply absent).
            _ => {
                if let Some(nr) = new_rel {
                    for row in nr.iter() {
                        if !old_rel.is_some_and(|o| o.contains_row(row)) {
                            insertions.push((rel, Tuple::from_row(row)));
                        }
                    }
                }
                if let Some(or) = old_rel {
                    for row in or.iter() {
                        if !new_rel.is_some_and(|n| n.contains_row(row)) {
                            deletions.push((rel, Tuple::from_row(row)));
                        }
                    }
                }
            }
        }
    }
    (insertions, deletions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::exhaustive::exhaustive_update;
    use crate::update::grounding::grounding_update;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn tc_sentence() -> Sentence {
        Sentence::new(and(
            forall(
                [1, 2],
                implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
            ),
            forall(
                [1, 2, 3],
                implies(
                    and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                    atom(2, [var(1), var(3)]),
                ),
            ),
        ))
        .unwrap()
    }

    #[test]
    fn applicability_requires_fresh_heads() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .build()
            .unwrap();
        assert!(applicable(&tc_sentence(), &db));

        // if R2 is already stored, the least-fixpoint shortcut is unsound
        let db_with_r2 = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .relation(r(2), 2)
            .build()
            .unwrap();
        assert!(!applicable(&tc_sentence(), &db_with_r2));

        // non-Horn sentences never qualify
        let non_horn = Sentence::new(forall(
            [1, 2],
            iff(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
        ))
        .unwrap();
        assert!(!applicable(&non_horn, &db));
    }

    #[test]
    fn computes_the_transitive_closure_least_fixpoint() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 3])
            .fact(r(1), [3u32, 4])
            .fact(r(1), [4u32, 5])
            .build()
            .unwrap();
        let out = datalog_update(&tc_sentence(), &db, &EvalOptions::default()).unwrap();
        assert_eq!(out.databases.len(), 1);
        let result = &out.databases[0];
        assert_eq!(result.relation(r(1)).unwrap().len(), 4);
        assert_eq!(result.relation(r(2)).unwrap().len(), 10);
        assert!(result.holds(r(2), &kbt_data::tuple![1, 5]));
    }

    #[test]
    fn agrees_with_grounding_and_exhaustive_on_small_inputs() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 1])
            .build()
            .unwrap();
        let phi = Sentence::new(forall(
            [1, 2],
            implies(atom(1, [var(1), var(2)]), atom(2, [var(1)])),
        ))
        .unwrap();
        let opts = EvalOptions::default();
        let mut a = datalog_update(&phi, &db, &opts).unwrap().databases;
        let mut b = grounding_update(&phi, &db, &opts).unwrap().databases;
        let mut c = exhaustive_update(&phi, &db, &opts).unwrap().databases;
        a.sort();
        b.sort();
        c.sort();
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn chain_session_tracks_datalog_update_across_diffs() {
        let phi = tc_sentence();
        let mut db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 3])
            .build()
            .unwrap();
        let opts = EvalOptions::default();
        let (mut session, first) = ChainSession::start(&phi, &db, 0).unwrap();
        assert_eq!(first, datalog_update(&phi, &db, &opts).unwrap());
        assert!(session.matches(&phi));

        // grow the chain, shrink it, and then change an unrelated relation
        let edits: Vec<(bool, (u32, u32))> = vec![
            (true, (3, 4)),
            (true, (4, 5)),
            (false, (2, 3)),
            (true, (2, 3)),
        ];
        for (insert, (x, y)) in edits {
            if insert {
                db.insert_fact(r(1), kbt_data::tuple![x, y]).unwrap();
            } else {
                db.remove_fact(r(1), &kbt_data::tuple![x, y]);
            }
            let got = session.advance(&db).unwrap();
            let want = datalog_update(&phi, &db, &opts).unwrap();
            assert_eq!(got.databases, want.databases);
        }
    }

    #[test]
    fn chain_session_restricts_to_the_current_schema() {
        // the second input drops relation R3 entirely; the session result
        // must not leak it back in.
        let phi = tc_sentence();
        let db1 = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(3), [7u32])
            .build()
            .unwrap();
        let db2 = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 3])
            .build()
            .unwrap();
        let (mut session, _) = ChainSession::start(&phi, &db1, 0).unwrap();
        let got = session.advance(&db2).unwrap();
        let want = datalog_update(&phi, &db2, &EvalOptions::default()).unwrap();
        assert_eq!(got.databases, want.databases);
        assert!(got.databases[0].relation(r(3)).is_none());
    }

    #[test]
    fn chain_session_rebuilds_on_arity_conflicts() {
        // R3 disappears and returns with a different arity: the in-place
        // delta is impossible, so the session must rebuild transparently.
        let phi = tc_sentence();
        let db1 = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(3), [7u32])
            .build()
            .unwrap();
        let db2 = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(3), [7u32, 8])
            .build()
            .unwrap();
        let (mut session, _) = ChainSession::start(&phi, &db1, 0).unwrap();
        let got = session.advance(&db2).unwrap();
        let want = datalog_update(&phi, &db2, &EvalOptions::default()).unwrap();
        assert_eq!(got.databases, want.databases);
        // and the rebuilt session keeps advancing correctly
        let mut db3 = db2.clone();
        db3.insert_fact(r(1), kbt_data::tuple![2, 3]).unwrap();
        let got = session.advance(&db3).unwrap();
        let want = datalog_update(&phi, &db3, &EvalOptions::default()).unwrap();
        assert_eq!(got.databases, want.databases);
    }

    #[test]
    fn chain_session_rejects_schema_conflicts_with_phi() {
        // R1 returns empty with arity 3: the tuple-level diff is deletions
        // only, but σ(db) ∪ σ(φ) is contradictory — advance must fail just
        // like the from-scratch path does.
        let phi = tc_sentence();
        let db1 = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .build()
            .unwrap();
        let db2 = DatabaseBuilder::new().relation(r(1), 3).build().unwrap();
        let (mut session, _) = ChainSession::start(&phi, &db1, 0).unwrap();
        assert!(session.advance(&db2).is_err());
        assert!(datalog_update(&phi, &db2, &EvalOptions::default()).is_err());
    }

    #[test]
    fn rejects_when_not_applicable() {
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .relation(r(2), 2)
            .build()
            .unwrap();
        assert!(matches!(
            datalog_update(&tc_sentence(), &db, &EvalOptions::default()),
            Err(CoreError::StrategyNotApplicable { .. })
        ));
    }
}
