//! The `µ` function — definition (9) of the paper.
//!
//! `µ(φ, db)` is the set of databases over the schema `s = σ(db) ∪ σ(φ)`,
//! with values restricted to the constants `B` appearing in `db` or `φ`, that
//! satisfy `φ` and are minimal in the Winslett order `≤_db`.
//!
//! Four interchangeable evaluators are provided (selected by
//! [`crate::Strategy`]); they are cross-checked against one another in the
//! test suites:
//!
//! * [`exhaustive`] — literal enumeration of the candidate space,
//! * [`grounding`] — SAT-based two-stage minimal-model enumeration,
//! * [`quantifier_free`] — the PTIME algorithm of Theorem 4.7,
//! * [`datalog`] — the PTIME least-fixpoint algorithm of Theorem 4.8.

pub mod datalog;
pub mod exhaustive;
pub mod grounding;
pub mod quantifier_free;
pub mod universe;

use kbt_data::Database;
use kbt_logic::Sentence;

use crate::options::{EvalOptions, Strategy};
use crate::Result;

pub use universe::UpdateContext;

/// The result of one `µ(φ, db)` evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// The Winslett-minimal models of `φ` closest to the input database.
    pub databases: Vec<Database>,
    /// Size of the candidate-fact universe that was considered (0 when a
    /// fast path avoided materialising it).
    pub candidate_atoms: usize,
    /// Engine statistics of the least-fixpoint computation, when the Datalog
    /// fast path ran.
    pub fixpoint: Option<kbt_datalog::EvalStats>,
    /// Per-rule fixpoint profiles, when profiling was requested *and* the
    /// Datalog fast path ran ([`minimal_update_profiled`]); `None` on
    /// every unprofiled path, so outcome equality between profiled and
    /// plain runs is checked on the deterministic fields alone.
    pub profile: Option<Vec<kbt_datalog::RuleProfile>>,
}

/// Computes `µ(φ, db)` with the strategy selected in `options`.
pub fn minimal_update(
    phi: &Sentence,
    db: &Database,
    options: &EvalOptions,
) -> Result<UpdateOutcome> {
    match options.strategy {
        Strategy::Exhaustive => exhaustive::exhaustive_update(phi, db, options),
        Strategy::Grounding => grounding::grounding_update(phi, db, options),
        Strategy::QuantifierFree => quantifier_free::quantifier_free_update(phi, db, options),
        Strategy::Datalog => datalog::datalog_update(phi, db, options),
        Strategy::Auto => {
            if datalog::applicable(phi, db) {
                datalog::datalog_update(phi, db, options)
            } else if kbt_logic::is_ground(phi.formula()) {
                quantifier_free::quantifier_free_update(phi, db, options)
            } else {
                grounding::grounding_update(phi, db, options)
            }
        }
    }
}

/// [`minimal_update`] with per-rule profiling on the Datalog fast path.
///
/// When the selected strategy resolves to Datalog, the outcome's
/// `profile` carries one [`kbt_datalog::RuleProfile`] per lowered rule
/// (named through `namer`) and every other field — databases, candidate
/// count, fixpoint stats — is byte-identical to [`minimal_update`]'s.
/// Other strategies run unchanged and return `profile: None`.
pub fn minimal_update_profiled(
    phi: &Sentence,
    db: &Database,
    options: &EvalOptions,
    namer: &dyn Fn(kbt_data::RelId) -> String,
) -> Result<UpdateOutcome> {
    let wants_datalog = match options.strategy {
        Strategy::Datalog => true,
        Strategy::Auto => datalog::applicable(phi, db),
        _ => false,
    };
    if wants_datalog {
        datalog::datalog_update_profiled(phi, db, options, namer)
    } else {
        minimal_update(phi, db, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    /// Cross-check every strategy on instances small enough for the
    /// exhaustive reference evaluator.
    #[test]
    fn all_strategies_agree_on_small_instances() {
        // db over R1 = {(1,2)}; φ inserts a fresh unary relation R2 that must
        // contain every endpoint of R1: ∀x,y (R1(x,y) → R2(x) ∧ R2(y)).
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .build()
            .unwrap();
        let phi = Sentence::new(forall(
            [1, 2],
            implies(
                atom(1, [var(1), var(2)]),
                and(atom(2, [var(1)]), atom(2, [var(2)])),
            ),
        ))
        .unwrap();

        let reference = exhaustive::exhaustive_update(&phi, &db, &EvalOptions::default())
            .unwrap()
            .databases;
        // (the conjunctive-head sentence is not Horn, so the Datalog strategy
        // is exercised separately in `update::datalog::tests`)
        for strategy in [Strategy::Grounding, Strategy::Auto] {
            let got = minimal_update(&phi, &db, &EvalOptions::with_strategy(strategy))
                .unwrap()
                .databases;
            let mut a = reference.clone();
            let mut b = got;
            a.sort();
            b.sort();
            assert_eq!(a, b, "strategy {:?} disagrees", strategy);
        }
    }

    #[test]
    fn auto_uses_quantifier_free_for_ground_sentences() {
        let db = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let phi = Sentence::new(or(atom(1, [cst(2)]), atom(1, [cst(3)]))).unwrap();
        let out = minimal_update(&phi, &db, &EvalOptions::default()).unwrap();
        // two incomparable minimal ways to satisfy the disjunction
        assert_eq!(out.databases.len(), 2);
    }
}
