//! # kbt-core — the knowledgebase transformation language
//!
//! This crate is the primary contribution of the reproduced paper,
//! *Knowledgebase Transformations* (Grahne, Mendelzon, Revesz; PODS 1992 /
//! JCSS 1997): a language in which queries and updates on knowledgebases are
//! expressed uniformly as *transformations* `KB → KB`.
//!
//! The language has four operators (Section 2 of the paper):
//!
//! * [`Transform::Insert`] — `τ_φ`, "insert" an arbitrary first-order
//!   sentence `φ`.  For each database of the knowledgebase, keep the models
//!   of `φ` (over the active domain, on the schema `σ(db) ∪ σ(φ)`) that are
//!   closest to it in Winslett's possible-models order; the result is the
//!   union of those minimal models over all databases (definitions (9) and
//!   (10)).
//! * [`Transform::Glb`] — `⊓`, componentwise intersection of all databases.
//! * [`Transform::Lub`] — `⊔`, componentwise union of all databases.
//! * [`Transform::Project`] — `π`, projection of every database onto a set
//!   of relation symbols.
//!
//! Composition of these operators gives the transformation expressions `Θ`
//! whose complexity and expressive power Sections 4 and 5 analyse.
//!
//! ## Evaluation strategies
//!
//! [`Strategy`] selects how `τ_φ` is computed:
//!
//! * `Exhaustive` — enumerate every candidate database over the active
//!   domain; the executable form of definition (9), used as the ground truth
//!   in tests.
//! * `Grounding` — ground `φ`, encode to CNF, and enumerate subset-minimal
//!   models with the SAT substrate in two stages mirroring the Winslett
//!   order (first the changes to the stored relations, then the content of
//!   the new relations).  This is the default general-purpose evaluator.
//! * `QuantifierFree` — the PTIME algorithm of Theorem 4.7 for ground
//!   sentences.
//! * `Datalog` — the PTIME least-fixpoint algorithm of Theorem 4.8 for
//!   conjunctions of Horn clauses defining fresh relations.
//! * `Auto` — pick the cheapest applicable strategy.
//!
//! ## Paper artifacts
//!
//! * [`postulates`] — checkers for the eight Katsuno–Mendelzon update
//!   postulates of Theorem 2.1,
//! * [`examples`] — executable versions of the seven worked transformations
//!   of Section 3, the Lemma 2.1 counterexamples, and the "robot vehicles"
//!   scenario of the introduction,
//! * [`hypothetical`] — counterfactual (subjunctive) queries `A > B`
//!   expressed through nested updates, as in Example 4.

pub mod error;
pub mod examples;
pub mod hypothetical;
pub mod options;
pub mod postulates;
pub mod transform;
pub mod transformer;
pub mod update;

pub use error::CoreError;
pub use kbt_datalog::RuleProfile;
pub use options::{EvalOptions, EvalStats, Strategy};
pub use transform::Transform;
pub use transformer::{TransformResult, Transformer};
pub use update::datalog::ChainSession;
pub use update::{minimal_update, minimal_update_profiled, UpdateOutcome};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, CoreError>;
