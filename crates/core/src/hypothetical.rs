//! Hypothetical and counterfactual queries expressed through updates.
//!
//! Example 4 of the paper shows that subjective ("what if") queries are
//! expressible by transformations: *"if V had landed, would W necessarily
//! still be orbiting?"* is answered by updating the knowledgebase with the
//! antecedent and then inspecting the certain consequences.  A counterfactual
//! `A > B` (with `A` known to be false) is true when, after inserting `A`,
//! the consequent `B` holds in every resulting world; right-nested
//! counterfactuals `A > (B > C)` become nested updates `τ_A(τ_B(τ_C))…` — the
//! note after Example 4.

use kbt_data::Knowledgebase;
use kbt_logic::{satisfies, Sentence};

use crate::transformer::Transformer;
use crate::Result;

/// The answer to a hypothetical query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HypotheticalAnswer {
    /// The consequent holds in every world after the hypothetical update.
    Necessarily,
    /// The consequent holds in some but not all worlds.
    Possibly,
    /// The consequent holds in no world (or the update is inconsistent).
    Never,
}

/// Evaluates the counterfactual / hypothetical query `antecedent > consequent`
/// on a knowledgebase: update with the antecedent, then classify how the
/// consequent fares across the resulting worlds.
pub fn counterfactual(
    t: &Transformer,
    antecedent: &Sentence,
    consequent: &Sentence,
    kb: &Knowledgebase,
) -> Result<HypotheticalAnswer> {
    let updated = t.insert(antecedent, kb)?.kb;
    classify(&updated, consequent)
}

/// Evaluates a right-nested counterfactual `a_1 > (a_2 > (… > consequent))`
/// by nesting the updates, as described in the note after Example 4.
pub fn nested_counterfactual(
    t: &Transformer,
    antecedents: &[Sentence],
    consequent: &Sentence,
    kb: &Knowledgebase,
) -> Result<HypotheticalAnswer> {
    let mut current = kb.clone();
    for a in antecedents {
        current = t.insert(a, &current)?.kb;
    }
    classify(&current, consequent)
}

fn classify(kb: &Knowledgebase, consequent: &Sentence) -> Result<HypotheticalAnswer> {
    let mut holds = 0usize;
    let mut total = 0usize;
    for db in kb.iter() {
        total += 1;
        let ok = if consequent.schema().is_subschema_of(&db.schema()) {
            satisfies(db, consequent)?
        } else {
            false
        };
        if ok {
            holds += 1;
        }
    }
    Ok(if total == 0 || holds == 0 {
        HypotheticalAnswer::Never
    } else if holds == total {
        HypotheticalAnswer::Necessarily
    } else {
        HypotheticalAnswer::Possibly
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    /// Example 4: kb = {({v}), ({w})}; query "if V had landed, would W be
    /// necessarily still orbiting?"  The answer is *no*, because
    /// ⊔ τ_{R1(v)}(kb) = {({v, w})} contains w.
    #[test]
    fn robots_counterfactual_from_example_4() {
        let v = 1u32;
        let w = 2u32;
        let kb = Knowledgebase::from_databases([
            DatabaseBuilder::new().fact(r(1), [v]).build().unwrap(),
            DatabaseBuilder::new().fact(r(1), [w]).build().unwrap(),
        ])
        .unwrap();
        let t = Transformer::new();
        let v_landed = Sentence::new(atom(1, [cst(v)])).unwrap();
        let w_still_orbiting = Sentence::new(not(atom(1, [cst(w)]))).unwrap();
        let answer = counterfactual(&t, &v_landed, &w_still_orbiting, &kb).unwrap();
        // one world keeps W orbiting, the other does not → only "possibly"
        assert_eq!(answer, HypotheticalAnswer::Possibly);

        // but "has V landed?" is necessarily true after the update
        let answer = counterfactual(&t, &v_landed, &v_landed, &kb).unwrap();
        assert_eq!(answer, HypotheticalAnswer::Necessarily);
    }

    #[test]
    fn nested_counterfactuals_update_sequentially() {
        let kb =
            Knowledgebase::singleton(DatabaseBuilder::new().relation(r(1), 1).build().unwrap());
        let t = Transformer::new();
        let a = Sentence::new(atom(1, [cst(1)])).unwrap();
        let b = Sentence::new(atom(1, [cst(2)])).unwrap();
        let both = Sentence::new(and(atom(1, [cst(1)]), atom(1, [cst(2)]))).unwrap();
        let answer = nested_counterfactual(&t, &[a, b], &both, &kb).unwrap();
        assert_eq!(answer, HypotheticalAnswer::Necessarily);
    }

    #[test]
    fn inconsistent_antecedent_gives_never() {
        let kb =
            Knowledgebase::singleton(DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap());
        let t = Transformer::new();
        let contradiction = Sentence::new(and(atom(1, [cst(1)]), not(atom(1, [cst(1)])))).unwrap();
        let anything = Sentence::new(atom(1, [cst(1)])).unwrap();
        assert_eq!(
            counterfactual(&t, &contradiction, &anything, &kb).unwrap(),
            HypotheticalAnswer::Never
        );
    }
}
