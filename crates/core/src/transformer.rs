//! The transformation evaluator: applying expressions to knowledgebases.
//!
//! Definition (10): `τ_φ(kb) = ⋃_{db ∈ kb} µ(φ, db)`.  The other operators
//! are the glb/lub/projection functions of `kbt-data`.  The evaluator walks a
//! [`Transform`] expression step by step, carrying statistics and enforcing
//! the resource limits of [`EvalOptions`].

use kbt_data::Knowledgebase;

use crate::error::CoreError;
use crate::options::{EvalOptions, EvalStats};
use crate::transform::Transform;
use crate::update::minimal_update;
use crate::Result;

/// The result of applying a transformation expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransformResult {
    /// The resulting knowledgebase.
    pub kb: Knowledgebase,
    /// Statistics about the evaluation.
    pub stats: EvalStats,
}

/// Evaluates transformation expressions under a fixed set of options.
#[derive(Clone, Debug, Default)]
pub struct Transformer {
    options: EvalOptions,
}

impl Transformer {
    /// A transformer with default options (automatic strategy selection).
    pub fn new() -> Self {
        Transformer::default()
    }

    /// A transformer with explicit options.
    pub fn with_options(options: EvalOptions) -> Self {
        Transformer { options }
    }

    /// The options in use.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Applies a transformation expression to a knowledgebase.
    pub fn apply(&self, transform: &Transform, kb: &Knowledgebase) -> Result<TransformResult> {
        let mut stats = EvalStats::default();
        let kb = self.apply_inner(transform, kb.clone(), &mut stats)?;
        Ok(TransformResult { kb, stats })
    }

    /// Convenience: apply a single insertion `τ_φ`.
    pub fn insert(&self, phi: &kbt_logic::Sentence, kb: &Knowledgebase) -> Result<TransformResult> {
        self.apply(&Transform::Insert(phi.clone()), kb)
    }

    fn apply_inner(
        &self,
        transform: &Transform,
        kb: Knowledgebase,
        stats: &mut EvalStats,
    ) -> Result<Knowledgebase> {
        match transform {
            Transform::Identity => Ok(kb),
            Transform::Seq(parts) => {
                let mut current = kb;
                for part in parts {
                    current = self.apply_inner(part, current, stats)?;
                }
                Ok(current)
            }
            Transform::Insert(phi) => {
                stats.operators += 1;
                let mut out = Knowledgebase::empty();
                for db in kb.iter() {
                    let outcome = minimal_update(phi, db, &self.options)?;
                    stats.updates += 1;
                    stats.candidate_atoms += outcome.candidate_atoms;
                    stats.minimal_models += outcome.databases.len();
                    if let Some(fixpoint) = &outcome.fixpoint {
                        stats.absorb_fixpoint(fixpoint);
                    }
                    for result in outcome.databases {
                        out.insert(result)?;
                        if out.len() > self.options.max_worlds {
                            return Err(CoreError::TooManyWorlds {
                                worlds: out.len(),
                                limit: self.options.max_worlds,
                            });
                        }
                    }
                }
                Ok(out)
            }
            Transform::Glb => {
                stats.operators += 1;
                Ok(kb.glb()?)
            }
            Transform::Lub => {
                stats.operators += 1;
                Ok(kb.lub()?)
            }
            Transform::Project(rels) => {
                stats.operators += 1;
                Ok(kb.project(rels))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::*;
    use kbt_logic::Sentence;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn space_kb() -> Knowledgebase {
        // kb = {({v}), ({w})} with v = a1, w = a2, over schema R1 (unary).
        let db_v = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let db_w = DatabaseBuilder::new().fact(r(1), [2u32]).build().unwrap();
        Knowledgebase::from_databases([db_v, db_w]).unwrap()
    }

    #[test]
    fn insertion_unions_the_per_database_results() {
        // Section 2: τ_{R1(v)}(kb) = {({v}), ({v, w})}.
        let t = Transformer::new();
        let phi = Sentence::new(atom(1, [cst(1)])).unwrap();
        let result = t.insert(&phi, &space_kb()).unwrap();
        assert_eq!(result.kb.len(), 2);
        assert_eq!(result.stats.updates, 2);
        assert_eq!(result.stats.minimal_models, 2);
        let both = DatabaseBuilder::new()
            .fact(r(1), [1u32])
            .fact(r(1), [2u32])
            .build()
            .unwrap();
        assert!(result.kb.contains(&both));
    }

    #[test]
    fn glb_lub_and_projection_operators() {
        let t = Transformer::new();
        let kb = space_kb();
        let glb = t.apply(&Transform::Glb, &kb).unwrap().kb;
        assert!(glb
            .as_singleton()
            .unwrap()
            .relation(r(1))
            .unwrap()
            .is_empty());
        let lub = t.apply(&Transform::Lub, &kb).unwrap().kb;
        assert_eq!(lub.as_singleton().unwrap().fact_count(), 2);

        let phi =
            Sentence::new(forall([1], implies(atom(1, [var(1)]), atom(2, [var(1)])))).unwrap();
        let proj = t
            .apply(
                &Transform::insert(phi).then(Transform::project([r(2)])),
                &kb,
            )
            .unwrap()
            .kb;
        for db in proj.iter() {
            assert!(db.relation(r(1)).is_none());
            assert_eq!(db.relation(r(2)).unwrap().len(), 1);
        }
    }

    #[test]
    fn composition_applies_left_to_right() {
        // first copy R1 into R2, then ask for the glb — not the same as the
        // other order (Lemma 2.1 explores this in depth).
        let t = Transformer::new();
        let phi =
            Sentence::new(forall([1], implies(atom(1, [var(1)]), atom(2, [var(1)])))).unwrap();
        let expr = Transform::insert(phi).then(Transform::Glb);
        let result = t.apply(&expr, &space_kb()).unwrap();
        assert!(result.kb.is_singleton());
        assert_eq!(result.stats.operators, 2);
        assert_eq!(result.stats.updates, 2);
    }

    #[test]
    fn identity_returns_the_input() {
        let t = Transformer::new();
        let kb = space_kb();
        assert_eq!(t.apply(&Transform::Identity, &kb).unwrap().kb, kb);
    }

    #[test]
    fn world_limit_is_enforced() {
        let opts = EvalOptions {
            max_worlds: 1,
            ..EvalOptions::default()
        };
        let t = Transformer::with_options(opts);
        // inserting a disjunction into a singleton creates two worlds > limit
        let db = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let kb = Knowledgebase::singleton(db);
        let phi = Sentence::new(or(atom(1, [cst(2)]), atom(1, [cst(3)]))).unwrap();
        assert!(matches!(
            t.insert(&phi, &kb),
            Err(CoreError::TooManyWorlds { .. })
        ));
    }

    #[test]
    fn empty_knowledgebase_stays_empty_under_insertion() {
        let t = Transformer::new();
        let phi = Sentence::new(atom(1, [cst(1)])).unwrap();
        let result = t.insert(&phi, &Knowledgebase::empty()).unwrap();
        assert!(result.kb.is_empty());
    }
}
