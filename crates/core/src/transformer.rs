//! The transformation evaluator: applying expressions to knowledgebases.
//!
//! Definition (10): `τ_φ(kb) = ⋃_{db ∈ kb} µ(φ, db)`.  The other operators
//! are the glb/lub/projection functions of `kbt-data`.  The evaluator walks a
//! [`Transform`] expression step by step, carrying statistics and enforcing
//! the resource limits of [`EvalOptions`].
//!
//! `Seq` compositions get the *incremental chain* optimisation (when
//! [`EvalOptions::incremental`] is on): while walking the flattened steps,
//! the evaluator keeps at most one live [`ChainSession`] — a persistent
//! engine fixpoint for the most recent Datalog-fast-path sentence.  A later
//! `τ_φ` step with the same Horn sentence applied to a singleton
//! knowledgebase is then evaluated by feeding the diff of the two input
//! databases into the session instead of re-deriving the fixpoint from
//! scratch.  Results are byte-identical; `EvalStats::reused_facts` shows
//! the saving.

use kbt_data::{Knowledgebase, RelId};
use kbt_datalog::RuleProfile;

use crate::error::CoreError;
use crate::options::{EvalOptions, EvalStats, Strategy};
use crate::transform::Transform;
use crate::update::datalog::{self, ChainSession};
use crate::update::{minimal_update, minimal_update_profiled, UpdateOutcome};
use crate::Result;

/// The result of applying a transformation expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TransformResult {
    /// The resulting knowledgebase.
    pub kb: Knowledgebase,
    /// Statistics about the evaluation.
    pub stats: EvalStats,
}

/// Evaluates transformation expressions under a fixed set of options.
#[derive(Clone, Debug, Default)]
pub struct Transformer {
    options: EvalOptions,
}

impl Transformer {
    /// A transformer with default options (automatic strategy selection).
    pub fn new() -> Self {
        Transformer::default()
    }

    /// A transformer with explicit options.
    pub fn with_options(options: EvalOptions) -> Self {
        Transformer { options }
    }

    /// The options in use.
    pub fn options(&self) -> &EvalOptions {
        &self.options
    }

    /// Applies a transformation expression to a knowledgebase.
    pub fn apply(&self, transform: &Transform, kb: &Knowledgebase) -> Result<TransformResult> {
        let mut stats = EvalStats::default();
        let kb = self.apply_inner(transform, kb.clone(), &mut stats, None)?;
        Ok(TransformResult { kb, stats })
    }

    /// Like [`Self::apply`], but with a caller-owned chain-session slot that
    /// survives between calls: a long-lived host (the `kbt-service` commit
    /// pipeline) registers an expression once and re-applies it per commit,
    /// and the persistent [`ChainSession`] then feeds only the *diff* of the
    /// successive input databases into the live engine fixpoint instead of
    /// re-deriving it from scratch each time.
    ///
    /// Results are byte-identical to [`Self::apply`]; the slot is purely a
    /// performance carrier.  Only the most recent Horn `τ_φ` sentence is
    /// retained in the slot (a later step with a different sentence replaces
    /// it), so expressions whose *last* insertion is the expensive recursive
    /// one — the common shape — benefit the most.  Callers may clear the
    /// slot to `None` at any time.
    pub fn apply_with_chain(
        &self,
        transform: &Transform,
        kb: &Knowledgebase,
        chain: &mut Option<ChainSession>,
    ) -> Result<TransformResult> {
        let mut stats = EvalStats::default();
        let kb = self.apply_inner(transform, kb.clone(), &mut stats, Some(chain))?;
        Ok(TransformResult { kb, stats })
    }

    /// Convenience: apply a single insertion `τ_φ`.
    pub fn insert(&self, phi: &kbt_logic::Sentence, kb: &Knowledgebase) -> Result<TransformResult> {
        self.apply(&Transform::Insert(phi.clone()), kb)
    }

    /// Like [`Self::apply`], but collects one [`RuleProfile`] per lowered
    /// rule from every Datalog-fast-path insertion step (`namer` renders
    /// relation identifiers in rule and plan text).
    ///
    /// The resulting knowledgebase is byte-identical to [`Self::apply`]'s.
    /// The incremental chain optimisation is skipped on the profiled walk
    /// (chain sessions are documented to be byte-identical to from-scratch
    /// evaluation, so only the `reused_facts` saving is forgone); against a
    /// transformer with `incremental: false` the statistics match exactly.
    pub fn apply_profiled(
        &self,
        transform: &Transform,
        kb: &Knowledgebase,
        namer: &dyn Fn(RelId) -> String,
    ) -> Result<(TransformResult, Vec<RuleProfile>)> {
        let mut stats = EvalStats::default();
        let mut profiles = Vec::new();
        let mut current = kb.clone();
        for step in transform.steps() {
            current = self.apply_step_profiled(step, current, &mut stats, &mut profiles, namer)?;
        }
        Ok((TransformResult { kb: current, stats }, profiles))
    }

    /// Renders the evaluation plan of `transform` against `kb` without
    /// evaluating anything.
    ///
    /// Datalog-fast-path insertion steps contribute one zeroed
    /// [`RuleProfile`] per lowered rule with the full join-plan rendering;
    /// every other operator contributes a single descriptive row (lattice
    /// operators and non-Horn insertions have no rule plans).  Plans for
    /// later steps are sized against the *initial* knowledgebase's first
    /// world — EXPLAIN never runs the earlier steps, so index choices shown
    /// for deep pipelines are representative, not exact.
    pub fn explain(
        &self,
        transform: &Transform,
        kb: &Knowledgebase,
        namer: &dyn Fn(RelId) -> String,
    ) -> Result<Vec<RuleProfile>> {
        let representative = match kb.iter().next() {
            Some(db) => db.clone(),
            None => kbt_data::Database::new(),
        };
        let mut out = Vec::new();
        for step in transform.steps() {
            match step {
                Transform::Identity | Transform::Seq(_) => {}
                Transform::Insert(phi) => {
                    if datalog::applicable(phi, &representative) {
                        out.extend(datalog::datalog_explain(phi, &representative, namer)?);
                    } else {
                        let strategy = if kbt_logic::is_ground(phi.formula()) {
                            "quantifier-free"
                        } else {
                            "grounding"
                        };
                        out.push(operator_row(format!("insert {phi}"), strategy));
                    }
                }
                Transform::Glb => out.push(operator_row("glb".to_string(), "lattice")),
                Transform::Lub => out.push(operator_row("lub".to_string(), "lattice")),
                Transform::Project(rels) => {
                    let names: Vec<String> = rels.iter().map(|r| namer(*r)).collect();
                    out.push(operator_row(
                        format!("project({})", names.join(", ")),
                        "lattice",
                    ));
                }
            }
        }
        Ok(out)
    }

    /// One step of the profiled walk: [`Self::apply_step`] without the
    /// chain slot, routing insertions through [`minimal_update_profiled`].
    fn apply_step_profiled(
        &self,
        step: &Transform,
        kb: Knowledgebase,
        stats: &mut EvalStats,
        profiles: &mut Vec<RuleProfile>,
        namer: &dyn Fn(RelId) -> String,
    ) -> Result<Knowledgebase> {
        match step {
            Transform::Insert(phi) => {
                stats.operators += 1;
                let mut out = Knowledgebase::empty();
                for db in kb.iter() {
                    let mut outcome = minimal_update_profiled(phi, db, &self.options, namer)?;
                    self.absorb_outcome(&outcome, stats);
                    if let Some(profile) = outcome.profile.take() {
                        profiles.extend(profile);
                    }
                    self.collect_worlds(outcome, &mut out)?;
                }
                Ok(out)
            }
            other => self.apply_step(other, kb, stats, None),
        }
    }

    fn apply_inner(
        &self,
        transform: &Transform,
        kb: Knowledgebase,
        stats: &mut EvalStats,
        chain: Option<&mut Option<ChainSession>>,
    ) -> Result<Knowledgebase> {
        match transform {
            Transform::Identity => Ok(kb),
            Transform::Seq(_) => {
                // Walk the flattened steps with a persistent chain session,
                // so consecutive Datalog-fast-path insertions of the same
                // sentence share one live engine fixpoint.  When the caller
                // supplies a slot (apply_with_chain) it is always used —
                // the session may pay off on a *later* call.  Otherwise a
                // local slot is used, and building a session only pays off
                // when a later insertion in this same walk can reuse it, so
                // chains with fewer than two `τ` steps skip it.
                let steps = transform.steps();
                let mut local: Option<ChainSession> = None;
                let mut slot: Option<&mut Option<ChainSession>> = match chain {
                    Some(external) => Some(external),
                    None => {
                        let enable = steps
                            .iter()
                            .filter(|s| matches!(s, Transform::Insert(_)))
                            .count()
                            >= 2;
                        enable.then_some(&mut local)
                    }
                };
                let mut current = kb;
                for part in steps {
                    current = self.apply_step(part, current, stats, slot.as_deref_mut())?;
                }
                Ok(current)
            }
            other => self.apply_step(other, kb, stats, chain),
        }
    }

    /// Applies one primitive operator (`steps()` has flattened away `Seq`
    /// and `Identity`).  `chain` is the `Seq` walk's persistent session
    /// slot; `None` disables chain reuse (single-step expressions).
    fn apply_step(
        &self,
        step: &Transform,
        kb: Knowledgebase,
        stats: &mut EvalStats,
        chain: Option<&mut Option<ChainSession>>,
    ) -> Result<Knowledgebase> {
        match step {
            Transform::Identity => Ok(kb),
            Transform::Seq(_) => self.apply_inner(step, kb, stats, chain),
            Transform::Insert(phi) => {
                stats.operators += 1;
                let mut out = Knowledgebase::empty();
                if let Some(chain) = chain {
                    if let Some(outcome) = self.chain_update(phi, &kb, chain)? {
                        self.absorb_outcome(&outcome, stats);
                        self.collect_worlds(outcome, &mut out)?;
                        return Ok(out);
                    }
                }
                for db in kb.iter() {
                    let outcome = minimal_update(phi, db, &self.options)?;
                    self.absorb_outcome(&outcome, stats);
                    self.collect_worlds(outcome, &mut out)?;
                }
                Ok(out)
            }
            Transform::Glb => {
                stats.operators += 1;
                Ok(kb.glb()?)
            }
            Transform::Lub => {
                stats.operators += 1;
                Ok(kb.lub()?)
            }
            Transform::Project(rels) => {
                stats.operators += 1;
                Ok(kb.project(rels))
            }
        }
    }

    /// Tries the incremental chain path for `τ_φ(kb)`: engaged for
    /// singleton knowledgebases under the `Auto`/`Datalog` strategies when
    /// the Datalog fast path applies.  Returns `None` when the regular
    /// per-database path should run instead.
    fn chain_update(
        &self,
        phi: &kbt_logic::Sentence,
        kb: &Knowledgebase,
        chain: &mut Option<ChainSession>,
    ) -> Result<Option<UpdateOutcome>> {
        if !self.options.incremental
            || !matches!(self.options.strategy, Strategy::Auto | Strategy::Datalog)
        {
            return Ok(None);
        }
        let Some(db) = kb.as_singleton() else {
            return Ok(None);
        };
        if !datalog::applicable(phi, db) {
            return Ok(None);
        }
        if let Some(session) = chain.as_mut() {
            if session.matches(phi) {
                return session.advance(db).map(Some);
            }
        }
        let (session, outcome) = ChainSession::start(phi, db, self.options.threads)?;
        *chain = Some(session);
        Ok(Some(outcome))
    }

    /// Folds one `µ` outcome's counters into the running statistics.
    fn absorb_outcome(&self, outcome: &UpdateOutcome, stats: &mut EvalStats) {
        stats.updates += 1;
        stats.candidate_atoms += outcome.candidate_atoms;
        stats.minimal_models += outcome.databases.len();
        if let Some(fixpoint) = &outcome.fixpoint {
            stats.absorb_fixpoint(fixpoint);
        }
    }

    /// Adds an outcome's databases to the output knowledgebase, enforcing
    /// the world limit.
    fn collect_worlds(&self, outcome: UpdateOutcome, out: &mut Knowledgebase) -> Result<()> {
        for result in outcome.databases {
            out.insert(result)?;
            if out.len() > self.options.max_worlds {
                return Err(CoreError::TooManyWorlds {
                    worlds: out.len(),
                    limit: self.options.max_worlds,
                });
            }
        }
        Ok(())
    }
}

/// A descriptive EXPLAIN row for an operator that has no Datalog rule plan.
fn operator_row(rule: String, strategy: &str) -> RuleProfile {
    RuleProfile {
        stratum: 0,
        rule,
        plan: format!("strategy: {strategy} (no rule plan)"),
        rounds: 0,
        derived: 0,
        probes: 0,
        scanned: 0,
        elapsed_ns: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::*;
    use kbt_logic::Sentence;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn space_kb() -> Knowledgebase {
        // kb = {({v}), ({w})} with v = a1, w = a2, over schema R1 (unary).
        let db_v = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let db_w = DatabaseBuilder::new().fact(r(1), [2u32]).build().unwrap();
        Knowledgebase::from_databases([db_v, db_w]).unwrap()
    }

    #[test]
    fn insertion_unions_the_per_database_results() {
        // Section 2: τ_{R1(v)}(kb) = {({v}), ({v, w})}.
        let t = Transformer::new();
        let phi = Sentence::new(atom(1, [cst(1)])).unwrap();
        let result = t.insert(&phi, &space_kb()).unwrap();
        assert_eq!(result.kb.len(), 2);
        assert_eq!(result.stats.updates, 2);
        assert_eq!(result.stats.minimal_models, 2);
        let both = DatabaseBuilder::new()
            .fact(r(1), [1u32])
            .fact(r(1), [2u32])
            .build()
            .unwrap();
        assert!(result.kb.contains(&both));
    }

    #[test]
    fn glb_lub_and_projection_operators() {
        let t = Transformer::new();
        let kb = space_kb();
        let glb = t.apply(&Transform::Glb, &kb).unwrap().kb;
        assert!(glb
            .as_singleton()
            .unwrap()
            .relation(r(1))
            .unwrap()
            .is_empty());
        let lub = t.apply(&Transform::Lub, &kb).unwrap().kb;
        assert_eq!(lub.as_singleton().unwrap().fact_count(), 2);

        let phi =
            Sentence::new(forall([1], implies(atom(1, [var(1)]), atom(2, [var(1)])))).unwrap();
        let proj = t
            .apply(
                &Transform::insert(phi).then(Transform::project([r(2)])),
                &kb,
            )
            .unwrap()
            .kb;
        for db in proj.iter() {
            assert!(db.relation(r(1)).is_none());
            assert_eq!(db.relation(r(2)).unwrap().len(), 1);
        }
    }

    #[test]
    fn composition_applies_left_to_right() {
        // first copy R1 into R2, then ask for the glb — not the same as the
        // other order (Lemma 2.1 explores this in depth).
        let t = Transformer::new();
        let phi =
            Sentence::new(forall([1], implies(atom(1, [var(1)]), atom(2, [var(1)])))).unwrap();
        let expr = Transform::insert(phi).then(Transform::Glb);
        let result = t.apply(&expr, &space_kb()).unwrap();
        assert!(result.kb.is_singleton());
        assert_eq!(result.stats.operators, 2);
        assert_eq!(result.stats.updates, 2);
    }

    #[test]
    fn identity_returns_the_input() {
        let t = Transformer::new();
        let kb = space_kb();
        assert_eq!(t.apply(&Transform::Identity, &kb).unwrap().kb, kb);
    }

    #[test]
    fn world_limit_is_enforced() {
        let opts = EvalOptions {
            max_worlds: 1,
            ..EvalOptions::default()
        };
        let t = Transformer::with_options(opts);
        // inserting a disjunction into a singleton creates two worlds > limit
        let db = DatabaseBuilder::new().fact(r(1), [1u32]).build().unwrap();
        let kb = Knowledgebase::singleton(db);
        let phi = Sentence::new(or(atom(1, [cst(2)]), atom(1, [cst(3)]))).unwrap();
        assert!(matches!(
            t.insert(&phi, &kb),
            Err(CoreError::TooManyWorlds { .. })
        ));
    }

    #[test]
    fn incremental_chain_matches_from_scratch_and_reuses_facts() {
        // TC sentence into R2, interleaved with ground edge insertions and
        // projections back onto R1 — the ST-style chain shape the
        // incremental session exists for.
        let tc = Sentence::new(and(
            forall(
                [1, 2],
                implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
            ),
            forall(
                [1, 2, 3],
                implies(
                    and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                    atom(2, [var(1), var(3)]),
                ),
            ),
        ))
        .unwrap();
        let mut expr = Transform::Identity;
        for i in 0..5u32 {
            let grow = Sentence::new(atom(1, [cst(10 + i), cst(11 + i)])).unwrap();
            expr = expr
                .then(Transform::insert(grow))
                .then(Transform::insert(tc.clone()))
                .then(Transform::project([r(1)]));
        }
        let kb = Knowledgebase::singleton(
            DatabaseBuilder::new()
                .fact(r(1), [1u32, 2])
                .fact(r(1), [2u32, 3])
                .build()
                .unwrap(),
        );

        let incremental = Transformer::new().apply(&expr, &kb).unwrap();
        let from_scratch = Transformer::with_options(EvalOptions {
            incremental: false,
            ..EvalOptions::default()
        })
        .apply(&expr, &kb)
        .unwrap();

        assert_eq!(incremental.kb, from_scratch.kb);
        assert_eq!(incremental.stats.updates, from_scratch.stats.updates);
        assert!(
            incremental.stats.reused_facts > 0,
            "the chain must reuse engine facts, stats: {:?}",
            incremental.stats
        );
        assert_eq!(from_scratch.stats.reused_facts, 0);
        assert!(
            incremental.stats.tuples_scanned < from_scratch.stats.tuples_scanned,
            "incremental ({}) must scan fewer tuples than from-scratch ({})",
            incremental.stats.tuples_scanned,
            from_scratch.stats.tuples_scanned
        );
    }

    #[test]
    fn external_chain_slot_reuses_engine_state_across_apply_calls() {
        // The service commit pipeline shape: one registered expression,
        // re-applied to a slowly growing knowledgebase, with a caller-owned
        // chain slot.  The second application must reuse the first one's
        // fixpoint (reused_facts > 0) and stay byte-identical to the
        // from-scratch evaluation.
        let tc = Sentence::new(and(
            forall(
                [1, 2],
                implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
            ),
            forall(
                [1, 2, 3],
                implies(
                    and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                    atom(2, [var(1), var(3)]),
                ),
            ),
        ))
        .unwrap();
        let expr = Transform::insert(tc).then(Transform::project([r(1), r(2)]));
        let t = Transformer::new();
        let mut chain = None;

        let mut db = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 3])
            .build()
            .unwrap();
        let kb1 = Knowledgebase::singleton(db.clone());
        let first = t.apply_with_chain(&expr, &kb1, &mut chain).unwrap();
        assert_eq!(first.kb, t.apply(&expr, &kb1).unwrap().kb);
        assert!(chain.is_some(), "the slot must persist the session");

        // commit a delta, re-apply: the chain session advances by the diff
        db.insert_fact(r(1), kbt_data::tuple![3, 4]).unwrap();
        let kb2 = Knowledgebase::singleton(db);
        let second = t.apply_with_chain(&expr, &kb2, &mut chain).unwrap();
        assert_eq!(second.kb, t.apply(&expr, &kb2).unwrap().kb);
        assert!(
            second.stats.reused_facts > 0,
            "the second apply must reuse the persisted fixpoint, stats: {:?}",
            second.stats
        );
    }

    fn tc_sentence() -> Sentence {
        Sentence::new(and(
            forall(
                [1, 2],
                implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
            ),
            forall(
                [1, 2, 3],
                implies(
                    and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                    atom(2, [var(1), var(3)]),
                ),
            ),
        ))
        .unwrap()
    }

    fn namer(rel: RelId) -> String {
        match rel.index() {
            1 => "edge".to_string(),
            2 => "path".to_string(),
            i => format!("R{i}"),
        }
    }

    #[test]
    fn profiled_apply_matches_plain_apply_and_collects_profiles() {
        let expr = Transform::insert(tc_sentence()).then(Transform::project([r(1), r(2)]));
        let kb = Knowledgebase::singleton(
            DatabaseBuilder::new()
                .fact(r(1), [1u32, 2])
                .fact(r(1), [2u32, 3])
                .fact(r(1), [3u32, 4])
                .build()
                .unwrap(),
        );
        let plain = Transformer::new().apply(&expr, &kb).unwrap();
        let (profiled, profiles) = Transformer::new()
            .apply_profiled(&expr, &kb, &namer)
            .unwrap();
        assert_eq!(profiled.kb, plain.kb);
        assert_eq!(profiled.stats, plain.stats);
        assert_eq!(profiles.len(), 2, "one profile per lowered TC rule");
        assert!(profiles[0].rule.contains("path"));
        assert!(profiles.iter().any(|p| p.rounds > 1), "TC must iterate");
        let probes: usize = profiles.iter().map(|p| p.probes).sum();
        assert_eq!(probes, plain.stats.index_probes);
        let scanned: usize = profiles.iter().map(|p| p.scanned).sum();
        assert_eq!(scanned, plain.stats.tuples_scanned);
    }

    #[test]
    fn profiled_apply_skips_the_chain_but_matches_from_scratch_stats() {
        // the chain-shaped expression of the incremental test: profiled
        // results match the chained walk, statistics match the chain-free one.
        let tc = tc_sentence();
        let mut expr = Transform::Identity;
        for i in 0..3u32 {
            let grow = Sentence::new(atom(1, [cst(10 + i), cst(11 + i)])).unwrap();
            expr = expr
                .then(Transform::insert(grow))
                .then(Transform::insert(tc.clone()))
                .then(Transform::project([r(1)]));
        }
        let kb = Knowledgebase::singleton(
            DatabaseBuilder::new()
                .fact(r(1), [1u32, 2])
                .build()
                .unwrap(),
        );
        let chained = Transformer::new().apply(&expr, &kb).unwrap();
        let from_scratch = Transformer::with_options(EvalOptions {
            incremental: false,
            ..EvalOptions::default()
        })
        .apply(&expr, &kb)
        .unwrap();
        let (profiled, profiles) = Transformer::new()
            .apply_profiled(&expr, &kb, &namer)
            .unwrap();
        assert_eq!(profiled.kb, chained.kb);
        assert_eq!(profiled.stats, from_scratch.stats);
        assert_eq!(profiles.len(), 3 * 2, "two TC rules per profiled insert");
    }

    #[test]
    fn explain_renders_plans_without_evaluating() {
        let expr = Transform::insert(tc_sentence())
            .then(Transform::Lub)
            .then(Transform::project([r(2)]));
        let kb = Knowledgebase::singleton(
            DatabaseBuilder::new()
                .fact(r(1), [1u32, 2])
                .build()
                .unwrap(),
        );
        let rows = Transformer::new().explain(&expr, &kb, &namer).unwrap();
        assert_eq!(rows.len(), 4, "two TC rules, lub, project");
        assert!(rows[0].plan.contains("scan"), "plan: {}", rows[0].plan);
        assert!(rows.iter().all(|p| p.elapsed_ns == 0 && p.derived == 0));
        assert_eq!(rows[2].rule, "lub");
        assert_eq!(rows[3].rule, "project(path)");
        assert_eq!(rows[3].plan, "strategy: lattice (no rule plan)");
    }

    #[test]
    fn empty_knowledgebase_stays_empty_under_insertion() {
        let t = Transformer::new();
        let phi = Sentence::new(atom(1, [cst(1)])).unwrap();
        let result = t.insert(&phi, &Knowledgebase::empty()).unwrap();
        assert!(result.kb.is_empty());
    }
}
