//! Example 5 — the monochromatic triangle problem.
//!
//! Given an undirected graph `r1`, decide whether its edges can be
//! partitioned into two graphs `r2` and `r3` that are both antitransitive
//! (triangle-free).  The problem is NP-complete, and the paper expresses it
//! as a transformation: insert the partition requirement, use the minimality
//! of `µ` to detect whether the input graph had to be altered (a scratch copy
//! `r4` of `r1` is taken first; `r5` receives `r4 \ r1` afterwards), and
//! finally flag in the zero-ary relation `R6` whether some possible world
//! kept the graph intact.

use kbt_data::Knowledgebase;
use kbt_logic::builder::*;
use kbt_logic::Sentence;

use crate::examples::{rels, undirected_graph_database};
use crate::transform::Transform;
use crate::transformer::Transformer;
use crate::Result;

/// `η`: copy `R1` into the fresh relation `R4`
/// (`∀x1 x2 (R1(x1,x2) → R4(x1,x2))`; minimality makes `R4 = R1`).
pub fn eta() -> Sentence {
    Sentence::new(forall(
        [1, 2],
        implies(
            atom(rels::R1.index(), [var(1), var(2)]),
            atom(rels::R4.index(), [var(1), var(2)]),
        ),
    ))
    .expect("closed")
}

/// `v`: the edges of `R1` are covered by `R2 ∪ R3`.
pub fn upsilon() -> Sentence {
    Sentence::new(forall(
        [1, 2],
        implies(
            atom(rels::R1.index(), [var(1), var(2)]),
            or(
                atom(rels::R2.index(), [var(1), var(2)]),
                atom(rels::R3.index(), [var(1), var(2)]),
            ),
        ),
    ))
    .expect("closed")
}

/// `ρ`: `R2` and `R3` are antitransitive, and `R1`, `R2`, `R3` are symmetric.
pub fn rho() -> Sentence {
    let antitransitive = |rel: u32| {
        forall(
            [1, 2, 3],
            implies(
                and(atom(rel, [var(1), var(2)]), atom(rel, [var(2), var(3)])),
                not(atom(rel, [var(1), var(3)])),
            ),
        )
    };
    let symmetric = |rel: u32| {
        forall(
            [1, 2],
            iff(atom(rel, [var(1), var(2)]), atom(rel, [var(2), var(1)])),
        )
    };
    Sentence::new(and_all([
        antitransitive(rels::R2.index()),
        antitransitive(rels::R3.index()),
        symmetric(rels::R1.index()),
        symmetric(rels::R2.index()),
        symmetric(rels::R3.index()),
    ]))
    .expect("closed")
}

/// `ε`: `R5` receives `R4 \ R1` (the edges the partition step had to drop).
pub fn epsilon() -> Sentence {
    Sentence::new(forall(
        [1, 2],
        implies(
            and(
                atom(rels::R4.index(), [var(1), var(2)]),
                not(atom(rels::R1.index(), [var(1), var(2)])),
            ),
            atom(rels::R5.index(), [var(1), var(2)]),
        ),
    ))
    .expect("closed")
}

/// `ζ'`: the zero-ary flag `R6` holds iff `R5` is empty.
pub fn zeta_prime() -> Sentence {
    Sentence::new(iff(
        atom(rels::R6.index(), []),
        forall([1, 2], not(atom(rels::R5.index(), [var(1), var(2)]))),
    ))
    .expect("closed")
}

/// The full Example 5 expression
/// `π_6 ∘ ⊔ ∘ τ_{ζ'} ∘ π_5 ∘ τ_ε ∘ τ_{v∧ρ} ∘ τ_η`.
pub fn transform() -> Transform {
    Transform::insert(eta())
        .then(Transform::insert(upsilon().and(rho())))
        .then(Transform::insert(epsilon()))
        .then(Transform::project(vec![rels::R5]))
        .then(Transform::insert(zeta_prime()))
        .then(Transform::Lub)
        .then(Transform::project(vec![rels::R6]))
}

/// Runs Example 5: can the undirected graph's edges be partitioned into two
/// triangle-free graphs?
pub fn has_monochromatic_triangle_free_partition(
    t: &Transformer,
    edges: &[(u32, u32)],
) -> Result<bool> {
    let kb = Knowledgebase::singleton(undirected_graph_database(rels::R1, edges));
    let result = t.apply(&transform(), &kb)?.kb;
    Ok(result.possibly_holds(rels::R6, &kbt_data::Tuple::empty()))
}

/// Brute-force baseline: try every 2-colouring of the undirected edges.
pub fn baseline_partition_exists(edges: &[(u32, u32)]) -> bool {
    let m = edges.len();
    'outer: for bits in 0..(1u64 << m) {
        let class_a: Vec<(u32, u32)> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        let class_b: Vec<(u32, u32)> = edges
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) == 0)
            .map(|(_, &e)| e)
            .collect();
        for class in [&class_a, &class_b] {
            if has_triangle(class) {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

fn has_triangle(edges: &[(u32, u32)]) -> bool {
    let set: std::collections::BTreeSet<(u32, u32)> =
        edges.iter().flat_map(|&(a, b)| [(a, b), (b, a)]).collect();
    for &(a, b) in &set {
        for &(c, d) in &set {
            if b == c && set.contains(&(d, a)) && a != b && b != d && a != d {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_graphs_always_have_a_partition() {
        // Ramsey's theorem puts the smallest "no" instance at K6; every graph
        // we can afford to run through the general evaluator answers "yes",
        // and the transformation must agree with the brute-force baseline.
        let t = Transformer::new();
        let graphs: Vec<Vec<(u32, u32)>> = vec![
            vec![(1, 2), (2, 3), (1, 3)],         // a triangle
            vec![(1, 2), (2, 3), (3, 4)],         // a path
            vec![(1, 2), (2, 3), (1, 3), (3, 4)], // triangle with a pendant
        ];
        for edges in graphs {
            let expected = baseline_partition_exists(&edges);
            assert!(expected, "baseline sanity: small graphs are partitionable");
            let got = has_monochromatic_triangle_free_partition(&t, &edges).unwrap();
            assert_eq!(got, expected, "mismatch for {edges:?}");
        }
    }

    #[test]
    fn the_baseline_recognises_k6_as_a_no_instance() {
        // K6 itself is far too large for the general-purpose evaluator (that
        // is the point of Theorem 4.2), but the baseline confirms the
        // combinatorial fact the example relies on.
        let mut k6 = Vec::new();
        for a in 1..=6u32 {
            for b in (a + 1)..=6 {
                k6.push((a, b));
            }
        }
        assert!(!baseline_partition_exists(&k6));
        let mut k5 = Vec::new();
        for a in 1..=5u32 {
            for b in (a + 1)..=5 {
                k5.push((a, b));
            }
        }
        assert!(baseline_partition_exists(&k5));
    }
}
