//! The "robot vehicles orbiting Venus" scenario — Example 1.1 and Example 4.
//!
//! Two vehicles `V` and `W` orbit Venus.  A garbled message "I have landed"
//! leaves the knowledgebase in the disjunctive state
//! `kb = {({v}), ({w})}`: either `V` has landed or `W` has (but not both, as
//! far as we know).  Learning that `V` has landed is an *update* (the world
//! changed), not a revision; the KM semantics gives
//! `τ_{R1(v)}(kb) = {({v}), ({v, w})}` — we now know that `V` has landed and
//! nothing about `W`, exactly the outcome argued for in Example 1.1.

use kbt_data::{Const, DatabaseBuilder, Knowledgebase, RelId};
use kbt_logic::builder::*;
use kbt_logic::Sentence;

use crate::hypothetical::{counterfactual, HypotheticalAnswer};
use crate::transformer::Transformer;
use crate::Result;

/// The `landed` relation (`R1` in the paper's Section 2 rendering).
pub const LANDED: RelId = RelId::new(1);
/// The constant naming vehicle `V`.
pub const V: Const = Const::new(1);
/// The constant naming vehicle `W`.
pub const W: Const = Const::new(2);

/// The knowledgebase after the garbled message: either `V` landed or `W` did.
pub fn initial_knowledgebase() -> Knowledgebase {
    Knowledgebase::from_databases([
        DatabaseBuilder::new()
            .fact(LANDED, [V.index()])
            .build()
            .unwrap(),
        DatabaseBuilder::new()
            .fact(LANDED, [W.index()])
            .build()
            .unwrap(),
    ])
    .expect("same schema")
}

/// The sentence "V has landed".
pub fn v_landed() -> Sentence {
    Sentence::new(atom(LANDED.index(), [cst(V.index())])).expect("closed")
}

/// The sentence "W has landed".
pub fn w_landed() -> Sentence {
    Sentence::new(atom(LANDED.index(), [cst(W.index())])).expect("closed")
}

/// Performs the update of Example 1.1: learn that `V` has landed.
pub fn learn_v_landed(t: &Transformer) -> Result<Knowledgebase> {
    Ok(t.insert(&v_landed(), &initial_knowledgebase())?.kb)
}

/// The hypothetical query of Example 4: *"if V had landed, would W be
/// necessarily still orbiting?"*  The paper's answer is **no**.
pub fn would_w_still_be_orbiting(t: &Transformer) -> Result<bool> {
    let answer = counterfactual(
        t,
        &v_landed(),
        &Sentence::new(not(atom(LANDED.index(), [cst(W.index())]))).expect("closed"),
        &initial_knowledgebase(),
    )?;
    Ok(answer == HypotheticalAnswer::Necessarily)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_1_1_update_keeps_w_possible() {
        let t = Transformer::new();
        let updated = learn_v_landed(&t).unwrap();
        assert_eq!(updated.len(), 2);
        // V has certainly landed …
        assert!(updated.certainly_holds(LANDED, &kbt_data::tuple![1]));
        // … but W's status is unknown: possible in one world, absent in another.
        assert!(updated.possibly_holds(LANDED, &kbt_data::tuple![2]));
        assert!(!updated.certainly_holds(LANDED, &kbt_data::tuple![2]));
    }

    #[test]
    fn the_agm_style_answer_would_be_wrong() {
        // The AGM revision answer would be {({v})} — i.e. "W has certainly
        // not landed".  The update semantics must NOT produce that.
        let t = Transformer::new();
        let updated = learn_v_landed(&t).unwrap();
        let only_v = DatabaseBuilder::new().fact(LANDED, [1u32]).build().unwrap();
        assert!(updated.contains(&only_v));
        assert_ne!(updated, Knowledgebase::singleton(only_v));
    }

    #[test]
    fn example_4_hypothetical_query_answers_no() {
        let t = Transformer::new();
        assert!(!would_w_still_be_orbiting(&t).unwrap());
    }
}
