//! Examples 2 and 3 — transitive reductions, and edges common to all of
//! them.
//!
//! Example 2 transforms a directed graph `r1` into the set of its transitive
//! reductions: the insertion of `ψ ∧ χ` forces `R2 ⊆ R1` (sentence `ψ`),
//! forces `R5` to be a transitive closure of both `R1` and `R2` (sentence
//! `χ`, a biconditional version of Example 1), and the minimality of `µ`
//! shrinks `R2` to the inclusion-minimal subsets of `R1` with the same
//! closure — exactly the transitive reductions.
//!
//! Example 3 asks whether a given set of edges (stored in `R3`) belongs to
//! *every* transitive reduction: take the `⊓` of the Example 2 result (the
//! edges common to all reductions), then insert
//! `ζ = (∀x1 x2 (R3(x1,x2) → R2(x1,x2))) → R4` — the zero-ary flag `R4`
//! receives the empty tuple exactly when the given edges are included.
//!
//! Notational note: the paper reuses `R3` both for the query edge set of
//! Example 3 and for the closure relation of Example 2's sentence `χ`; to
//! keep a single consistent schema we store the closure in `R5` instead, and
//! transcribe the closure biconditional with an explicit existential over the
//! intermediate vertex (the reading under which `χ` characterises the
//! transitive closure, as the paper's explanation describes).

use kbt_data::{Knowledgebase, Relation};
use kbt_logic::builder::*;
use kbt_logic::Sentence;

use crate::examples::{graph_database, rels};
use crate::transform::Transform;
use crate::transformer::Transformer;
use crate::Result;

/// Sentence `ψ`: `∀x1 x2 (R2(x1,x2) → R1(x1,x2))`.
pub fn psi() -> Sentence {
    Sentence::new(forall(
        [1, 2],
        implies(
            atom(rels::R2.index(), [var(1), var(2)]),
            atom(rels::R1.index(), [var(1), var(2)]),
        ),
    ))
    .expect("closed")
}

/// Sentence `χ`: `R5` is the transitive closure of `R1` and of `R2`.
///
/// `∀x1 x3 (R5(x1,x3) ↔ R1(x1,x3) ∨ ∃x2 (R5(x1,x2) ∧ R1(x2,x3)))`
/// conjoined with the same biconditional for `R2`.
pub fn chi() -> Sentence {
    let closure_of = |base: u32| {
        forall(
            [1, 3],
            iff(
                atom(rels::R5.index(), [var(1), var(3)]),
                or(
                    atom(base, [var(1), var(3)]),
                    exists(
                        [2],
                        and(
                            atom(rels::R5.index(), [var(1), var(2)]),
                            atom(base, [var(2), var(3)]),
                        ),
                    ),
                ),
            ),
        )
    };
    Sentence::new(and(
        closure_of(rels::R1.index()),
        closure_of(rels::R2.index()),
    ))
    .expect("closed")
}

/// Sentence `ζ` of Example 3:
/// `(∀x1 x2 (R3(x1,x2) → R2(x1,x2))) → R4`.
pub fn zeta() -> Sentence {
    Sentence::new(implies(
        forall(
            [1, 2],
            implies(
                atom(rels::R3.index(), [var(1), var(2)]),
                atom(rels::R2.index(), [var(1), var(2)]),
            ),
        ),
        atom(rels::R4.index(), []),
    ))
    .expect("closed")
}

/// The Example 2 expression `π_2 ∘ τ_{ψ∧χ}`.
pub fn reductions_transform() -> Transform {
    Transform::insert(psi().and(chi())).then(Transform::project(vec![rels::R2]))
}

/// The Example 3 expression
/// `π_4 ∘ τ_ζ ∘ π_{2,3} ∘ ⊓ ∘ τ_{ψ∧χ}`.
pub fn common_edges_transform() -> Transform {
    Transform::insert(psi().and(chi()))
        .then(Transform::Glb)
        .then(Transform::project(vec![rels::R2, rels::R3]))
        .then(Transform::insert(zeta()))
        .then(Transform::project(vec![rels::R4]))
}

/// Runs Example 2: all transitive reductions of the graph, one per world.
pub fn transitive_reductions(t: &Transformer, edges: &[(u32, u32)]) -> Result<Vec<Relation>> {
    let kb = Knowledgebase::singleton(graph_database(rels::R1, edges));
    let result = t.apply(&reductions_transform(), &kb)?.kb;
    Ok(result
        .iter()
        .map(|db| {
            db.relation(rels::R2)
                .cloned()
                .unwrap_or_else(|| Relation::empty(2))
        })
        .collect())
}

/// Runs Example 3: do the `query` edges belong to every transitive
/// reduction of `edges`?
pub fn edges_in_every_reduction(
    t: &Transformer,
    edges: &[(u32, u32)],
    query: &[(u32, u32)],
) -> Result<bool> {
    let mut db = graph_database(rels::R1, edges);
    for &(x, y) in query {
        db.insert_fact(rels::R3, kbt_data::tuple![x, y])?;
    }
    db.ensure_relation(rels::R3, 2)?;
    let kb = Knowledgebase::singleton(db);
    let result = t.apply(&common_edges_transform(), &kb)?.kb;
    // R4 is a zero-ary flag: the answer is "yes" iff it holds in the result.
    Ok(result.certainly_holds(rels::R4, &kbt_data::Tuple::empty()) && !result.is_empty())
}

/// Brute-force enumeration of the transitive reductions of a graph, used as
/// the independent baseline in the tests.
pub fn baseline_transitive_reductions(edges: &[(u32, u32)]) -> Vec<Relation> {
    use std::collections::BTreeSet;
    let edge_vec: Vec<(u32, u32)> = edges.to_vec();
    let full_closure = closure_of(&edge_vec.iter().copied().collect());
    let m = edge_vec.len();
    let mut candidates: Vec<BTreeSet<(u32, u32)>> = Vec::new();
    for bits in 0..(1u32 << m) {
        let subset: BTreeSet<(u32, u32)> = edge_vec
            .iter()
            .enumerate()
            .filter(|(i, _)| bits & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        if closure_of(&subset) == full_closure {
            candidates.push(subset);
        }
    }
    let minimal: Vec<BTreeSet<(u32, u32)>> = candidates
        .iter()
        .filter(|c| !candidates.iter().any(|o| *o != **c && o.is_subset(c)))
        .cloned()
        .collect();
    minimal
        .into_iter()
        .map(|s| {
            let mut rel = Relation::empty(2);
            for (a, b) in s {
                rel.insert(kbt_data::tuple![a, b]).expect("binary");
            }
            rel
        })
        .collect()
}

fn closure_of(
    edges: &std::collections::BTreeSet<(u32, u32)>,
) -> std::collections::BTreeSet<(u32, u32)> {
    let mut closure = edges.clone();
    loop {
        let mut added = Vec::new();
        for &(a, b) in &closure {
            for &(c, d) in &closure {
                if b == c && !closure.contains(&(a, d)) {
                    added.push((a, d));
                }
            }
        }
        if added.is_empty() {
            return closure;
        }
        closure.extend(added);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted(mut rels: Vec<Relation>) -> Vec<Relation> {
        rels.sort();
        rels.dedup();
        rels
    }

    #[test]
    fn example_2_matches_the_brute_force_reductions() {
        let graphs: Vec<Vec<(u32, u32)>> = vec![
            // a chain with a shortcut: unique reduction drops the shortcut
            vec![(1, 2), (2, 3), (1, 3)],
            // a 2-cycle: the reduction is the cycle itself
            vec![(1, 2), (2, 1)],
            // two independent edges
            vec![(1, 2), (3, 1)],
        ];
        let t = Transformer::new();
        for edges in graphs {
            let got = sorted(transitive_reductions(&t, &edges).unwrap());
            let expected = sorted(baseline_transitive_reductions(&edges));
            assert_eq!(got, expected, "reductions mismatch for {edges:?}");
        }
    }

    #[test]
    fn example_3_detects_edges_common_to_all_reductions() {
        let t = Transformer::new();
        // in the shortcut triangle, (1,2) is in every reduction but (1,3) is not.
        let edges = vec![(1, 2), (2, 3), (1, 3)];
        assert!(edges_in_every_reduction(&t, &edges, &[(1, 2)]).unwrap());
        assert!(!edges_in_every_reduction(&t, &edges, &[(1, 3)]).unwrap());
        assert!(edges_in_every_reduction(&t, &edges, &[(1, 2), (2, 3)]).unwrap());
    }
}
