//! Example 7 — the maximal clique problem.
//!
//! Does an undirected graph have a *maximum* clique of exactly size `k`?
//! The paper's construction stores the graph in `R1`, a reference set of `k`
//! marker elements in `R2`, and inserts a sentence requiring a fresh relation
//! `R5` to be a bijection between `R2` and a fresh vertex set `R4` that forms
//! a clique in `R1`.  If such a clique exists the minimal update leaves `R1`
//! and `R2` untouched; otherwise it is forced to alter them — so comparing
//! the inputs against scratch copies taken beforehand answers the "has a
//! clique of size `k`" question.  Asking the same question for `k+1` (the
//! paper uses `R3`, `R6`, `R7` for the second round) then settles maximality.
//!
//! The runner below performs the before/after comparison directly on the
//! resulting knowledgebase, which is the check the paper describes in prose
//! ("by making copies of these relations before the above transformation and
//! comparing them to the values of r1 and r2 after the transformation").

use kbt_data::{Database, Knowledgebase};
use kbt_logic::builder::*;
use kbt_logic::Sentence;

use crate::examples::{rels, undirected_graph_database};
use crate::transform::Transform;
use crate::transformer::Transformer;
use crate::Result;

/// The clique sentence of Example 7 (first block): `R5` is a bijection from
/// the marker set `R2` onto a set `R4` of vertices that are pairwise adjacent
/// in `R1`.
pub fn clique_sentence() -> Sentence {
    Sentence::new(and_all([
        // ∀x1 ∃x2 : R2(x1) → R5(x1,x2)
        forall(
            [1],
            exists(
                [2],
                implies(
                    atom(rels::R2.index(), [var(1)]),
                    atom(rels::R5.index(), [var(1), var(2)]),
                ),
            ),
        ),
        // ∀x1 ∃x2 : R4(x1) → R5(x2,x1)
        forall(
            [1],
            exists(
                [2],
                implies(
                    atom(rels::R4.index(), [var(1)]),
                    atom(rels::R5.index(), [var(2), var(1)]),
                ),
            ),
        ),
        // R5 is injective in both coordinates
        forall(
            [1, 2, 3],
            implies(
                and(
                    atom(rels::R5.index(), [var(2), var(1)]),
                    atom(rels::R5.index(), [var(3), var(1)]),
                ),
                eq(var(2), var(3)),
            ),
        ),
        forall(
            [1, 2, 3],
            implies(
                and(
                    atom(rels::R5.index(), [var(1), var(2)]),
                    atom(rels::R5.index(), [var(1), var(3)]),
                ),
                eq(var(2), var(3)),
            ),
        ),
        // the range of R5 lands in R4, and everything R5 maps from is in R2
        forall(
            [1, 2],
            implies(
                atom(rels::R5.index(), [var(1), var(2)]),
                and(
                    atom(rels::R2.index(), [var(1)]),
                    atom(rels::R4.index(), [var(2)]),
                ),
            ),
        ),
        // R4 is a clique of R1
        forall(
            [1, 2],
            implies(
                and_all([
                    atom(rels::R4.index(), [var(1)]),
                    atom(rels::R4.index(), [var(2)]),
                    neq(var(1), var(2)),
                ]),
                atom(rels::R1.index(), [var(1), var(2)]),
            ),
        ),
    ]))
    .expect("closed")
}

/// The transformation `τ_φ` of Example 7 (the comparison with the scratch
/// copies is done by the runner, as described in the paper's prose).
pub fn transform() -> Transform {
    Transform::insert(clique_sentence())
}

/// Whether the graph (given as undirected edges over vertices `1..=n`) has a
/// clique of exactly `k` vertices.
pub fn has_clique_of_size(t: &Transformer, edges: &[(u32, u32)], k: usize) -> Result<bool> {
    if k == 0 {
        return Ok(true);
    }
    if k == 1 {
        // a single vertex is a clique as soon as the graph has any vertex
        return Ok(!edges.is_empty());
    }
    let graph = undirected_graph_database(rels::R1, edges);
    let max_vertex = graph
        .constants()
        .into_iter()
        .map(|c| c.index())
        .max()
        .unwrap_or(0);
    // marker elements, disjoint from the vertices
    let mut db: Database = graph;
    for i in 0..k {
        db.insert_fact(rels::R2, kbt_data::tuple![max_vertex + 1 + i as u32])?;
    }
    let original = db.clone();
    let kb = Knowledgebase::singleton(db);
    let result = t.apply(&transform(), &kb)?.kb;
    // a clique exists iff some minimal world left R1 and R2 untouched
    let found = result.iter().any(|world| {
        world.relation(rels::R1) == original.relation(rels::R1)
            && world.relation(rels::R2) == original.relation(rels::R2)
    });
    Ok(found)
}

/// Whether the maximum clique of the graph has exactly size `k`
/// (Example 7's overall query: a clique of size `k` exists but none of size
/// `k + 1`).
pub fn maximum_clique_is(t: &Transformer, edges: &[(u32, u32)], k: usize) -> Result<bool> {
    Ok(has_clique_of_size(t, edges, k)? && !has_clique_of_size(t, edges, k + 1)?)
}

/// Brute-force maximum clique, the baseline for the tests and benchmarks.
pub fn baseline_max_clique(edges: &[(u32, u32)]) -> usize {
    use std::collections::BTreeSet;
    let vertices: Vec<u32> = edges
        .iter()
        .flat_map(|&(a, b)| [a, b])
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let adjacent: BTreeSet<(u32, u32)> =
        edges.iter().flat_map(|&(a, b)| [(a, b), (b, a)]).collect();
    let n = vertices.len();
    let mut best = 0;
    for bits in 0..(1u32 << n) {
        let chosen: Vec<u32> = (0..n)
            .filter(|i| bits & (1 << i) != 0)
            .map(|i| vertices[i])
            .collect();
        let is_clique = chosen
            .iter()
            .all(|&a| chosen.iter().all(|&b| a == b || adjacent.contains(&(a, b))));
        if is_clique {
            best = best.max(chosen.len());
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clique_detection_on_a_triangle_with_a_pendant() {
        // vertices 1-2-3 form a triangle, 4 hangs off 3.
        let edges = vec![(1, 2), (2, 3), (1, 3), (3, 4)];
        assert_eq!(baseline_max_clique(&edges), 3);
        let t = Transformer::new();
        assert!(has_clique_of_size(&t, &edges, 2).unwrap());
        assert!(has_clique_of_size(&t, &edges, 3).unwrap());
        assert!(!has_clique_of_size(&t, &edges, 4).unwrap());
    }

    #[test]
    fn maximum_clique_query_matches_the_baseline() {
        let t = Transformer::new();
        let graphs: Vec<Vec<(u32, u32)>> = vec![
            vec![(1, 2), (2, 3)], // a path: maximum clique 2
        ];
        for edges in graphs {
            let k = baseline_max_clique(&edges);
            assert!(
                maximum_clique_is(&t, &edges, k).unwrap(),
                "maximum clique of {edges:?} should be {k}"
            );
            assert!(!maximum_clique_is(&t, &edges, k + 1).unwrap());
        }
    }
}
