//! Example 6 — the parity query.
//!
//! Does a unary relation `r1` have an even number of elements?  Parity is the
//! classical example of a query that is not first-order expressible; the
//! paper expresses it as a transformation: guess a partition of `r1` into
//! `r2` and `r3`, build the Cartesian product `r4 = r2 × r3`, prune it to a
//! maximal one-to-one correspondence (the minimality of `µ` under the
//! functionality constraints does the pruning), collect the covered elements
//! in `r5`, and finally flag the uncovered elements `r1 \ r5` in `r6`.  Some
//! possible world ends with `r6` empty exactly when `r1` can be split into
//! two equal halves, i.e. when `|r1|` is even.

use kbt_data::Knowledgebase;
use kbt_logic::builder::*;
use kbt_logic::Sentence;

use crate::examples::{rels, set_database};
use crate::transform::Transform;
use crate::transformer::Transformer;
use crate::Result;

/// `v'`: every element of `R1` goes to `R2` or `R3`.
pub fn upsilon_prime() -> Sentence {
    Sentence::new(forall(
        [1],
        implies(
            atom(rels::R1.index(), [var(1)]),
            or(
                atom(rels::R2.index(), [var(1)]),
                atom(rels::R3.index(), [var(1)]),
            ),
        ),
    ))
    .expect("closed")
}

/// `φ.`: `R4` contains the Cartesian product `R2 × R3`.
pub fn product() -> Sentence {
    Sentence::new(forall(
        [1, 2],
        implies(
            and(
                atom(rels::R2.index(), [var(1)]),
                atom(rels::R3.index(), [var(2)]),
            ),
            atom(rels::R4.index(), [var(1), var(2)]),
        ),
    ))
    .expect("closed")
}

/// `κ`: `R4` is one-to-one in both directions.
pub fn functionality() -> Sentence {
    Sentence::new(and(
        forall(
            [1, 2, 3],
            implies(
                and(
                    atom(rels::R4.index(), [var(1), var(2)]),
                    atom(rels::R4.index(), [var(1), var(3)]),
                ),
                eq(var(2), var(3)),
            ),
        ),
        forall(
            [1, 2, 3],
            implies(
                and(
                    atom(rels::R4.index(), [var(2), var(1)]),
                    atom(rels::R4.index(), [var(3), var(1)]),
                ),
                eq(var(2), var(3)),
            ),
        ),
    ))
    .expect("closed")
}

/// `λ`: `R5` collects every element occurring in `R4`.
pub fn covered() -> Sentence {
    Sentence::new(forall(
        [1, 2],
        implies(
            or(
                atom(rels::R4.index(), [var(1), var(2)]),
                atom(rels::R4.index(), [var(2), var(1)]),
            ),
            atom(rels::R5.index(), [var(1)]),
        ),
    ))
    .expect("closed")
}

/// `ι`: `R6` receives `R1 \ R5` — the elements left unmatched.
pub fn uncovered() -> Sentence {
    Sentence::new(forall(
        [1],
        implies(
            and(
                atom(rels::R1.index(), [var(1)]),
                not(atom(rels::R5.index(), [var(1)])),
            ),
            atom(rels::R6.index(), [var(1)]),
        ),
    ))
    .expect("closed")
}

/// The full Example 6 expression
/// `π_6 ∘ τ_ι ∘ π_{1,5} ∘ τ_λ ∘ τ_κ ∘ τ_{φ.} ∘ τ_{v'}`.
pub fn transform() -> Transform {
    Transform::insert(upsilon_prime())
        .then(Transform::insert(product()))
        .then(Transform::insert(functionality()))
        .then(Transform::insert(covered()))
        .then(Transform::project(vec![rels::R1, rels::R5]))
        .then(Transform::insert(uncovered()))
        .then(Transform::project(vec![rels::R6]))
}

/// Runs Example 6: is the number of elements even?
pub fn is_even(t: &Transformer, elements: &[u32]) -> Result<bool> {
    let kb = Knowledgebase::singleton(set_database(rels::R1, elements));
    let result = t.apply(&transform(), &kb)?.kb;
    // even iff some possible world ends with R6 empty
    let even = result
        .iter()
        .any(|db| db.relation(rels::R6).is_none_or(|r| r.is_empty()));
    Ok(even)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_of_small_sets() {
        let t = Transformer::new();
        assert!(is_even(&t, &[]).unwrap(), "the empty set is even");
        assert!(!is_even(&t, &[1]).unwrap());
        assert!(is_even(&t, &[1, 2]).unwrap());
        assert!(!is_even(&t, &[1, 2, 3]).unwrap());
    }

    #[test]
    fn parity_does_not_depend_on_which_constants_are_used() {
        let t = Transformer::new();
        assert!(is_even(&t, &[7, 11]).unwrap());
        assert!(!is_even(&t, &[42]).unwrap());
    }
}
