//! Lemma 2.1 — the update operator does not commute with `⊓` and `⊔`.
//!
//! The lemma exhibits two concrete counterexamples; this module reproduces
//! both knowledgebases and sentences so that the non-commutation can be
//! demonstrated (and is asserted in the test suites).

use kbt_data::{DatabaseBuilder, Knowledgebase, RelId};
use kbt_logic::builder::*;
use kbt_logic::Sentence;

use crate::transform::Transform;
use crate::transformer::Transformer;
use crate::Result;

/// Relation `R1` (ternary) of the first counterexample.
pub const R1: RelId = RelId::new(1);
/// Relation `R2` (unary), defined by the first counterexample's sentence.
pub const R2: RelId = RelId::new(2);
/// Relation `R3` (binary) of the second counterexample.
pub const R3: RelId = RelId::new(3);
/// Relation `R4` (binary), defined by the second counterexample's sentence.
pub const R4: RelId = RelId::new(4);

/// The knowledgebase of the first counterexample:
/// `kb = {({a1 a2 a3}), ({a1 a2 a4})}` over the ternary relation `R1`.
pub fn glb_knowledgebase() -> Knowledgebase {
    Knowledgebase::from_databases([
        DatabaseBuilder::new()
            .fact(R1, [1u32, 2, 3])
            .build()
            .unwrap(),
        DatabaseBuilder::new()
            .fact(R1, [1u32, 2, 4])
            .build()
            .unwrap(),
    ])
    .expect("same schema")
}

/// The sentence of the first counterexample:
/// `∀x1 x2 (R1(x1, a2, x2) → R2(x1))`.
pub fn glb_sentence() -> Sentence {
    Sentence::new(forall(
        [1, 2],
        implies(
            atom(R1.index(), [var(1), cst(2), var(2)]),
            atom(R2.index(), [var(1)]),
        ),
    ))
    .expect("closed")
}

/// The knowledgebase of the second counterexample:
/// `kb = {({a1 a2}), ({a2 a3})}` over the binary relation `R3`.
pub fn lub_knowledgebase() -> Knowledgebase {
    Knowledgebase::from_databases([
        DatabaseBuilder::new().fact(R3, [1u32, 2]).build().unwrap(),
        DatabaseBuilder::new().fact(R3, [2u32, 3]).build().unwrap(),
    ])
    .expect("same schema")
}

/// The sentence of the second counterexample:
/// `∀x1 x2 x3 ((R3(x1,x3) ∨ (R3(x1,x2) ∧ R3(x2,x3))) → R4(x1,x3))`.
pub fn lub_sentence() -> Sentence {
    Sentence::new(forall(
        [1, 2, 3],
        implies(
            or(
                atom(R3.index(), [var(1), var(3)]),
                and(
                    atom(R3.index(), [var(1), var(2)]),
                    atom(R3.index(), [var(2), var(3)]),
                ),
            ),
            atom(R4.index(), [var(1), var(3)]),
        ),
    ))
    .expect("closed")
}

/// Evaluates both orders of composition for a given sentence, knowledgebase
/// and lattice operator, returning `(operator ∘ τ, τ ∘ operator)`.
pub fn both_orders(
    t: &Transformer,
    phi: &Sentence,
    kb: &Knowledgebase,
    operator: Transform,
) -> Result<(Knowledgebase, Knowledgebase)> {
    let op_after_tau = Transform::insert(phi.clone()).then(operator.clone());
    let tau_after_op = operator.then(Transform::insert(phi.clone()));
    Ok((
        t.apply(&op_after_tau, kb)?.kb,
        t.apply(&tau_after_op, kb)?.kb,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_does_not_commute_with_glb() {
        let t = Transformer::new();
        let (glb_of_tau, tau_of_glb) =
            both_orders(&t, &glb_sentence(), &glb_knowledgebase(), Transform::Glb).unwrap();
        assert_ne!(glb_of_tau, tau_of_glb, "Lemma 2.1(a) requires inequality");

        // ⊓(τ_φ(kb)) = [(∅, {a1})]: R1 intersects to ∅, both worlds add R2(a1).
        let db = glb_of_tau.as_singleton().unwrap();
        assert!(db.relation(R1).unwrap().is_empty());
        assert_eq!(db.relation(R2).unwrap().len(), 1);
        assert!(db.holds(R2, &kbt_data::tuple![1]));

        // τ_φ(⊓(kb)) = [(∅, ∅)]: nothing triggers the implication.
        let db = tau_of_glb.as_singleton().unwrap();
        assert!(db.relation(R1).unwrap().is_empty());
        assert!(db.relation(R2).unwrap().is_empty());
    }

    #[test]
    fn update_does_not_commute_with_lub() {
        let t = Transformer::new();
        let (lub_of_tau, tau_of_lub) =
            both_orders(&t, &lub_sentence(), &lub_knowledgebase(), Transform::Lub).unwrap();
        assert_ne!(lub_of_tau, tau_of_lub, "Lemma 2.1(b) requires inequality");

        // ⊔(τ_φ(kb)): each world copies its own edge into R4, so R4 has 2 pairs.
        let db = lub_of_tau.as_singleton().unwrap();
        assert_eq!(db.relation(R3).unwrap().len(), 2);
        assert_eq!(db.relation(R4).unwrap().len(), 2);
        assert!(!db.holds(R4, &kbt_data::tuple![1, 3]));

        // τ_φ(⊔(kb)): the merged database has the two-step path, so R4 also
        // contains the composed pair (a1, a3).
        let db = tau_of_lub.as_singleton().unwrap();
        assert_eq!(db.relation(R4).unwrap().len(), 3);
        assert!(db.holds(R4, &kbt_data::tuple![1, 3]));
    }
}
