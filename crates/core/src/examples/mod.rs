//! Executable versions of the paper's worked examples.
//!
//! Section 3 of *Knowledgebase Transformations* presents seven example
//! transformations of increasing difficulty; Section 1/2 introduce the
//! "robot vehicles" scenario and Lemma 2.1 gives two counterexamples showing
//! that `τ` does not commute with `⊓` / `⊔`.  Each submodule builds the
//! corresponding transformation expression with the exact relation numbering
//! of the paper and provides a small runner used by the example binaries,
//! the integration tests and the benchmark harness:
//!
//! | module | paper artifact |
//! |---|---|
//! | [`transitive_closure`] | Example 1 — transitive closure |
//! | [`transitive_reduction`] | Examples 2 and 3 — transitive reductions and edges common to all of them |
//! | [`robots`] | Example 1.1 / Example 4 — the space knowledgebase and its hypothetical query |
//! | [`monochromatic_triangle`] | Example 5 — monochromatic triangle (NP-hard) |
//! | [`parity`] | Example 6 — parity of a unary relation |
//! | [`max_clique`] | Example 7 — maximal clique |
//! | [`lemma21`] | Lemma 2.1 — τ does not commute with ⊓ / ⊔ |

pub mod lemma21;
pub mod max_clique;
pub mod monochromatic_triangle;
pub mod parity;
pub mod robots;
pub mod transitive_closure;
pub mod transitive_reduction;

use kbt_data::{Database, DatabaseBuilder, RelId};

/// Relation symbols `R1 … R9` with the numbering used throughout Section 3.
pub mod rels {
    use kbt_data::RelId;

    /// `R1` — the input relation of most examples (edges / base set).
    pub const R1: RelId = RelId::new(1);
    /// `R2` — usually the first derived relation.
    pub const R2: RelId = RelId::new(2);
    /// `R3` — auxiliary relation (e.g. the transitive closure in Example 2).
    pub const R3: RelId = RelId::new(3);
    /// `R4` — auxiliary relation / boolean flag.
    pub const R4: RelId = RelId::new(4);
    /// `R5` — auxiliary relation.
    pub const R5: RelId = RelId::new(5);
    /// `R6` — auxiliary relation / boolean flag.
    pub const R6: RelId = RelId::new(6);
    /// `R7` — auxiliary relation (Example 7).
    pub const R7: RelId = RelId::new(7);
    /// `R8` — scratch copy relation used by the clique runner.
    pub const R8: RelId = RelId::new(8);
    /// `R9` — scratch copy relation used by the clique runner.
    pub const R9: RelId = RelId::new(9);
}

/// Builds a database holding a directed graph in the binary relation `rel`.
pub fn graph_database(rel: RelId, edges: &[(u32, u32)]) -> Database {
    let mut b = DatabaseBuilder::new().relation(rel, 2);
    for &(x, y) in edges {
        b = b.fact(rel, [x, y]);
    }
    b.build().expect("graph facts are well-formed")
}

/// Builds a database holding an *undirected* graph: both orientations of
/// every edge are stored (Examples 5 and 7 assume symmetric edge relations).
pub fn undirected_graph_database(rel: RelId, edges: &[(u32, u32)]) -> Database {
    let mut b = DatabaseBuilder::new().relation(rel, 2);
    for &(x, y) in edges {
        b = b.fact(rel, [x, y]).fact(rel, [y, x]);
    }
    b.build().expect("graph facts are well-formed")
}

/// Builds a database holding a finite set in the unary relation `rel`.
pub fn set_database(rel: RelId, elements: &[u32]) -> Database {
    let mut b = DatabaseBuilder::new().relation(rel, 1);
    for &x in elements {
        b = b.fact(rel, [x]);
    }
    b.build().expect("set facts are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_and_set_builders() {
        let g = graph_database(rels::R1, &[(1, 2), (2, 3)]);
        assert_eq!(g.fact_count(), 2);
        let u = undirected_graph_database(rels::R1, &[(1, 2)]);
        assert_eq!(u.fact_count(), 2);
        assert!(u.holds(rels::R1, &kbt_data::tuple![2, 1]));
        let s = set_database(rels::R1, &[4, 5, 6]);
        assert_eq!(s.fact_count(), 3);
        let empty = graph_database(rels::R1, &[]);
        assert_eq!(empty.fact_count(), 0);
        assert_eq!(empty.schema().arity(rels::R1), Some(2));
    }
}
