//! Example 1 — the transitive closure query.
//!
//! Let `r` be a binary relation stored in `R1` and let `φ` be the sentence
//!
//! ```text
//! ∀x1 x2 x3 : (R2(x1,x2) ∧ R1(x2,x3)) ∨ R1(x1,x3) → R2(x1,x3)
//! ```
//!
//! Then `π_2 τ_φ([(r)]) = [(s)]` where `s` is the transitive closure of `r`:
//! the insertion must make `R2` contain `R1` and be closed under appending an
//! `R1`-edge, and the minimality requirement of `µ` keeps `R1` untouched and
//! makes `R2` the *least* such relation.

use kbt_data::{Knowledgebase, Relation};
use kbt_logic::builder::*;
use kbt_logic::Sentence;

use crate::examples::{graph_database, rels};
use crate::transform::Transform;
use crate::transformer::Transformer;
use crate::Result;

/// The sentence `φ` of Example 1, exactly as printed in the paper.
pub fn sentence() -> Sentence {
    Sentence::new(forall(
        [1, 2, 3],
        implies(
            or(
                and(
                    atom(rels::R2.index(), [var(1), var(2)]),
                    atom(rels::R1.index(), [var(2), var(3)]),
                ),
                atom(rels::R1.index(), [var(1), var(3)]),
            ),
            atom(rels::R2.index(), [var(1), var(3)]),
        ),
    ))
    .expect("Example 1 sentence is closed")
}

/// An equivalent formulation as two Horn clauses.  Semantically it produces
/// the same result as [`sentence`]; syntactically it falls into the
/// Datalog-restricted fragment of Theorem 4.8 and is evaluated by the PTIME
/// least-fixpoint fast path — the ablation benchmarked in `fixpoint.rs`.
pub fn sentence_horn() -> Sentence {
    Sentence::new(and(
        forall(
            [1, 2],
            implies(
                atom(rels::R1.index(), [var(1), var(2)]),
                atom(rels::R2.index(), [var(1), var(2)]),
            ),
        ),
        forall(
            [1, 2, 3],
            implies(
                and(
                    atom(rels::R2.index(), [var(1), var(2)]),
                    atom(rels::R1.index(), [var(2), var(3)]),
                ),
                atom(rels::R2.index(), [var(1), var(3)]),
            ),
        ),
    ))
    .expect("Horn variant is closed")
}

/// The transformation expression `π_2 ∘ τ_φ` of Example 1.
pub fn transform() -> Transform {
    Transform::insert(sentence()).then(Transform::project(vec![rels::R2]))
}

/// The same expression built from the Horn variant of the sentence.
pub fn transform_horn() -> Transform {
    Transform::insert(sentence_horn()).then(Transform::project(vec![rels::R2]))
}

/// Runs the Example 1 query: the transitive closure of a directed graph.
pub fn transitive_closure(t: &Transformer, edges: &[(u32, u32)]) -> Result<Relation> {
    run(t, edges, &transform())
}

/// Runs the Horn / Datalog formulation of the query.
pub fn transitive_closure_horn(t: &Transformer, edges: &[(u32, u32)]) -> Result<Relation> {
    run(t, edges, &transform_horn())
}

fn run(t: &Transformer, edges: &[(u32, u32)], expr: &Transform) -> Result<Relation> {
    let kb = Knowledgebase::singleton(graph_database(rels::R1, edges));
    let result = t.apply(expr, &kb)?.kb;
    let db = result
        .as_singleton()
        .expect("the transitive closure query is deterministic");
    Ok(db
        .relation(rels::R2)
        .cloned()
        .unwrap_or_else(|| Relation::empty(2)))
}

/// A plain-Rust transitive closure, used as the independent baseline in the
/// tests and benchmarks.
pub fn baseline_transitive_closure(edges: &[(u32, u32)]) -> Relation {
    let mut closure: std::collections::BTreeSet<(u32, u32)> = edges.iter().copied().collect();
    loop {
        let mut added = Vec::new();
        for &(a, b) in &closure {
            for &(c, d) in &closure {
                if b == c && !closure.contains(&(a, d)) {
                    added.push((a, d));
                }
            }
        }
        if added.is_empty() {
            break;
        }
        closure.extend(added);
    }
    let mut rel = Relation::empty(2);
    for (a, b) in closure {
        rel.insert(kbt_data::tuple![a, b]).expect("binary tuple");
    }
    rel
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::{EvalOptions, Strategy};

    #[test]
    fn example_1_matches_the_baseline_on_small_graphs() {
        let graphs: Vec<Vec<(u32, u32)>> = vec![
            vec![(1, 2), (2, 3)],
            vec![(1, 2), (2, 3), (3, 1)],
            vec![(1, 1)],
            vec![(1, 2), (3, 4)],
            vec![],
        ];
        let t = Transformer::new();
        for edges in graphs {
            let got = transitive_closure(&t, &edges).unwrap();
            let expected = baseline_transitive_closure(&edges);
            assert_eq!(got, expected, "closure mismatch for {edges:?}");
        }
    }

    #[test]
    fn horn_variant_agrees_and_uses_the_fixpoint_path() {
        let edges = vec![(1, 2), (2, 3), (3, 4), (4, 5)];
        let t = Transformer::new();
        let via_general = transitive_closure(&t, &edges).unwrap();
        let via_horn = transitive_closure_horn(&t, &edges).unwrap();
        assert_eq!(via_general, via_horn);
        assert_eq!(via_horn, baseline_transitive_closure(&edges));

        // the Horn variant works far beyond the grounding evaluator's comfort
        // zone: a 25-node chain has a 25·24/2 = 300-pair closure.
        let long: Vec<(u32, u32)> = (1..25).map(|i| (i, i + 1)).collect();
        let datalog_only = Transformer::with_options(EvalOptions::with_strategy(Strategy::Datalog));
        let closure = transitive_closure_horn(&datalog_only, &long).unwrap();
        assert_eq!(closure.len(), 300);
    }

    #[test]
    fn reachability_from_toronto_flavour_of_example_1_2() {
        // Example 1.2: which cities are reachable directly or indirectly?
        // Toronto = 1, Ottawa = 2, Montreal = 3, Halifax = 4 (isolated: 5).
        let flights = vec![(1, 2), (2, 3), (3, 4)];
        let t = Transformer::new();
        let closure = transitive_closure(&t, &flights).unwrap();
        let reachable: Vec<u32> = closure
            .iter()
            .filter(|row| row.first() == Some(&kbt_data::Const::new(1)))
            .map(|row| row[1].index())
            .collect();
        assert_eq!(reachable, vec![2, 3, 4]);
    }
}
