//! Evaluation options, strategies and statistics.

/// How the insertion operator `τ_φ` is evaluated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Pick the cheapest applicable strategy per sentence: `Datalog` when the
    /// sentence is a conjunction of Horn clauses over fresh head relations,
    /// `QuantifierFree` when it is ground, `Grounding` otherwise.
    #[default]
    Auto,
    /// Enumerate every candidate database over the active domain and keep the
    /// Winslett-minimal models (the literal form of definition (9)).
    /// Exponential in the number of candidate facts; used as ground truth in
    /// tests.
    Exhaustive,
    /// Ground the sentence, encode to CNF and enumerate subset-minimal models
    /// with the SAT substrate, in two stages mirroring the Winslett order.
    Grounding,
    /// The PTIME algorithm of Theorem 4.7: only the ground atoms mentioned in
    /// the sentence may change.
    QuantifierFree,
    /// The PTIME least-fixpoint algorithm of Theorem 4.8 for Horn sentences
    /// defining fresh relations.
    Datalog,
}

impl Strategy {
    /// A short human-readable name (used in error messages and benchmarks).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Auto => "Auto",
            Strategy::Exhaustive => "Exhaustive",
            Strategy::Grounding => "Grounding",
            Strategy::QuantifierFree => "QuantifierFree",
            Strategy::Datalog => "Datalog",
        }
    }
}

/// Options controlling transformation evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EvalOptions {
    /// Strategy used for `τ_φ`.
    pub strategy: Strategy,
    /// Ceiling on the number of candidate ground atoms an update may need
    /// (relations of the result schema × tuples over the active domain).
    pub max_ground_atoms: usize,
    /// Ceiling on the number of possible worlds a knowledgebase may grow to.
    pub max_worlds: usize,
    /// Whether repeated Datalog-fast-path `τ_φ` steps inside one `Seq` may
    /// share a persistent incremental engine session: consecutive
    /// applications of the same Horn sentence to closely related singleton
    /// knowledgebases are then evaluated by feeding the databases' diff into
    /// the live fixpoint instead of re-deriving it from scratch.  Results
    /// are byte-identical either way; disable to benchmark the difference.
    pub incremental: bool,
    /// Evaluation width of the Datalog fast path's fixpoint engine: `0`
    /// (the default) uses the process default — the `KBT_THREADS`
    /// environment variable when set, else the machine's available
    /// parallelism; `1` is the exact sequential path; larger values fan the
    /// engine's semi-naive rounds out over that many threads.  Fixpoints
    /// and statistics are byte-identical at every width (the engine merges
    /// private worker buffers deterministically), so this is purely a
    /// performance knob.
    pub threads: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            strategy: Strategy::Auto,
            max_ground_atoms: 200_000,
            max_worlds: 100_000,
            incremental: true,
            threads: 0,
        }
    }
}

impl EvalOptions {
    /// Options with the given strategy and default limits.
    pub fn with_strategy(strategy: Strategy) -> Self {
        EvalOptions {
            strategy,
            ..EvalOptions::default()
        }
    }

    /// Options with the given evaluation width and defaults otherwise.
    pub fn with_threads(threads: usize) -> Self {
        EvalOptions {
            threads,
            ..EvalOptions::default()
        }
    }
}

/// Statistics accumulated while evaluating a transformation expression.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of `τ_φ` applications to individual databases (`µ` calls).
    pub updates: usize,
    /// Total number of candidate ground atoms considered across updates.
    pub candidate_atoms: usize,
    /// Total number of minimal models produced by `µ`.
    pub minimal_models: usize,
    /// Number of operator applications (τ, ⊓, ⊔, π) evaluated.
    pub operators: usize,
    /// Fixpoint rounds performed by the Datalog fast path (all µ calls).
    pub fixpoint_iterations: usize,
    /// Hash-index probes performed by the evaluation engine.
    pub index_probes: usize,
    /// Tuples inspected by the evaluation engine's scans and probes.
    pub tuples_scanned: usize,
    /// Facts the incremental chain sessions carried over between `τ_φ`
    /// steps without recomputation (zero when evaluation ran from scratch).
    pub reused_facts: usize,
    /// Facts the incremental chain sessions restored through DRed
    /// rederivation or a fallback stratum recomputation.
    pub rederived_facts: usize,
}

impl EvalStats {
    /// Merges another statistics record into this one.
    pub fn absorb(&mut self, other: &EvalStats) {
        self.updates += other.updates;
        self.candidate_atoms += other.candidate_atoms;
        self.minimal_models += other.minimal_models;
        self.operators += other.operators;
        self.fixpoint_iterations += other.fixpoint_iterations;
        self.index_probes += other.index_probes;
        self.tuples_scanned += other.tuples_scanned;
        self.reused_facts += other.reused_facts;
        self.rederived_facts += other.rederived_facts;
    }

    /// Folds the engine statistics of one `µ` evaluation into this record.
    pub fn absorb_fixpoint(&mut self, fixpoint: &kbt_datalog::EvalStats) {
        self.fixpoint_iterations += fixpoint.iterations;
        self.index_probes += fixpoint.index_probes;
        self.tuples_scanned += fixpoint.tuples_scanned;
        self.reused_facts += fixpoint.reused_facts;
        self.rederived_facts += fixpoint.rederived_facts;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let o = EvalOptions::default();
        assert_eq!(o.strategy, Strategy::Auto);
        assert!(o.max_ground_atoms > 0);
        assert!(o.max_worlds > 0);
        assert!(o.incremental);
        assert_eq!(Strategy::default(), Strategy::Auto);
    }

    #[test]
    fn stats_absorb_adds_fields() {
        let mut a = EvalStats {
            updates: 1,
            candidate_atoms: 10,
            minimal_models: 2,
            operators: 3,
            ..EvalStats::default()
        };
        let b = EvalStats {
            updates: 2,
            candidate_atoms: 5,
            minimal_models: 1,
            operators: 1,
            ..EvalStats::default()
        };
        a.absorb(&b);
        assert_eq!(a.updates, 3);
        assert_eq!(a.candidate_atoms, 15);
        assert_eq!(a.minimal_models, 3);
        assert_eq!(a.operators, 4);
    }

    #[test]
    fn stats_absorb_fixpoint_maps_engine_counters() {
        let mut a = EvalStats::default();
        a.absorb_fixpoint(&kbt_datalog::EvalStats {
            iterations: 5,
            derived_facts: 100,
            strata: 1,
            index_probes: 42,
            tuples_scanned: 77,
            reused_facts: 9,
            rederived_facts: 2,
        });
        assert_eq!(a.fixpoint_iterations, 5);
        assert_eq!(a.index_probes, 42);
        assert_eq!(a.tuples_scanned, 77);
        assert_eq!(a.reused_facts, 9);
        assert_eq!(a.rederived_facts, 2);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Grounding.name(), "Grounding");
        assert_eq!(Strategy::Auto.name(), "Auto");
    }
}
