//! Error types for the transformation language.

use std::fmt;

/// Errors produced while evaluating transformations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// The candidate universe of an update exceeds the configured limit.
    UniverseTooLarge {
        /// Number of candidate ground atoms required.
        atoms: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// The knowledgebase produced by an update exceeds the configured limit.
    TooManyWorlds {
        /// Number of possible worlds produced so far.
        worlds: usize,
        /// The configured ceiling.
        limit: usize,
    },
    /// The requested strategy cannot handle the given sentence.
    StrategyNotApplicable {
        /// Name of the strategy.
        strategy: &'static str,
        /// Why it does not apply.
        reason: String,
    },
    /// An error bubbled up from the relational substrate.
    Data(kbt_data::DataError),
    /// An error bubbled up from the logic substrate.
    Logic(kbt_logic::LogicError),
    /// An error bubbled up from the Datalog substrate.
    Datalog(kbt_datalog::DatalogError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UniverseTooLarge { atoms, limit } => write!(
                f,
                "the update needs {atoms} candidate ground atoms, above the configured limit of {limit}"
            ),
            CoreError::TooManyWorlds { worlds, limit } => write!(
                f,
                "the update produced {worlds} possible worlds, above the configured limit of {limit}"
            ),
            CoreError::StrategyNotApplicable { strategy, reason } => {
                write!(f, "strategy {strategy} is not applicable: {reason}")
            }
            CoreError::Data(e) => write!(f, "{e}"),
            CoreError::Logic(e) => write!(f, "{e}"),
            CoreError::Datalog(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<kbt_data::DataError> for CoreError {
    fn from(e: kbt_data::DataError) -> Self {
        CoreError::Data(e)
    }
}

impl From<kbt_logic::LogicError> for CoreError {
    fn from(e: kbt_logic::LogicError) -> Self {
        CoreError::Logic(e)
    }
}

impl From<kbt_datalog::DatalogError> for CoreError {
    fn from(e: kbt_datalog::DatalogError) -> Self {
        CoreError::Datalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_limits() {
        let e = CoreError::UniverseTooLarge {
            atoms: 1_000_000,
            limit: 100_000,
        };
        assert!(e.to_string().contains("1000000"));
        let e = CoreError::StrategyNotApplicable {
            strategy: "Datalog",
            reason: "sentence is not Horn".into(),
        };
        assert!(e.to_string().contains("Horn"));
    }
}
