//! Transformation expressions — the language Θ.
//!
//! A transformation expression is a composition of the four operators
//! `τ_φ`, `⊓`, `⊔` and `π`.  The paper writes compositions right-to-left
//! (`π_2 τ_φ (kb)` applies `τ_φ` first); the [`Transform::then`] builder
//! reads left-to-right, which is how pipelines are usually written in Rust.

use std::fmt;

use kbt_data::RelId;
use kbt_logic::Sentence;

/// A transformation expression.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub enum Transform {
    /// The identity transformation (empty composition).
    #[default]
    Identity,
    /// `τ_φ` — insert the sentence `φ`.
    Insert(Sentence),
    /// `⊓` — replace the knowledgebase by the singleton holding the
    /// componentwise intersection of its databases.
    Glb,
    /// `⊔` — componentwise union.
    Lub,
    /// `π_{i1,…,ik}` — project every database onto the listed relations.
    Project(Vec<RelId>),
    /// Sequential composition, applied left to right (the first element is
    /// applied first).
    Seq(Vec<Transform>),
}

impl Transform {
    /// `τ_φ` for a sentence.
    pub fn insert(phi: Sentence) -> Transform {
        Transform::Insert(phi)
    }

    /// `π` onto the given relations.
    pub fn project(rels: impl Into<Vec<RelId>>) -> Transform {
        Transform::Project(rels.into())
    }

    /// Sequential composition from parts, canonicalized: an empty sequence
    /// is [`Transform::Identity`] and a singleton is its only element
    /// (recursively, so `Seq([Seq([])])` is `Identity` too) — the
    /// degenerate `Seq` forms that behave as units under evaluation also
    /// *compare* as units.
    pub fn seq(parts: impl Into<Vec<Transform>>) -> Transform {
        let mut parts = parts.into();
        match parts.len() {
            0 => Transform::Identity,
            1 => parts.pop().expect("length checked").canonical(),
            _ => Transform::Seq(parts),
        }
    }

    /// Collapses the degenerate `Seq` forms (`Seq([])` → `Identity`,
    /// `Seq([t])` → `t`, recursively) so composition laws hold
    /// structurally.
    fn canonical(self) -> Transform {
        match self {
            Transform::Seq(parts) => Transform::seq(parts),
            other => other,
        }
    }

    /// Sequential composition `self ; next` (apply `self` first).
    ///
    /// Degenerate sequences are canonicalized first, so `Seq([])` acts as
    /// the unit exactly like `Identity` and `Seq([t])` composes as `t`.
    pub fn then(self, next: Transform) -> Transform {
        match (self.canonical(), next.canonical()) {
            (Transform::Identity, t) | (t, Transform::Identity) => t,
            (Transform::Seq(mut a), Transform::Seq(b)) => {
                a.extend(b);
                Transform::Seq(a)
            }
            (Transform::Seq(mut a), t) => {
                a.push(t);
                Transform::Seq(a)
            }
            (t, Transform::Seq(b)) => {
                let mut a = vec![t];
                a.extend(b);
                Transform::Seq(a)
            }
            (a, b) => Transform::Seq(vec![a, b]),
        }
    }

    /// The steps of the expression in application order.
    pub fn steps(&self) -> Vec<&Transform> {
        match self {
            Transform::Seq(parts) => parts.iter().flat_map(|p| p.steps()).collect(),
            Transform::Identity => Vec::new(),
            other => vec![other],
        }
    }

    /// Number of primitive operators in the expression.
    pub fn len(&self) -> usize {
        self.steps().len()
    }

    /// Whether the expression contains no operators.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of `τ` operators in the expression.
    pub fn insert_count(&self) -> usize {
        self.steps()
            .iter()
            .filter(|t| matches!(t, Transform::Insert(_)))
            .count()
    }

    /// Total size (operators plus sentence sizes), the measure `|θ|` used by
    /// the expression-complexity experiments.
    pub fn size(&self) -> usize {
        self.steps()
            .iter()
            .map(|t| match t {
                Transform::Insert(phi) => 1 + phi.size(),
                _ => 1,
            })
            .sum()
    }

    /// Whether the expression has the shape `(π ∘ b ∘ τ)*` with `b ∈ {⊓, ⊔}`
    /// studied in Section 5 (the class `ST` of singleton-to-singleton
    /// transformations).
    pub fn is_st_shape(&self) -> bool {
        let steps = self.steps();
        if steps.is_empty() || !steps.len().is_multiple_of(3) {
            return false;
        }
        steps.chunks(3).all(|chunk| {
            matches!(chunk[0], Transform::Insert(_))
                && matches!(chunk[1], Transform::Glb | Transform::Lub)
                && matches!(chunk[2], Transform::Project(_))
        })
    }
}

impl fmt::Display for Transform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Transform::Identity => write!(f, "id"),
            Transform::Insert(phi) => write!(f, "τ[{phi}]"),
            Transform::Glb => write!(f, "⊓"),
            Transform::Lub => write!(f, "⊔"),
            Transform::Project(rels) => {
                write!(f, "π[")?;
                for (i, r) in rels.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{r}")?;
                }
                write!(f, "]")
            }
            Transform::Seq(parts) => {
                // written right-to-left, as in the paper
                for (i, p) in parts.iter().rev().enumerate() {
                    if i > 0 {
                        write!(f, " ∘ ")?;
                    }
                    write!(f, "{p}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_logic::builder::*;

    fn sent() -> Sentence {
        Sentence::new(atom(1, [cst(1)])).unwrap()
    }

    #[test]
    fn then_flattens_compositions() {
        let t = Transform::insert(sent())
            .then(Transform::Lub)
            .then(Transform::project([RelId::new(2)]));
        assert_eq!(t.len(), 3);
        assert_eq!(t.insert_count(), 1);
        assert!(t.is_st_shape());
        let tt = t.clone().then(t.clone());
        assert_eq!(tt.len(), 6);
        assert!(tt.is_st_shape());
    }

    #[test]
    fn identity_is_a_unit_for_composition() {
        let t = Transform::insert(sent());
        assert_eq!(Transform::Identity.then(t.clone()), t);
        assert_eq!(t.clone().then(Transform::Identity), t);
        assert!(Transform::Identity.is_empty());
    }

    #[test]
    fn empty_and_singleton_seqs_compose_as_units() {
        // regression: Seq([]) behaves as identity under steps() but used to
        // compare unequal to Identity after composition, breaking the unit
        // laws for the degenerate forms.
        let t = Transform::insert(sent());
        assert_eq!(t.clone().then(Transform::Seq(vec![])), t);
        assert_eq!(Transform::Seq(vec![]).then(t.clone()), t);
        assert_eq!(
            Transform::Seq(vec![]).then(Transform::Seq(vec![])),
            Transform::Identity
        );
        // singleton sequences compose like their only element
        assert_eq!(
            Transform::Seq(vec![t.clone()]).then(Transform::Glb),
            t.clone().then(Transform::Glb)
        );
        assert_eq!(
            Transform::Glb.then(Transform::Seq(vec![t.clone()])),
            Transform::Glb.then(t.clone())
        );
        assert_eq!(
            Transform::Seq(vec![t.clone()]).then(Transform::Seq(vec![])),
            t
        );
    }

    #[test]
    fn seq_constructor_canonicalizes() {
        let t = Transform::insert(sent());
        assert_eq!(Transform::seq(vec![]), Transform::Identity);
        assert_eq!(Transform::seq(vec![t.clone()]), t);
        assert_eq!(
            Transform::seq(vec![t.clone(), Transform::Glb]),
            Transform::Seq(vec![t.clone(), Transform::Glb])
        );
        // degenerate forms collapse through arbitrary nesting depth
        assert_eq!(
            Transform::seq(vec![Transform::Seq(vec![])]),
            Transform::Identity
        );
        assert_eq!(
            Transform::seq(vec![Transform::Seq(vec![Transform::Seq(vec![t.clone()])])]),
            t
        );
        assert_eq!(
            t.clone().then(Transform::Seq(vec![Transform::Seq(vec![])])),
            t
        );
    }

    #[test]
    fn st_shape_requires_the_full_pattern() {
        let only_insert = Transform::insert(sent());
        assert!(!only_insert.is_st_shape());
        let wrong_order = Transform::Glb
            .then(Transform::insert(sent()))
            .then(Transform::project([RelId::new(1)]));
        assert!(!wrong_order.is_st_shape());
    }

    #[test]
    fn size_accounts_for_sentences() {
        let t = Transform::insert(sent()).then(Transform::Glb);
        assert_eq!(t.size(), 1 + sent().size() + 1);
    }

    #[test]
    fn display_is_right_to_left() {
        let t = Transform::insert(sent())
            .then(Transform::Lub)
            .then(Transform::project([RelId::new(2)]));
        let text = t.to_string();
        assert!(text.starts_with("π[R2] ∘ ⊔ ∘ τ["));
    }
}
