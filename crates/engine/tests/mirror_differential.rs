//! Differential proptest for the copy-on-write mirror of
//! [`IndexedRelation`]: random interleavings of `insert` / `remove` /
//! `clear` (with automatic compaction kicking in on delete-heavy prefixes)
//! are replayed against a plain [`Relation`] as the reference, and the
//! mirror-backed snapshots must agree with the reference after every step.
//!
//! This is the test the release-mode desync guard demanded: any mirror
//! maintenance bug — a missed insert, a remove that leaves the tuple
//! behind, a clear or compaction that forgets the mirror — shows up as a
//! snapshot/reference mismatch (or, for count-changing bugs, as a non-zero
//! `mirror_rebuilds` recovery counter).

use kbt_data::{tuple, Relation};
use kbt_engine::IndexedRelation;
use proptest::prelude::*;

/// One scripted operation against both stores.
#[derive(Clone, Copy, Debug)]
enum Op {
    Insert(u32, u32),
    Remove(u32, u32),
    Clear,
    /// Take (and hold) a snapshot here, so later mutations run against an
    /// outstanding copy-on-write reader.
    Snapshot,
}

fn decode(code: (u8, u32, u32)) -> Op {
    let (op, a, b) = code;
    match op {
        // insert-biased so relations actually grow
        0..=3 => Op::Insert(a, b),
        4..=6 => Op::Remove(a, b),
        // rare: a full reset
        7 => Op::Clear,
        _ => Op::Snapshot,
    }
}

fn arb_script() -> impl Strategy<Value = Vec<Op>> {
    // constants in 0..5 so removes genuinely hit existing tuples and
    // delete-heavy stretches push past the tombstone threshold (automatic
    // compaction), the code path most likely to desync a mirror.
    proptest::collection::vec((0u8..9, 0u32..5, 0u32..5), 1..120)
        .prop_map(|codes| codes.into_iter().map(decode).collect())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn mirror_snapshots_track_a_reference_relation(script in arb_script()) {
        let mut indexed = IndexedRelation::new(2);
        // demand an index so maintenance paths touch index buckets too
        indexed.ensure_index(0b01);
        let mut reference = Relation::empty(2);
        // enable the mirror up front: from here on every mutation maintains it
        let _ = indexed.snapshot();
        let mut held: Vec<(Relation, Relation)> = Vec::new();

        for op in script {
            match op {
                Op::Insert(a, b) => {
                    let added = indexed.insert(tuple![a, b]);
                    prop_assert_eq!(added, reference.insert(tuple![a, b]).unwrap());
                }
                Op::Remove(a, b) => {
                    let removed = indexed.remove(&tuple![a, b]);
                    prop_assert_eq!(removed, reference.remove(&tuple![a, b]));
                }
                Op::Clear => {
                    indexed.clear();
                    reference = Relation::empty(2);
                }
                Op::Snapshot => {
                    held.push((indexed.snapshot(), reference.clone()));
                }
            }
            // the mirror-backed views agree with the reference at every step
            prop_assert_eq!(indexed.len(), reference.len());
            prop_assert_eq!(&indexed.snapshot(), &reference);
            prop_assert_eq!(&indexed.to_relation(), &reference);
        }

        // no desync was ever detected (the recovery path stayed cold) …
        prop_assert_eq!(indexed.mirror_rebuilds(), 0);
        // … and outstanding snapshots were frozen, not disturbed, by the
        // mutations that followed them (copy-on-write isolation).
        for (snap, expected) in held {
            prop_assert_eq!(snap, expected);
        }
    }
}
