//! Hashing for the flat fact storage: a vendored FxHash-style mixer and the
//! packed/hashed row-key scheme used by [`crate::index::IndexedRelation`].
//!
//! # Key scheme
//!
//! Join probes and membership checks key their hash maps on a single `u64`
//! derived from the bound column values, so the inner loops never build a
//! boxed key:
//!
//! * **≤ 2 key columns** — the `u32` constants are *packed* exactly
//!   (`c0 << 32 | c1`, one column is just its index, zero columns is `0`),
//!   so the key is injective and bucket hits need no further verification;
//! * **≥ 3 key columns** — the constants are folded through the FxHash
//!   mixer; collisions are possible, so bucket candidates are verified
//!   against the row arena before they count as matches.
//!
//! Every map is keyed consistently (the column count is fixed per binding
//! mask), so packed and hashed keys never mix within one map.

use std::hash::{BuildHasherDefault, Hasher};

use kbt_data::Const;

/// The multiplier of the FxHash mixing step (the same constant rustc's
/// `FxHasher` uses; vendored because the container has no crates.io access).
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[inline]
fn mix(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED)
}

/// A fast, non-cryptographic word-at-a-time hasher for the engine's internal
/// maps (keys are trusted `u64`s / dense ids, never attacker-controlled).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.hash = mix(self.hash, u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.hash = mix(self.hash, u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = mix(self.hash, n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.hash = mix(self.hash, n as u64);
    }
}

/// `BuildHasher` plugging [`FxHasher`] into `HashMap`.
pub type FxBuild = BuildHasherDefault<FxHasher>;

/// Maximum number of key columns packed exactly into the `u64`; keys over
/// more columns fall back to hash-with-verify.
pub const PACK_MAX: usize = 2;

/// Whether a key over `cols` columns is exact (packed, collision-free) —
/// `true` means bucket candidates need no row verification.
#[inline]
pub const fn key_is_exact(cols: usize) -> bool {
    cols <= PACK_MAX
}

/// Incremental accumulator for a row key: feed the key column values in
/// ascending column order, then [`KeyAcc::finish`].  Packs exactly for
/// ≤ [`PACK_MAX`] columns, hashes beyond (see the module docs).
#[derive(Clone, Copy, Debug)]
pub struct KeyAcc {
    exact: bool,
    key: u64,
}

impl KeyAcc {
    /// Starts a key over `cols` columns.
    #[inline]
    pub fn new(cols: usize) -> Self {
        KeyAcc {
            exact: key_is_exact(cols),
            key: 0,
        }
    }

    /// Feeds the next key column value.
    #[inline]
    pub fn push(&mut self, c: Const) {
        let w = u64::from(c.index());
        self.key = if self.exact {
            self.key << 32 | w
        } else {
            mix(self.key, w)
        };
    }

    /// The finished `u64` key.
    #[inline]
    pub fn finish(self) -> u64 {
        self.key
    }
}

/// One-shot key over a full row (ascending column order).
#[inline]
pub fn row_key(row: &[Const]) -> u64 {
    let mut acc = KeyAcc::new(row.len());
    for &c in row {
        acc.push(c);
    }
    acc.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn packed_keys_are_injective() {
        let k = |a: u32, b: u32| row_key(&[Const::new(a), Const::new(b)]);
        assert_ne!(k(1, 2), k(2, 1));
        assert_ne!(k(0, 1), k(1, 0));
        assert_eq!(k(3, 4), row_key(&[Const::new(3), Const::new(4)]));
        assert_eq!(row_key(&[]), 0);
        assert_eq!(row_key(&[Const::new(7)]), 7);
    }

    #[test]
    fn wide_keys_hash_consistently() {
        let row = [Const::new(1), Const::new(2), Const::new(3)];
        assert!(!key_is_exact(row.len()));
        assert_eq!(row_key(&row), row_key(&row));
        let mut acc = KeyAcc::new(3);
        for &c in &row {
            acc.push(c);
        }
        assert_eq!(acc.finish(), row_key(&row));
    }

    #[test]
    fn hasher_mixes_words() {
        use std::hash::Hasher as _;
        let mut a = FxHasher::default();
        a.write_u64(42);
        let mut b = FxHasher::default();
        b.write_u64(43);
        assert_ne!(a.finish(), b.finish());
    }
}
