//! The fixpoint driver: naive and delta-aware semi-naive evaluation over
//! indexed storage, sequential or parallel.
//!
//! The caller supplies pre-stratified programs (`kbt-datalog` stratifies and
//! lowers); each stratum is run to its least fixpoint before the next one
//! starts, so negated literals — which stratification confines to relations
//! of earlier strata or the EDB — always read fully computed relations.
//!
//! ## Row-slice evaluation
//!
//! The interpreter never materialises tuples while joining: scans and probes
//! hand out `&[Const]` row slices borrowed straight from the storage's row
//! arenas, probe keys are single `u64`s accumulated in registers (see
//! [`crate::fx`]), and instantiated head facts go into a per-plan scratch
//! buffer that the pending-set sink copies out of.  The inner join loops
//! perform **zero heap allocations per probe**.
//!
//! ## Parallel rounds
//!
//! Within one fixpoint round every (rule, plan) pair reads the storage and
//! writes only to a pending-facts buffer, so rounds are embarrassingly
//! parallel.  [`EngineOptions::threads`] > 1 fans a round out over the
//! `kbt-par` pool:
//!
//! 1. the round's plans are decomposed into `RoundTask`s — a plan led by a
//!    scan contributes one task per *chunk* of the scanned relation's tuple
//!    range, any other plan is a single task;
//! 2. every task derives into a **private** `Pending` buffer with private
//!    [`EngineStats`] counters — workers share nothing mutable;
//! 3. the buffers are merged **in stable task order** (rule index first,
//!    chunk offset second) and each relation's pending rows are sorted and
//!    deduplicated once, and the per-worker counters are summed.
//!
//! Because the canonicalised pending set is an order-insensitive union and
//! commit inserts it in sorted order, the storage contents, the resulting
//! [`Database`] *and every statistics counter* are byte-identical to the
//! sequential path — `threads = 1` runs the exact sequential code, and the
//! differential tests hold the two paths equal.  Rounds whose driving
//! relations are small run sequentially even at higher widths (fan-out
//! overhead would dominate); that cutoff cannot be observed in the results
//! either.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use kbt_data::relation::{sort_dedup_rows, RowIter};
use kbt_data::{Const, Database, RelId};
use kbt_par::ThreadPool;

use crate::fx::{key_is_exact, KeyAcc};
use crate::index::IndexedRelation;
use crate::ir::{Program, Term};
use crate::plan::{JoinPlan, PlannedRule, Source, Step};
use crate::stats::EngineStats;
use crate::storage::IndexStorage;
use crate::Result;

/// How the fixpoint is computed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// Recompute every rule against the full storage each round.  Still uses
    /// index probes within a round; used as a cross-check and for measuring
    /// what semi-naive evaluation saves.
    Naive,
    /// Delta-aware semi-naive: after the seeding round, only rule variants
    /// driven by the previous round's delta run.
    #[default]
    SemiNaive,
}

/// Options for one [`evaluate_with`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineOptions {
    /// How the fixpoint is computed.
    pub mode: EvalMode,
    /// Evaluation width: `0` uses the process default
    /// ([`kbt_par::default_threads`] — the `KBT_THREADS` environment
    /// variable, else the machine's available parallelism), `1` is the exact
    /// sequential path, anything larger fans the rounds out over the
    /// `kbt-par` pool.  Results and statistics are identical at every width.
    pub threads: usize,
}

impl EngineOptions {
    /// Options with the given width and the default (semi-naive) mode.
    pub fn threads(threads: usize) -> Self {
        EngineOptions {
            threads,
            ..EngineOptions::default()
        }
    }
}

/// Computes the least fixpoint of the stratified program over `edb`.
///
/// Every relation mentioned by any stratum is materialised (empty if absent
/// from `edb`); the result contains the EDB unchanged plus the derived
/// facts.  Runs at the process-default width (see [`EngineOptions::threads`];
/// use [`evaluate_with`] for explicit control).
pub fn evaluate(
    strata: &[Program],
    edb: &Database,
    mode: EvalMode,
) -> Result<(Database, EngineStats)> {
    evaluate_with(strata, edb, EngineOptions { mode, threads: 0 })
}

/// [`evaluate`] with explicit [`EngineOptions`].
pub fn evaluate_with(
    strata: &[Program],
    edb: &Database,
    options: EngineOptions,
) -> Result<(Database, EngineStats)> {
    let metrics = crate::metrics::metrics();
    let _eval_span = metrics.eval_ns.span();
    let width = kbt_par::resolve_threads(options.threads);
    let mut storage = IndexStorage::from_database(edb);
    for program in strata {
        for (rel, arity) in program.relation_arities() {
            storage.ensure_relation(rel, arity)?;
        }
    }

    let mut stats = EngineStats::default();
    for program in strata {
        stats.strata += 1;
        let planned = plan_stratum(program, &mut storage, &program.idb_relations());
        match options.mode {
            EvalMode::Naive => eval_stratum_naive(&planned, &mut storage, &mut stats, width),
            EvalMode::SemiNaive => {
                eval_stratum_semi_naive(&planned, &mut storage, &mut stats, width)
            }
        }
    }
    metrics.evals_total.inc();
    metrics.absorb_stats(&stats);
    Ok((storage.to_database(), stats))
}

/// Plans one stratum against the current storage and demands the indexes
/// the plans need: the planner is fed the relation cardinalities known at
/// this point so greedy ties are broken towards smaller relations, and
/// `eligible` names the relations that get delta-scan variants (the
/// stratum's IDB for one-shot evaluation; every positive body relation for
/// the incremental session, whose extensional relations change too).
pub(crate) fn plan_stratum(
    program: &Program,
    storage: &mut IndexStorage,
    eligible: &BTreeSet<RelId>,
) -> Vec<PlannedRule> {
    let sizes: BTreeMap<RelId, usize> = program
        .relation_arities()
        .keys()
        .map(|&rel| (rel, storage.relation_len(rel)))
        .collect();
    let planned: Vec<PlannedRule> = program
        .rules
        .iter()
        .map(|r| PlannedRule::plan_sized(r, eligible, &sizes))
        .collect();
    for rule in &planned {
        for (rel, mask) in rule.demanded_indexes() {
            storage.ensure_index(rel, mask);
        }
    }
    planned
}

/// An unsorted bag of derived head rows for one relation: an arity-strided
/// buffer that is canonicalised (sorted, deduplicated) once per round
/// instead of paying a tree insertion per derivation.
#[derive(Clone, Debug)]
pub(crate) struct RowSet {
    arity: usize,
    rows: Vec<Const>,
    count: usize,
}

impl RowSet {
    pub(crate) fn new(arity: usize) -> Self {
        RowSet {
            arity,
            rows: Vec::new(),
            count: 0,
        }
    }

    pub(crate) fn arity(&self) -> usize {
        self.arity
    }

    pub(crate) fn push(&mut self, row: &[Const]) {
        debug_assert_eq!(row.len(), self.arity);
        self.rows.extend_from_slice(row);
        self.count += 1;
    }

    /// Appends another bag (same relation, so same arity).
    pub(crate) fn absorb(&mut self, other: RowSet) {
        debug_assert_eq!(self.arity, other.arity);
        self.rows.extend_from_slice(&other.rows);
        self.count += other.count;
    }

    /// Canonicalises the bag into a sorted, duplicate-free run.
    pub(crate) fn sort_dedup(&mut self) {
        if self.arity == 0 {
            self.count = self.count.min(1);
            return;
        }
        let kept = sort_dedup_rows(&mut self.rows, self.arity);
        self.rows.truncate(kept * self.arity);
        self.count = kept;
    }

    /// Iterates the rows (canonical order once [`Self::sort_dedup`] ran).
    pub(crate) fn iter(&self) -> RowIter<'_> {
        RowIter::over(&self.rows, self.arity, self.count)
    }
}

/// Derived-but-uncommitted head facts per relation.  As returned by
/// [`run_round_with`] the per-relation row sets are canonical (sorted,
/// deduplicated) — entries exist only for relations with at least one row.
pub(crate) type Pending = BTreeMap<RelId, RowSet>;
pub(crate) type Deltas = BTreeMap<RelId, IndexedRelation>;

/// Minimum number of driving tuples in a round before it is fanned out;
/// below this, coordination overhead dominates and the round runs
/// sequentially (with identical results and counters — see module docs).
const PAR_ROUND_THRESHOLD: usize = 256;

/// Minimum tuples per chunk of a driving scan (fed to
/// [`kbt_par::chunk_size`], which supplies the chunks-per-worker policy).
const PAR_MIN_CHUNK: usize = 64;

/// One unit of parallel work within a round: a plan, optionally restricted
/// to a slice of its driving scan.
struct RoundTask<'a> {
    rule: &'a PlannedRule,
    plan: &'a JoinPlan,
    /// Tuple-slot range of the driving scan; `None` runs the whole plan.
    range: Option<Range<u32>>,
}

/// Decomposes a round's plans into tasks; the second component is the total
/// number of live driving tuples (the fan-out worthwhileness measure).
fn round_tasks<'a>(
    plans: &[(&'a PlannedRule, &'a JoinPlan)],
    storage: &IndexStorage,
    deltas: &Deltas,
    width: usize,
) -> (Vec<RoundTask<'a>>, usize) {
    let mut tasks = Vec::new();
    let mut driving = 0usize;
    for &(rule, plan) in plans {
        let Some((Step::Scan { rel, source, .. }, _)) = plan.split_driving_scan() else {
            driving += 1;
            tasks.push(RoundTask {
                rule,
                plan,
                range: None,
            });
            continue;
        };
        let relation = match source {
            Source::Full => storage.relation(*rel),
            Source::Delta => deltas.get(rel),
        };
        let Some(relation) = relation else {
            continue; // nothing to scan: the plan derives nothing
        };
        let slots = relation.slot_count();
        if slots == 0 {
            continue;
        }
        driving += relation.len();
        let chunk = kbt_par::chunk_size(slots as usize, width, PAR_MIN_CHUNK) as u32;
        let mut start = 0u32;
        while start < slots {
            let end = slots.min(start + chunk);
            tasks.push(RoundTask {
                rule,
                plan,
                range: Some(start..end),
            });
            start = end;
        }
    }
    (tasks, driving)
}

/// Per-plan scratch space, allocated once per plan (or task) and reused by
/// every derivation so the join loops themselves never touch the heap: the
/// register file, one undo list per step depth, and the head-fact buffer.
struct Scratch {
    regs: Vec<Option<Const>>,
    undos: Vec<Vec<usize>>,
    head: Vec<Const>,
}

impl Scratch {
    fn for_rule(rule: &PlannedRule, steps: usize) -> Self {
        Scratch {
            regs: vec![None; rule.slots],
            undos: vec![Vec::new(); steps],
            head: Vec::with_capacity(rule.head.terms.len()),
        }
    }
}

/// Runs one task, feeding instantiated head rows to `sink`.
fn run_task(
    task: &RoundTask<'_>,
    storage: &IndexStorage,
    deltas: &Deltas,
    stats: &mut EngineStats,
    sink: &mut dyn FnMut(&[Const]),
) {
    let Some(range) = task.range.clone() else {
        run_plan(task.rule, task.plan, storage, deltas, stats, sink);
        return;
    };
    let Some((Step::Scan { rel, source, cols }, rest)) = task.plan.split_driving_scan() else {
        unreachable!("ranged tasks are built from scan-driven plans only");
    };
    let relation = match source {
        Source::Full => storage.relation(*rel),
        Source::Delta => deltas.get(rel),
    };
    let Some(relation) = relation else {
        return;
    };
    let mut scratch = Scratch::for_rule(task.rule, task.plan.steps.len());
    let (undo, rest_undos) = scratch
        .undos
        .split_first_mut()
        .expect("plans have at least the driving step");
    for id in range {
        if !relation.is_live(id) {
            continue; // tombstone from an incremental removal
        }
        stats.tuples_scanned += 1;
        if match_cols(relation.row(id), cols, &mut scratch.regs, undo) {
            run_steps(
                task.rule,
                rest,
                storage,
                deltas,
                &mut scratch.regs,
                rest_undos,
                &mut scratch.head,
                stats,
                sink,
            );
        }
        for s in undo.drain(..) {
            scratch.regs[s] = None;
        }
    }
}

/// Runs one round — every listed plan — and returns the pending head facts
/// that pass `keep` (called with the head relation and the candidate row).
///
/// `width > 1` distributes the round's tasks over the global pool; private
/// per-task buffers are merged in task order, so the result and the counters
/// added to `stats` are identical at every width.
pub(crate) fn run_round_with<K>(
    plans: &[(&PlannedRule, &JoinPlan)],
    storage: &IndexStorage,
    deltas: &Deltas,
    stats: &mut EngineStats,
    width: usize,
    keep: &K,
) -> Pending
where
    K: Fn(RelId, &[Const]) -> bool + Sync,
{
    let sequential = |stats: &mut EngineStats| {
        let mut pending = Pending::new();
        for &(rule, plan) in plans {
            let head_rel = rule.head.rel;
            let head_arity = rule.head.terms.len();
            run_plan(rule, plan, storage, deltas, stats, &mut |row| {
                if keep(head_rel, row) {
                    pending
                        .entry(head_rel)
                        .or_insert_with(|| RowSet::new(head_arity))
                        .push(row);
                }
            });
        }
        pending
    };
    let mut pending = 'collected: {
        if width <= 1 {
            break 'collected sequential(stats);
        }
        let (tasks, driving) = round_tasks(plans, storage, deltas, width);
        if driving < PAR_ROUND_THRESHOLD {
            break 'collected sequential(stats);
        }
        let results = ThreadPool::global().map(width, &tasks, |_, task| {
            let mut pending = Pending::new();
            let mut local = EngineStats::default();
            let head_rel = task.rule.head.rel;
            let head_arity = task.rule.head.terms.len();
            run_task(task, storage, deltas, &mut local, &mut |row| {
                if keep(head_rel, row) {
                    pending
                        .entry(head_rel)
                        .or_insert_with(|| RowSet::new(head_arity))
                        .push(row);
                }
            });
            (pending, local)
        });
        // Deterministic merge: task order is rule order then chunk offset,
        // and the canonicalisation below erases even that.
        let mut pending = Pending::new();
        for (part, local) in results {
            stats.absorb(&local);
            for (rel, rows) in part {
                match pending.entry(rel) {
                    std::collections::btree_map::Entry::Vacant(v) => {
                        v.insert(rows);
                    }
                    std::collections::btree_map::Entry::Occupied(mut o) => {
                        o.get_mut().absorb(rows);
                    }
                }
            }
        }
        pending
    };
    for rows in pending.values_mut() {
        rows.sort_dedup();
    }
    pending
}

/// [`run_round_with`] specialised to the fixpoint filter: keep facts not yet
/// in storage.
fn run_round(
    plans: &[(&PlannedRule, &JoinPlan)],
    storage: &IndexStorage,
    deltas: &Deltas,
    stats: &mut EngineStats,
    width: usize,
) -> Pending {
    run_round_with(plans, storage, deltas, stats, width, &|rel, row| {
        !storage.holds_row(rel, row)
    })
}

pub(crate) fn eval_stratum_naive(
    rules: &[PlannedRule],
    storage: &mut IndexStorage,
    stats: &mut EngineStats,
    width: usize,
) {
    let no_deltas = Deltas::new();
    let plans: Vec<(&PlannedRule, &JoinPlan)> = rules.iter().map(|r| (r, &r.full)).collect();
    let round_ns = &crate::metrics::metrics().round_ns;
    loop {
        stats.iterations += 1;
        let _round_span = round_ns.span();
        let pending = run_round(&plans, storage, &no_deltas, stats, width);
        if pending.is_empty() {
            break;
        }
        commit(storage, pending, stats);
    }
}

/// The delta-variant plans whose driving delta is non-empty this round.
pub(crate) fn delta_plans<'a>(
    rules: &'a [PlannedRule],
    delta: &Deltas,
) -> Vec<(&'a PlannedRule, &'a JoinPlan)> {
    rules
        .iter()
        .flat_map(|rule| {
            rule.deltas
                .iter()
                .filter(|(driver, _)| delta.get(driver).is_some_and(|d| !d.is_empty()))
                .map(move |(_, plan)| (rule, plan))
        })
        .collect()
}

pub(crate) fn eval_stratum_semi_naive(
    rules: &[PlannedRule],
    storage: &mut IndexStorage,
    stats: &mut EngineStats,
    width: usize,
) {
    let round_ns = &crate::metrics::metrics().round_ns;
    // Seeding round: one full evaluation populates the first delta.
    stats.iterations += 1;
    let no_deltas = Deltas::new();
    let plans: Vec<(&PlannedRule, &JoinPlan)> = rules.iter().map(|r| (r, &r.full)).collect();
    let seed_span = round_ns.span();
    let pending = run_round(&plans, storage, &no_deltas, stats, width);
    let mut delta = commit(storage, pending, stats);
    drop(seed_span);

    while !delta.is_empty() {
        stats.iterations += 1;
        let _round_span = round_ns.span();
        let plans = delta_plans(rules, &delta);
        let pending = run_round(&plans, storage, &delta, stats, width);
        delta = commit(storage, pending, stats);
    }
}

/// Inserts the pending facts, returning the ones that were actually new as
/// the next delta (in indexed form, ready to be scanned as drivers).  The
/// pending rows are canonical, so each delta relation is populated in
/// sorted order.
pub(crate) fn commit(
    storage: &mut IndexStorage,
    pending: Pending,
    stats: &mut EngineStats,
) -> Deltas {
    let mut delta = Deltas::new();
    for (rel, rows) in &pending {
        let arity = rows.arity();
        for row in rows.iter() {
            if storage.insert_row(*rel, row) {
                stats.derived_facts += 1;
                delta
                    .entry(*rel)
                    .or_insert_with(|| IndexedRelation::new(arity))
                    .insert_row(row);
            }
        }
    }
    delta
}

/// Runs one join plan, feeding every instantiated head row to `sink`
/// (the incremental session's *rederivation* check needs pre-bound
/// registers and early exit instead, which its dedicated `satisfiable`
/// walker handles).
pub(crate) fn run_plan(
    rule: &PlannedRule,
    plan: &JoinPlan,
    storage: &IndexStorage,
    deltas: &Deltas,
    stats: &mut EngineStats,
    sink: &mut dyn FnMut(&[Const]),
) {
    let mut scratch = Scratch::for_rule(rule, plan.steps.len());
    run_steps(
        rule,
        &plan.steps,
        storage,
        deltas,
        &mut scratch.regs,
        &mut scratch.undos,
        &mut scratch.head,
        stats,
        sink,
    );
}

pub(crate) fn resolve(term: Term, regs: &[Option<Const>]) -> Const {
    match term {
        Term::Const(c) => c,
        Term::Slot(s) => regs[s].expect("slot bound by an earlier step (range restriction)"),
    }
}

/// Matches a row against per-column actions, binding unbound slots.
/// Returns `false` (after recording partial bindings in `undo`) on mismatch.
pub(crate) fn match_cols(
    row: &[Const],
    cols: &[(usize, Term)],
    regs: &mut [Option<Const>],
    undo: &mut Vec<usize>,
) -> bool {
    for &(col, term) in cols {
        let value = row[col];
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Slot(s) => match regs[s] {
                Some(existing) => {
                    if existing != value {
                        return false;
                    }
                }
                None => {
                    regs[s] = Some(value);
                    undo.push(s);
                }
            },
        }
    }
    true
}

/// Whether `row` matches the resolved key terms on `mask`'s bound columns —
/// the verification pass behind hashed (> 2 column) probe keys, whose
/// buckets may contain false positives.
#[inline]
pub(crate) fn bound_cols_match(
    row: &[Const],
    mask: u32,
    key: &[Term],
    regs: &[Option<Const>],
) -> bool {
    let mut m = mask;
    let mut k = 0;
    while m != 0 {
        let col = m.trailing_zeros() as usize;
        if row[col] != resolve(key[k], regs) {
            return false;
        }
        k += 1;
        m &= m - 1;
    }
    true
}

/// Whether `relation` holds the fully determined row `terms` resolves to —
/// one membership-bucket probe, no tuple materialisation.  The terms cover
/// every column in ascending order, so the accumulated key is exactly the
/// stored row key.
pub(crate) fn member_holds(
    relation: &IndexedRelation,
    terms: &[Term],
    regs: &[Option<Const>],
) -> bool {
    debug_assert_eq!(terms.len(), relation.arity());
    let mut acc = KeyAcc::new(terms.len());
    for &t in terms {
        acc.push(resolve(t, regs));
    }
    let bucket = relation.member_bucket(acc.finish());
    if key_is_exact(terms.len()) {
        // packed keys are injective over the full row
        !bucket.is_empty()
    } else {
        bucket.iter().any(|&id| {
            relation
                .row(id)
                .iter()
                .zip(terms)
                .all(|(&v, &t)| v == resolve(t, regs))
        })
    }
}

/// [`member_holds`] for a determined `(column, term)` cover (ascending
/// column order, every column present) — the incremental session's
/// determined-scan degradation.
pub(crate) fn member_holds_cols(
    relation: &IndexedRelation,
    cols: &[(usize, Term)],
    regs: &[Option<Const>],
) -> bool {
    debug_assert_eq!(cols.len(), relation.arity());
    let mut acc = KeyAcc::new(cols.len());
    for &(_, t) in cols {
        acc.push(resolve(t, regs));
    }
    let bucket = relation.member_bucket(acc.finish());
    if key_is_exact(cols.len()) {
        !bucket.is_empty()
    } else {
        bucket.iter().any(|&id| {
            let row = relation.row(id);
            cols.iter().all(|&(col, t)| row[col] == resolve(t, regs))
        })
    }
}

/// Recursive step interpreter behind [`run_plan`]: `undos` carries one
/// reusable undo list per remaining step, split level by level alongside
/// `steps` (capacity sticks across derivations, so binding bookkeeping
/// stops allocating after the first few matches).
#[allow(clippy::too_many_arguments)]
fn run_steps(
    rule: &PlannedRule,
    steps: &[Step],
    storage: &IndexStorage,
    deltas: &Deltas,
    regs: &mut Vec<Option<Const>>,
    undos: &mut [Vec<usize>],
    head: &mut Vec<Const>,
    stats: &mut EngineStats,
    sink: &mut dyn FnMut(&[Const]),
) {
    let Some((step, rest)) = steps.split_first() else {
        head.clear();
        for &t in &rule.head.terms {
            head.push(resolve(t, regs));
        }
        sink(head);
        return;
    };
    let (undo, rest_undos) = undos
        .split_first_mut()
        .expect("one undo list per plan step");
    match step {
        Step::Scan { rel, source, cols } => {
            let relation = match source {
                Source::Full => storage.relation(*rel),
                Source::Delta => deltas.get(rel),
            };
            let Some(relation) = relation else {
                return;
            };
            for row in relation.iter() {
                stats.tuples_scanned += 1;
                if match_cols(row, cols, regs, undo) {
                    run_steps(
                        rule, rest, storage, deltas, regs, rest_undos, head, stats, sink,
                    );
                }
                for s in undo.drain(..) {
                    regs[s] = None;
                }
            }
        }
        Step::Probe {
            rel,
            mask,
            key,
            cols,
        } => {
            let Some(relation) = storage.relation(*rel) else {
                return;
            };
            let mut acc = KeyAcc::new(key.len());
            for &t in key {
                acc.push(resolve(t, regs));
            }
            stats.index_probes += 1;
            let exact = key_is_exact(key.len());
            for &id in relation.probe_bucket(*mask, acc.finish()) {
                if !relation.is_live(id) {
                    continue; // tombstone from an incremental removal
                }
                let row = relation.row(id);
                if !exact && !bound_cols_match(row, *mask, key, regs) {
                    continue; // hash collision in a wide-key bucket
                }
                stats.tuples_scanned += 1;
                if match_cols(row, cols, regs, undo) {
                    run_steps(
                        rule, rest, storage, deltas, regs, rest_undos, head, stats, sink,
                    );
                }
                for s in undo.drain(..) {
                    regs[s] = None;
                }
            }
        }
        Step::Member { rel, terms } => {
            stats.index_probes += 1;
            let holds = storage
                .relation(*rel)
                .is_some_and(|r| member_holds(r, terms, regs));
            if holds {
                run_steps(
                    rule, rest, storage, deltas, regs, rest_undos, head, stats, sink,
                );
            }
        }
        Step::NegCheck { rel, terms } => {
            stats.index_probes += 1;
            let holds = storage
                .relation(*rel)
                .is_some_and(|r| member_holds(r, terms, regs));
            if !holds {
                run_steps(
                    rule, rest, storage, deltas, regs, rest_undos, head, stats, sink,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Atom, Literal, Rule};
    use kbt_data::{tuple, DatabaseBuilder};

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn s(i: usize) -> Term {
        Term::Slot(i)
    }

    /// path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
    fn tc_program() -> Program {
        Program::new(vec![
            Rule::new(
                Atom::new(r(2), vec![s(0), s(1)]),
                vec![Literal::positive(Atom::new(r(1), vec![s(0), s(1)]))],
            )
            .unwrap(),
            Rule::new(
                Atom::new(r(2), vec![s(0), s(2)]),
                vec![
                    Literal::positive(Atom::new(r(2), vec![s(0), s(1)])),
                    Literal::positive(Atom::new(r(1), vec![s(1), s(2)])),
                ],
            )
            .unwrap(),
        ])
    }

    fn chain_db(n: u32) -> Database {
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for i in 1..n {
            b = b.fact(r(1), [i, i + 1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn transitive_closure_both_modes() {
        let edb = chain_db(6);
        for mode in [EvalMode::Naive, EvalMode::SemiNaive] {
            let (fix, stats) = evaluate(&[tc_program()], &edb, mode).unwrap();
            assert_eq!(fix.relation(r(2)).unwrap().len(), 15, "mode {mode:?}");
            assert!(fix.holds(r(2), &tuple![1, 6]));
            assert!(!fix.holds(r(2), &tuple![6, 1]));
            assert_eq!(stats.derived_facts, 15);
            assert_eq!(stats.strata, 1);
            assert!(stats.index_probes > 0);
        }
    }

    #[test]
    fn modes_agree_and_semi_naive_scans_less() {
        let edb = chain_db(14);
        let (naive, naive_stats) = evaluate(&[tc_program()], &edb, EvalMode::Naive).unwrap();
        let (semi, semi_stats) = evaluate(&[tc_program()], &edb, EvalMode::SemiNaive).unwrap();
        assert_eq!(naive, semi);
        assert_eq!(naive_stats.derived_facts, semi_stats.derived_facts);
        assert!(
            semi_stats.tuples_scanned < naive_stats.tuples_scanned,
            "semi-naive ({}) must scan fewer tuples than naive ({})",
            semi_stats.tuples_scanned,
            naive_stats.tuples_scanned
        );
    }

    #[test]
    fn stratified_negation_runs_after_the_lower_stratum() {
        // Stratum 0: reach = TC(edge).  Stratum 1: unreach(x,y) :- node(x),
        // node(y), ~reach(x,y).
        let stratum0 = Program::new(vec![
            Rule::new(
                Atom::new(r(2), vec![s(0), s(1)]),
                vec![Literal::positive(Atom::new(r(1), vec![s(0), s(1)]))],
            )
            .unwrap(),
            Rule::new(
                Atom::new(r(2), vec![s(0), s(2)]),
                vec![
                    Literal::positive(Atom::new(r(2), vec![s(0), s(1)])),
                    Literal::positive(Atom::new(r(1), vec![s(1), s(2)])),
                ],
            )
            .unwrap(),
        ]);
        let stratum1 = Program::new(vec![Rule::new(
            Atom::new(r(4), vec![s(0), s(1)]),
            vec![
                Literal::positive(Atom::new(r(3), vec![s(0)])),
                Literal::positive(Atom::new(r(3), vec![s(1)])),
                Literal::negative(Atom::new(r(2), vec![s(0), s(1)])),
            ],
        )
        .unwrap()]);

        let mut b = DatabaseBuilder::new().relation(r(1), 2).relation(r(3), 1);
        for i in 1..=3u32 {
            b = b.fact(r(3), [i]);
        }
        b = b.fact(r(1), [1u32, 2]).fact(r(1), [2u32, 3]);
        let edb = b.build().unwrap();

        for mode in [EvalMode::Naive, EvalMode::SemiNaive] {
            let (fix, stats) = evaluate(&[stratum0.clone(), stratum1.clone()], &edb, mode).unwrap();
            assert_eq!(fix.relation(r(4)).unwrap().len(), 6, "mode {mode:?}");
            assert!(fix.holds(r(4), &tuple![3, 1]));
            assert!(!fix.holds(r(4), &tuple![1, 3]));
            assert_eq!(stats.strata, 2);
        }
    }

    #[test]
    fn fact_rules_and_constants() {
        // p(x) :- edge(1, x).   q(7).
        let program = Program::new(vec![
            Rule::new(
                Atom::new(r(3), vec![s(0)]),
                vec![Literal::positive(Atom::new(
                    r(1),
                    vec![Term::Const(Const::new(1)), s(0)],
                ))],
            )
            .unwrap(),
            Rule::new(Atom::new(r(4), vec![Term::Const(Const::new(7))]), vec![]).unwrap(),
        ]);
        let edb = chain_db(4);
        let (fix, _) = evaluate(&[program], &edb, EvalMode::SemiNaive).unwrap();
        assert!(fix.holds(r(3), &tuple![2]));
        assert!(!fix.holds(r(3), &tuple![3]));
        assert!(fix.holds(r(4), &tuple![7]));
    }

    #[test]
    fn repeated_variables_within_an_atom() {
        // loops(x) :- edge(x, x).
        let program = Program::new(vec![Rule::new(
            Atom::new(r(3), vec![s(0)]),
            vec![Literal::positive(Atom::new(r(1), vec![s(0), s(0)]))],
        )
        .unwrap()]);
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        b = b
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 2])
            .fact(r(1), [3u32, 3]);
        let edb = b.build().unwrap();
        let (fix, _) = evaluate(&[program], &edb, EvalMode::SemiNaive).unwrap();
        assert_eq!(fix.relation(r(3)).unwrap().len(), 2);
        assert!(fix.holds(r(3), &tuple![2]));
        assert!(fix.holds(r(3), &tuple![3]));
    }

    /// Wide rows exercise the hashed (> 2 column) key paths: membership,
    /// negation and probes must all verify bucket candidates.
    #[test]
    fn wide_relations_join_through_hashed_keys() {
        // w(a,b,c,d) :- e3(a,b,c), f(c,d), ~g3(a,b,d).
        let program = Program::new(vec![Rule::new(
            Atom::new(r(5), vec![s(0), s(1), s(2), s(3)]),
            vec![
                Literal::positive(Atom::new(r(1), vec![s(0), s(1), s(2)])),
                Literal::positive(Atom::new(r(2), vec![s(2), s(3)])),
                Literal::negative(Atom::new(r(3), vec![s(0), s(1), s(3)])),
            ],
        )
        .unwrap()]);
        let edb = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2, 3])
            .fact(r(1), [4u32, 5, 6])
            .fact(r(2), [3u32, 7])
            .fact(r(2), [6u32, 8])
            .fact(r(3), [4u32, 5, 8])
            .build()
            .unwrap();
        for mode in [EvalMode::Naive, EvalMode::SemiNaive] {
            let (fix, _) = evaluate(std::slice::from_ref(&program), &edb, mode).unwrap();
            assert_eq!(fix.relation(r(5)).unwrap().len(), 1, "mode {mode:?}");
            assert!(fix.holds(r(5), &tuple![1, 2, 3, 7]));
            assert!(!fix.holds(r(5), &tuple![4, 5, 6, 8]), "negated by g3");
        }
    }

    /// `chains` disjoint chains of `len` edges each — enough driving tuples
    /// per round to clear the parallel fan-out threshold.
    fn braid_db(chains: u32, len: u32) -> Database {
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for c in 0..chains {
            let base = c * (len + 2) + 1;
            for i in 0..len {
                b = b.fact(r(1), [base + i, base + i + 1]);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn parallel_widths_match_sequential_bytes_and_stats() {
        let edb = braid_db(40, 16);
        for mode in [EvalMode::Naive, EvalMode::SemiNaive] {
            let (seq, seq_stats) =
                evaluate_with(&[tc_program()], &edb, EngineOptions { mode, threads: 1 }).unwrap();
            for threads in [2, 4] {
                let (par, par_stats) =
                    evaluate_with(&[tc_program()], &edb, EngineOptions { mode, threads }).unwrap();
                assert_eq!(seq, par, "fixpoint diverges at width {threads} ({mode:?})");
                assert_eq!(
                    seq_stats, par_stats,
                    "stats diverge at width {threads} ({mode:?})"
                );
            }
        }
    }

    #[test]
    fn small_rounds_stay_sequential_but_identical() {
        // far below the fan-out threshold: the cutoff must not be observable
        let edb = chain_db(8);
        let (seq, seq_stats) = evaluate_with(
            &[tc_program()],
            &edb,
            EngineOptions {
                mode: EvalMode::SemiNaive,
                threads: 1,
            },
        )
        .unwrap();
        let (par, par_stats) = evaluate_with(
            &[tc_program()],
            &edb,
            EngineOptions {
                mode: EvalMode::SemiNaive,
                threads: 4,
            },
        )
        .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq_stats, par_stats);
    }

    #[test]
    fn empty_edb_yields_empty_idb() {
        let edb = DatabaseBuilder::new().relation(r(1), 2).build().unwrap();
        let (fix, stats) = evaluate(&[tc_program()], &edb, EvalMode::SemiNaive).unwrap();
        assert!(fix.relation(r(2)).unwrap().is_empty());
        assert_eq!(stats.derived_facts, 0);
    }

    #[test]
    fn cross_product_rules_still_work() {
        // pair(x,y) :- a(x), b(y) — no shared variables, pure product.
        let program = Program::new(vec![Rule::new(
            Atom::new(r(3), vec![s(0), s(1)]),
            vec![
                Literal::positive(Atom::new(r(1), vec![s(0)])),
                Literal::positive(Atom::new(r(2), vec![s(1)])),
            ],
        )
        .unwrap()]);
        let edb = DatabaseBuilder::new()
            .fact(r(1), [1u32])
            .fact(r(1), [2u32])
            .fact(r(2), [8u32])
            .build()
            .unwrap();
        let (fix, _) = evaluate(&[program], &edb, EvalMode::SemiNaive).unwrap();
        assert_eq!(fix.relation(r(3)).unwrap().len(), 2);
        assert!(fix.holds(r(3), &tuple![2, 8]));
    }
}
