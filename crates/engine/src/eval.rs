//! The fixpoint driver: naive and delta-aware semi-naive evaluation over
//! indexed storage.
//!
//! The caller supplies pre-stratified programs (`kbt-datalog` stratifies and
//! lowers); each stratum is run to its least fixpoint before the next one
//! starts, so negated literals — which stratification confines to relations
//! of earlier strata or the EDB — always read fully computed relations.

use std::collections::{BTreeMap, BTreeSet};

use kbt_data::{Const, Database, RelId, Tuple};

use crate::index::IndexedRelation;
use crate::ir::{Program, Term};
use crate::plan::{JoinPlan, PlannedRule, Source, Step};
use crate::stats::EngineStats;
use crate::storage::IndexStorage;
use crate::Result;

/// How the fixpoint is computed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// Recompute every rule against the full storage each round.  Still uses
    /// index probes within a round; used as a cross-check and for measuring
    /// what semi-naive evaluation saves.
    Naive,
    /// Delta-aware semi-naive: after the seeding round, only rule variants
    /// driven by the previous round's delta run.
    #[default]
    SemiNaive,
}

/// Computes the least fixpoint of the stratified program over `edb`.
///
/// Every relation mentioned by any stratum is materialised (empty if absent
/// from `edb`); the result contains the EDB unchanged plus the derived
/// facts.
pub fn evaluate(
    strata: &[Program],
    edb: &Database,
    mode: EvalMode,
) -> Result<(Database, EngineStats)> {
    let mut storage = IndexStorage::from_database(edb);
    for program in strata {
        for (rel, arity) in program.relation_arities() {
            storage.ensure_relation(rel, arity)?;
        }
    }

    let mut stats = EngineStats::default();
    for program in strata {
        stats.strata += 1;
        let planned = plan_stratum(program, &mut storage, &program.idb_relations());
        match mode {
            EvalMode::Naive => eval_stratum_naive(&planned, &mut storage, &mut stats),
            EvalMode::SemiNaive => eval_stratum_semi_naive(&planned, &mut storage, &mut stats),
        }
    }
    Ok((storage.to_database(), stats))
}

/// Plans one stratum against the current storage and demands the indexes
/// the plans need: the planner is fed the relation cardinalities known at
/// this point so greedy ties are broken towards smaller relations, and
/// `eligible` names the relations that get delta-scan variants (the
/// stratum's IDB for one-shot evaluation; every positive body relation for
/// the incremental session, whose extensional relations change too).
pub(crate) fn plan_stratum(
    program: &Program,
    storage: &mut IndexStorage,
    eligible: &BTreeSet<RelId>,
) -> Vec<PlannedRule> {
    let sizes: BTreeMap<RelId, usize> = program
        .relation_arities()
        .keys()
        .map(|&rel| (rel, storage.relation_len(rel)))
        .collect();
    let planned: Vec<PlannedRule> = program
        .rules
        .iter()
        .map(|r| PlannedRule::plan_sized(r, eligible, &sizes))
        .collect();
    for rule in &planned {
        for (rel, mask) in rule.demanded_indexes() {
            storage.ensure_index(rel, mask);
        }
    }
    planned
}

pub(crate) type Pending = BTreeMap<RelId, BTreeSet<Tuple>>;
pub(crate) type Deltas = BTreeMap<RelId, IndexedRelation>;

pub(crate) fn eval_stratum_naive(
    rules: &[PlannedRule],
    storage: &mut IndexStorage,
    stats: &mut EngineStats,
) {
    let no_deltas = Deltas::new();
    loop {
        stats.iterations += 1;
        let mut pending = Pending::new();
        for rule in rules {
            derive(rule, &rule.full, storage, &no_deltas, &mut pending, stats);
        }
        if pending.is_empty() {
            break;
        }
        commit(storage, pending, stats);
    }
}

pub(crate) fn eval_stratum_semi_naive(
    rules: &[PlannedRule],
    storage: &mut IndexStorage,
    stats: &mut EngineStats,
) {
    // Seeding round: one full evaluation populates the first delta.
    stats.iterations += 1;
    let no_deltas = Deltas::new();
    let mut pending = Pending::new();
    for rule in rules {
        derive(rule, &rule.full, storage, &no_deltas, &mut pending, stats);
    }
    let mut delta = commit(storage, pending, stats);

    while !delta.is_empty() {
        stats.iterations += 1;
        let mut pending = Pending::new();
        for rule in rules {
            for (driver, plan) in &rule.deltas {
                if delta.get(driver).is_some_and(|d| !d.is_empty()) {
                    derive(rule, plan, storage, &delta, &mut pending, stats);
                }
            }
        }
        delta = commit(storage, pending, stats);
    }
}

/// Inserts the pending facts, returning the ones that were actually new as
/// the next delta (in indexed form, ready to be scanned as drivers).
pub(crate) fn commit(
    storage: &mut IndexStorage,
    pending: Pending,
    stats: &mut EngineStats,
) -> Deltas {
    let mut delta = Deltas::new();
    for (rel, facts) in pending {
        for fact in facts {
            let arity = fact.arity();
            if storage.insert_fact(rel, fact.clone()) {
                stats.derived_facts += 1;
                delta
                    .entry(rel)
                    .or_insert_with(|| IndexedRelation::new(arity))
                    .insert(fact);
            }
        }
    }
    delta
}

/// Runs one join plan, adding derived head facts (not yet in storage) to
/// `pending`.
pub(crate) fn derive(
    rule: &PlannedRule,
    plan: &JoinPlan,
    storage: &IndexStorage,
    deltas: &Deltas,
    pending: &mut Pending,
    stats: &mut EngineStats,
) {
    run_plan(rule, plan, storage, deltas, stats, &mut |fact| {
        if !storage.holds(rule.head.rel, &fact) {
            pending.entry(rule.head.rel).or_default().insert(fact);
        }
    });
}

/// Runs one join plan, feeding every instantiated head fact to `sink`
/// (besides [`derive`], the incremental session's overdeletion phase
/// supplies its own sink; its *rederivation* check needs pre-bound
/// registers and early exit, which its dedicated `satisfiable` walker
/// handles).
pub(crate) fn run_plan(
    rule: &PlannedRule,
    plan: &JoinPlan,
    storage: &IndexStorage,
    deltas: &Deltas,
    stats: &mut EngineStats,
    sink: &mut dyn FnMut(Tuple),
) {
    let mut regs: Vec<Option<Const>> = vec![None; rule.slots];
    run_steps(rule, &plan.steps, storage, deltas, &mut regs, stats, sink);
}

pub(crate) fn resolve(term: Term, regs: &[Option<Const>]) -> Const {
    match term {
        Term::Const(c) => c,
        Term::Slot(s) => regs[s].expect("slot bound by an earlier step (range restriction)"),
    }
}

pub(crate) fn instantiate(terms: &[Term], regs: &[Option<Const>]) -> Tuple {
    Tuple::new(terms.iter().map(|&t| resolve(t, regs)).collect::<Vec<_>>())
}

/// Matches `tuple` against per-column actions, binding unbound slots.
/// Returns `false` (after recording partial bindings in `undo`) on mismatch.
pub(crate) fn match_cols(
    tuple: &Tuple,
    cols: &[(usize, Term)],
    regs: &mut [Option<Const>],
    undo: &mut Vec<usize>,
) -> bool {
    for &(col, term) in cols {
        let value = tuple.col(col);
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Slot(s) => match regs[s] {
                Some(existing) => {
                    if existing != value {
                        return false;
                    }
                }
                None => {
                    regs[s] = Some(value);
                    undo.push(s);
                }
            },
        }
    }
    true
}

/// Recursive step interpreter behind [`run_plan`].
fn run_steps(
    rule: &PlannedRule,
    steps: &[Step],
    storage: &IndexStorage,
    deltas: &Deltas,
    regs: &mut Vec<Option<Const>>,
    stats: &mut EngineStats,
    sink: &mut dyn FnMut(Tuple),
) {
    let Some((step, rest)) = steps.split_first() else {
        sink(instantiate(&rule.head.terms, regs));
        return;
    };
    match step {
        Step::Scan { rel, source, cols } => {
            let relation = match source {
                Source::Full => storage.relation(*rel),
                Source::Delta => deltas.get(rel),
            };
            let Some(relation) = relation else {
                return;
            };
            let mut undo = Vec::new();
            for tuple in relation.iter() {
                stats.tuples_scanned += 1;
                if match_cols(tuple, cols, regs, &mut undo) {
                    run_steps(rule, rest, storage, deltas, regs, stats, sink);
                }
                for s in undo.drain(..) {
                    regs[s] = None;
                }
            }
        }
        Step::Probe {
            rel,
            mask,
            key,
            cols,
        } => {
            let Some(relation) = storage.relation(*rel) else {
                return;
            };
            let key: Vec<Const> = key.iter().map(|&t| resolve(t, regs)).collect();
            stats.index_probes += 1;
            let mut undo = Vec::new();
            for &id in relation.probe(*mask, &key) {
                if !relation.is_live(id) {
                    continue; // tombstone from an incremental removal
                }
                stats.tuples_scanned += 1;
                if match_cols(relation.tuple(id), cols, regs, &mut undo) {
                    run_steps(rule, rest, storage, deltas, regs, stats, sink);
                }
                for s in undo.drain(..) {
                    regs[s] = None;
                }
            }
        }
        Step::Member { rel, terms } => {
            stats.index_probes += 1;
            let fact = instantiate(terms, regs);
            if storage.holds(*rel, &fact) {
                run_steps(rule, rest, storage, deltas, regs, stats, sink);
            }
        }
        Step::NegCheck { rel, terms } => {
            stats.index_probes += 1;
            let fact = instantiate(terms, regs);
            if !storage.holds(*rel, &fact) {
                run_steps(rule, rest, storage, deltas, regs, stats, sink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Atom, Literal, Rule};
    use kbt_data::{tuple, DatabaseBuilder};

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn s(i: usize) -> Term {
        Term::Slot(i)
    }

    /// path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
    fn tc_program() -> Program {
        Program::new(vec![
            Rule::new(
                Atom::new(r(2), vec![s(0), s(1)]),
                vec![Literal::positive(Atom::new(r(1), vec![s(0), s(1)]))],
            )
            .unwrap(),
            Rule::new(
                Atom::new(r(2), vec![s(0), s(2)]),
                vec![
                    Literal::positive(Atom::new(r(2), vec![s(0), s(1)])),
                    Literal::positive(Atom::new(r(1), vec![s(1), s(2)])),
                ],
            )
            .unwrap(),
        ])
    }

    fn chain_db(n: u32) -> Database {
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for i in 1..n {
            b = b.fact(r(1), [i, i + 1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn transitive_closure_both_modes() {
        let edb = chain_db(6);
        for mode in [EvalMode::Naive, EvalMode::SemiNaive] {
            let (fix, stats) = evaluate(&[tc_program()], &edb, mode).unwrap();
            assert_eq!(fix.relation(r(2)).unwrap().len(), 15, "mode {mode:?}");
            assert!(fix.holds(r(2), &tuple![1, 6]));
            assert!(!fix.holds(r(2), &tuple![6, 1]));
            assert_eq!(stats.derived_facts, 15);
            assert_eq!(stats.strata, 1);
            assert!(stats.index_probes > 0);
        }
    }

    #[test]
    fn modes_agree_and_semi_naive_scans_less() {
        let edb = chain_db(14);
        let (naive, naive_stats) = evaluate(&[tc_program()], &edb, EvalMode::Naive).unwrap();
        let (semi, semi_stats) = evaluate(&[tc_program()], &edb, EvalMode::SemiNaive).unwrap();
        assert_eq!(naive, semi);
        assert_eq!(naive_stats.derived_facts, semi_stats.derived_facts);
        assert!(
            semi_stats.tuples_scanned < naive_stats.tuples_scanned,
            "semi-naive ({}) must scan fewer tuples than naive ({})",
            semi_stats.tuples_scanned,
            naive_stats.tuples_scanned
        );
    }

    #[test]
    fn stratified_negation_runs_after_the_lower_stratum() {
        // Stratum 0: reach = TC(edge).  Stratum 1: unreach(x,y) :- node(x),
        // node(y), ~reach(x,y).
        let stratum0 = Program::new(vec![
            Rule::new(
                Atom::new(r(2), vec![s(0), s(1)]),
                vec![Literal::positive(Atom::new(r(1), vec![s(0), s(1)]))],
            )
            .unwrap(),
            Rule::new(
                Atom::new(r(2), vec![s(0), s(2)]),
                vec![
                    Literal::positive(Atom::new(r(2), vec![s(0), s(1)])),
                    Literal::positive(Atom::new(r(1), vec![s(1), s(2)])),
                ],
            )
            .unwrap(),
        ]);
        let stratum1 = Program::new(vec![Rule::new(
            Atom::new(r(4), vec![s(0), s(1)]),
            vec![
                Literal::positive(Atom::new(r(3), vec![s(0)])),
                Literal::positive(Atom::new(r(3), vec![s(1)])),
                Literal::negative(Atom::new(r(2), vec![s(0), s(1)])),
            ],
        )
        .unwrap()]);

        let mut b = DatabaseBuilder::new().relation(r(1), 2).relation(r(3), 1);
        for i in 1..=3u32 {
            b = b.fact(r(3), [i]);
        }
        b = b.fact(r(1), [1u32, 2]).fact(r(1), [2u32, 3]);
        let edb = b.build().unwrap();

        for mode in [EvalMode::Naive, EvalMode::SemiNaive] {
            let (fix, stats) = evaluate(&[stratum0.clone(), stratum1.clone()], &edb, mode).unwrap();
            assert_eq!(fix.relation(r(4)).unwrap().len(), 6, "mode {mode:?}");
            assert!(fix.holds(r(4), &tuple![3, 1]));
            assert!(!fix.holds(r(4), &tuple![1, 3]));
            assert_eq!(stats.strata, 2);
        }
    }

    #[test]
    fn fact_rules_and_constants() {
        // p(x) :- edge(1, x).   q(7).
        let program = Program::new(vec![
            Rule::new(
                Atom::new(r(3), vec![s(0)]),
                vec![Literal::positive(Atom::new(
                    r(1),
                    vec![Term::Const(Const::new(1)), s(0)],
                ))],
            )
            .unwrap(),
            Rule::new(Atom::new(r(4), vec![Term::Const(Const::new(7))]), vec![]).unwrap(),
        ]);
        let edb = chain_db(4);
        let (fix, _) = evaluate(&[program], &edb, EvalMode::SemiNaive).unwrap();
        assert!(fix.holds(r(3), &tuple![2]));
        assert!(!fix.holds(r(3), &tuple![3]));
        assert!(fix.holds(r(4), &tuple![7]));
    }

    #[test]
    fn repeated_variables_within_an_atom() {
        // loops(x) :- edge(x, x).
        let program = Program::new(vec![Rule::new(
            Atom::new(r(3), vec![s(0)]),
            vec![Literal::positive(Atom::new(r(1), vec![s(0), s(0)]))],
        )
        .unwrap()]);
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        b = b
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 2])
            .fact(r(1), [3u32, 3]);
        let edb = b.build().unwrap();
        let (fix, _) = evaluate(&[program], &edb, EvalMode::SemiNaive).unwrap();
        assert_eq!(fix.relation(r(3)).unwrap().len(), 2);
        assert!(fix.holds(r(3), &tuple![2]));
        assert!(fix.holds(r(3), &tuple![3]));
    }

    #[test]
    fn empty_edb_yields_empty_idb() {
        let edb = DatabaseBuilder::new().relation(r(1), 2).build().unwrap();
        let (fix, stats) = evaluate(&[tc_program()], &edb, EvalMode::SemiNaive).unwrap();
        assert!(fix.relation(r(2)).unwrap().is_empty());
        assert_eq!(stats.derived_facts, 0);
    }

    #[test]
    fn cross_product_rules_still_work() {
        // pair(x,y) :- a(x), b(y) — no shared variables, pure product.
        let program = Program::new(vec![Rule::new(
            Atom::new(r(3), vec![s(0), s(1)]),
            vec![
                Literal::positive(Atom::new(r(1), vec![s(0)])),
                Literal::positive(Atom::new(r(2), vec![s(1)])),
            ],
        )
        .unwrap()]);
        let edb = DatabaseBuilder::new()
            .fact(r(1), [1u32])
            .fact(r(1), [2u32])
            .fact(r(2), [8u32])
            .build()
            .unwrap();
        let (fix, _) = evaluate(&[program], &edb, EvalMode::SemiNaive).unwrap();
        assert_eq!(fix.relation(r(3)).unwrap().len(), 2);
        assert!(fix.holds(r(3), &tuple![2, 8]));
    }
}
