//! The fixpoint driver: naive and delta-aware semi-naive evaluation over
//! indexed storage, sequential or parallel.
//!
//! The caller supplies pre-stratified programs (`kbt-datalog` stratifies and
//! lowers); each stratum is run to its least fixpoint before the next one
//! starts, so negated literals — which stratification confines to relations
//! of earlier strata or the EDB — always read fully computed relations.
//!
//! ## Parallel rounds
//!
//! Within one fixpoint round every (rule, plan) pair reads the storage and
//! writes only to a pending-facts buffer, so rounds are embarrassingly
//! parallel.  [`EngineOptions::threads`] > 1 fans a round out over the
//! `kbt-par` pool:
//!
//! 1. the round's plans are decomposed into [`RoundTask`]s — a plan led by a
//!    scan contributes one task per *chunk* of the scanned relation's tuple
//!    range, any other plan is a single task;
//! 2. every task derives into a **private** [`Pending`] buffer with private
//!    [`EngineStats`] counters — workers share nothing mutable;
//! 3. the buffers are merged **in stable task order** (rule index first,
//!    chunk offset second) into one sorted pending set, and the per-worker
//!    counters are summed.
//!
//! Because the merged pending set is an order-insensitive union and commit
//! inserts it in sorted order, the storage contents, the resulting
//! [`Database`] *and every statistics counter* are byte-identical to the
//! sequential path — `threads = 1` runs the exact sequential code, and the
//! differential tests hold the two paths equal.  Rounds whose driving
//! relations are small run sequentially even at higher widths (fan-out
//! overhead would dominate); that cutoff cannot be observed in the results
//! either.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use kbt_data::{Const, Database, RelId, Tuple};
use kbt_par::ThreadPool;

use crate::index::IndexedRelation;
use crate::ir::{Program, Term};
use crate::plan::{JoinPlan, PlannedRule, Source, Step};
use crate::stats::EngineStats;
use crate::storage::IndexStorage;
use crate::Result;

/// How the fixpoint is computed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalMode {
    /// Recompute every rule against the full storage each round.  Still uses
    /// index probes within a round; used as a cross-check and for measuring
    /// what semi-naive evaluation saves.
    Naive,
    /// Delta-aware semi-naive: after the seeding round, only rule variants
    /// driven by the previous round's delta run.
    #[default]
    SemiNaive,
}

/// Options for one [`evaluate_with`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineOptions {
    /// How the fixpoint is computed.
    pub mode: EvalMode,
    /// Evaluation width: `0` uses the process default
    /// ([`kbt_par::default_threads`] — the `KBT_THREADS` environment
    /// variable, else the machine's available parallelism), `1` is the exact
    /// sequential path, anything larger fans the rounds out over the
    /// `kbt-par` pool.  Results and statistics are identical at every width.
    pub threads: usize,
}

impl EngineOptions {
    /// Options with the given width and the default (semi-naive) mode.
    pub fn threads(threads: usize) -> Self {
        EngineOptions {
            threads,
            ..EngineOptions::default()
        }
    }
}

/// Computes the least fixpoint of the stratified program over `edb`.
///
/// Every relation mentioned by any stratum is materialised (empty if absent
/// from `edb`); the result contains the EDB unchanged plus the derived
/// facts.  Runs at the process-default width (see [`EngineOptions::threads`];
/// use [`evaluate_with`] for explicit control).
pub fn evaluate(
    strata: &[Program],
    edb: &Database,
    mode: EvalMode,
) -> Result<(Database, EngineStats)> {
    evaluate_with(strata, edb, EngineOptions { mode, threads: 0 })
}

/// [`evaluate`] with explicit [`EngineOptions`].
pub fn evaluate_with(
    strata: &[Program],
    edb: &Database,
    options: EngineOptions,
) -> Result<(Database, EngineStats)> {
    let metrics = crate::metrics::metrics();
    let _eval_span = metrics.eval_ns.span();
    let width = kbt_par::resolve_threads(options.threads);
    let mut storage = IndexStorage::from_database(edb);
    for program in strata {
        for (rel, arity) in program.relation_arities() {
            storage.ensure_relation(rel, arity)?;
        }
    }

    let mut stats = EngineStats::default();
    for program in strata {
        stats.strata += 1;
        let planned = plan_stratum(program, &mut storage, &program.idb_relations());
        match options.mode {
            EvalMode::Naive => eval_stratum_naive(&planned, &mut storage, &mut stats, width),
            EvalMode::SemiNaive => {
                eval_stratum_semi_naive(&planned, &mut storage, &mut stats, width)
            }
        }
    }
    metrics.evals_total.inc();
    metrics.absorb_stats(&stats);
    Ok((storage.to_database(), stats))
}

/// Plans one stratum against the current storage and demands the indexes
/// the plans need: the planner is fed the relation cardinalities known at
/// this point so greedy ties are broken towards smaller relations, and
/// `eligible` names the relations that get delta-scan variants (the
/// stratum's IDB for one-shot evaluation; every positive body relation for
/// the incremental session, whose extensional relations change too).
pub(crate) fn plan_stratum(
    program: &Program,
    storage: &mut IndexStorage,
    eligible: &BTreeSet<RelId>,
) -> Vec<PlannedRule> {
    let sizes: BTreeMap<RelId, usize> = program
        .relation_arities()
        .keys()
        .map(|&rel| (rel, storage.relation_len(rel)))
        .collect();
    let planned: Vec<PlannedRule> = program
        .rules
        .iter()
        .map(|r| PlannedRule::plan_sized(r, eligible, &sizes))
        .collect();
    for rule in &planned {
        for (rel, mask) in rule.demanded_indexes() {
            storage.ensure_index(rel, mask);
        }
    }
    planned
}

pub(crate) type Pending = BTreeMap<RelId, BTreeSet<Tuple>>;
pub(crate) type Deltas = BTreeMap<RelId, IndexedRelation>;

/// Minimum number of driving tuples in a round before it is fanned out;
/// below this, coordination overhead dominates and the round runs
/// sequentially (with identical results and counters — see module docs).
const PAR_ROUND_THRESHOLD: usize = 256;

/// Minimum tuples per chunk of a driving scan (fed to
/// [`kbt_par::chunk_size`], which supplies the chunks-per-worker policy).
const PAR_MIN_CHUNK: usize = 64;

/// One unit of parallel work within a round: a plan, optionally restricted
/// to a slice of its driving scan.
struct RoundTask<'a> {
    rule: &'a PlannedRule,
    plan: &'a JoinPlan,
    /// Tuple-slot range of the driving scan; `None` runs the whole plan.
    range: Option<Range<u32>>,
}

/// Decomposes a round's plans into tasks; the second component is the total
/// number of live driving tuples (the fan-out worthwhileness measure).
fn round_tasks<'a>(
    plans: &[(&'a PlannedRule, &'a JoinPlan)],
    storage: &IndexStorage,
    deltas: &Deltas,
    width: usize,
) -> (Vec<RoundTask<'a>>, usize) {
    let mut tasks = Vec::new();
    let mut driving = 0usize;
    for &(rule, plan) in plans {
        let Some((Step::Scan { rel, source, .. }, _)) = plan.split_driving_scan() else {
            driving += 1;
            tasks.push(RoundTask {
                rule,
                plan,
                range: None,
            });
            continue;
        };
        let relation = match source {
            Source::Full => storage.relation(*rel),
            Source::Delta => deltas.get(rel),
        };
        let Some(relation) = relation else {
            continue; // nothing to scan: the plan derives nothing
        };
        let slots = relation.slot_count();
        if slots == 0 {
            continue;
        }
        driving += relation.len();
        let chunk = kbt_par::chunk_size(slots as usize, width, PAR_MIN_CHUNK) as u32;
        let mut start = 0u32;
        while start < slots {
            let end = slots.min(start + chunk);
            tasks.push(RoundTask {
                rule,
                plan,
                range: Some(start..end),
            });
            start = end;
        }
    }
    (tasks, driving)
}

/// Runs one task, feeding instantiated head facts to `sink`.
fn run_task(
    task: &RoundTask<'_>,
    storage: &IndexStorage,
    deltas: &Deltas,
    stats: &mut EngineStats,
    sink: &mut dyn FnMut(Tuple),
) {
    let Some(range) = task.range.clone() else {
        run_plan(task.rule, task.plan, storage, deltas, stats, sink);
        return;
    };
    let Some((Step::Scan { rel, source, cols }, rest)) = task.plan.split_driving_scan() else {
        unreachable!("ranged tasks are built from scan-driven plans only");
    };
    let relation = match source {
        Source::Full => storage.relation(*rel),
        Source::Delta => deltas.get(rel),
    };
    let Some(relation) = relation else {
        return;
    };
    let mut regs: Vec<Option<Const>> = vec![None; task.rule.slots];
    let mut undo = Vec::new();
    for id in range {
        if !relation.is_live(id) {
            continue; // tombstone from an incremental removal
        }
        stats.tuples_scanned += 1;
        if match_cols(relation.tuple(id), cols, &mut regs, &mut undo) {
            run_steps(task.rule, rest, storage, deltas, &mut regs, stats, sink);
        }
        for s in undo.drain(..) {
            regs[s] = None;
        }
    }
}

/// Runs one round — every listed plan — and returns the pending head facts
/// that pass `keep` (called with the head relation and the candidate fact).
///
/// `width > 1` distributes the round's tasks over the global pool; private
/// per-task buffers are merged in task order, so the result and the counters
/// added to `stats` are identical at every width.
pub(crate) fn run_round_with<K>(
    plans: &[(&PlannedRule, &JoinPlan)],
    storage: &IndexStorage,
    deltas: &Deltas,
    stats: &mut EngineStats,
    width: usize,
    keep: &K,
) -> Pending
where
    K: Fn(RelId, &Tuple) -> bool + Sync,
{
    let sequential = |stats: &mut EngineStats| {
        let mut pending = Pending::new();
        for &(rule, plan) in plans {
            let head_rel = rule.head.rel;
            run_plan(rule, plan, storage, deltas, stats, &mut |fact| {
                if keep(head_rel, &fact) {
                    pending.entry(head_rel).or_default().insert(fact);
                }
            });
        }
        pending
    };
    if width <= 1 {
        return sequential(stats);
    }
    let (tasks, driving) = round_tasks(plans, storage, deltas, width);
    if driving < PAR_ROUND_THRESHOLD {
        return sequential(stats);
    }
    let results = ThreadPool::global().map(width, &tasks, |_, task| {
        let mut pending = Pending::new();
        let mut local = EngineStats::default();
        let head_rel = task.rule.head.rel;
        run_task(task, storage, deltas, &mut local, &mut |fact| {
            if keep(head_rel, &fact) {
                pending.entry(head_rel).or_default().insert(fact);
            }
        });
        (pending, local)
    });
    // Deterministic merge: task order is rule order then chunk offset, and
    // the per-relation sets union into one sorted pending set.
    let mut pending = Pending::new();
    for (part, local) in results {
        stats.absorb(&local);
        for (rel, facts) in part {
            pending.entry(rel).or_default().extend(facts);
        }
    }
    pending
}

/// [`run_round_with`] specialised to the fixpoint filter: keep facts not yet
/// in storage.
fn run_round(
    plans: &[(&PlannedRule, &JoinPlan)],
    storage: &IndexStorage,
    deltas: &Deltas,
    stats: &mut EngineStats,
    width: usize,
) -> Pending {
    run_round_with(plans, storage, deltas, stats, width, &|rel, fact| {
        !storage.holds(rel, fact)
    })
}

pub(crate) fn eval_stratum_naive(
    rules: &[PlannedRule],
    storage: &mut IndexStorage,
    stats: &mut EngineStats,
    width: usize,
) {
    let no_deltas = Deltas::new();
    let plans: Vec<(&PlannedRule, &JoinPlan)> = rules.iter().map(|r| (r, &r.full)).collect();
    let round_ns = &crate::metrics::metrics().round_ns;
    loop {
        stats.iterations += 1;
        let _round_span = round_ns.span();
        let pending = run_round(&plans, storage, &no_deltas, stats, width);
        if pending.is_empty() {
            break;
        }
        commit(storage, pending, stats);
    }
}

/// The delta-variant plans whose driving delta is non-empty this round.
pub(crate) fn delta_plans<'a>(
    rules: &'a [PlannedRule],
    delta: &Deltas,
) -> Vec<(&'a PlannedRule, &'a JoinPlan)> {
    rules
        .iter()
        .flat_map(|rule| {
            rule.deltas
                .iter()
                .filter(|(driver, _)| delta.get(driver).is_some_and(|d| !d.is_empty()))
                .map(move |(_, plan)| (rule, plan))
        })
        .collect()
}

pub(crate) fn eval_stratum_semi_naive(
    rules: &[PlannedRule],
    storage: &mut IndexStorage,
    stats: &mut EngineStats,
    width: usize,
) {
    let round_ns = &crate::metrics::metrics().round_ns;
    // Seeding round: one full evaluation populates the first delta.
    stats.iterations += 1;
    let no_deltas = Deltas::new();
    let plans: Vec<(&PlannedRule, &JoinPlan)> = rules.iter().map(|r| (r, &r.full)).collect();
    let seed_span = round_ns.span();
    let pending = run_round(&plans, storage, &no_deltas, stats, width);
    let mut delta = commit(storage, pending, stats);
    drop(seed_span);

    while !delta.is_empty() {
        stats.iterations += 1;
        let _round_span = round_ns.span();
        let plans = delta_plans(rules, &delta);
        let pending = run_round(&plans, storage, &delta, stats, width);
        delta = commit(storage, pending, stats);
    }
}

/// Inserts the pending facts, returning the ones that were actually new as
/// the next delta (in indexed form, ready to be scanned as drivers).
pub(crate) fn commit(
    storage: &mut IndexStorage,
    pending: Pending,
    stats: &mut EngineStats,
) -> Deltas {
    let mut delta = Deltas::new();
    for (rel, facts) in pending {
        for fact in facts {
            let arity = fact.arity();
            if storage.insert_fact(rel, fact.clone()) {
                stats.derived_facts += 1;
                delta
                    .entry(rel)
                    .or_insert_with(|| IndexedRelation::new(arity))
                    .insert(fact);
            }
        }
    }
    delta
}

/// Runs one join plan, feeding every instantiated head fact to `sink`
/// (the incremental session's *rederivation* check needs pre-bound
/// registers and early exit instead, which its dedicated `satisfiable`
/// walker handles).
pub(crate) fn run_plan(
    rule: &PlannedRule,
    plan: &JoinPlan,
    storage: &IndexStorage,
    deltas: &Deltas,
    stats: &mut EngineStats,
    sink: &mut dyn FnMut(Tuple),
) {
    let mut regs: Vec<Option<Const>> = vec![None; rule.slots];
    run_steps(rule, &plan.steps, storage, deltas, &mut regs, stats, sink);
}

pub(crate) fn resolve(term: Term, regs: &[Option<Const>]) -> Const {
    match term {
        Term::Const(c) => c,
        Term::Slot(s) => regs[s].expect("slot bound by an earlier step (range restriction)"),
    }
}

pub(crate) fn instantiate(terms: &[Term], regs: &[Option<Const>]) -> Tuple {
    Tuple::new(terms.iter().map(|&t| resolve(t, regs)).collect::<Vec<_>>())
}

/// Matches `tuple` against per-column actions, binding unbound slots.
/// Returns `false` (after recording partial bindings in `undo`) on mismatch.
pub(crate) fn match_cols(
    tuple: &Tuple,
    cols: &[(usize, Term)],
    regs: &mut [Option<Const>],
    undo: &mut Vec<usize>,
) -> bool {
    for &(col, term) in cols {
        let value = tuple.col(col);
        match term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Slot(s) => match regs[s] {
                Some(existing) => {
                    if existing != value {
                        return false;
                    }
                }
                None => {
                    regs[s] = Some(value);
                    undo.push(s);
                }
            },
        }
    }
    true
}

/// Recursive step interpreter behind [`run_plan`].
fn run_steps(
    rule: &PlannedRule,
    steps: &[Step],
    storage: &IndexStorage,
    deltas: &Deltas,
    regs: &mut Vec<Option<Const>>,
    stats: &mut EngineStats,
    sink: &mut dyn FnMut(Tuple),
) {
    let Some((step, rest)) = steps.split_first() else {
        sink(instantiate(&rule.head.terms, regs));
        return;
    };
    match step {
        Step::Scan { rel, source, cols } => {
            let relation = match source {
                Source::Full => storage.relation(*rel),
                Source::Delta => deltas.get(rel),
            };
            let Some(relation) = relation else {
                return;
            };
            let mut undo = Vec::new();
            for tuple in relation.iter() {
                stats.tuples_scanned += 1;
                if match_cols(tuple, cols, regs, &mut undo) {
                    run_steps(rule, rest, storage, deltas, regs, stats, sink);
                }
                for s in undo.drain(..) {
                    regs[s] = None;
                }
            }
        }
        Step::Probe {
            rel,
            mask,
            key,
            cols,
        } => {
            let Some(relation) = storage.relation(*rel) else {
                return;
            };
            let key: Vec<Const> = key.iter().map(|&t| resolve(t, regs)).collect();
            stats.index_probes += 1;
            let mut undo = Vec::new();
            for &id in relation.probe(*mask, &key) {
                if !relation.is_live(id) {
                    continue; // tombstone from an incremental removal
                }
                stats.tuples_scanned += 1;
                if match_cols(relation.tuple(id), cols, regs, &mut undo) {
                    run_steps(rule, rest, storage, deltas, regs, stats, sink);
                }
                for s in undo.drain(..) {
                    regs[s] = None;
                }
            }
        }
        Step::Member { rel, terms } => {
            stats.index_probes += 1;
            let fact = instantiate(terms, regs);
            if storage.holds(*rel, &fact) {
                run_steps(rule, rest, storage, deltas, regs, stats, sink);
            }
        }
        Step::NegCheck { rel, terms } => {
            stats.index_probes += 1;
            let fact = instantiate(terms, regs);
            if !storage.holds(*rel, &fact) {
                run_steps(rule, rest, storage, deltas, regs, stats, sink);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Atom, Literal, Rule};
    use kbt_data::{tuple, DatabaseBuilder};

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn s(i: usize) -> Term {
        Term::Slot(i)
    }

    /// path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
    fn tc_program() -> Program {
        Program::new(vec![
            Rule::new(
                Atom::new(r(2), vec![s(0), s(1)]),
                vec![Literal::positive(Atom::new(r(1), vec![s(0), s(1)]))],
            )
            .unwrap(),
            Rule::new(
                Atom::new(r(2), vec![s(0), s(2)]),
                vec![
                    Literal::positive(Atom::new(r(2), vec![s(0), s(1)])),
                    Literal::positive(Atom::new(r(1), vec![s(1), s(2)])),
                ],
            )
            .unwrap(),
        ])
    }

    fn chain_db(n: u32) -> Database {
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for i in 1..n {
            b = b.fact(r(1), [i, i + 1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn transitive_closure_both_modes() {
        let edb = chain_db(6);
        for mode in [EvalMode::Naive, EvalMode::SemiNaive] {
            let (fix, stats) = evaluate(&[tc_program()], &edb, mode).unwrap();
            assert_eq!(fix.relation(r(2)).unwrap().len(), 15, "mode {mode:?}");
            assert!(fix.holds(r(2), &tuple![1, 6]));
            assert!(!fix.holds(r(2), &tuple![6, 1]));
            assert_eq!(stats.derived_facts, 15);
            assert_eq!(stats.strata, 1);
            assert!(stats.index_probes > 0);
        }
    }

    #[test]
    fn modes_agree_and_semi_naive_scans_less() {
        let edb = chain_db(14);
        let (naive, naive_stats) = evaluate(&[tc_program()], &edb, EvalMode::Naive).unwrap();
        let (semi, semi_stats) = evaluate(&[tc_program()], &edb, EvalMode::SemiNaive).unwrap();
        assert_eq!(naive, semi);
        assert_eq!(naive_stats.derived_facts, semi_stats.derived_facts);
        assert!(
            semi_stats.tuples_scanned < naive_stats.tuples_scanned,
            "semi-naive ({}) must scan fewer tuples than naive ({})",
            semi_stats.tuples_scanned,
            naive_stats.tuples_scanned
        );
    }

    #[test]
    fn stratified_negation_runs_after_the_lower_stratum() {
        // Stratum 0: reach = TC(edge).  Stratum 1: unreach(x,y) :- node(x),
        // node(y), ~reach(x,y).
        let stratum0 = Program::new(vec![
            Rule::new(
                Atom::new(r(2), vec![s(0), s(1)]),
                vec![Literal::positive(Atom::new(r(1), vec![s(0), s(1)]))],
            )
            .unwrap(),
            Rule::new(
                Atom::new(r(2), vec![s(0), s(2)]),
                vec![
                    Literal::positive(Atom::new(r(2), vec![s(0), s(1)])),
                    Literal::positive(Atom::new(r(1), vec![s(1), s(2)])),
                ],
            )
            .unwrap(),
        ]);
        let stratum1 = Program::new(vec![Rule::new(
            Atom::new(r(4), vec![s(0), s(1)]),
            vec![
                Literal::positive(Atom::new(r(3), vec![s(0)])),
                Literal::positive(Atom::new(r(3), vec![s(1)])),
                Literal::negative(Atom::new(r(2), vec![s(0), s(1)])),
            ],
        )
        .unwrap()]);

        let mut b = DatabaseBuilder::new().relation(r(1), 2).relation(r(3), 1);
        for i in 1..=3u32 {
            b = b.fact(r(3), [i]);
        }
        b = b.fact(r(1), [1u32, 2]).fact(r(1), [2u32, 3]);
        let edb = b.build().unwrap();

        for mode in [EvalMode::Naive, EvalMode::SemiNaive] {
            let (fix, stats) = evaluate(&[stratum0.clone(), stratum1.clone()], &edb, mode).unwrap();
            assert_eq!(fix.relation(r(4)).unwrap().len(), 6, "mode {mode:?}");
            assert!(fix.holds(r(4), &tuple![3, 1]));
            assert!(!fix.holds(r(4), &tuple![1, 3]));
            assert_eq!(stats.strata, 2);
        }
    }

    #[test]
    fn fact_rules_and_constants() {
        // p(x) :- edge(1, x).   q(7).
        let program = Program::new(vec![
            Rule::new(
                Atom::new(r(3), vec![s(0)]),
                vec![Literal::positive(Atom::new(
                    r(1),
                    vec![Term::Const(Const::new(1)), s(0)],
                ))],
            )
            .unwrap(),
            Rule::new(Atom::new(r(4), vec![Term::Const(Const::new(7))]), vec![]).unwrap(),
        ]);
        let edb = chain_db(4);
        let (fix, _) = evaluate(&[program], &edb, EvalMode::SemiNaive).unwrap();
        assert!(fix.holds(r(3), &tuple![2]));
        assert!(!fix.holds(r(3), &tuple![3]));
        assert!(fix.holds(r(4), &tuple![7]));
    }

    #[test]
    fn repeated_variables_within_an_atom() {
        // loops(x) :- edge(x, x).
        let program = Program::new(vec![Rule::new(
            Atom::new(r(3), vec![s(0)]),
            vec![Literal::positive(Atom::new(r(1), vec![s(0), s(0)]))],
        )
        .unwrap()]);
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        b = b
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 2])
            .fact(r(1), [3u32, 3]);
        let edb = b.build().unwrap();
        let (fix, _) = evaluate(&[program], &edb, EvalMode::SemiNaive).unwrap();
        assert_eq!(fix.relation(r(3)).unwrap().len(), 2);
        assert!(fix.holds(r(3), &tuple![2]));
        assert!(fix.holds(r(3), &tuple![3]));
    }

    /// `chains` disjoint chains of `len` edges each — enough driving tuples
    /// per round to clear the parallel fan-out threshold.
    fn braid_db(chains: u32, len: u32) -> Database {
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for c in 0..chains {
            let base = c * (len + 2) + 1;
            for i in 0..len {
                b = b.fact(r(1), [base + i, base + i + 1]);
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn parallel_widths_match_sequential_bytes_and_stats() {
        let edb = braid_db(40, 16);
        for mode in [EvalMode::Naive, EvalMode::SemiNaive] {
            let (seq, seq_stats) =
                evaluate_with(&[tc_program()], &edb, EngineOptions { mode, threads: 1 }).unwrap();
            for threads in [2, 4] {
                let (par, par_stats) =
                    evaluate_with(&[tc_program()], &edb, EngineOptions { mode, threads }).unwrap();
                assert_eq!(seq, par, "fixpoint diverges at width {threads} ({mode:?})");
                assert_eq!(
                    seq_stats, par_stats,
                    "stats diverge at width {threads} ({mode:?})"
                );
            }
        }
    }

    #[test]
    fn small_rounds_stay_sequential_but_identical() {
        // far below the fan-out threshold: the cutoff must not be observable
        let edb = chain_db(8);
        let (seq, seq_stats) = evaluate_with(
            &[tc_program()],
            &edb,
            EngineOptions {
                mode: EvalMode::SemiNaive,
                threads: 1,
            },
        )
        .unwrap();
        let (par, par_stats) = evaluate_with(
            &[tc_program()],
            &edb,
            EngineOptions {
                mode: EvalMode::SemiNaive,
                threads: 4,
            },
        )
        .unwrap();
        assert_eq!(seq, par);
        assert_eq!(seq_stats, par_stats);
    }

    #[test]
    fn empty_edb_yields_empty_idb() {
        let edb = DatabaseBuilder::new().relation(r(1), 2).build().unwrap();
        let (fix, stats) = evaluate(&[tc_program()], &edb, EvalMode::SemiNaive).unwrap();
        assert!(fix.relation(r(2)).unwrap().is_empty());
        assert_eq!(stats.derived_facts, 0);
    }

    #[test]
    fn cross_product_rules_still_work() {
        // pair(x,y) :- a(x), b(y) — no shared variables, pure product.
        let program = Program::new(vec![Rule::new(
            Atom::new(r(3), vec![s(0), s(1)]),
            vec![
                Literal::positive(Atom::new(r(1), vec![s(0)])),
                Literal::positive(Atom::new(r(2), vec![s(1)])),
            ],
        )
        .unwrap()]);
        let edb = DatabaseBuilder::new()
            .fact(r(1), [1u32])
            .fact(r(1), [2u32])
            .fact(r(2), [8u32])
            .build()
            .unwrap();
        let (fix, _) = evaluate(&[program], &edb, EvalMode::SemiNaive).unwrap();
        assert_eq!(fix.relation(r(3)).unwrap().len(), 2);
        assert!(fix.holds(r(3), &tuple![2, 8]));
    }
}
