//! Work counters reported by the engine.

/// Statistics accumulated over one [`crate::eval::evaluate`] call or one
/// delta application of an [`crate::IncrementalSession`].
///
/// The counters make the asymptotic claims of the paper observable: a
/// well-indexed semi-naive run touches a number of tuples proportional to
/// the output, while the naive oracle rescans whole relations each round.
/// For incremental runs, `reused_facts` vs `derived_facts + rederived_facts`
/// shows how much of the previous fixpoint survived a delta untouched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of fixpoint rounds, summed over all strata (each stratum
    /// contributes at least one round, including the final empty one).
    pub iterations: usize,
    /// Number of facts newly derived for intensional relations.
    pub derived_facts: usize,
    /// Number of hash-index probes (including full-tuple membership checks
    /// and negated-literal lookups).
    pub index_probes: usize,
    /// Number of candidate tuples iterated by scans and probe buckets.
    pub tuples_scanned: usize,
    /// Number of strata evaluated.
    pub strata: usize,
    /// Incremental only: facts of the previous fixpoint carried over into
    /// the new one without being touched by the delta application (neither
    /// removed, overdeleted, nor recomputed).
    pub reused_facts: usize,
    /// Incremental only: overdeleted facts restored by the DRed
    /// rederivation phase, plus facts re-derived by a stratum that had to be
    /// recomputed from scratch (the stratified-negation fallback).
    pub rederived_facts: usize,
}

impl EngineStats {
    /// Adds another record's counters into this one (used by the
    /// incremental session to maintain lifetime totals next to per-delta
    /// figures).
    pub fn absorb(&mut self, other: &EngineStats) {
        self.iterations += other.iterations;
        self.derived_facts += other.derived_facts;
        self.index_probes += other.index_probes;
        self.tuples_scanned += other.tuples_scanned;
        self.strata += other.strata;
        self.reused_facts += other.reused_facts;
        self.rederived_facts += other.rederived_facts;
    }
}
