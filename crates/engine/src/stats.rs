//! Work counters reported by the engine.

/// Statistics accumulated over one [`crate::eval::evaluate`] call.
///
/// The counters make the asymptotic claims of the paper observable: a
/// well-indexed semi-naive run touches a number of tuples proportional to
/// the output, while the naive oracle rescans whole relations each round.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of fixpoint rounds, summed over all strata (each stratum
    /// contributes at least one round, including the final empty one).
    pub iterations: usize,
    /// Number of facts newly derived for intensional relations.
    pub derived_facts: usize,
    /// Number of hash-index probes (including full-tuple membership checks
    /// and negated-literal lookups).
    pub index_probes: usize,
    /// Number of candidate tuples iterated by scans and probe buckets.
    pub tuples_scanned: usize,
    /// Number of strata evaluated.
    pub strata: usize,
}
