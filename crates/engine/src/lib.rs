//! # kbt-engine — indexed relation storage and join-planned fixpoint evaluation
//!
//! The PTIME results of *Knowledgebase Transformations* (Theorem 4.7 /
//! Theorem 4.8) hinge on least-fixpoint evaluation being cheap.  The naive
//! nested-loop evaluator in `kbt-datalog` is asymptotically polynomial but
//! scans whole relations per body atom; this crate supplies the substrate
//! that makes the fast path actually fast:
//!
//! * [`index::IndexedRelation`] / [`storage::IndexStorage`] — relations with
//!   hash indexes keyed by *bound-column masks*, built lazily for exactly the
//!   `(relation, binding pattern)` pairs a rule body demands;
//! * [`plan`] — a join planner that orders body atoms by bound-variable
//!   count and compiles every rule into a sequence of index probes instead
//!   of full scans;
//! * [`eval`] — a delta-aware semi-naive driver (stratified negation
//!   preserved) maintaining `full`/`delta` relation pairs, plus a naive
//!   recompute-everything mode used as a cross-check;
//! * [`EngineStats`] — iterations, derived facts, index probes and tuples
//!   scanned, so callers and benchmarks can see the work performed.
//!
//! The engine has its own minimal rule IR ([`ir`]) with variables resolved
//! to dense register slots; `kbt-datalog` lowers its AST into it, which keeps
//! this crate free of any dependency on the surface syntax (and free of
//! dependency cycles: `kbt-datalog` depends on `kbt-engine`, not the other
//! way round).

pub mod error;
pub mod eval;
pub mod index;
pub mod ir;
pub mod plan;
pub mod stats;
pub mod storage;

pub use error::EngineError;
pub use eval::{evaluate, EvalMode};
pub use index::{IndexedRelation, Mask};
pub use stats::EngineStats;
pub use storage::{FactSet, IndexStorage};

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EngineError>;
