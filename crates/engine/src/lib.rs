//! # kbt-engine — indexed relation storage and join-planned fixpoint evaluation
//!
//! The PTIME results of *Knowledgebase Transformations* (Theorem 4.7 /
//! Theorem 4.8) hinge on least-fixpoint evaluation being cheap.  The naive
//! nested-loop evaluator in `kbt-datalog` is asymptotically polynomial but
//! scans whole relations per body atom; this crate supplies the substrate
//! that makes the fast path actually fast:
//!
//! * [`index::IndexedRelation`] / [`storage::IndexStorage`] — flat row
//!   storage: every relation keeps its tuples in one arity-strided
//!   `Vec<Const>` arena (slot = row id, tombstoned removals, amortised
//!   compaction) with hash indexes keyed by *bound-column masks*, built
//!   lazily for exactly the `(relation, binding pattern)` pairs a rule body
//!   demands.  Keys over ≤ [`PACK_MAX`] bound columns pack injectively into
//!   a `u64` ([`fx::KeyAcc`]); wider patterns hash with verification.  A
//!   probe is therefore allocation-free: pack the key on the stack, borrow
//!   the bucket's id slice, verify candidates against `&[Const]` row slices
//!   straight out of the arena;
//! * [`plan`] — a join planner that orders body atoms by bound-variable
//!   count and compiles every rule into a sequence of index probes instead
//!   of full scans;
//! * [`eval`] — a delta-aware semi-naive driver (stratified negation
//!   preserved) maintaining `full`/`delta` relation pairs, plus a naive
//!   recompute-everything mode used as a cross-check;
//! * [`EngineStats`] — iterations, derived facts, index probes and tuples
//!   scanned, so callers and benchmarks can see the work performed.
//!
//! Rounds can run **in parallel**: [`EngineOptions::threads`] fans the
//! independent (rule, plan) derivations of a round — chunked over each
//! plan's driving scan — out over the vendored `kbt-par` work-sharing pool.
//! Each worker derives into a private buffer merged in stable task order, so
//! fixpoints *and statistics* are byte-identical at every width; `threads =
//! 1` runs the exact sequential path.  See the [`eval`] module docs for the
//! determinism argument.
//!
//! The engine has its own minimal rule IR ([`ir`]) with variables resolved
//! to dense register slots; `kbt-datalog` lowers its AST into it, which keeps
//! this crate free of any dependency on the surface syntax (and free of
//! dependency cycles: `kbt-datalog` depends on `kbt-engine`, not the other
//! way round).

//! ## Incremental evaluation
//!
//! [`IncrementalSession`] keeps the indexed storage (tuples *and* built
//! indexes) alive across a chain of closely related databases and accepts
//! fact deltas instead of re-deriving every fixpoint from scratch:
//! insertions continue semi-naive propagation, deletions run DRed-style
//! overdeletion/rederivation.  Lifecycle:
//!
//! 1. [`IncrementalSession::new`] evaluates the stratified program once and
//!    becomes the owner of the fixpoint ([`IncrementalSession::stats`]
//!    reports that initial evaluation).
//! 2. Each [`IncrementalSession::insert_facts`] /
//!    [`IncrementalSession::remove_facts`] /
//!    [`IncrementalSession::apply_delta`] call mutates the *extensional*
//!    relations and restores the least fixpoint, returning per-call
//!    statistics (`reused_facts` / `rederived_facts` make the saved work
//!    observable).
//! 3. [`IncrementalSession::current`] materialises the maintained fixpoint;
//!    it is guaranteed byte-identical to a from-scratch [`evaluate`] over
//!    the mutated extensional database.
//!
//! Caveats under stratified negation: a delta that may change a relation
//! some stratum negates makes that stratum — and every stratum above it —
//! fall back to a from-scratch recomputation (cleared and re-derived inside
//! the session), because DRed's overdelete/rederive phases are only sound
//! when negated relations are stable.  Purely positive programs (all Horn
//! fast-path programs of `kbt-core`) never hit the fallback.  Deltas may
//! only touch extensional relations; mutating a derived relation returns
//! [`EngineError::IntensionalUpdate`].  After any error the session's
//! storage may hold a partially applied delta — rebuild the session instead
//! of continuing.

pub mod error;
pub mod eval;
pub mod fx;
pub mod incremental;
pub mod index;
pub mod ir;
pub mod metrics;
pub mod plan;
pub mod profile;
pub mod stats;
pub mod storage;
pub mod table;

pub use error::EngineError;
pub use eval::{evaluate, evaluate_with, EngineOptions, EvalMode};
pub use fx::{FxBuild, FxHasher, KeyAcc, PACK_MAX};
pub use incremental::IncrementalSession;
pub use index::{IndexedRelation, Mask};
pub use metrics::{metrics, EngineMetrics};
pub use profile::{evaluate_profiled, explain, RuleProfile};
pub use stats::EngineStats;
pub use storage::{FactSet, IndexStorage};
pub use table::SubsumptiveTable;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, EngineError>;
