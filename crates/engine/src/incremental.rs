//! Incremental fixpoint maintenance: a persistent evaluation session that
//! carries its [`IndexStorage`] (tuples, hash indexes, join plans) across
//! fact deltas instead of re-deriving every fixpoint from a cold start.
//!
//! A transformation expression of the paper applies many sentences to
//! closely related databases: each `τ_φ` step of a `π ∘ ⊔ ∘ τ_φ` chain sees
//! the previous step's output with a small diff.  [`IncrementalSession`]
//! exploits that:
//!
//! * **Insertions** run as a continuation of semi-naive evaluation — the new
//!   extensional facts seed a delta round per stratum and only derivations
//!   touching the delta are recomputed.
//! * **Deletions** use DRed-style *overdeletion / rederivation* (the shape
//!   of micro-datalog's `dred.rs`): first every fact transitively supported
//!   by a deleted fact is overdeleted against the *old* state, then the
//!   overdeleted facts with surviving alternative derivations are restored
//!   by a head-bound satisfiability probe and a final insertion-propagation
//!   sweep.
//! * **Stratified negation** is handled by a conservative fallback: a
//!   stratum whose negated relations may have changed — and every stratum
//!   above it — is recomputed from scratch (its intensional relations are
//!   cleared and re-derived with the usual semi-naive rounds).  Purely
//!   positive programs, which is what the Horn fast path of `kbt-core`
//!   produces, never hit the fallback.
//!
//! Deltas may only touch *extensional* relations; mutating a relation any
//! stratum derives returns [`EngineError::IntensionalUpdate`] — intensional
//! content is owned by the fixpoint.

use std::collections::{BTreeMap, BTreeSet};

use kbt_data::{Const, Database, RelId, Relation, Tuple};

use crate::eval::{
    bound_cols_match, commit, delta_plans, eval_stratum_semi_naive, match_cols, member_holds,
    member_holds_cols, run_round_with, Deltas,
};
use crate::fx::{key_is_exact, KeyAcc};
use crate::index::IndexedRelation;
use crate::ir::{Program, Term};
use crate::plan::{JoinPlan, PlannedRule, Source, Step};
use crate::stats::EngineStats;
use crate::storage::IndexStorage;
use crate::{EngineError, Result};

/// One planned stratum with the relation sets the delta dispatcher needs.
#[derive(Clone, Debug)]
struct Stratum {
    /// The planned rules (with delta variants for *every* positive body
    /// occurrence, since between calls the extensional relations change
    /// too, not just the intensional ones).
    rules: Vec<PlannedRule>,
    /// The stratum's head relations.
    heads: BTreeSet<RelId>,
    /// Relations occurring under negation in this stratum.
    neg_rels: BTreeSet<RelId>,
    /// Every relation the stratum's rule bodies read.
    read_rels: BTreeSet<RelId>,
}

/// A live fixpoint over indexed storage that accepts fact deltas.
///
/// See the [module docs](self) for the algorithm; see `kbt-engine`'s crate
/// docs for the lifecycle contract.
#[derive(Clone, Debug)]
pub struct IncrementalSession {
    strata: Vec<Stratum>,
    /// Union of all head relations — the relations deltas must not touch.
    idb: BTreeSet<RelId>,
    /// Extensional facts the initial EDB stored *in head relations*.  They
    /// hold without needing a rule derivation, so DRed must never retract
    /// them and fallback recomputations must re-seed them.  Stored as plain
    /// sorted-run relations: membership is a binary search over row slices,
    /// and capturing them at session start is an `O(1)` mirror clone.
    protected: BTreeMap<RelId, Relation>,
    storage: IndexStorage,
    totals: EngineStats,
    /// Resolved evaluation width (see [`crate::EngineOptions::threads`]);
    /// every maintenance call — initial evaluation, propagation rounds,
    /// overdeletion, fallback recomputation — runs at this width.
    width: usize,
}

impl IncrementalSession {
    /// Builds a session by fully evaluating the pre-stratified `strata` over
    /// `edb` (the same computation as [`crate::evaluate`] in semi-naive
    /// mode), at the process-default width.  The statistics of this initial
    /// evaluation are available through [`Self::stats`].
    pub fn new(strata: &[Program], edb: &Database) -> Result<Self> {
        IncrementalSession::with_threads(strata, edb, 0)
    }

    /// [`Self::new`] with an explicit thread count (`0` = process default,
    /// `1` = exact sequential path).  The maintained fixpoint and all
    /// statistics are identical at every width.
    pub fn with_threads(strata: &[Program], edb: &Database, threads: usize) -> Result<Self> {
        let _eval_span = crate::metrics::metrics().eval_ns.span();
        let width = kbt_par::resolve_threads(threads);
        let mut storage = IndexStorage::from_database(edb);
        for program in strata {
            for (rel, arity) in program.relation_arities() {
                storage.ensure_relation(rel, arity)?;
            }
        }

        let mut stats = EngineStats::default();
        let mut planned = Vec::with_capacity(strata.len());
        let mut idb = BTreeSet::new();
        let mut protected: BTreeMap<RelId, Relation> = BTreeMap::new();
        for program in strata {
            stats.strata += 1;
            let heads = program.idb_relations();
            // facts the EDB itself stored in this stratum's head relations
            // (before any rule has fired) hold unconditionally
            for &rel in &heads {
                if let Some(base) = storage.relation(rel) {
                    if !base.is_empty() {
                        protected.insert(rel, base.to_relation());
                    }
                }
            }
            let mut eligible = heads.clone();
            for rule in &program.rules {
                for (_, atom) in rule.positive_atoms() {
                    eligible.insert(atom.rel);
                }
            }
            let rules = crate::eval::plan_stratum(program, &mut storage, &eligible);
            eval_stratum_semi_naive(&rules, &mut storage, &mut stats, width);

            let neg_rels = program
                .rules
                .iter()
                .flat_map(|r| r.body.iter().filter(|l| !l.positive).map(|l| l.atom.rel))
                .collect();
            let read_rels = program
                .rules
                .iter()
                .flat_map(|r| r.body.iter().map(|l| l.atom.rel))
                .collect();
            idb.extend(heads.iter().copied());
            planned.push(Stratum {
                rules,
                heads,
                neg_rels,
                read_rels,
            });
        }
        let metrics = crate::metrics::metrics();
        metrics.evals_total.inc();
        metrics.absorb_stats(&stats);
        Ok(IncrementalSession {
            strata: planned,
            idb,
            protected,
            storage,
            totals: stats,
            width,
        })
    }

    /// Inserts extensional facts and propagates them through the fixpoint.
    pub fn insert_facts(&mut self, facts: &[(RelId, Tuple)]) -> Result<EngineStats> {
        self.apply_delta(facts, &[])
    }

    /// Removes extensional facts, retracting everything that loses its last
    /// derivation (DRed overdelete / rederive).
    pub fn remove_facts(&mut self, facts: &[(RelId, Tuple)]) -> Result<EngineStats> {
        self.apply_delta(&[], facts)
    }

    /// Applies one combined delta: `deletions` are retracted first, then
    /// `insertions` are added, and the stored fixpoint is maintained so that
    /// [`Self::current`] equals a from-scratch evaluation over the mutated
    /// extensional database.  Returns the statistics of this application
    /// only (lifetime totals accumulate in [`Self::stats`]).
    ///
    /// On error (an intensional relation touched, or an arity conflict) the
    /// storage may hold a partially applied delta; callers should rebuild
    /// the session rather than continue with it.
    pub fn apply_delta(
        &mut self,
        insertions: &[(RelId, Tuple)],
        deletions: &[(RelId, Tuple)],
    ) -> Result<EngineStats> {
        for (rel, _) in insertions.iter().chain(deletions) {
            if self.idb.contains(rel) {
                return Err(EngineError::IntensionalUpdate { rel: *rel });
            }
        }

        let metrics = crate::metrics::metrics();
        let _delta_span = metrics.delta_ns.span();
        let mut stats = EngineStats::default();
        let count_before = self.storage.fact_count();

        // The deletions actually present, grouped and deduplicated.
        let mut del_actual = Deltas::new();
        for (rel, t) in deletions {
            if self.storage.holds(*rel, t) {
                delta_insert(&mut del_actual, *rel, t.components());
            }
        }
        // Relations whose content this call may change, from the input's
        // point of view (cascaded intensional changes are added per stratum
        // below while picking the negation-fallback cutoff).
        let mut possibly_changed: BTreeSet<RelId> = del_actual.keys().copied().collect();
        for (rel, t) in insertions {
            if !self.storage.holds(*rel, t) || del_actual.get(rel).is_some_and(|d| d.contains(t)) {
                possibly_changed.insert(*rel);
            }
        }

        // The lowest stratum whose negated relations may change; it and
        // everything above it fall back to a from-scratch recomputation.
        let mut fallback_from = self.strata.len();
        for (k, stratum) in self.strata.iter().enumerate() {
            if stratum
                .neg_rels
                .iter()
                .any(|r| possibly_changed.contains(r))
            {
                fallback_from = k;
                break;
            }
            if stratum
                .read_rels
                .iter()
                .any(|r| possibly_changed.contains(r))
            {
                possibly_changed.extend(stratum.heads.iter().copied());
            }
        }

        // Phase A — overdeletion, against the *old* storage (nothing has
        // been removed yet, so joins still see every deleted fact and no
        // joint deletion across body atoms can be missed).  Rounds fan out
        // over the pool exactly like fixpoint rounds: private buffers per
        // task, merged in stable order (see `eval` module docs).
        let mut over = del_actual.clone();
        let mut round = del_actual;
        while !round.is_empty() {
            stats.iterations += 1;
            let mut plans: Vec<(&PlannedRule, &JoinPlan)> = Vec::new();
            for stratum in &self.strata[..fallback_from] {
                plans.extend(delta_plans(&stratum.rules, &round));
            }
            let storage = &self.storage;
            let over_ref = &over;
            let protected = &self.protected;
            let pending = run_round_with(
                &plans,
                storage,
                &round,
                &mut stats,
                self.width,
                &|rel, f: &[Const]| {
                    storage.holds_row(rel, f)
                        && !over_ref.get(&rel).is_some_and(|o| o.contains_row(f))
                        && !protected.get(&rel).is_some_and(|p| p.contains_row(f))
                },
            );
            round = Deltas::new();
            for (rel, rows) in &pending {
                for fact in rows.iter() {
                    if delta_insert(&mut over, *rel, fact) {
                        delta_insert(&mut round, *rel, fact);
                    }
                }
            }
        }

        // Phase B — retract the deleted facts and everything overdeleted.
        let mut removed = 0usize;
        for (rel, facts) in &over {
            for row in facts.iter() {
                if self.storage.remove_row(*rel, row) {
                    removed += 1;
                }
            }
        }

        // Phase C — apply the extensional insertions; `added` accumulates
        // every fact added during this call and seeds the per-stratum
        // propagation deltas.
        let mut added = Deltas::new();
        for (rel, t) in insertions {
            self.storage.ensure_relation(*rel, t.arity())?;
            if self.storage.insert_fact(*rel, t.clone()) {
                delta_insert(&mut added, *rel, t.components());
            }
        }

        // Phase D — per stratum (bottom-up): rederive overdeleted facts
        // with a surviving alternative derivation, then run semi-naive
        // insertion rounds seeded with everything added so far.
        for k in 0..fallback_from {
            let stratum = &self.strata[k];
            for rel in &stratum.heads {
                let Some(over_rel) = over.get(rel) else {
                    continue;
                };
                for fact in over_rel.iter() {
                    if self.storage.holds_row(*rel, fact) {
                        continue; // restored by an earlier rederivation
                    }
                    let derivable = stratum
                        .rules
                        .iter()
                        .filter(|r| r.head.rel == *rel)
                        .any(|r| rederivable(r, fact, &self.storage, &mut stats));
                    if derivable {
                        self.storage.insert_row(*rel, fact);
                        stats.rederived_facts += 1;
                        delta_insert(&mut added, *rel, fact);
                    }
                }
            }

            let mut delta = added.clone();
            while !delta.is_empty() {
                stats.iterations += 1;
                let stratum = &self.strata[k];
                let plans = delta_plans(&stratum.rules, &delta);
                let storage = &self.storage;
                let pending = run_round_with(
                    &plans,
                    storage,
                    &delta,
                    &mut stats,
                    self.width,
                    &|rel, f: &[Const]| !storage.holds_row(rel, f),
                );
                if pending.is_empty() {
                    break;
                }
                delta = commit(&mut self.storage, pending, &mut stats);
                for (rel, facts) in &delta {
                    for fact in facts.iter() {
                        delta_insert(&mut added, *rel, fact);
                    }
                }
            }
        }

        // Phase E — stratified-negation fallback: recompute the cut-off
        // stratum and everything above it from scratch (re-seeding the
        // protected extensional facts the initial EDB stored in the cleared
        // head relations).
        let mut cleared = 0usize;
        for k in fallback_from..self.strata.len() {
            stats.strata += 1;
            let mut olds: BTreeMap<RelId, Relation> = BTreeMap::new();
            for rel in &self.strata[k].heads {
                let old = self
                    .storage
                    .relation(*rel)
                    .map(IndexedRelation::to_relation)
                    .unwrap_or_else(|| Relation::empty(0));
                cleared += old.len();
                olds.insert(*rel, old);
                self.storage.clear_relation(*rel);
                if let Some(base) = self.protected.get(rel) {
                    cleared -= base.len();
                    for row in base.iter() {
                        self.storage.insert_row(*rel, row);
                    }
                }
            }
            let stratum = &self.strata[k];
            eval_stratum_semi_naive(&stratum.rules, &mut self.storage, &mut stats, self.width);
            for (rel, old) in olds {
                let new = self.storage.relation(rel).expect("relation ensured");
                stats.rederived_facts += old.iter().filter(|row| new.contains_row(row)).count();
            }
        }

        stats.reused_facts = count_before.saturating_sub(removed + cleared);
        self.totals.absorb(&stats);
        metrics.deltas_total.inc();
        metrics.absorb_stats(&stats);
        Ok(stats)
    }

    /// Materialises the maintained fixpoint as a plain database (extensional
    /// facts unchanged, intensional relations at their least fixpoint).
    pub fn current(&self) -> Database {
        self.storage.to_database()
    }

    /// Direct access to one maintained relation (`None` if the session has
    /// never seen it), letting callers materialise only the relations they
    /// need instead of paying for [`Self::current`].
    pub fn relation(&self, rel: RelId) -> Option<&IndexedRelation> {
        self.storage.relation(rel)
    }

    /// A copy-on-write snapshot of one maintained relation: after the first
    /// call per relation this is an `O(1)` `Arc` clone, and later deltas
    /// touch the snapshot holder only through copy-on-write.  The chain
    /// evaluator uses this to assemble each step's output without
    /// re-collecting the (large) intensional relations.
    pub fn snapshot_relation(&mut self, rel: RelId) -> Option<kbt_data::Relation> {
        self.storage.snapshot_relation(rel)
    }

    /// Whether the fact is in the maintained fixpoint.
    pub fn holds(&self, rel: RelId, t: &Tuple) -> bool {
        self.storage.holds(rel, t)
    }

    /// Total number of facts in the maintained fixpoint.
    pub fn fact_count(&self) -> usize {
        self.storage.fact_count()
    }

    /// Number of times a copy-on-write mirror was found desynchronised and
    /// rebuilt while snapshotting (zero in a correct engine; the release
    /// build checks the invariant instead of trusting it — see
    /// [`IndexedRelation::mirror_rebuilds`]).
    pub fn mirror_rebuilds(&self) -> usize {
        self.storage.mirror_rebuilds()
    }

    /// Lifetime statistics: the initial evaluation plus every delta applied.
    pub fn stats(&self) -> &EngineStats {
        &self.totals
    }
}

/// Inserts a row into a delta map, creating the indexed relation on first
/// use; returns whether the fact was new.
fn delta_insert(deltas: &mut Deltas, rel: RelId, row: &[Const]) -> bool {
    deltas
        .entry(rel)
        .or_insert_with(|| IndexedRelation::new(row.len()))
        .insert_row(row)
}

/// Whether `fact` can be derived for `rule`'s head from the current storage:
/// binds the head against the fact and searches the rule's full plan for one
/// witness (DRed's `rederive_p(x̄) :- overdel_p(x̄), body` with the
/// overdeleted atom pre-bound).
fn rederivable(
    rule: &PlannedRule,
    fact: &[Const],
    storage: &IndexStorage,
    stats: &mut EngineStats,
) -> bool {
    let mut regs: Vec<Option<Const>> = vec![None; rule.slots];
    for (term, &value) in rule.head.terms.iter().zip(fact) {
        match *term {
            Term::Const(c) => {
                if c != value {
                    return false;
                }
            }
            Term::Slot(s) => match regs[s] {
                Some(existing) if existing != value => return false,
                _ => regs[s] = Some(value),
            },
        }
    }
    satisfiable(&rule.full.steps, storage, &mut regs, stats)
}

/// Depth-first search for one satisfying binding of the remaining steps,
/// honouring slots pre-bound by the caller (which full plans did not expect,
/// so scans whose columns are all determined degrade to membership checks).
fn satisfiable(
    steps: &[Step],
    storage: &IndexStorage,
    regs: &mut Vec<Option<Const>>,
    stats: &mut EngineStats,
) -> bool {
    let Some((step, rest)) = steps.split_first() else {
        return true;
    };
    match step {
        Step::Scan { rel, source, cols } => {
            debug_assert_eq!(*source, Source::Full, "full plans never scan deltas");
            let Some(relation) = storage.relation(*rel) else {
                return false;
            };
            let determined = cols.iter().all(|&(_, t)| match t {
                Term::Const(_) => true,
                Term::Slot(s) => regs[s].is_some(),
            });
            if determined {
                stats.index_probes += 1;
                return member_holds_cols(relation, cols, regs)
                    && satisfiable(rest, storage, regs, stats);
            }
            let mut undo = Vec::new();
            for row in relation.iter() {
                stats.tuples_scanned += 1;
                let hit = match_cols(row, cols, regs, &mut undo)
                    && satisfiable(rest, storage, regs, stats);
                for s in undo.drain(..) {
                    regs[s] = None;
                }
                if hit {
                    return true;
                }
            }
            false
        }
        Step::Probe {
            rel,
            mask,
            key,
            cols,
        } => {
            let Some(relation) = storage.relation(*rel) else {
                return false;
            };
            let mut acc = KeyAcc::new(key.len());
            for &t in key {
                acc.push(crate::eval::resolve(t, regs));
            }
            stats.index_probes += 1;
            let exact = key_is_exact(key.len());
            let mut undo = Vec::new();
            for &id in relation.probe_bucket(*mask, acc.finish()) {
                if !relation.is_live(id) {
                    continue;
                }
                let row = relation.row(id);
                if !exact && !bound_cols_match(row, *mask, key, regs) {
                    continue; // hash collision in a wide-key bucket
                }
                stats.tuples_scanned += 1;
                let hit = match_cols(row, cols, regs, &mut undo)
                    && satisfiable(rest, storage, regs, stats);
                for s in undo.drain(..) {
                    regs[s] = None;
                }
                if hit {
                    return true;
                }
            }
            false
        }
        Step::Member { rel, terms } => {
            stats.index_probes += 1;
            storage
                .relation(*rel)
                .is_some_and(|r| member_holds(r, terms, regs))
                && satisfiable(rest, storage, regs, stats)
        }
        Step::NegCheck { rel, terms } => {
            stats.index_probes += 1;
            !storage
                .relation(*rel)
                .is_some_and(|r| member_holds(r, terms, regs))
                && satisfiable(rest, storage, regs, stats)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate, EvalMode};
    use crate::ir::{Atom, Literal, Rule};
    use kbt_data::{tuple, DatabaseBuilder};

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn s(i: usize) -> Term {
        Term::Slot(i)
    }

    /// path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
    fn tc_program() -> Program {
        Program::new(vec![
            Rule::new(
                Atom::new(r(2), vec![s(0), s(1)]),
                vec![Literal::positive(Atom::new(r(1), vec![s(0), s(1)]))],
            )
            .unwrap(),
            Rule::new(
                Atom::new(r(2), vec![s(0), s(2)]),
                vec![
                    Literal::positive(Atom::new(r(2), vec![s(0), s(1)])),
                    Literal::positive(Atom::new(r(1), vec![s(1), s(2)])),
                ],
            )
            .unwrap(),
        ])
    }

    fn chain_db(n: u32) -> Database {
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for i in 1..n {
            b = b.fact(r(1), [i, i + 1]);
        }
        b.build().unwrap()
    }

    /// The from-scratch fixpoint the session must stay byte-identical to.
    fn from_scratch(strata: &[Program], edb: &Database) -> Database {
        evaluate(strata, edb, EvalMode::SemiNaive).unwrap().0
    }

    #[test]
    fn initial_session_matches_from_scratch() {
        let strata = [tc_program()];
        let edb = chain_db(8);
        let session = IncrementalSession::new(&strata, &edb).unwrap();
        assert_eq!(session.current(), from_scratch(&strata, &edb));
        assert!(session.stats().derived_facts > 0);
    }

    #[test]
    fn insertions_propagate_like_semi_naive() {
        let strata = [tc_program()];
        let mut edb = chain_db(6);
        let mut session = IncrementalSession::new(&strata, &edb).unwrap();

        let stats = session
            .insert_facts(&[(r(1), tuple![6, 7]), (r(1), tuple![7, 8])])
            .unwrap();
        edb.insert_fact(r(1), tuple![6, 7]).unwrap();
        edb.insert_fact(r(1), tuple![7, 8]).unwrap();
        assert_eq!(session.current(), from_scratch(&strata, &edb));
        assert!(stats.derived_facts > 0);
        assert!(stats.reused_facts > 0, "old closure facts must be reused");
        assert_eq!(stats.rederived_facts, 0);
    }

    #[test]
    fn deletions_run_overdeletion_and_rederivation() {
        // Diamond: 1→2→4 and 1→3→4, plus a tail 4→5.  Deleting edge (2,4)
        // overdeletes path(1,4)/path(2,4)/path(1,5)/path(2,5)…, and
        // rederivation must restore path(1,4) and path(1,5) via 3.
        let strata = [tc_program()];
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for (x, y) in [(1u32, 2u32), (2, 4), (1, 3), (3, 4), (4, 5)] {
            b = b.fact(r(1), [x, y]);
        }
        let mut edb = b.build().unwrap();
        let mut session = IncrementalSession::new(&strata, &edb).unwrap();

        let stats = session.remove_facts(&[(r(1), tuple![2, 4])]).unwrap();
        edb.remove_fact(r(1), &tuple![2, 4]);
        assert_eq!(session.current(), from_scratch(&strata, &edb));
        assert!(session.holds(r(2), &tuple![1, 4]), "alternative path via 3");
        assert!(!session.holds(r(2), &tuple![2, 4]));
        assert!(stats.rederived_facts > 0, "the diamond must rederive");
        assert!(stats.reused_facts > 0);
    }

    #[test]
    fn mixed_deltas_and_repeated_calls_stay_exact() {
        let strata = [tc_program()];
        let mut edb = chain_db(10);
        let mut session = IncrementalSession::new(&strata, &edb).unwrap();

        type Edges = Vec<(u32, u32)>;
        let steps: Vec<(Edges, Edges)> = vec![
            (vec![(10, 11)], vec![(3, 4)]),
            (vec![(3, 4), (11, 12)], vec![(1, 2)]),
            (vec![], vec![(5, 6), (6, 7)]),
            (vec![(20, 21), (21, 22)], vec![(20, 21)]),
        ];
        for (ins, del) in steps {
            let ins: Vec<_> = ins.into_iter().map(|(x, y)| (r(1), tuple![x, y])).collect();
            let del: Vec<_> = del.into_iter().map(|(x, y)| (r(1), tuple![x, y])).collect();
            session.apply_delta(&ins, &del).unwrap();
            for (rel, t) in &del {
                edb.remove_fact(*rel, t);
            }
            for (rel, t) in &ins {
                edb.insert_fact(*rel, t.clone()).unwrap();
            }
            assert_eq!(session.current(), from_scratch(&strata, &edb));
        }
    }

    #[test]
    fn negation_fallback_recomputes_upper_strata() {
        // Stratum 0: reach = TC(edge).  Stratum 1: unreach(x,y) :- node(x),
        // node(y), ~reach(x,y).
        let stratum1 = Program::new(vec![Rule::new(
            Atom::new(r(4), vec![s(0), s(1)]),
            vec![
                Literal::positive(Atom::new(r(3), vec![s(0)])),
                Literal::positive(Atom::new(r(3), vec![s(1)])),
                Literal::negative(Atom::new(r(2), vec![s(0), s(1)])),
            ],
        )
        .unwrap()]);
        let strata = [tc_program(), stratum1];

        let mut b = DatabaseBuilder::new().relation(r(1), 2).relation(r(3), 1);
        for i in 1..=4u32 {
            b = b.fact(r(3), [i]);
        }
        b = b.fact(r(1), [1u32, 2]).fact(r(1), [2u32, 3]);
        let mut edb = b.build().unwrap();
        let mut session = IncrementalSession::new(&strata, &edb).unwrap();
        assert_eq!(session.current(), from_scratch(&strata, &edb));

        // inserting an edge makes (3,4) reachable → unreach(3,4) must go
        session.insert_facts(&[(r(1), tuple![3, 4])]).unwrap();
        edb.insert_fact(r(1), tuple![3, 4]).unwrap();
        assert_eq!(session.current(), from_scratch(&strata, &edb));
        assert!(!session.holds(r(4), &tuple![3, 4]));

        // deleting it makes (3,4) unreachable again → unreach(3,4) returns
        session.remove_facts(&[(r(1), tuple![3, 4])]).unwrap();
        edb.remove_fact(r(1), &tuple![3, 4]);
        assert_eq!(session.current(), from_scratch(&strata, &edb));
        assert!(session.holds(r(4), &tuple![3, 4]));
    }

    #[test]
    fn negation_on_untouched_relations_stays_incremental() {
        // unreach negates reach; mutating only the node relation r3 (which
        // never appears under negation) must not trigger the fallback, and
        // the result must still be exact.
        let stratum1 = Program::new(vec![Rule::new(
            Atom::new(r(4), vec![s(0), s(1)]),
            vec![
                Literal::positive(Atom::new(r(3), vec![s(0)])),
                Literal::positive(Atom::new(r(3), vec![s(1)])),
                Literal::negative(Atom::new(r(2), vec![s(0), s(1)])),
            ],
        )
        .unwrap()]);
        let strata = [tc_program(), stratum1];
        let mut b = DatabaseBuilder::new().relation(r(1), 2).relation(r(3), 1);
        for i in 1..=3u32 {
            b = b.fact(r(3), [i]);
        }
        b = b.fact(r(1), [1u32, 2]);
        let mut edb = b.build().unwrap();
        let mut session = IncrementalSession::new(&strata, &edb).unwrap();

        let stats = session.insert_facts(&[(r(3), tuple![4])]).unwrap();
        edb.insert_fact(r(3), tuple![4]).unwrap();
        assert_eq!(session.current(), from_scratch(&strata, &edb));
        // no stratum was recomputed from scratch
        assert_eq!(stats.strata, 0);
    }

    #[test]
    fn parallel_sessions_track_sequential_ones_exactly() {
        // a braid wide enough that propagation and overdeletion rounds clear
        // the fan-out threshold
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for c in 0..40u32 {
            let base = c * 18 + 1;
            for i in 0..16 {
                b = b.fact(r(1), [base + i, base + i + 1]);
            }
        }
        let edb = b.build().unwrap();
        let strata = [tc_program()];
        let mut seq = IncrementalSession::with_threads(&strata, &edb, 1).unwrap();
        let mut par = IncrementalSession::with_threads(&strata, &edb, 4).unwrap();
        assert_eq!(seq.current(), par.current());
        assert_eq!(seq.stats(), par.stats());

        type Edges = Vec<(u32, u32)>;
        let steps: Vec<(Edges, Edges)> = vec![
            (vec![(17, 19), (36, 38)], vec![]),
            (vec![], vec![(5, 6), (23, 24)]),
            (vec![(5, 6)], vec![(17, 19)]),
        ];
        for (ins, del) in steps {
            let ins: Vec<_> = ins.into_iter().map(|(x, y)| (r(1), tuple![x, y])).collect();
            let del: Vec<_> = del.into_iter().map(|(x, y)| (r(1), tuple![x, y])).collect();
            let s = seq.apply_delta(&ins, &del).unwrap();
            let p = par.apply_delta(&ins, &del).unwrap();
            assert_eq!(seq.current(), par.current(), "fixpoints diverge");
            assert_eq!(s, p, "per-delta stats diverge");
        }
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn intensional_mutations_are_rejected() {
        let strata = [tc_program()];
        let mut session = IncrementalSession::new(&strata, &chain_db(4)).unwrap();
        assert!(matches!(
            session.insert_facts(&[(r(2), tuple![1, 9])]),
            Err(EngineError::IntensionalUpdate { rel }) if rel == r(2)
        ));
        assert!(matches!(
            session.remove_facts(&[(r(2), tuple![1, 2])]),
            Err(EngineError::IntensionalUpdate { .. })
        ));
    }

    #[test]
    fn deleting_and_reinserting_everything_round_trips() {
        let strata = [tc_program()];
        let edb = chain_db(5);
        let mut session = IncrementalSession::new(&strata, &edb).unwrap();
        let all_edges: Vec<(RelId, Tuple)> = (1..5u32).map(|i| (r(1), tuple![i, i + 1])).collect();

        session.remove_facts(&all_edges).unwrap();
        let empty = DatabaseBuilder::new().relation(r(1), 2).build().unwrap();
        assert_eq!(session.current(), from_scratch(&strata, &empty));
        assert_eq!(session.fact_count(), 0);

        session.insert_facts(&all_edges).unwrap();
        assert_eq!(session.current(), from_scratch(&strata, &edb));
    }

    #[test]
    fn brand_new_relations_are_absorbed() {
        let strata = [tc_program()];
        let mut session = IncrementalSession::new(&strata, &chain_db(3)).unwrap();
        session.insert_facts(&[(r(9), tuple![7])]).unwrap();
        assert!(session.holds(r(9), &tuple![7]));
        // arity conflicts surface as errors
        assert!(session.insert_facts(&[(r(9), tuple![1, 2])]).is_err());
    }

    #[test]
    fn edb_facts_in_head_relations_survive_dred() {
        // path(1,3) is stored extensionally (no rule derives it once
        // edge(2,3) is gone); deleting edge(2,3) must not retract it —
        // from-scratch evaluation keeps EDB facts of IDB relations.
        let strata = [tc_program()];
        let mut edb = chain_db(4);
        edb.insert_fact(r(2), tuple![1, 3]).unwrap();
        let mut session = IncrementalSession::new(&strata, &edb).unwrap();
        assert_eq!(session.current(), from_scratch(&strata, &edb));

        session.remove_facts(&[(r(1), tuple![2, 3])]).unwrap();
        edb.remove_fact(r(1), &tuple![2, 3]);
        assert_eq!(session.current(), from_scratch(&strata, &edb));
        assert!(session.holds(r(2), &tuple![1, 3]), "EDB fact must survive");
    }

    #[test]
    fn edb_facts_in_head_relations_survive_the_negation_fallback() {
        // unreach(2,1) stored extensionally; the fallback recomputation of
        // the negation stratum must re-seed it after clearing.
        let stratum1 = Program::new(vec![Rule::new(
            Atom::new(r(4), vec![s(0), s(1)]),
            vec![
                Literal::positive(Atom::new(r(3), vec![s(0)])),
                Literal::positive(Atom::new(r(3), vec![s(1)])),
                Literal::negative(Atom::new(r(2), vec![s(0), s(1)])),
            ],
        )
        .unwrap()]);
        let strata = [tc_program(), stratum1];
        let mut b = DatabaseBuilder::new().relation(r(1), 2).relation(r(3), 1);
        for i in 1..=3u32 {
            b = b.fact(r(3), [i]);
        }
        // unreach(9,9) cannot be derived (9 is not a node): EDB-only fact
        b = b.fact(r(1), [1u32, 2]).fact(r(4), [9u32, 9]);
        let mut edb = b.build().unwrap();
        let mut session = IncrementalSession::new(&strata, &edb).unwrap();

        // mutating an edge forces the fallback for the negation stratum
        session.insert_facts(&[(r(1), tuple![2, 3])]).unwrap();
        edb.insert_fact(r(1), tuple![2, 3]).unwrap();
        assert_eq!(session.current(), from_scratch(&strata, &edb));
        assert!(session.holds(r(4), &tuple![9, 9]));
    }

    #[test]
    fn program_facts_survive_unrelated_deletions() {
        // q(7). plus TC; deleting an edge must not disturb the fact rule.
        let mut program = tc_program();
        program
            .rules
            .push(Rule::new(Atom::new(r(4), vec![Term::Const(Const::new(7))]), vec![]).unwrap());
        let strata = [program];
        let mut edb = chain_db(4);
        let mut session = IncrementalSession::new(&strata, &edb).unwrap();

        session.remove_facts(&[(r(1), tuple![2, 3])]).unwrap();
        edb.remove_fact(r(1), &tuple![2, 3]);
        assert_eq!(session.current(), from_scratch(&strata, &edb));
        assert!(session.holds(r(4), &tuple![7]));
    }
}
