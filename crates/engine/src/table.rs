//! Subsumptive call-pattern memoization for goal-directed queries.
//!
//! A [`SubsumptiveTable`] memoizes the answers of point queries on one
//! immutable snapshot: the key is the *call pattern* — relation, the mask
//! of bound argument positions, and the bound values packed into a `u64`
//! through the same [`crate::fx::KeyAcc`] scheme the join indexes use —
//! and the value is the exact answer set for that call.
//!
//! Lookups are **subsumptive** (Tekle & Liu, *More Efficient Datalog
//! Queries: Subsumptive Tabling Beats Magic Sets*): a call
//! `reach('a', 'b')` is answered from a memoized more-general call
//! `reach('a', x)` by filtering the memoized answers on the extra bound
//! column — no evaluation at all.  Concretely, a stored entry subsumes a
//! lookup when its bound-position mask is a subset of the lookup's mask
//! and the shared positions carry the same constants.
//!
//! The table never invalidates individual entries: it caches answers over
//! one immutable epoch snapshot, so the owner (the service's per-epoch
//! query cache) drops the whole table when a new epoch is published.
//! Hit/miss/eviction counts feed the `kbt_engine_table_*` counters on the
//! global registry.

use std::collections::HashMap;

use kbt_data::{Const, Relation};

use crate::fx::{FxBuild, KeyAcc};
use crate::metrics::metrics;

/// Widest relation a call-pattern mask can express.
const MAX_MASK_ARITY: usize = 32;

/// One memoized call: the verified bound values (packed keys over > 2
/// columns can collide) and the exact answer set.
#[derive(Clone, Debug)]
struct Entry {
    /// Bound values in ascending position order.
    bound: Vec<Const>,
    /// The memoized answers (all columns, already filtered to the call).
    answer: Relation,
}

/// A memo of goal-directed query answers over one immutable snapshot,
/// keyed by packed call patterns and consulted subsumptively.
///
/// The `tag` argument on every method lets one table serve several answer
/// spaces (the service uses it to separate certain from possible answers);
/// entries never mix across tags.
#[derive(Clone, Debug, Default)]
pub struct SubsumptiveTable {
    /// `(tag, rel, mask, packed bound values)` → collision bucket.
    entries: HashMap<(u8, u32, u32, u64), Vec<Entry>, FxBuild>,
    /// Masks present per `(tag, rel)`, for the subsumption walk.
    masks: HashMap<(u8, u32), Vec<u32>, FxBuild>,
}

impl SubsumptiveTable {
    /// An empty table.
    pub fn new() -> Self {
        SubsumptiveTable::default()
    }

    /// Number of memoized calls.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Whether the table memoizes nothing.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the answers for a call on `rel` with the given bound
    /// positions (ascending position order).  Returns the exact answer
    /// set on an exact or subsuming hit, `None` on a miss.  Bumps the
    /// `kbt_engine_table_{hits,misses}` counters.
    pub fn lookup(&self, tag: u8, rel: u32, bound: &[(usize, Const)]) -> Option<Relation> {
        let m = metrics();
        match self.lookup_inner(tag, rel, bound) {
            Some(answer) => {
                m.table_hits.inc();
                Some(answer)
            }
            None => {
                m.table_misses.inc();
                None
            }
        }
    }

    fn lookup_inner(&self, tag: u8, rel: u32, bound: &[(usize, Const)]) -> Option<Relation> {
        let mask = pattern_mask(bound)?;
        // Exact hit first.
        if let Some(entry) = self.find(tag, rel, mask, bound) {
            return Some(entry.answer.clone());
        }
        // Subsuming entries: a strict subset mask agreeing on the shared
        // positions; prefer the most-bound one (least residual filtering).
        let mut cands: Vec<u32> = self
            .masks
            .get(&(tag, rel))?
            .iter()
            .copied()
            .filter(|m| m & mask == *m && *m != mask)
            .collect();
        cands.sort_by_key(|m| std::cmp::Reverse(m.count_ones()));
        for sub in cands {
            let shared: Vec<(usize, Const)> = bound
                .iter()
                .copied()
                .filter(|(i, _)| sub & (1 << *i) != 0)
                .collect();
            if let Some(entry) = self.find(tag, rel, sub, &shared) {
                let residual: Vec<(usize, Const)> = bound
                    .iter()
                    .copied()
                    .filter(|(i, _)| sub & (1 << *i) == 0)
                    .collect();
                return Some(filter_rows(&entry.answer, &residual));
            }
        }
        None
    }

    /// Memoizes the answers of one call.  Overwrites an existing entry for
    /// the same pattern.
    pub fn insert(&mut self, tag: u8, rel: u32, bound: &[(usize, Const)], answer: Relation) {
        let Some(mask) = pattern_mask(bound) else {
            return;
        };
        let key = (tag, rel, mask, pack_bound(bound));
        let values: Vec<Const> = bound.iter().map(|(_, c)| *c).collect();
        let bucket = self.entries.entry(key).or_default();
        match bucket.iter_mut().find(|e| e.bound == values) {
            Some(entry) => entry.answer = answer,
            None => {
                bucket.push(Entry {
                    bound: values,
                    answer,
                });
                let masks = self.masks.entry((tag, rel)).or_default();
                if !masks.contains(&mask) {
                    masks.push(mask);
                }
            }
        }
    }

    /// Drops every memoized call (the snapshot the answers were computed
    /// over is being superseded).  Returns the number of entries dropped
    /// and adds it to the `kbt_engine_table_evictions` counter.
    pub fn evict(&mut self) -> usize {
        let dropped = self.len();
        self.entries.clear();
        self.masks.clear();
        if dropped > 0 {
            metrics().table_evictions.add(dropped as u64);
        }
        dropped
    }

    fn find(&self, tag: u8, rel: u32, mask: u32, bound: &[(usize, Const)]) -> Option<&Entry> {
        let key = (tag, rel, mask, pack_bound(bound));
        self.entries.get(&key)?.iter().find(|e| {
            e.bound.len() == bound.len() && e.bound.iter().zip(bound).all(|(a, (_, b))| a == b)
        })
    }
}

/// The bound-position mask of a call pattern, or `None` when a position is
/// too wide to index (callers simply skip tabling then).
fn pattern_mask(bound: &[(usize, Const)]) -> Option<u32> {
    let mut mask = 0u32;
    for (i, _) in bound {
        if *i >= MAX_MASK_ARITY {
            return None;
        }
        mask |= 1 << *i;
    }
    Some(mask)
}

/// Packs the bound values (ascending position order) into a `u64` key.
fn pack_bound(bound: &[(usize, Const)]) -> u64 {
    let mut acc = KeyAcc::new(bound.len());
    for (_, c) in bound {
        acc.push(*c);
    }
    acc.finish()
}

/// Keeps the rows of `rel` whose columns match every `(position, value)`
/// constraint.
pub fn filter_rows(rel: &Relation, bound: &[(usize, Const)]) -> Relation {
    if bound.is_empty() {
        return rel.clone();
    }
    let mut out = Relation::empty(rel.arity());
    for row in rel.iter() {
        if bound.iter().all(|(i, c)| row[*i] == *c) {
            out.insert_row(row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_of(rows: &[[u32; 2]]) -> Relation {
        let mut r = Relation::empty(2);
        for row in rows {
            r.insert_row(&[Const::new(row[0]), Const::new(row[1])]);
        }
        r
    }

    #[test]
    fn exact_hits_return_the_memoized_answer() {
        let mut t = SubsumptiveTable::new();
        let call = [(0usize, Const::new(5))];
        assert!(t.lookup(0, 7, &call).is_none());
        let ans = rel_of(&[[5, 1], [5, 2]]);
        t.insert(0, 7, &call, ans.clone());
        assert_eq!(t.lookup(0, 7, &call), Some(ans));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn more_general_calls_subsume_specific_ones() {
        let mut t = SubsumptiveTable::new();
        let general = [(0usize, Const::new(5))];
        t.insert(0, 7, &general, rel_of(&[[5, 1], [5, 2]]));
        // reach(5, 2) is answered from the memoized reach(5, x).
        let specific = [(0usize, Const::new(5)), (1usize, Const::new(2))];
        let got = t.lookup(0, 7, &specific).expect("subsumptive hit");
        assert_eq!(got, rel_of(&[[5, 2]]));
        // A disagreeing shared position is not subsumed.
        let other = [(0usize, Const::new(6)), (1usize, Const::new(2))];
        assert!(t.lookup(0, 7, &other).is_none());
    }

    #[test]
    fn the_all_free_entry_subsumes_everything() {
        let mut t = SubsumptiveTable::new();
        t.insert(1, 3, &[], rel_of(&[[1, 2], [3, 4]]));
        let got = t.lookup(1, 3, &[(1usize, Const::new(4))]).unwrap();
        assert_eq!(got, rel_of(&[[3, 4]]));
    }

    #[test]
    fn tags_and_relations_do_not_mix() {
        let mut t = SubsumptiveTable::new();
        let call = [(0usize, Const::new(5))];
        t.insert(0, 7, &call, rel_of(&[[5, 1]]));
        assert!(t.lookup(1, 7, &call).is_none());
        assert!(t.lookup(0, 8, &call).is_none());
    }

    #[test]
    fn eviction_empties_the_table() {
        let mut t = SubsumptiveTable::new();
        t.insert(0, 7, &[(0usize, Const::new(5))], rel_of(&[[5, 1]]));
        t.insert(0, 7, &[(0usize, Const::new(6))], rel_of(&[[6, 1]]));
        assert_eq!(t.evict(), 2);
        assert!(t.is_empty());
        assert!(t.lookup(0, 7, &[(0usize, Const::new(5))]).is_none());
    }

    #[test]
    fn wide_collision_prone_keys_verify_bound_values() {
        // Three bound columns fall back to hash-with-verify; a lookup with
        // different values must not alias even if keys collided.
        let mut t = SubsumptiveTable::new();
        let mut r3 = Relation::empty(3);
        r3.insert_row(&[Const::new(1), Const::new(2), Const::new(3)]);
        let call = [
            (0usize, Const::new(1)),
            (1usize, Const::new(2)),
            (2usize, Const::new(3)),
        ];
        t.insert(0, 9, &call, r3.clone());
        assert_eq!(t.lookup(0, 9, &call), Some(r3));
        let other = [
            (0usize, Const::new(3)),
            (1usize, Const::new(2)),
            (2usize, Const::new(1)),
        ];
        assert!(t.lookup(0, 9, &other).is_none());
    }
}
