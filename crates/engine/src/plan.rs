//! The join planner: compiles rule bodies into sequences of index probes.
//!
//! For each rule the planner orders the body greedily — at every step it
//! picks the positive atom with the most bound argument positions (constants
//! count as bound), breaking ties by preferring the relation with the
//! smallest cardinality at planning time (when the caller supplies sizes via
//! [`PlannedRule::plan_sized`]), interleaving negated literals as soon as
//! all their slots are bound so they prune as early as possible.  Each
//! chosen atom becomes one [`Step`]:
//!
//! * every position bound at that point contributes to the atom's *binding
//!   mask*, and the step becomes an index [`Step::Probe`] keyed by the bound
//!   columns;
//! * a fully bound atom degenerates to a membership test ([`Step::Member`]);
//! * an atom with no bound positions is a [`Step::Scan`] (this only happens
//!   for the first atom of a plan, or for genuinely cross-product rules).
//!
//! For semi-naive evaluation the planner additionally produces one *delta
//! variant* per positive occurrence of an intensional relation: that
//! occurrence is forced to the front as a scan of the delta relation, and
//! the rest of the body is re-planned greedily around the slots it binds.

use std::collections::{BTreeMap, BTreeSet};

use kbt_data::RelId;

use crate::index::Mask;
use crate::ir::{Atom, Rule, Term};

/// Where a scan step reads its tuples from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Source {
    /// The full relation.
    Full,
    /// The delta of the current semi-naive round.
    Delta,
}

/// One compiled join step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Step {
    /// Iterate over every tuple of `rel` (from `source`), matching each
    /// column against `cols` (constants filter, unbound slots bind, bound
    /// slots — possible when scanning a delta driver — compare).
    Scan {
        /// The scanned relation.
        rel: RelId,
        /// Full relation or current delta.
        source: Source,
        /// `(column, term)` for every column.
        cols: Vec<(usize, Term)>,
    },
    /// Probe the hash index of `rel` for `mask` with a key assembled from
    /// `key`, then bind the remaining columns per `cols`.
    Probe {
        /// The probed relation.
        rel: RelId,
        /// The binding pattern of the probe.
        mask: Mask,
        /// Key parts in ascending column order (slots are bound).
        key: Vec<Term>,
        /// `(column, term)` for the unbound columns (always slots — bound
        /// terms are part of the key).
        cols: Vec<(usize, Term)>,
    },
    /// All columns bound: a single membership check.
    Member {
        /// The checked relation.
        rel: RelId,
        /// The fully bound argument terms.
        terms: Vec<Term>,
    },
    /// A negated literal with all slots bound: succeed iff absent.
    NegCheck {
        /// The negated relation.
        rel: RelId,
        /// The fully bound argument terms.
        terms: Vec<Term>,
    },
}

/// A fully ordered compilation of one rule body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinPlan {
    /// For delta variants, the body position driven by the delta.
    pub delta_pos: Option<usize>,
    /// The steps, in execution order.
    pub steps: Vec<Step>,
}

impl JoinPlan {
    /// The leading scan step and the remaining steps, when this plan is
    /// driven by a scan.  This is the decomposition the parallel evaluator
    /// chunks: the driving scan's tuple range is split across workers and
    /// the remaining steps run per worker.  Plans not led by a scan (first
    /// atom constant-bound, or a fact rule with no body) return `None` and
    /// run as a single unit of work.
    pub fn split_driving_scan(&self) -> Option<(&Step, &[Step])> {
        match self.steps.split_first() {
            Some((step @ Step::Scan { .. }, rest)) => Some((step, rest)),
            _ => None,
        }
    }
}

/// A rule with its full plan and one delta variant per IDB occurrence.
#[derive(Clone, Debug)]
pub struct PlannedRule {
    /// The head atom (slots are bound by the body plans).
    pub head: Atom,
    /// Number of register slots.
    pub slots: usize,
    /// The plan used by naive rounds and the semi-naive seeding round.
    pub full: JoinPlan,
    /// One variant per positive body occurrence of an IDB relation, with
    /// that occurrence scanning the delta.
    pub deltas: Vec<(RelId, JoinPlan)>,
    /// Provenance carried from [`Rule::name`]: the rule's source text in
    /// the caller's vocabulary, for plans and profiles.
    pub name: Option<String>,
}

impl PlannedRule {
    /// Plans `rule`, producing delta variants for positive occurrences of
    /// the relations in `idb`.
    pub fn plan(rule: &Rule, idb: &BTreeSet<RelId>) -> Self {
        PlannedRule::plan_sized(rule, idb, &BTreeMap::new())
    }

    /// Like [`Self::plan`], but with relation cardinalities known at
    /// planning time: ties on bound-position counts are broken towards the
    /// smaller relation (relations absent from `sizes` count as empty).
    pub fn plan_sized(rule: &Rule, idb: &BTreeSet<RelId>, sizes: &BTreeMap<RelId, usize>) -> Self {
        let full = plan_body(rule, None, sizes);
        let deltas = rule
            .positive_atoms()
            .filter(|(_, atom)| idb.contains(&atom.rel))
            .map(|(pos, atom)| (atom.rel, plan_body(rule, Some(pos), sizes)))
            .collect();
        PlannedRule {
            head: rule.head.clone(),
            slots: rule.slots,
            full,
            deltas,
            name: rule.name.clone(),
        }
    }

    /// Stable one-line rendering of the rule's plans: the head, the full
    /// plan, then one `Δrel:` section per delta variant.  `namer` maps
    /// relation ids into the caller's vocabulary (e.g. the service's
    /// relation names); the output is deterministic for a given plan, so
    /// it is safe to pin in golden tests and ship over the wire.
    pub fn render(&self, namer: &dyn Fn(RelId) -> String) -> String {
        let mut out = format!(
            "{} <- {}",
            render_app(&namer(self.head.rel), &self.head.terms),
            self.full.render(namer)
        );
        for (rel, plan) in &self.deltas {
            out.push_str(" | d");
            out.push_str(&namer(*rel));
            out.push_str(": ");
            out.push_str(&plan.render(namer));
        }
        out
    }

    /// Every `(relation, mask)` index the plans demand.
    pub fn demanded_indexes(&self) -> BTreeSet<(RelId, Mask)> {
        let mut out = BTreeSet::new();
        for plan in std::iter::once(&self.full).chain(self.deltas.iter().map(|(_, p)| p)) {
            for step in &plan.steps {
                if let Step::Probe { rel, mask, .. } = step {
                    out.insert((*rel, *mask));
                }
            }
        }
        out
    }
}

/// Renders `name(t0, t1, …)` with the ir term syntax (`s0`, constants).
fn render_app(name: &str, terms: &[Term]) -> String {
    let args: Vec<String> = terms.iter().map(Term::to_string).collect();
    format!("{name}({})", args.join(", "))
}

impl JoinPlan {
    /// Stable one-line rendering of the steps in execution order, joined
    /// with `; `: `scan` (the driving scan, `#delta` for delta drivers),
    /// `probe` with its bound-column mask and key, `member`, and `absent`
    /// (negation).  Fact rules with no body render as `emit`.
    pub fn render(&self, namer: &dyn Fn(RelId) -> String) -> String {
        if self.steps.is_empty() {
            return "emit".to_string();
        }
        let steps: Vec<String> = self
            .steps
            .iter()
            .map(|step| match step {
                Step::Scan { rel, source, cols } => {
                    let suffix = match source {
                        Source::Delta => "#delta",
                        Source::Full => "",
                    };
                    let mut cols = cols.clone();
                    cols.sort_by_key(|&(c, _)| c);
                    let terms: Vec<Term> = cols.into_iter().map(|(_, t)| t).collect();
                    format!("scan {}{suffix}{}", namer(*rel), render_app("", &terms))
                }
                Step::Probe {
                    rel,
                    mask,
                    key,
                    cols,
                } => {
                    let width = key.len() + cols.len();
                    let keys: Vec<String> = key.iter().map(Term::to_string).collect();
                    format!(
                        "probe {} mask=0b{mask:0width$b} key=({})",
                        namer(*rel),
                        keys.join(", ")
                    )
                }
                Step::Member { rel, terms } => {
                    format!("member {}{}", namer(*rel), render_app("", terms))
                }
                Step::NegCheck { rel, terms } => {
                    format!("absent {}{}", namer(*rel), render_app("", terms))
                }
            })
            .collect();
        steps.join("; ")
    }
}

/// Compiles one atom into a step given the currently bound slots.
fn compile_atom(atom: &Atom, bound: &[bool], source: Source) -> Step {
    if source == Source::Delta {
        // Delta drivers are always scans of the (small) delta relation;
        // constants and already-bound slots are checked per tuple.
        return Step::Scan {
            rel: atom.rel,
            source,
            cols: atom.terms.iter().copied().enumerate().collect(),
        };
    }
    let mut mask: Mask = 0;
    for (i, term) in atom.terms.iter().enumerate() {
        let is_bound = match term {
            Term::Const(_) => true,
            Term::Slot(s) => bound[*s],
        };
        if is_bound {
            mask |= 1 << i;
        }
    }
    let arity = atom.arity();
    if arity > 0 && mask == (Mask::MAX >> (Mask::BITS - arity as u32)) {
        return Step::Member {
            rel: atom.rel,
            terms: atom.terms.clone(),
        };
    }
    if arity == 0 {
        return Step::Member {
            rel: atom.rel,
            terms: Vec::new(),
        };
    }
    if mask == 0 {
        return Step::Scan {
            rel: atom.rel,
            source: Source::Full,
            cols: atom.terms.iter().copied().enumerate().collect(),
        };
    }
    let key = atom
        .terms
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask >> i & 1 == 1)
        .map(|(_, &t)| t)
        .collect();
    let cols = atom
        .terms
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask >> i & 1 == 0)
        .map(|(i, &t)| {
            debug_assert!(matches!(t, Term::Slot(_)), "constants are always bound");
            (i, t)
        })
        .collect();
    Step::Probe {
        rel: atom.rel,
        mask,
        key,
        cols,
    }
}

/// Number of bound argument positions of `atom` under `bound`.
fn bound_positions(atom: &Atom, bound: &[bool]) -> usize {
    atom.terms
        .iter()
        .filter(|t| match t {
            Term::Const(_) => true,
            Term::Slot(s) => bound[*s],
        })
        .count()
}

fn mark_bound(atom: &Atom, bound: &mut [bool]) {
    for s in atom.slots() {
        bound[s] = true;
    }
}

/// Plans the body of `rule`; `forced_first` names a body position scanned
/// from the delta and moved to the front; `sizes` supplies the relation
/// cardinalities used to break greedy ties.
fn plan_body(rule: &Rule, forced_first: Option<usize>, sizes: &BTreeMap<RelId, usize>) -> JoinPlan {
    let mut bound = vec![false; rule.slots];
    let mut steps = Vec::with_capacity(rule.body.len());
    let mut scheduled = vec![false; rule.body.len()];

    if let Some(pos) = forced_first {
        let atom = &rule.body[pos].atom;
        debug_assert!(rule.body[pos].positive, "delta drivers are positive");
        steps.push(compile_atom(atom, &bound, Source::Delta));
        mark_bound(atom, &mut bound);
        scheduled[pos] = true;
    }

    loop {
        // Negated literals prune as soon as they are fully bound.
        let ready_negative = rule.body.iter().enumerate().position(|(i, l)| {
            !scheduled[i] && !l.positive && l.atom.slots().iter().all(|&s| bound[s])
        });
        if let Some(i) = ready_negative {
            steps.push(Step::NegCheck {
                rel: rule.body[i].atom.rel,
                terms: rule.body[i].atom.terms.clone(),
            });
            scheduled[i] = true;
            continue;
        }
        // Greedy: the positive atom with the most bound positions next;
        // ties go to the smallest relation (ROADMAP "join-order
        // statistics" — probing into fewer tuples first shrinks every
        // intermediate binding set downstream).
        let best = rule
            .body
            .iter()
            .enumerate()
            .filter(|(i, l)| !scheduled[*i] && l.positive)
            .max_by_key(|(i, l)| {
                (
                    bound_positions(&l.atom, &bound),
                    std::cmp::Reverse(sizes.get(&l.atom.rel).copied().unwrap_or(0)),
                    std::cmp::Reverse(l.atom.arity()),
                    std::cmp::Reverse(*i),
                )
            });
        let Some((i, lit)) = best else {
            break;
        };
        steps.push(compile_atom(&lit.atom, &bound, Source::Full));
        mark_bound(&lit.atom, &mut bound);
        scheduled[i] = true;
    }

    debug_assert!(
        scheduled.iter().all(|&s| s),
        "range restriction guarantees every literal is schedulable"
    );
    JoinPlan {
        delta_pos: forced_first,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Literal, Rule};
    use kbt_data::Const;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn s(i: usize) -> Term {
        Term::Slot(i)
    }

    /// path(x,z) :- path(x,y), edge(y,z).
    fn tc_recursive_rule() -> Rule {
        Rule::new(
            Atom::new(r(2), vec![s(0), s(2)]),
            vec![
                Literal::positive(Atom::new(r(2), vec![s(0), s(1)])),
                Literal::positive(Atom::new(r(1), vec![s(1), s(2)])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn full_plan_scans_once_then_probes() {
        let idb = [r(2)].into_iter().collect();
        let planned = PlannedRule::plan(&tc_recursive_rule(), &idb);
        assert_eq!(planned.full.steps.len(), 2);
        assert!(matches!(
            planned.full.steps[0],
            Step::Scan {
                source: Source::Full,
                ..
            }
        ));
        // The second atom has its first column bound → probe with mask 0b01.
        assert!(matches!(
            planned.full.steps[1],
            Step::Probe { mask: 0b01, .. }
        ));
    }

    #[test]
    fn one_delta_variant_per_idb_occurrence() {
        let idb = [r(2)].into_iter().collect();
        let planned = PlannedRule::plan(&tc_recursive_rule(), &idb);
        assert_eq!(planned.deltas.len(), 1);
        let (drel, dplan) = &planned.deltas[0];
        assert_eq!(*drel, r(2));
        assert_eq!(dplan.delta_pos, Some(0));
        assert!(matches!(
            dplan.steps[0],
            Step::Scan {
                source: Source::Delta,
                ..
            }
        ));
        assert!(matches!(dplan.steps[1], Step::Probe { mask: 0b01, .. }));
    }

    #[test]
    fn plans_render_stably_with_names() {
        let idb = [r(2)].into_iter().collect();
        let planned = PlannedRule::plan(&tc_recursive_rule(), &idb);
        let namer = |rel: RelId| if rel == r(1) { "edge" } else { "path" }.to_string();
        assert_eq!(
            planned.render(&namer),
            "path(s0, s2) <- scan path(s0, s1); probe edge mask=0b01 key=(s1) \
             | dpath: scan path#delta(s0, s1); probe edge mask=0b01 key=(s1)"
        );
        // Without a vocabulary the raw relation ids appear.
        assert!(planned
            .render(&|rel: RelId| rel.to_string())
            .starts_with("R2(s0, s2) <- scan R2(s0, s1)"));
    }

    #[test]
    fn constants_are_bound_positions() {
        // p(x) :- edge(1, x): the constant makes column 0 bound → probe.
        let rule = Rule::new(
            Atom::new(r(3), vec![s(0)]),
            vec![Literal::positive(Atom::new(
                r(1),
                vec![Term::Const(Const::new(1)), s(0)],
            ))],
        )
        .unwrap();
        let planned = PlannedRule::plan(&rule, &BTreeSet::new());
        assert!(matches!(
            planned.full.steps[0],
            Step::Probe { mask: 0b01, .. }
        ));
    }

    #[test]
    fn fully_bound_atoms_become_membership_checks() {
        // triangle(x,y,z) :- e(x,y), e(y,z), e(z,x): the closing edge is a
        // membership test, not a scan.
        let e = |a, b| Atom::new(r(1), vec![a, b]);
        let rule = Rule::new(
            Atom::new(r(2), vec![s(0), s(1), s(2)]),
            vec![
                Literal::positive(e(s(0), s(1))),
                Literal::positive(e(s(1), s(2))),
                Literal::positive(e(s(2), s(0))),
            ],
        )
        .unwrap();
        let planned = PlannedRule::plan(&rule, &BTreeSet::new());
        assert!(matches!(planned.full.steps[0], Step::Scan { .. }));
        assert!(matches!(planned.full.steps[1], Step::Probe { .. }));
        assert!(matches!(planned.full.steps[2], Step::Member { .. }));
    }

    #[test]
    fn negations_run_as_soon_as_bound() {
        // unreach(x,y) :- node(x), node(y), ~reach(x,y): the negation must
        // be scheduled after both nodes but before nothing else.
        let rule = Rule::new(
            Atom::new(r(4), vec![s(0), s(1)]),
            vec![
                Literal::positive(Atom::new(r(3), vec![s(0)])),
                Literal::positive(Atom::new(r(3), vec![s(1)])),
                Literal::negative(Atom::new(r(2), vec![s(0), s(1)])),
            ],
        )
        .unwrap();
        let planned = PlannedRule::plan(&rule, &BTreeSet::new());
        assert_eq!(planned.full.steps.len(), 3);
        assert!(matches!(planned.full.steps[2], Step::NegCheck { .. }));
    }

    #[test]
    fn demanded_indexes_cover_all_variants() {
        let idb = [r(2)].into_iter().collect();
        let planned = PlannedRule::plan(&tc_recursive_rule(), &idb);
        let demanded = planned.demanded_indexes();
        assert!(demanded.contains(&(r(1), 0b01)));
    }

    #[test]
    fn cardinality_breaks_greedy_ties_towards_the_smaller_relation() {
        // both(x,y,z) :- big(x,y), small(y,z): neither atom has a bound
        // position at the start, so the planner's bound-position greedy is
        // tied — the cardinality tie-break must scan the smaller relation
        // first and probe the bigger one.
        let rule = Rule::new(
            Atom::new(r(3), vec![s(0), s(1), s(2)]),
            vec![
                Literal::positive(Atom::new(r(1), vec![s(0), s(1)])),
                Literal::positive(Atom::new(r(2), vec![s(1), s(2)])),
            ],
        )
        .unwrap();
        let sizes: BTreeMap<RelId, usize> = [(r(1), 10_000), (r(2), 3)].into_iter().collect();
        let planned = PlannedRule::plan_sized(&rule, &BTreeSet::new(), &sizes);
        assert!(
            matches!(planned.full.steps[0], Step::Scan { rel, .. } if rel == r(2)),
            "the small relation must be scanned first, got {:?}",
            planned.full.steps[0]
        );
        assert!(
            matches!(planned.full.steps[1], Step::Probe { rel, mask: 0b10, .. } if rel == r(1)),
            "the big relation must be probed on the shared column, got {:?}",
            planned.full.steps[1]
        );

        // with the sizes swapped, the order flips
        let sizes: BTreeMap<RelId, usize> = [(r(1), 3), (r(2), 10_000)].into_iter().collect();
        let planned = PlannedRule::plan_sized(&rule, &BTreeSet::new(), &sizes);
        assert!(matches!(planned.full.steps[0], Step::Scan { rel, .. } if rel == r(1)));

        // without sizes the old positional tie-break is preserved
        let planned = PlannedRule::plan(&rule, &BTreeSet::new());
        assert!(matches!(planned.full.steps[0], Step::Scan { rel, .. } if rel == r(1)));
    }

    #[test]
    fn zero_ary_atoms_are_membership_checks() {
        let rule = Rule::new(
            Atom::new(r(2), vec![]),
            vec![Literal::positive(Atom::new(r(1), vec![]))],
        )
        .unwrap();
        let planned = PlannedRule::plan(&rule, &BTreeSet::new());
        assert!(matches!(planned.full.steps[0], Step::Member { .. }));
    }
}
