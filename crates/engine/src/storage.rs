//! Storage of whole databases in indexed form.

use std::collections::{BTreeMap, HashMap, HashSet};

use kbt_data::{Const, DataError, Database, RelId, Tuple};

use crate::index::{IndexedRelation, Mask};

/// A database whose relations are [`IndexedRelation`]s: the engine's working
/// set during fixpoint evaluation.
#[derive(Clone, Debug, Default)]
pub struct IndexStorage {
    relations: BTreeMap<RelId, IndexedRelation>,
}

impl IndexStorage {
    /// Empty storage.
    pub fn new() -> Self {
        IndexStorage::default()
    }

    /// Copies a database into indexed form.
    pub fn from_database(db: &Database) -> Self {
        IndexStorage {
            relations: db
                .iter()
                .map(|(rel, r)| (rel, IndexedRelation::from_relation(r)))
                .collect(),
        }
    }

    /// Ensures `rel` exists with the given arity (empty if absent); fails on
    /// an arity conflict.
    pub fn ensure_relation(&mut self, rel: RelId, arity: usize) -> Result<(), DataError> {
        match self.relations.get(&rel) {
            Some(existing) if existing.arity() != arity => Err(DataError::ArityMismatch {
                rel,
                expected: existing.arity(),
                found: arity,
            }),
            Some(_) => Ok(()),
            None => {
                self.relations.insert(rel, IndexedRelation::new(arity));
                Ok(())
            }
        }
    }

    /// The indexed relation stored under `rel`, if any.
    pub fn relation(&self, rel: RelId) -> Option<&IndexedRelation> {
        self.relations.get(&rel)
    }

    /// A copy-on-write snapshot of the relation stored under `rel` (see
    /// [`IndexedRelation::snapshot`]): `O(1)` after the first call, and
    /// never disturbed by later mutations of the storage.
    pub fn snapshot_relation(&mut self, rel: RelId) -> Option<kbt_data::Relation> {
        self.relations.get_mut(&rel).map(IndexedRelation::snapshot)
    }

    /// Whether the fact `rel(t)` is stored.
    pub fn holds(&self, rel: RelId, t: &Tuple) -> bool {
        self.relations.get(&rel).is_some_and(|r| r.contains(t))
    }

    /// [`Self::holds`] for a raw row slice (the row's length must match the
    /// relation's arity — derived head rows always do).
    pub fn holds_row(&self, rel: RelId, row: &[Const]) -> bool {
        self.relations
            .get(&rel)
            .is_some_and(|r| r.contains_row(row))
    }

    /// Inserts a fact into an existing relation; returns `true` if new.
    pub fn insert_fact(&mut self, rel: RelId, t: Tuple) -> bool {
        self.relations
            .get_mut(&rel)
            .expect("relation ensured before evaluation")
            .insert(t)
    }

    /// [`Self::insert_fact`] for a raw row slice.
    pub fn insert_row(&mut self, rel: RelId, row: &[Const]) -> bool {
        self.relations
            .get_mut(&rel)
            .expect("relation ensured before evaluation")
            .insert_row(row)
    }

    /// Removes a fact, returning `true` if it was present.  Unknown
    /// relations simply report `false`.
    pub fn remove_fact(&mut self, rel: RelId, t: &Tuple) -> bool {
        self.relations.get_mut(&rel).is_some_and(|r| r.remove(t))
    }

    /// [`Self::remove_fact`] for a raw row slice.
    pub fn remove_row(&mut self, rel: RelId, row: &[Const]) -> bool {
        self.relations
            .get_mut(&rel)
            .is_some_and(|r| r.remove_row(row))
    }

    /// Empties a relation while keeping its demanded indexes probe-ready
    /// (used by the incremental session to recompute a stratum from
    /// scratch).  A no-op for unknown relations.
    pub fn clear_relation(&mut self, rel: RelId) {
        if let Some(r) = self.relations.get_mut(&rel) {
            r.clear();
        }
    }

    /// Demands the index for `(rel, mask)`; a no-op for unknown relations.
    pub fn ensure_index(&mut self, rel: RelId, mask: Mask) {
        if let Some(r) = self.relations.get_mut(&rel) {
            r.ensure_index(mask);
        }
    }

    /// The number of facts stored under `rel` (0 when absent); the
    /// cardinality source for the join planner's tie-breaking.
    pub fn relation_len(&self, rel: RelId) -> usize {
        self.relations.get(&rel).map_or(0, IndexedRelation::len)
    }

    /// Total number of stored facts.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(IndexedRelation::len).sum()
    }

    /// Total number of mirror desync rebuilds across all relations (zero in
    /// a correct engine — see [`IndexedRelation::mirror_rebuilds`]).
    pub fn mirror_rebuilds(&self) -> usize {
        self.relations
            .values()
            .map(IndexedRelation::mirror_rebuilds)
            .sum()
    }

    /// Copies the storage back into a plain database.
    pub fn to_database(&self) -> Database {
        let mut db = Database::new();
        for (&rel, r) in &self.relations {
            db.set_relation(rel, r.to_relation());
        }
        db
    }
}

/// A flat hashed snapshot of a database: O(1) `holds` checks without the
/// ordering overhead of `BTreeSet` relations.
///
/// `kbt-core`'s update strategies use this when they need many membership
/// tests against a fixed database (candidate filtering during grounding and
/// the quantifier-free fast path).
#[derive(Clone, Debug, Default)]
pub struct FactSet {
    facts: HashMap<RelId, HashSet<Tuple>>,
}

impl FactSet {
    /// Snapshots a database (tuples are materialised from the flat row
    /// storage once, here — the point of the snapshot is that `holds` then
    /// never touches the sorted runs again).
    pub fn from_database(db: &Database) -> Self {
        FactSet {
            facts: db
                .iter()
                .map(|(rel, r)| (rel, r.tuples().collect()))
                .collect(),
        }
    }

    /// Whether the fact `rel(t)` is in the snapshot.
    pub fn holds(&self, rel: RelId, t: &Tuple) -> bool {
        self.facts.get(&rel).is_some_and(|s| s.contains(t))
    }

    /// Number of facts in the snapshot.
    pub fn len(&self) -> usize {
        self.facts.values().map(HashSet::len).sum()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::{tuple, DatabaseBuilder};

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn db() -> Database {
        DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 3])
            .fact(r(2), [7u32])
            .build()
            .unwrap()
    }

    #[test]
    fn database_round_trip() {
        let storage = IndexStorage::from_database(&db());
        assert_eq!(storage.fact_count(), 3);
        assert!(storage.holds(r(1), &tuple![1, 2]));
        assert!(!storage.holds(r(1), &tuple![2, 1]));
        assert_eq!(storage.to_database(), db());
    }

    #[test]
    fn ensure_relation_enforces_arity() {
        let mut storage = IndexStorage::from_database(&db());
        assert!(storage.ensure_relation(r(1), 2).is_ok());
        assert!(storage.ensure_relation(r(1), 3).is_err());
        assert!(storage.ensure_relation(r(9), 1).is_ok());
        assert!(storage.relation(r(9)).unwrap().is_empty());
    }

    #[test]
    fn insert_fact_reports_novelty() {
        let mut storage = IndexStorage::from_database(&db());
        assert!(storage.insert_fact(r(2), tuple![8]));
        assert!(!storage.insert_fact(r(2), tuple![8]));
        assert_eq!(storage.fact_count(), 4);
    }

    #[test]
    fn remove_fact_reports_presence() {
        let mut storage = IndexStorage::from_database(&db());
        assert!(storage.remove_fact(r(1), &tuple![1, 2]));
        assert!(!storage.remove_fact(r(1), &tuple![1, 2]));
        assert!(!storage.remove_fact(r(9), &tuple![1]));
        assert_eq!(storage.fact_count(), 2);
        assert!(!storage.holds(r(1), &tuple![1, 2]));
        assert_eq!(storage.relation_len(r(1)), 1);
        assert_eq!(storage.relation_len(r(9)), 0);
    }

    #[test]
    fn clear_relation_empties_without_dropping() {
        let mut storage = IndexStorage::from_database(&db());
        storage.clear_relation(r(1));
        assert!(storage.relation(r(1)).unwrap().is_empty());
        assert_eq!(storage.fact_count(), 1);
        storage.clear_relation(r(9)); // unknown relations are a no-op
    }

    #[test]
    fn fact_set_snapshot() {
        let facts = FactSet::from_database(&db());
        assert_eq!(facts.len(), 3);
        assert!(!facts.is_empty());
        assert!(facts.holds(r(2), &tuple![7]));
        assert!(!facts.holds(r(2), &tuple![8]));
        assert!(!facts.holds(r(9), &tuple![7]));
    }
}
