//! Engine error type.

use std::fmt;

use kbt_data::DataError;

/// Errors raised by the evaluation engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A rule is not range-restricted: a head or negated-literal slot does
    /// not occur in any positive body literal.
    UnsafeRule {
        /// Display form of the offending rule.
        rule: String,
    },
    /// A relation is wider than the 32 columns a binding mask can express.
    ArityTooLarge {
        /// The offending relation.
        rel: kbt_data::RelId,
        /// Its arity.
        arity: usize,
    },
    /// An incremental delta tried to insert or remove facts of a relation
    /// that some stratum derives; the session only accepts extensional
    /// mutations (intensional relations are maintained by the fixpoint).
    IntensionalUpdate {
        /// The offending relation.
        rel: kbt_data::RelId,
    },
    /// An error from the relational substrate (arity mismatches, …).
    Data(DataError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::UnsafeRule { rule } => {
                write!(f, "unsafe rule (not range-restricted): {rule}")
            }
            EngineError::ArityTooLarge { rel, arity } => {
                write!(
                    f,
                    "relation {rel} has arity {arity}, above the engine maximum of 32"
                )
            }
            EngineError::IntensionalUpdate { rel } => {
                write!(
                    f,
                    "relation {rel} is intensional: incremental deltas may only touch \
                     extensional relations"
                )
            }
            EngineError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DataError> for EngineError {
    fn from(e: DataError) -> Self {
        EngineError::Data(e)
    }
}
