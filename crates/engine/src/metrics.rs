//! Engine metrics on the process-wide [`kbt_obs::Registry`].
//!
//! These run *alongside* [`crate::EngineStats`], never instead of it:
//! `EngineStats` is part of the deterministic evaluation contract
//! (byte-identical at every thread width), while these registry series
//! aggregate across every evaluation in the process and add wall-clock
//! timing, which is inherently nondeterministic.  Nothing here is ever
//! read back by the evaluator, so enabling or disabling observability
//! cannot perturb fixpoints or stats.
//!
//! Timing (the `_ns` histograms) is gated on the global registry's
//! enabled flag — one relaxed load per span when off.  The counters
//! always accumulate; they are absorbed from the final `EngineStats` in
//! one batch per evaluation, off the round hot path.

use std::sync::OnceLock;

use kbt_obs::{Counter, Histogram, Registry};

use crate::stats::EngineStats;

/// Handles onto the engine's series in [`Registry::global`].
pub struct EngineMetrics {
    /// `kbt_engine_evals_total` — completed from-scratch evaluations.
    pub evals_total: Counter,
    /// `kbt_engine_deltas_total` — completed incremental delta applications.
    pub deltas_total: Counter,
    /// `kbt_engine_rounds_total` — fixpoint rounds across all evaluations.
    pub rounds_total: Counter,
    /// `kbt_engine_derived_facts_total` — facts newly derived.
    pub derived_facts_total: Counter,
    /// `kbt_engine_index_probes_total` — hash-index probes issued.
    pub index_probes_total: Counter,
    /// `kbt_engine_tuples_scanned_total` — tuples inspected by scans/probes.
    pub tuples_scanned_total: Counter,
    /// `kbt_engine_table_hits` — subsumptive-table lookups answered from a
    /// memoized (exact or subsuming) call.
    pub table_hits: Counter,
    /// `kbt_engine_table_misses` — subsumptive-table lookups that found no
    /// memoized call.
    pub table_misses: Counter,
    /// `kbt_engine_table_evictions` — memoized calls dropped when their
    /// snapshot was superseded.
    pub table_evictions: Counter,
    /// `kbt_engine_eval_ns` — whole-evaluation wall time.
    pub eval_ns: Histogram,
    /// `kbt_engine_round_ns` — per-fixpoint-round wall time (derive+commit).
    pub round_ns: Histogram,
    /// `kbt_engine_delta_ns` — per-incremental-delta wall time.
    pub delta_ns: Histogram,
}

impl EngineMetrics {
    /// Records the work counters of one finished evaluation or delta.
    pub fn absorb_stats(&self, stats: &EngineStats) {
        self.rounds_total.add(stats.iterations as u64);
        self.derived_facts_total.add(stats.derived_facts as u64);
        self.index_probes_total.add(stats.index_probes as u64);
        self.tuples_scanned_total.add(stats.tuples_scanned as u64);
    }
}

/// The engine's metric handles, registered once per process.  Calling
/// this eagerly (e.g. at service startup) makes every engine series
/// visible to scrapes before any evaluation has run.
pub fn metrics() -> &'static EngineMetrics {
    static METRICS: OnceLock<EngineMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        for (name, help) in [
            (
                "kbt_engine_evals_total",
                "From-scratch fixpoint evaluations completed.",
            ),
            (
                "kbt_engine_deltas_total",
                "Incremental delta applications completed.",
            ),
            (
                "kbt_engine_rounds_total",
                "Fixpoint rounds across all evaluations.",
            ),
            (
                "kbt_engine_derived_facts_total",
                "Facts newly derived by the engine.",
            ),
            ("kbt_engine_index_probes_total", "Hash-index probes issued."),
            (
                "kbt_engine_tuples_scanned_total",
                "Tuples inspected by scans and probes.",
            ),
            (
                "kbt_engine_table_hits",
                "Subsumptive-table lookups answered from a memoized call.",
            ),
            (
                "kbt_engine_table_misses",
                "Subsumptive-table lookups that found no memoized call.",
            ),
            (
                "kbt_engine_table_evictions",
                "Memoized calls dropped when their snapshot was superseded.",
            ),
            (
                "kbt_engine_eval_ns",
                "Whole-evaluation wall time in nanoseconds.",
            ),
            (
                "kbt_engine_round_ns",
                "Per-fixpoint-round wall time in nanoseconds.",
            ),
            (
                "kbt_engine_delta_ns",
                "Per-incremental-delta wall time in nanoseconds.",
            ),
        ] {
            r.describe(name, help);
        }
        EngineMetrics {
            evals_total: r.counter("kbt_engine_evals_total"),
            deltas_total: r.counter("kbt_engine_deltas_total"),
            rounds_total: r.counter("kbt_engine_rounds_total"),
            derived_facts_total: r.counter("kbt_engine_derived_facts_total"),
            index_probes_total: r.counter("kbt_engine_index_probes_total"),
            tuples_scanned_total: r.counter("kbt_engine_tuples_scanned_total"),
            table_hits: r.counter("kbt_engine_table_hits"),
            table_misses: r.counter("kbt_engine_table_misses"),
            table_evictions: r.counter("kbt_engine_table_evictions"),
            eval_ns: r.histogram("kbt_engine_eval_ns"),
            round_ns: r.histogram("kbt_engine_round_ns"),
            delta_ns: r.histogram("kbt_engine_delta_ns"),
        }
    })
}
