//! Per-rule fixpoint profiling and plan explanation.
//!
//! [`evaluate_profiled`] is [`crate::evaluate_with`] plus a
//! [`RuleProfile`] per planned rule: how many rounds the rule ran in, how
//! many new facts, index probes and scanned tuples it accounted for, and
//! its wall-clock time — all gathered **around** the round driver, never
//! inside the zero-allocation join loops.  [`explain`] renders the plans
//! without evaluating anything.
//!
//! ## Determinism contract
//!
//! Profiling must never perturb evaluation.  A profiled round runs the
//! same `(rule, plan)` pairs the unprofiled round would, one pair at a
//! time through the same `run_round_with` driver with the
//! same keep-filter, and merges the per-rule pending sets into the same
//! canonical (sorted, deduplicated) union before the single per-round
//! commit.  Every plan still executes exactly once per round against
//! unchanged storage, so the fixpoint, the resulting [`Database`] and
//! every [`EngineStats`] counter are byte-identical to the unprofiled
//! path at every thread width — `tests/profile_differential.rs` pins
//! this.  The only additions are `Instant` reads and counter snapshots
//! between plan executions, and an off-hot-path attribution pass over the
//! pending rows before each commit.
//!
//! ## Explanation caveat
//!
//! [`explain`] plans every stratum against the **un-evaluated** storage:
//! relation cardinalities seen by the planner reflect the EDB only, so
//! for later strata the greedy size-based tie-breaks may differ from the
//! plans a real evaluation (which plans each stratum after the previous
//! ones ran) would choose.  The rendering is still the faithful plan for
//! the shown sizes, and for single-stratum programs — every `τ_φ`
//! lowering — it is exact.

use std::collections::BTreeSet;
use std::time::Instant;

use kbt_data::{Const, Database, RelId};

use crate::eval::{commit, plan_stratum, run_round_with, Deltas, Pending};
use crate::ir::Program;
use crate::plan::{JoinPlan, PlannedRule};
use crate::stats::EngineStats;
use crate::storage::IndexStorage;
use crate::{EngineOptions, EvalMode, Result};

/// One rule's share of a fixpoint evaluation.
///
/// `rule` is the provenance text carried by [`crate::ir::Rule::name`]
/// (the source `τ_φ` clause, when the lowering attached it) or the head
/// atom rendered through the namer; `plan` is the stable
/// [`PlannedRule::render`] line.  The counters sum over every round the
/// rule participated in; `elapsed_ns` is wall-clock and therefore the
/// only nondeterministic field.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RuleProfile {
    /// Index of the stratum the rule was evaluated in.
    pub stratum: usize,
    /// The rule in the caller's vocabulary.
    pub rule: String,
    /// Stable rendering of the rule's join plans.
    pub plan: String,
    /// Fixpoint rounds in which at least one of the rule's plans ran.
    pub rounds: usize,
    /// New facts first derived by this rule (a fact derivable by several
    /// rules in the same round is attributed to the earliest one).
    pub derived: usize,
    /// Index probes issued by the rule's plans.
    pub probes: usize,
    /// Tuples scanned by the rule's plans.
    pub scanned: usize,
    /// Wall-clock time spent executing the rule's plans.
    pub elapsed_ns: u64,
}

impl RuleProfile {
    fn new(rule: &PlannedRule, stratum: usize, namer: &dyn Fn(RelId) -> String) -> Self {
        let fallback = || {
            let args: Vec<String> = rule.head.terms.iter().map(|t| t.to_string()).collect();
            format!("{}({})", namer(rule.head.rel), args.join(", "))
        };
        RuleProfile {
            stratum,
            rule: rule.name.clone().unwrap_or_else(fallback),
            plan: rule.render(namer),
            rounds: 0,
            derived: 0,
            probes: 0,
            scanned: 0,
            elapsed_ns: 0,
        }
    }
}

/// [`crate::evaluate_with`] with per-rule profiling.  Returns the same
/// database and stats the unprofiled evaluation returns (see the module
/// docs for why), plus one [`RuleProfile`] per planned rule in stratum
/// order then rule order.  `namer` maps relation ids into the caller's
/// vocabulary for the rendered rule and plan texts.
pub fn evaluate_profiled(
    strata: &[Program],
    edb: &Database,
    options: EngineOptions,
    namer: &dyn Fn(RelId) -> String,
) -> Result<(Database, EngineStats, Vec<RuleProfile>)> {
    let metrics = crate::metrics::metrics();
    let _eval_span = metrics.eval_ns.span();
    let width = kbt_par::resolve_threads(options.threads);
    let mut storage = IndexStorage::from_database(edb);
    for program in strata {
        for (rel, arity) in program.relation_arities() {
            storage.ensure_relation(rel, arity)?;
        }
    }

    let mut stats = EngineStats::default();
    let mut profiles = Vec::new();
    for (stratum, program) in strata.iter().enumerate() {
        stats.strata += 1;
        let planned = plan_stratum(program, &mut storage, &program.idb_relations());
        let mut rows: Vec<RuleProfile> = planned
            .iter()
            .map(|rule| RuleProfile::new(rule, stratum, namer))
            .collect();
        match options.mode {
            EvalMode::Naive => {
                profiled_stratum_naive(&planned, &mut storage, &mut stats, width, &mut rows)
            }
            EvalMode::SemiNaive => {
                profiled_stratum_semi_naive(&planned, &mut storage, &mut stats, width, &mut rows)
            }
        }
        profiles.append(&mut rows);
    }
    metrics.evals_total.inc();
    metrics.absorb_stats(&stats);
    Ok((storage.to_database(), stats, profiles))
}

/// Renders the plans of every stratum without evaluating: one zeroed
/// [`RuleProfile`] per rule, in stratum order then rule order.  See the
/// module docs for the sizing caveat on multi-stratum programs.
pub fn explain(
    strata: &[Program],
    edb: &Database,
    namer: &dyn Fn(RelId) -> String,
) -> Result<Vec<RuleProfile>> {
    let mut storage = IndexStorage::from_database(edb);
    for program in strata {
        for (rel, arity) in program.relation_arities() {
            storage.ensure_relation(rel, arity)?;
        }
    }
    let mut profiles = Vec::new();
    for (stratum, program) in strata.iter().enumerate() {
        let planned = plan_stratum(program, &mut storage, &program.idb_relations());
        profiles.extend(
            planned
                .iter()
                .map(|rule| RuleProfile::new(rule, stratum, namer)),
        );
    }
    Ok(profiles)
}

/// Mirrors `eval_stratum_naive`, round by round.
fn profiled_stratum_naive(
    rules: &[PlannedRule],
    storage: &mut IndexStorage,
    stats: &mut EngineStats,
    width: usize,
    rows: &mut [RuleProfile],
) {
    let no_deltas = Deltas::new();
    let plans: Vec<(usize, &PlannedRule, &JoinPlan)> = rules
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r, &r.full))
        .collect();
    let round_ns = &crate::metrics::metrics().round_ns;
    loop {
        stats.iterations += 1;
        let _round_span = round_ns.span();
        let pending = profiled_round(&plans, storage, &no_deltas, stats, width, rows);
        if pending.is_empty() {
            break;
        }
        commit(storage, pending, stats);
    }
}

/// Mirrors `eval_stratum_semi_naive`, round by round.
fn profiled_stratum_semi_naive(
    rules: &[PlannedRule],
    storage: &mut IndexStorage,
    stats: &mut EngineStats,
    width: usize,
    rows: &mut [RuleProfile],
) {
    let round_ns = &crate::metrics::metrics().round_ns;
    // Seeding round: one full evaluation populates the first delta.
    stats.iterations += 1;
    let no_deltas = Deltas::new();
    let plans: Vec<(usize, &PlannedRule, &JoinPlan)> = rules
        .iter()
        .enumerate()
        .map(|(i, r)| (i, r, &r.full))
        .collect();
    let seed_span = round_ns.span();
    let pending = profiled_round(&plans, storage, &no_deltas, stats, width, rows);
    let mut delta = commit(storage, pending, stats);
    drop(seed_span);

    while !delta.is_empty() {
        stats.iterations += 1;
        let _round_span = round_ns.span();
        let plans: Vec<(usize, &PlannedRule, &JoinPlan)> = rules
            .iter()
            .enumerate()
            .flat_map(|(i, rule)| {
                rule.deltas
                    .iter()
                    .filter(|(driver, _)| delta.get(driver).is_some_and(|d| !d.is_empty()))
                    .map(move |(_, plan)| (i, rule, plan))
            })
            .collect();
        let pending = profiled_round(&plans, storage, &delta, stats, width, rows);
        delta = commit(storage, pending, stats);
    }
}

/// Runs one round plan by plan, timing and attributing each execution,
/// and returns the canonical union of the per-plan pending sets — the
/// identical `Pending` one batched round over the same plans produces.
fn profiled_round(
    plans: &[(usize, &PlannedRule, &JoinPlan)],
    storage: &IndexStorage,
    deltas: &Deltas,
    stats: &mut EngineStats,
    width: usize,
    rows: &mut [RuleProfile],
) -> Pending {
    let keep = |rel: RelId, row: &[Const]| !storage.holds_row(rel, row);
    let mut in_round: BTreeSet<usize> = BTreeSet::new();
    let mut parts: Vec<(usize, Pending)> = Vec::with_capacity(plans.len());
    for &(idx, rule, plan) in plans {
        let probes_before = stats.index_probes;
        let scanned_before = stats.tuples_scanned;
        let start = Instant::now();
        let part = run_round_with(&[(rule, plan)], storage, deltas, stats, width, &keep);
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let row = &mut rows[idx];
        row.elapsed_ns = row.elapsed_ns.saturating_add(ns);
        row.probes += stats.index_probes - probes_before;
        row.scanned += stats.tuples_scanned - scanned_before;
        in_round.insert(idx);
        parts.push((idx, part));
    }
    for &idx in &in_round {
        rows[idx].rounds += 1;
    }
    // Attribute the round's new facts (first deriving rule wins), then
    // merge the parts into one canonical pending set for the commit.
    let mut seen: BTreeSet<(RelId, Vec<Const>)> = BTreeSet::new();
    let mut merged = Pending::new();
    for (idx, part) in parts {
        for (rel, set) in part {
            for row in set.iter() {
                if !storage.holds_row(rel, row) && seen.insert((rel, row.to_vec())) {
                    rows[idx].derived += 1;
                }
            }
            match merged.entry(rel) {
                std::collections::btree_map::Entry::Vacant(v) => {
                    v.insert(set);
                }
                std::collections::btree_map::Entry::Occupied(mut o) => {
                    o.get_mut().absorb(set);
                }
            }
        }
    }
    for set in merged.values_mut() {
        set.sort_dedup();
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_with;
    use crate::ir::{Atom, Literal, Rule, Term};
    use kbt_data::DatabaseBuilder;

    fn rel(i: u32) -> RelId {
        RelId::new(i)
    }

    fn s(i: usize) -> Term {
        Term::Slot(i)
    }

    /// Transitive closure: path(x,y) :- edge(x,y).  path(x,z) :- path(x,y), edge(y,z).
    fn tc_strata() -> Vec<Program> {
        let base = Rule::new(
            Atom::new(rel(2), vec![s(0), s(1)]),
            vec![Literal::positive(Atom::new(rel(1), vec![s(0), s(1)]))],
        )
        .unwrap()
        .with_name("path(x, y) :- edge(x, y)");
        let step = Rule::new(
            Atom::new(rel(2), vec![s(0), s(2)]),
            vec![
                Literal::positive(Atom::new(rel(2), vec![s(0), s(1)])),
                Literal::positive(Atom::new(rel(1), vec![s(1), s(2)])),
            ],
        )
        .unwrap()
        .with_name("path(x, z) :- path(x, y), edge(y, z)");
        vec![Program::new(vec![base, step])]
    }

    fn chain_edb(n: u32) -> Database {
        let mut b = DatabaseBuilder::new().relation(rel(1), 2);
        for i in 0..n {
            b = b.fact(rel(1), [i, i + 1]);
        }
        b.build().unwrap()
    }

    fn namer(r: RelId) -> String {
        if r == rel(1) { "edge" } else { "path" }.to_string()
    }

    #[test]
    fn profiled_evaluation_matches_plain_evaluation_exactly() {
        let strata = tc_strata();
        let edb = chain_edb(12);
        for mode in [EvalMode::Naive, EvalMode::SemiNaive] {
            for threads in [1, 4] {
                let options = EngineOptions { mode, threads };
                let (plain_db, plain_stats) = evaluate_with(&strata, &edb, options).unwrap();
                let (prof_db, prof_stats, profiles) =
                    evaluate_profiled(&strata, &edb, options, &namer).unwrap();
                assert_eq!(plain_db, prof_db, "{mode:?} x{threads}: databases differ");
                assert_eq!(plain_stats, prof_stats, "{mode:?} x{threads}: stats differ");
                // Attribution is complete: per-rule derived counts sum to
                // the engine's total.
                let derived: usize = profiles.iter().map(|p| p.derived).sum();
                assert_eq!(derived, prof_stats.derived_facts);
                let probes: usize = profiles.iter().map(|p| p.probes).sum();
                assert_eq!(probes, prof_stats.index_probes);
                let scanned: usize = profiles.iter().map(|p| p.scanned).sum();
                assert_eq!(scanned, prof_stats.tuples_scanned);
            }
        }
    }

    #[test]
    fn profiles_carry_provenance_and_plans() {
        let strata = tc_strata();
        let edb = chain_edb(4);
        let options = EngineOptions {
            mode: EvalMode::SemiNaive,
            threads: 1,
        };
        let (_, _, profiles) = evaluate_profiled(&strata, &edb, options, &namer).unwrap();
        assert_eq!(profiles.len(), 2);
        assert_eq!(profiles[0].rule, "path(x, y) :- edge(x, y)");
        assert_eq!(profiles[0].stratum, 0);
        assert!(profiles[0].plan.starts_with("path(s0, s1) <- scan edge"));
        // The base rule runs only in the seeding round (no delta variant
        // on an EDB driver); the recursive rule runs every round.
        assert_eq!(profiles[0].rounds, 1);
        assert!(profiles[1].rounds > 1);
        assert!(profiles[1].plan.contains("#delta"));
        // The base rule derived the 4 edges; the rest is the closure.
        assert_eq!(profiles[0].derived, 4);
        assert_eq!(profiles[1].derived, 6);
    }

    #[test]
    fn explain_renders_without_evaluating() {
        let strata = tc_strata();
        let edb = chain_edb(4);
        let profiles = explain(&strata, &edb, &namer).unwrap();
        assert_eq!(profiles.len(), 2);
        for p in &profiles {
            assert_eq!((p.rounds, p.derived, p.probes, p.scanned), (0, 0, 0, 0));
            assert_eq!(p.elapsed_ns, 0);
            assert!(!p.plan.is_empty());
        }
        assert_eq!(
            profiles[1].plan,
            "path(s0, s2) <- scan path(s0, s1); probe edge mask=0b01 key=(s1) \
             | dpath: scan path#delta(s0, s1); probe edge mask=0b01 key=(s1)"
        );
    }
}
