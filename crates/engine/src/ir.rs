//! The engine's rule IR: variables resolved to dense register slots.
//!
//! Frontends (today `kbt-datalog`, potentially others) lower their surface
//! syntax into this IR before evaluation.  The only difference from a
//! surface AST is that variables are *slots* — consecutive indices `0..n`
//! local to one rule — so the runtime can keep bindings in a flat register
//! file instead of a map keyed by variable names.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use kbt_data::RelId;

use crate::error::EngineError;
use crate::Result;

/// Maximum relation arity the engine supports (bound-column masks are `u32`).
pub const MAX_ARITY: usize = 32;

/// One argument position of an atom.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Term {
    /// A register slot (a rule-local variable).
    Slot(usize),
    /// A constant.
    Const(kbt_data::Const),
}

impl Term {
    /// The slot index, if this term is a slot.
    pub fn slot(self) -> Option<usize> {
        match self {
            Term::Slot(s) => Some(s),
            Term::Const(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Slot(s) => write!(f, "s{s}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// An atom `R(t̄)` over slots and constants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Atom {
    /// The relation symbol.
    pub rel: RelId,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom.
    pub fn new(rel: RelId, terms: impl Into<Vec<Term>>) -> Self {
        Atom {
            rel,
            terms: terms.into(),
        }
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// The slots occurring in the atom.
    pub fn slots(&self) -> BTreeSet<usize> {
        self.terms.iter().filter_map(|t| t.slot()).collect()
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A possibly negated atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Literal {
    /// The underlying atom.
    pub atom: Atom,
    /// `true` for a positive occurrence.
    pub positive: bool,
}

impl Literal {
    /// A positive literal.
    pub fn positive(atom: Atom) -> Self {
        Literal {
            atom,
            positive: true,
        }
    }

    /// A negated literal.
    pub fn negative(atom: Atom) -> Self {
        Literal {
            atom,
            positive: false,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "~")?;
        }
        write!(f, "{}", self.atom)
    }
}

/// A rule `head :- body` with `slots` registers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule {
    /// The head atom.
    pub head: Atom,
    /// The body literals.
    pub body: Vec<Literal>,
    /// Number of register slots the rule uses (`0..slots` all occur).
    pub slots: usize,
    /// Provenance: the rule's source text in the caller's vocabulary
    /// (e.g. the `τ_φ` clause it was lowered from).  Carried into plans
    /// and profiles so they name rules as the user wrote them; never
    /// consulted by evaluation.
    pub name: Option<String>,
}

impl Rule {
    /// Builds a rule, checking range restriction (every head slot and every
    /// slot of a negated literal occurs in some positive body literal) and
    /// the engine's arity ceiling.
    pub fn new(head: Atom, body: impl Into<Vec<Literal>>) -> Result<Self> {
        let body = body.into();
        for atom in std::iter::once(&head).chain(body.iter().map(|l| &l.atom)) {
            if atom.arity() > MAX_ARITY {
                return Err(EngineError::ArityTooLarge {
                    rel: atom.rel,
                    arity: atom.arity(),
                });
            }
        }
        let positive: BTreeSet<usize> = body
            .iter()
            .filter(|l| l.positive)
            .flat_map(|l| l.atom.slots())
            .collect();
        let mut needed = head.slots();
        for l in &body {
            if !l.positive {
                needed.extend(l.atom.slots());
            }
        }
        if !needed.is_subset(&positive) {
            let rule = Rule {
                head,
                body,
                slots: 0,
                name: None,
            };
            return Err(EngineError::UnsafeRule {
                rule: rule.to_string(),
            });
        }
        let slots = positive
            .iter()
            .chain(needed.iter())
            .max()
            .map_or(0, |&m| m + 1);
        Ok(Rule {
            head,
            body,
            slots,
            name: None,
        })
    }

    /// Attaches a provenance name (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = Some(name.into());
        self
    }

    /// The positive body literals with their body positions.
    pub fn positive_atoms(&self) -> impl Iterator<Item = (usize, &Atom)> + '_ {
        self.body
            .iter()
            .enumerate()
            .filter(|(_, l)| l.positive)
            .map(|(i, l)| (i, &l.atom))
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A set of rules evaluated together (one stratum, typically).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    /// The rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Builds a program from rules.
    pub fn new(rules: impl Into<Vec<Rule>>) -> Self {
        Program {
            rules: rules.into(),
        }
    }

    /// The intensional relations: those occurring in some rule head.
    pub fn idb_relations(&self) -> BTreeSet<RelId> {
        self.rules.iter().map(|r| r.head.rel).collect()
    }

    /// Every relation mentioned, with its arity.
    pub fn relation_arities(&self) -> BTreeMap<RelId, usize> {
        let mut out = BTreeMap::new();
        for rule in &self.rules {
            out.insert(rule.head.rel, rule.head.arity());
            for l in &rule.body {
                out.insert(l.atom.rel, l.atom.arity());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::Const;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn s(i: usize) -> Term {
        Term::Slot(i)
    }

    #[test]
    fn safe_rules_compute_their_slot_count() {
        // head uses slots 0 and 2; body binds 0, 1, 2.
        let rule = Rule::new(
            Atom::new(r(2), vec![s(0), s(2)]),
            vec![
                Literal::positive(Atom::new(r(1), vec![s(0), s(1)])),
                Literal::positive(Atom::new(r(1), vec![s(1), s(2)])),
            ],
        )
        .unwrap();
        assert_eq!(rule.slots, 3);
        assert_eq!(rule.positive_atoms().count(), 2);
    }

    #[test]
    fn unsafe_rules_are_rejected() {
        let bad = Rule::new(
            Atom::new(r(2), vec![s(0), s(1)]),
            vec![Literal::positive(Atom::new(r(1), vec![s(0)]))],
        );
        assert!(matches!(bad, Err(EngineError::UnsafeRule { .. })));

        let bad_neg = Rule::new(
            Atom::new(r(2), vec![s(0)]),
            vec![
                Literal::positive(Atom::new(r(1), vec![s(0)])),
                Literal::negative(Atom::new(r(3), vec![s(1)])),
            ],
        );
        assert!(matches!(bad_neg, Err(EngineError::UnsafeRule { .. })));
    }

    #[test]
    fn ground_facts_are_safe_and_slotless() {
        let fact = Rule::new(
            Atom::new(r(1), vec![Term::Const(Const::new(7))]),
            Vec::new(),
        )
        .unwrap();
        assert_eq!(fact.slots, 0);
    }

    #[test]
    fn oversized_arities_are_rejected() {
        let wide = Atom::new(r(1), vec![Term::Const(Const::new(1)); 33]);
        assert!(matches!(
            Rule::new(wide, Vec::new()),
            Err(EngineError::ArityTooLarge { .. })
        ));
    }

    #[test]
    fn program_classification() {
        let p = Program::new(vec![Rule::new(
            Atom::new(r(2), vec![s(0)]),
            vec![Literal::positive(Atom::new(r(1), vec![s(0)]))],
        )
        .unwrap()]);
        assert_eq!(
            p.idb_relations().into_iter().collect::<Vec<_>>(),
            vec![r(2)]
        );
        let arities = p.relation_arities();
        assert_eq!(arities[&r(1)], 1);
        assert_eq!(arities[&r(2)], 1);
    }
}
