//! Indexed relations: tuple stores with lazily built hash indexes keyed by
//! bound-column masks.
//!
//! A *binding pattern* for a `k`-ary relation is the set of argument
//! positions that are bound when a rule body reaches the corresponding atom;
//! it is represented as a bitmask ([`Mask`], bit `i` = column `i` bound).
//! For every pattern a rule body demands, the relation keeps a hash map from
//! the projection of a tuple onto the bound columns to the matching tuple
//! ids, so a join step is one hash probe plus a walk over exactly the
//! matching tuples — never a scan of the whole relation.
//!
//! Indexes are built lazily (first demand pays the build) and maintained
//! incrementally on insertion, so the semi-naive driver can keep appending
//! derived facts without invalidating anything.  Removal — needed by the
//! incremental session's DRed deletion path — is tombstone-based: the tuple
//! slot is marked dead and left in the index buckets, and readers filter by
//! [`IndexedRelation::is_live`]; once more than half the slots are dead the
//! relation compacts itself, rebuilding its indexes without the garbage.
//!
//! Relations additionally keep an optional **mirror** — a copy-on-write
//! [`Relation`] maintained alongside the indexed store — so that
//! materialising the relation ([`IndexedRelation::to_relation`] /
//! [`IndexedRelation::snapshot`]) is an `O(1)` `Arc` clone instead of an
//! `O(n log n)` rebuild.  The mirror exists for relations built from a plain
//! [`Relation`] and for relations that have been snapshotted at least once;
//! from then on every insert/remove updates it in place (the `Relation` is
//! itself copy-on-write, so an outstanding snapshot is never disturbed —
//! the first mutation after handing one out unshares).  The incremental
//! chain evaluator leans on this: each `τ_φ` step snapshots the intensional
//! output relation instead of re-collecting ~10⁴–10⁵ tuples into a fresh
//! set per step.

use std::collections::{HashMap, HashSet};

use kbt_data::{Const, Relation, Tuple};

/// A set of bound columns: bit `i` set ⇔ column `i` is bound.
pub type Mask = u32;

/// Projects `tuple` onto the columns of `mask`, in ascending column order.
fn key_of(tuple: &Tuple, mask: Mask) -> Box<[Const]> {
    tuple
        .components()
        .iter()
        .enumerate()
        .filter(|&(i, _)| mask >> i & 1 == 1)
        .map(|(_, &c)| c)
        .collect()
}

/// A relation with hash indexes per demanded binding pattern.
#[derive(Clone, Debug, Default)]
pub struct IndexedRelation {
    arity: usize,
    /// Tuples in insertion order; indexes store positions into this vector.
    /// Removed tuples stay as tombstones until the next compaction.
    tuples: Vec<Tuple>,
    /// Liveness per tuple id (`false` = tombstone).
    live: Vec<bool>,
    /// Number of tombstones in `tuples`.
    dead: usize,
    /// Membership map from live tuples to their ids (doubles as the
    /// full-binding-pattern index).
    ids: HashMap<Tuple, u32>,
    /// One hash index per demanded mask.
    indexes: HashMap<Mask, HashMap<Box<[Const]>, Vec<u32>>>,
    /// Copy-on-write materialised view, kept exactly in sync with the live
    /// tuples once it exists (see the module docs).
    mirror: Option<Relation>,
    /// Number of times a desynchronised mirror was detected and rebuilt
    /// (see [`Self::snapshot`]).  Always `0` unless a maintenance bug slips
    /// in — the counter exists so a slip is *observable* instead of
    /// silently serving wrong snapshots forever.
    mirror_rebuilds: usize,
}

impl IndexedRelation {
    /// An empty indexed relation of the given arity.
    pub fn new(arity: usize) -> Self {
        IndexedRelation {
            arity,
            ..IndexedRelation::default()
        }
    }

    /// Copies a plain relation into indexed form.  The source relation
    /// becomes the mirror (an `Arc` clone), so materialising the relation
    /// back out stays `O(1)` as long as the contents are maintained through
    /// [`Self::insert`] / [`Self::remove`].
    pub fn from_relation(relation: &Relation) -> Self {
        let mut out = IndexedRelation::new(relation.arity());
        for t in relation.iter() {
            out.insert(t.clone());
        }
        out.mirror = Some(relation.clone());
        out
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (live) tuples.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Whether the tuple is present (one hash lookup).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.ids.contains_key(t)
    }

    /// Iterates over the live tuples in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> + '_ {
        self.tuples
            .iter()
            .zip(&self.live)
            .filter(|&(_, &l)| l)
            .map(|(t, _)| t)
    }

    /// The tuple with the given id (a position returned by [`Self::probe`]).
    pub fn tuple(&self, id: u32) -> &Tuple {
        &self.tuples[id as usize]
    }

    /// Number of tuple slots, live and tombstoned (the valid id range is
    /// `0..slot_count()`).  The parallel evaluator chunks a driving scan by
    /// splitting this range; iterating a subrange with [`Self::is_live`]
    /// filtering visits exactly the tuples [`Self::iter`] would, in the same
    /// order.
    pub fn slot_count(&self) -> u32 {
        self.tuples.len() as u32
    }

    /// Whether the tuple with the given id is still live.  Probe buckets may
    /// contain tombstoned ids until the next compaction, so every consumer of
    /// [`Self::probe`] must filter through this.
    pub fn is_live(&self, id: u32) -> bool {
        self.live[id as usize]
    }

    /// Inserts a tuple, updating every existing index; returns `true` if it
    /// was not already present.  The tuple's arity must match.
    pub fn insert(&mut self, t: Tuple) -> bool {
        debug_assert_eq!(t.arity(), self.arity, "arity checked by the caller");
        if self.ids.contains_key(&t) {
            return false;
        }
        let id = self.tuples.len() as u32;
        self.ids.insert(t.clone(), id);
        for (&mask, index) in &mut self.indexes {
            index.entry(key_of(&t, mask)).or_default().push(id);
        }
        if let Some(mirror) = &mut self.mirror {
            mirror.insert(t.clone()).expect("mirror arity matches");
        }
        self.tuples.push(t);
        self.live.push(true);
        true
    }

    /// Removes a tuple, returning `true` if it was present.  The slot becomes
    /// a tombstone; index buckets are cleaned up lazily by compaction, which
    /// runs automatically once tombstones outnumber live tuples.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        let Some(id) = self.ids.remove(t) else {
            return false;
        };
        self.live[id as usize] = false;
        self.dead += 1;
        if let Some(mirror) = &mut self.mirror {
            mirror.remove(t);
        }
        if self.dead * 2 > self.tuples.len() {
            self.compact();
        }
        true
    }

    /// Drops every tuple while keeping the demanded index masks alive (with
    /// empty buckets), so existing plans can still probe after a reset.
    pub fn clear(&mut self) {
        self.tuples.clear();
        self.live.clear();
        self.dead = 0;
        self.ids.clear();
        for index in self.indexes.values_mut() {
            index.clear();
        }
        if let Some(mirror) = &mut self.mirror {
            *mirror = Relation::empty(self.arity);
        }
    }

    /// Rebuilds the tuple store and all indexes without tombstones.
    fn compact(&mut self) {
        let tuples: Vec<Tuple> = self
            .tuples
            .drain(..)
            .zip(std::mem::take(&mut self.live))
            .filter(|&(_, l)| l)
            .map(|(t, _)| t)
            .collect();
        self.dead = 0;
        self.ids.clear();
        for index in self.indexes.values_mut() {
            index.clear();
        }
        for (id, t) in tuples.iter().enumerate() {
            self.ids.insert(t.clone(), id as u32);
            for (&mask, index) in &mut self.indexes {
                index.entry(key_of(t, mask)).or_default().push(id as u32);
            }
        }
        self.tuples = tuples;
        self.live = vec![true; self.tuples.len()];
    }

    /// Builds the index for `mask` if it does not exist yet.
    pub fn ensure_index(&mut self, mask: Mask) {
        if mask == 0 || self.indexes.contains_key(&mask) {
            return;
        }
        let mut index: HashMap<Box<[Const]>, Vec<u32>> = HashMap::new();
        for (id, t) in self.tuples.iter().enumerate() {
            if self.live[id] {
                index.entry(key_of(t, mask)).or_default().push(id as u32);
            }
        }
        self.indexes.insert(mask, index);
    }

    /// The ids of the tuples whose projection onto `mask` equals `key`.
    ///
    /// The returned slice may contain tombstoned ids — filter with
    /// [`Self::is_live`].  The index for `mask` must have been demanded with
    /// [`Self::ensure_index`] beforehand — the planner collects every mask a
    /// plan needs, so a missing index is an engine bug, not a user error.
    pub fn probe(&self, mask: Mask, key: &[Const]) -> &[u32] {
        const EMPTY: &[u32] = &[];
        self.indexes
            .get(&mask)
            .expect("index demanded by the planner before evaluation")
            .get(key)
            .map_or(EMPTY, Vec::as_slice)
    }

    /// Number of materialised indexes (for tests and diagnostics).
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Number of tombstoned slots (for tests and diagnostics).
    pub fn tombstone_count(&self) -> usize {
        self.dead
    }

    /// Whether the maintained mirror can be trusted.  A full content
    /// comparison would cost `O(n)` per snapshot, so this is the cheap
    /// necessary condition — the live-tuple count — checked **in release
    /// builds too**: every mirror update path (insert / remove / clear /
    /// compaction) changes the live count in lockstep, so any maintenance
    /// bug that adds, drops or duplicates a mirror tuple shows up here.
    fn mirror_in_sync(&self) -> bool {
        self.mirror
            .as_ref()
            .is_some_and(|m| m.len() == self.ids.len())
    }

    /// Rebuilds the live contents from the tuple store (the mirror-free
    /// slow path, and the reference the mirror is resynced from).
    fn rebuild_relation(&self) -> Relation {
        Relation::from_tuples(self.arity, self.iter().cloned())
            .expect("arities are uniform by construction")
    }

    /// The live contents as a plain relation: an `O(1)` clone of the mirror
    /// when one is maintained *and in sync*, otherwise a rebuild.  A
    /// desynchronised mirror is never served — in debug builds it also
    /// trips an assertion so the maintenance bug gets fixed rather than
    /// papered over.
    pub fn to_relation(&self) -> Relation {
        if let Some(mirror) = &self.mirror {
            debug_assert_eq!(mirror.len(), self.ids.len(), "mirror out of sync");
            if self.mirror_in_sync() {
                return mirror.clone();
            }
        }
        self.rebuild_relation()
    }

    /// Like [`Self::to_relation`], but enables the mirror first, so *every*
    /// later snapshot of this relation (until its contents are rebuilt
    /// wholesale) is an `O(1)` clone and only the tuples actually touched by
    /// subsequent mutations pay copy-on-write costs.
    ///
    /// If an existing mirror fails the release-mode sync check it is
    /// rebuilt from the tuple store here and the event is counted in
    /// [`Self::mirror_rebuilds`] — readers can never be handed a stale
    /// snapshot, and operators can see that the invariant tripped.
    pub fn snapshot(&mut self) -> Relation {
        if self.mirror.is_some() && !self.mirror_in_sync() {
            self.mirror = None;
            self.mirror_rebuilds += 1;
        }
        if self.mirror.is_none() {
            self.mirror = Some(self.rebuild_relation());
        }
        self.mirror.clone().expect("just ensured")
    }

    /// Number of times [`Self::snapshot`] found the mirror desynchronised
    /// and rebuilt it (zero in a correct engine).
    pub fn mirror_rebuilds(&self) -> usize {
        self.mirror_rebuilds
    }

    /// The live tuples as a hash set (used by the incremental session to
    /// snapshot a relation before a fallback recomputation).
    pub fn to_set(&self) -> HashSet<Tuple> {
        self.iter().cloned().collect()
    }

    /// Test-only: forcibly desynchronises the mirror (drops one mirror
    /// tuple behind the store's back) so the release-mode recovery path of
    /// [`Self::snapshot`] can be exercised.
    #[cfg(test)]
    fn corrupt_mirror_for_test(&mut self) {
        let mirror = self.mirror.as_mut().expect("mirror must exist");
        let victim = mirror
            .iter()
            .next()
            .expect("mirror must be non-empty")
            .clone();
        mirror.remove(&victim);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::tuple;

    fn sample() -> IndexedRelation {
        let mut r = IndexedRelation::new(2);
        r.insert(tuple![1, 2]);
        r.insert(tuple![1, 3]);
        r.insert(tuple![2, 3]);
        r
    }

    /// The live tuple ids matching a probe.
    fn live_hits(r: &IndexedRelation, mask: Mask, key: &[Const]) -> Vec<u32> {
        r.probe(mask, key)
            .iter()
            .copied()
            .filter(|&id| r.is_live(id))
            .collect()
    }

    #[test]
    fn insert_deduplicates_and_tracks_membership() {
        let mut r = sample();
        assert!(!r.insert(tuple![1, 2]));
        assert_eq!(r.len(), 3);
        assert!(r.contains(&tuple![2, 3]));
        assert!(!r.contains(&tuple![3, 2]));
    }

    #[test]
    fn probe_by_first_column() {
        let mut r = sample();
        r.ensure_index(0b01);
        let hits = live_hits(&r, 0b01, &[Const::new(1)]);
        assert_eq!(hits.len(), 2);
        assert!(hits
            .iter()
            .all(|&id| r.tuple(id).get(0) == Some(Const::new(1))));
        assert!(r.probe(0b01, &[Const::new(9)]).is_empty());
    }

    #[test]
    fn probe_by_second_column() {
        let mut r = sample();
        r.ensure_index(0b10);
        assert_eq!(live_hits(&r, 0b10, &[Const::new(3)]).len(), 2);
        assert_eq!(live_hits(&r, 0b10, &[Const::new(2)]).len(), 1);
    }

    #[test]
    fn indexes_are_maintained_across_inserts() {
        let mut r = sample();
        r.ensure_index(0b01);
        r.insert(tuple![1, 9]);
        assert_eq!(live_hits(&r, 0b01, &[Const::new(1)]).len(), 3);
    }

    #[test]
    fn ensure_index_is_lazy_and_idempotent() {
        let mut r = sample();
        assert_eq!(r.index_count(), 0);
        r.ensure_index(0b01);
        r.ensure_index(0b01);
        r.ensure_index(0); // the empty mask is a scan, never an index
        assert_eq!(r.index_count(), 1);
    }

    #[test]
    fn round_trips_through_plain_relations() {
        let r = sample();
        let plain = r.to_relation();
        assert_eq!(plain.len(), 3);
        let back = IndexedRelation::from_relation(&plain);
        assert_eq!(back.len(), 3);
        assert_eq!(back.arity(), 2);
    }

    #[test]
    fn remove_tombstones_and_reports_presence() {
        let mut r = sample();
        r.ensure_index(0b01);
        assert!(r.remove(&tuple![1, 2]));
        assert!(!r.remove(&tuple![1, 2]));
        assert!(!r.contains(&tuple![1, 2]));
        assert_eq!(r.len(), 2);
        assert_eq!(live_hits(&r, 0b01, &[Const::new(1)]), vec![1]);
        assert_eq!(r.iter().count(), 2);
        assert_eq!(r.to_relation().len(), 2);
    }

    #[test]
    fn removed_tuples_can_be_reinserted() {
        let mut r = sample();
        r.ensure_index(0b01);
        r.remove(&tuple![1, 2]);
        assert!(r.insert(tuple![1, 2]));
        assert!(r.contains(&tuple![1, 2]));
        assert_eq!(r.len(), 3);
        assert_eq!(live_hits(&r, 0b01, &[Const::new(1)]).len(), 2);
    }

    #[test]
    fn compaction_rebuilds_indexes_when_tombstones_dominate() {
        let mut r = sample();
        r.ensure_index(0b01);
        r.remove(&tuple![1, 2]);
        r.remove(&tuple![1, 3]); // 2 dead of 3 slots → compaction
        assert_eq!(r.tombstone_count(), 0);
        assert_eq!(r.len(), 1);
        assert_eq!(live_hits(&r, 0b01, &[Const::new(2)]).len(), 1);
        assert!(r.probe(0b01, &[Const::new(1)]).is_empty());
        assert!(r.contains(&tuple![2, 3]));
    }

    #[test]
    fn snapshots_stay_in_sync_across_mutations() {
        let mut r = sample();
        let snap1 = r.snapshot();
        assert_eq!(snap1.len(), 3);
        // mutations after a snapshot: the snapshot is frozen, the next one
        // reflects them — and both come from the maintained mirror.
        r.insert(tuple![9, 9]);
        r.remove(&tuple![1, 2]);
        assert_eq!(snap1.len(), 3, "outstanding snapshot must be frozen");
        let snap2 = r.snapshot();
        assert_eq!(snap2.len(), 3);
        assert!(snap2.contains(&tuple![9, 9]));
        assert!(!snap2.contains(&tuple![1, 2]));
        assert_eq!(snap2, r.to_relation());
        // and the mirror agrees with a from-scratch rebuild
        let rebuilt = kbt_data::Relation::from_tuples(r.arity(), r.iter().cloned()).unwrap();
        assert_eq!(snap2, rebuilt);
    }

    #[test]
    fn from_relation_keeps_the_source_as_mirror() {
        let plain = sample().to_relation();
        let mut r = IndexedRelation::from_relation(&plain);
        assert_eq!(r.to_relation(), plain);
        r.clear();
        assert!(r.to_relation().is_empty());
        r.insert(tuple![4, 4]);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn compaction_preserves_the_mirror() {
        let mut r = sample();
        r.ensure_index(0b01);
        let _ = r.snapshot();
        r.remove(&tuple![1, 2]);
        r.remove(&tuple![1, 3]); // triggers compaction
        assert_eq!(r.tombstone_count(), 0);
        assert_eq!(r.snapshot().len(), 1);
        assert!(r.snapshot().contains(&tuple![2, 3]));
    }

    #[test]
    fn desynced_mirror_is_rebuilt_not_served() {
        // A maintenance bug that desynchronises the mirror must never reach
        // readers: `snapshot` detects the length mismatch (release-mode
        // check), rebuilds the mirror from the tuple store, and counts the
        // event so it is observable.
        let mut r = sample();
        let _ = r.snapshot();
        assert_eq!(r.mirror_rebuilds(), 0);
        r.corrupt_mirror_for_test();
        let snap = r.snapshot();
        assert_eq!(r.mirror_rebuilds(), 1);
        let rebuilt = Relation::from_tuples(r.arity(), r.iter().cloned()).unwrap();
        assert_eq!(snap, rebuilt, "recovered snapshot must match the store");
        // and the rebuilt mirror is maintained again from here on
        r.insert(tuple![7, 7]);
        assert_eq!(r.snapshot().len(), 4);
        assert_eq!(r.mirror_rebuilds(), 1);
    }

    #[test]
    fn clear_keeps_demanded_indexes_probe_ready() {
        let mut r = sample();
        r.ensure_index(0b01);
        r.clear();
        assert!(r.is_empty());
        assert!(r.probe(0b01, &[Const::new(1)]).is_empty());
        r.insert(tuple![1, 7]);
        assert_eq!(live_hits(&r, 0b01, &[Const::new(1)]).len(), 1);
    }
}
