//! Indexed relations: an arity-strided row arena with lazily built hash
//! indexes keyed by bound-column masks.
//!
//! # Storage layout
//!
//! All tuples of a `k`-ary relation live in **one flat `Vec<Const>` arena**:
//! the tuple with id `i` occupies `rows[i*k .. (i+1)*k]`.  There is no
//! per-tuple allocation; scans walk one contiguous buffer and join steps
//! hand out `&[Const]` row slices straight from the arena.
//!
//! A *binding pattern* for the relation is the set of argument positions
//! bound when a rule body reaches the corresponding atom, represented as a
//! bitmask ([`Mask`], bit `i` = column `i` bound).  For every pattern a rule
//! body demands, the relation keeps a hash map from a **`u64` row key** (the
//! bound column values packed exactly for ≤ 2 columns, FxHash-folded beyond
//! — see [`crate::fx`]) to the matching tuple ids, so a join step is one
//! hash probe plus a walk over the matching ids with **zero allocations per
//! probe**.  Hashed (≥ 3 column) buckets may contain collisions; consumers
//! verify candidates against the arena (the evaluator's bound-column check).
//!
//! Indexes are built lazily (first demand pays the build) and maintained
//! incrementally on insertion.  Removal — needed by the incremental
//! session's DRed deletion path — is tombstone-based: the slot is marked
//! dead and left in the index buckets, and readers filter by
//! [`IndexedRelation::is_live`]; once more than half the slots are dead the
//! relation compacts itself, rebuilding arena and indexes without garbage.
//!
//! # The mirror
//!
//! Relations additionally keep an optional **mirror** — a copy-on-write
//! [`Relation`] — so that materialising the relation
//! ([`IndexedRelation::to_relation`] / [`IndexedRelation::snapshot`]) is an
//! `O(1)` `Arc` clone instead of an `O(n log n)` rebuild.  The mirror exists
//! for relations built from a plain [`Relation`] and for relations that have
//! been snapshotted at least once.  Mutations do **not** touch the sorted
//! run per fact (that would cost `O(n)` each against a flat run): they are
//! buffered as pending add/delete rows and *flushed in one batched linear
//! merge* ([`Relation::merge_rows`]) the next time a snapshot is taken.
//! Because inserts and removes record only real membership changes, the
//! events for one row strictly alternate, so a row's final membership flips
//! exactly when its event count is odd — the flush sorts the event buffer
//! once and applies the odd-parity rows.  The incremental chain evaluator
//! leans on this: each `τ_φ` step snapshots the intensional output relation
//! for the cost of one merge over the step's delta.

use kbt_data::{Const, Relation, Tuple};
use std::collections::HashMap;
use std::collections::HashSet;

use crate::fx::{self, FxBuild, KeyAcc};

/// A set of bound columns: bit `i` set ⇔ column `i` is bound.
pub type Mask = u32;

/// The `u64` key of `row` projected onto the columns of `mask` (ascending
/// column order; packed or hashed per [`crate::fx`]).
#[inline]
pub fn mask_key(row: &[Const], mask: Mask) -> u64 {
    let mut acc = KeyAcc::new(mask.count_ones() as usize);
    let mut m = mask;
    while m != 0 {
        let col = m.trailing_zeros() as usize;
        acc.push(row[col]);
        m &= m - 1;
    }
    acc.finish()
}

/// A hash bucket of tuple ids, inlining the overwhelmingly common
/// single-occupant case (exact membership keys collide only on true
/// duplicates, which are rejected) so bucket creation does not allocate.
#[derive(Clone, Debug)]
enum IdList {
    One(u32),
    Many(Vec<u32>),
}

impl IdList {
    #[inline]
    fn push(&mut self, id: u32) {
        match self {
            IdList::One(a) => *self = IdList::Many(vec![*a, id]),
            IdList::Many(v) => v.push(id),
        }
    }

    #[inline]
    fn as_slice(&self) -> &[u32] {
        match self {
            IdList::One(a) => std::slice::from_ref(a),
            IdList::Many(v) => v,
        }
    }

    /// Removes one occurrence of `id`; returns `true` when the bucket is now
    /// empty (the caller drops the map entry).  Bucket order is not
    /// significant — only index buckets (which never remove) are walked in
    /// order.
    fn remove_id(&mut self, id: u32) -> bool {
        match self {
            IdList::One(a) => {
                debug_assert_eq!(*a, id);
                true
            }
            IdList::Many(v) => {
                let pos = v.iter().position(|&x| x == id).expect("id in bucket");
                v.swap_remove(pos);
                v.is_empty()
            }
        }
    }
}

type Buckets = HashMap<u64, IdList, FxBuild>;

/// A relation stored as a flat row arena with hash indexes per demanded
/// binding pattern (see the module docs for layout and mirror semantics).
#[derive(Clone, Debug)]
pub struct IndexedRelation {
    arity: usize,
    /// The arity-strided row arena; id `i` occupies `rows[i*arity..][..arity]`
    /// (always empty for arity 0 — the slot count lives in `live`).
    /// Removed rows stay as tombstones until the next compaction.
    rows: Vec<Const>,
    /// Liveness per tuple id (`false` = tombstone).
    live: Vec<bool>,
    /// Number of tombstones.
    dead: usize,
    /// Number of live tuples (`live.len() - dead`).
    live_count: usize,
    /// Membership buckets from full-row keys to live ids only (doubles as
    /// the full-binding-pattern index).
    ids: Buckets,
    /// One hash index per demanded mask (buckets may contain tombstones).
    indexes: Vec<(Mask, Buckets)>,
    /// Copy-on-write materialised view (see the module docs).
    mirror: Option<Relation>,
    /// Buffered mirror mutations: arity-strided rows actually inserted /
    /// removed since the last flush, with their row counts (the counts carry
    /// the information for arity 0, where rows are empty).
    pending_adds: Vec<Const>,
    pending_add_count: usize,
    pending_dels: Vec<Const>,
    pending_del_count: usize,
    /// Number of times a desynchronised mirror was detected and rebuilt
    /// (see [`Self::snapshot`]).  Always `0` unless a maintenance bug slips
    /// in — the counter exists so a slip is *observable* instead of
    /// silently serving wrong snapshots forever.
    mirror_rebuilds: usize,
}

impl IndexedRelation {
    /// An empty indexed relation of the given arity.
    pub fn new(arity: usize) -> Self {
        IndexedRelation {
            arity,
            rows: Vec::new(),
            live: Vec::new(),
            dead: 0,
            live_count: 0,
            ids: Buckets::default(),
            indexes: Vec::new(),
            mirror: None,
            pending_adds: Vec::new(),
            pending_add_count: 0,
            pending_dels: Vec::new(),
            pending_del_count: 0,
            mirror_rebuilds: 0,
        }
    }

    /// Copies a plain relation into indexed form — a bulk load: the source's
    /// sorted run is copied into the arena in one `memcpy`-shaped move and
    /// becomes the mirror (an `Arc` clone), so materialising the relation
    /// back out stays `O(1)` as long as the contents are maintained through
    /// [`Self::insert`] / [`Self::remove`].
    pub fn from_relation(relation: &Relation) -> Self {
        let mut out = IndexedRelation::new(relation.arity());
        out.rows = relation.as_rows().to_vec();
        out.live = vec![true; relation.len()];
        out.live_count = relation.len();
        for (id, row) in relation.iter().enumerate() {
            bucket_push(&mut out.ids, fx::row_key(row), id as u32);
        }
        out.mirror = Some(relation.clone());
        out
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of (live) tuples.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Whether the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Whether the tuple is present (one hash probe plus verification).
    pub fn contains(&self, t: &Tuple) -> bool {
        t.arity() == self.arity && self.contains_row(t.components())
    }

    /// [`Self::contains`] for a raw row slice.
    pub fn contains_row(&self, row: &[Const]) -> bool {
        self.find_live_id(row).is_some()
    }

    fn find_live_id(&self, row: &[Const]) -> Option<u32> {
        debug_assert_eq!(row.len(), self.arity);
        let bucket = self.ids.get(&fx::row_key(row))?;
        if fx::key_is_exact(self.arity) {
            // packed keys are injective over the full row: any occupant is a
            // true match (membership buckets hold live ids only)
            bucket.as_slice().first().copied()
        } else {
            bucket
                .as_slice()
                .iter()
                .copied()
                .find(|&id| self.row(id) == row)
        }
    }

    /// Iterates over the live rows in insertion (slot) order.
    pub fn iter(&self) -> impl Iterator<Item = &[Const]> + '_ {
        let arity = self.arity;
        self.live
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l)
            .map(move |(id, _)| {
                if arity == 0 {
                    &[]
                } else {
                    &self.rows[id * arity..(id + 1) * arity]
                }
            })
    }

    /// Iterates over the live rows as owned [`Tuple`]s — boundary
    /// convenience; hot paths use [`Self::iter`] row slices.
    pub fn tuples(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.iter().map(Tuple::from_row)
    }

    /// The row with the given id (a position returned by a probe); ids of
    /// tombstoned slots still resolve until the next compaction.
    #[inline]
    pub fn row(&self, id: u32) -> &[Const] {
        if self.arity == 0 {
            &[]
        } else {
            let start = id as usize * self.arity;
            &self.rows[start..start + self.arity]
        }
    }

    /// Number of tuple slots, live and tombstoned (the valid id range is
    /// `0..slot_count()`).  The parallel evaluator chunks a driving scan by
    /// splitting this range; iterating a subrange with [`Self::is_live`]
    /// filtering visits exactly the rows [`Self::iter`] would, in the same
    /// order.
    pub fn slot_count(&self) -> u32 {
        self.live.len() as u32
    }

    /// Whether the tuple with the given id is still live.  Index buckets may
    /// contain tombstoned ids until the next compaction, so every consumer of
    /// [`Self::probe_bucket`] must filter through this.
    #[inline]
    pub fn is_live(&self, id: u32) -> bool {
        self.live[id as usize]
    }

    /// Inserts a tuple; returns `true` if it was not already present.  The
    /// tuple's arity must match.
    pub fn insert(&mut self, t: Tuple) -> bool {
        debug_assert_eq!(t.arity(), self.arity, "arity checked by the caller");
        self.insert_row(t.components())
    }

    /// [`Self::insert`] for a raw row slice: appends to the arena and
    /// updates every existing index, with no per-tuple boxing.
    pub fn insert_row(&mut self, row: &[Const]) -> bool {
        debug_assert_eq!(row.len(), self.arity);
        if self.contains_row(row) {
            return false;
        }
        let id = self.live.len() as u32;
        self.rows.extend_from_slice(row);
        self.live.push(true);
        self.live_count += 1;
        bucket_push(&mut self.ids, fx::row_key(row), id);
        for (mask, index) in &mut self.indexes {
            bucket_push(index, mask_key(row, *mask), id);
        }
        if self.mirror.is_some() {
            self.pending_adds.extend_from_slice(row);
            self.pending_add_count += 1;
        }
        true
    }

    /// Removes a tuple, returning `true` if it was present.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if t.arity() != self.arity {
            return false;
        }
        self.remove_row(t.components())
    }

    /// [`Self::remove`] for a raw row slice.  The slot becomes a tombstone;
    /// index buckets are cleaned up lazily by compaction, which runs
    /// automatically once tombstones outnumber live rows.
    pub fn remove_row(&mut self, row: &[Const]) -> bool {
        let Some(id) = self.find_live_id(row) else {
            return false;
        };
        let key = fx::row_key(row);
        if self
            .ids
            .get_mut(&key)
            .expect("bucket found above")
            .remove_id(id)
        {
            self.ids.remove(&key);
        }
        self.live[id as usize] = false;
        self.dead += 1;
        self.live_count -= 1;
        if self.mirror.is_some() {
            self.pending_dels.extend_from_slice(row);
            self.pending_del_count += 1;
        }
        if self.dead * 2 > self.live.len() {
            self.compact();
        }
        true
    }

    /// Drops every tuple while keeping the demanded index masks alive (with
    /// empty buckets), so existing plans can still probe after a reset.
    pub fn clear(&mut self) {
        self.rows.clear();
        self.live.clear();
        self.dead = 0;
        self.live_count = 0;
        self.ids.clear();
        for (_, index) in &mut self.indexes {
            index.clear();
        }
        // the mirror is set to the true (empty) contents directly, so any
        // buffered events are obsolete
        self.pending_adds.clear();
        self.pending_add_count = 0;
        self.pending_dels.clear();
        self.pending_del_count = 0;
        if let Some(mirror) = &mut self.mirror {
            *mirror = Relation::empty(self.arity);
        }
    }

    /// Rebuilds the arena and all indexes without tombstones (live rows keep
    /// their relative order, so scan order is unchanged).
    fn compact(&mut self) {
        let arity = self.arity;
        let old_rows = std::mem::take(&mut self.rows);
        let old_live = std::mem::take(&mut self.live);
        self.rows = Vec::with_capacity(self.live_count * arity);
        for (id, alive) in old_live.iter().enumerate() {
            if *alive && arity > 0 {
                self.rows
                    .extend_from_slice(&old_rows[id * arity..(id + 1) * arity]);
            }
        }
        self.live = vec![true; self.live_count];
        self.dead = 0;
        self.ids.clear();
        for (_, index) in &mut self.indexes {
            index.clear();
        }
        for id in 0..self.live_count as u32 {
            let row = if arity == 0 {
                &[][..]
            } else {
                &self.rows[id as usize * arity..(id as usize + 1) * arity]
            };
            bucket_push(&mut self.ids, fx::row_key(row), id);
        }
        for i in 0..self.indexes.len() {
            let mask = self.indexes[i].0;
            for id in 0..self.live_count as u32 {
                let key = mask_key(self.row_raw(id), mask);
                bucket_push(&mut self.indexes[i].1, key, id);
            }
        }
    }

    /// `row()` without the borrow of `self.indexes` (compaction helper).
    #[inline]
    fn row_raw(&self, id: u32) -> &[Const] {
        if self.arity == 0 {
            &[]
        } else {
            &self.rows[id as usize * self.arity..(id as usize + 1) * self.arity]
        }
    }

    /// Builds the index for `mask` if it does not exist yet.
    pub fn ensure_index(&mut self, mask: Mask) {
        if mask == 0 || self.indexes.iter().any(|(m, _)| *m == mask) {
            return;
        }
        let mut index = Buckets::default();
        for id in 0..self.live.len() as u32 {
            if self.live[id as usize] {
                bucket_push(&mut index, mask_key(self.row_raw(id), mask), id);
            }
        }
        self.indexes.push((mask, index));
    }

    /// The raw id bucket for a probe key on `mask` (compute the key with
    /// [`KeyAcc`] / [`mask_key`]).  The bucket may contain tombstoned ids —
    /// filter with [`Self::is_live`] — and, for hashed (> 2 column) keys,
    /// false positives — verify the bound columns against [`Self::row`].
    /// The index for `mask` must have been demanded with
    /// [`Self::ensure_index`] beforehand — the planner collects every mask a
    /// plan needs, so a missing index is an engine bug, not a user error.
    #[inline]
    pub fn probe_bucket(&self, mask: Mask, key: u64) -> &[u32] {
        let index = self
            .indexes
            .iter()
            .find(|(m, _)| *m == mask)
            .map(|(_, idx)| idx)
            .expect("index demanded by the planner before evaluation");
        index.get(&key).map_or(&[], IdList::as_slice)
    }

    /// The raw membership bucket for a full-row key (live ids only; for
    /// hashed keys — arity > 2 — verify candidates against [`Self::row`]).
    #[inline]
    pub fn member_bucket(&self, key: u64) -> &[u32] {
        self.ids.get(&key).map_or(&[], IdList::as_slice)
    }

    /// Diagnostic probe: the live ids whose projection onto `mask` equals
    /// `key`, verified against the arena.  Tests and one-off lookups only —
    /// the evaluator uses [`Self::probe_bucket`] with an incrementally
    /// computed key and allocates nothing.
    pub fn probe(&self, mask: Mask, key: &[Const]) -> Vec<u32> {
        let mut acc = KeyAcc::new(key.len());
        for &c in key {
            acc.push(c);
        }
        self.probe_bucket(mask, acc.finish())
            .iter()
            .copied()
            .filter(|&id| {
                self.is_live(id) && {
                    let row = self.row(id);
                    let mut m = mask;
                    let mut k = 0;
                    let mut ok = true;
                    while m != 0 {
                        let col = m.trailing_zeros() as usize;
                        if row[col] != key[k] {
                            ok = false;
                            break;
                        }
                        k += 1;
                        m &= m - 1;
                    }
                    ok
                }
            })
            .collect()
    }

    /// Number of materialised indexes (for tests and diagnostics).
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Number of tombstoned slots (for tests and diagnostics).
    pub fn tombstone_count(&self) -> usize {
        self.dead
    }

    fn pending_empty(&self) -> bool {
        self.pending_add_count == 0 && self.pending_del_count == 0
    }

    /// Applies the buffered mirror mutations in one batched merge (see the
    /// module docs for the parity argument).
    fn flush_mirror(&mut self) {
        if self.pending_empty() {
            return;
        }
        let mut events = std::mem::take(&mut self.pending_adds);
        let dels = std::mem::take(&mut self.pending_dels);
        let total = self.pending_add_count + self.pending_del_count;
        self.pending_add_count = 0;
        self.pending_del_count = 0;
        let Some(mirror) = &self.mirror else {
            return; // pending is only recorded while a mirror exists
        };
        if self.arity == 0 {
            self.mirror =
                Some(Relation::from_rows(0, Vec::new(), self.live_count).expect("flag relation"));
            return;
        }
        events.extend_from_slice(&dels);
        let arity = self.arity;
        let row_at = |i: u32| &events[i as usize * arity..(i as usize + 1) * arity];
        let mut order: Vec<u32> = (0..total as u32).collect();
        order.sort_unstable_by(|&a, &b| row_at(a).cmp(row_at(b)));
        let mut adds: Vec<Const> = Vec::new();
        let mut del_run: Vec<Const> = Vec::new();
        let mut i = 0usize;
        while i < total {
            let row = row_at(order[i]);
            let mut j = i + 1;
            while j < total && row_at(order[j]) == row {
                j += 1;
            }
            // events per row strictly alternate insert/remove, so odd count
            // ⇔ final membership differs from the mirror's current state
            if (j - i) % 2 == 1 {
                if mirror.contains_row(row) {
                    del_run.extend_from_slice(row);
                } else {
                    adds.extend_from_slice(row);
                }
            }
            i = j;
        }
        self.mirror = Some(
            mirror
                .merge_rows(&adds, &del_run)
                .expect("pending rows share the relation's arity"),
        );
    }

    /// Whether the maintained mirror can be trusted.  A full content
    /// comparison would cost `O(n)` per snapshot, so this is the cheap
    /// necessary condition — no unflushed events and a matching live count —
    /// checked **in release builds too**: every mirror update path changes
    /// the live count in lockstep, so any maintenance bug that adds, drops
    /// or duplicates a mirror row shows up here.
    fn mirror_in_sync(&self) -> bool {
        self.pending_empty()
            && self
                .mirror
                .as_ref()
                .is_some_and(|m| m.len() == self.live_count)
    }

    /// Rebuilds the live contents from the arena (the mirror-free slow path,
    /// and the reference the mirror is resynced from).
    fn rebuild_relation(&self) -> Relation {
        let mut buf = Vec::with_capacity(self.live_count * self.arity);
        for row in self.iter() {
            buf.extend_from_slice(row);
        }
        Relation::from_rows(self.arity, buf, self.live_count)
            .expect("the arena is arity-strided by construction")
    }

    /// The live contents as a plain relation: an `O(1)` clone of the mirror
    /// when one is maintained, fully flushed *and in sync*, otherwise a
    /// rebuild.  A desynchronised mirror is never served — in debug builds
    /// it also trips an assertion so the maintenance bug gets fixed rather
    /// than papered over.  (Callers holding `&mut self` should prefer
    /// [`Self::snapshot`], which flushes the buffered mirror events instead
    /// of falling back to a rebuild.)
    pub fn to_relation(&self) -> Relation {
        if self.pending_empty() {
            if let Some(mirror) = &self.mirror {
                debug_assert_eq!(mirror.len(), self.live_count, "mirror out of sync");
                if mirror.len() == self.live_count {
                    return mirror.clone();
                }
            }
        }
        self.rebuild_relation()
    }

    /// Like [`Self::to_relation`], but flushes buffered mirror events and
    /// enables the mirror first, so *every* later snapshot of this relation
    /// (until its contents are rebuilt wholesale) costs one batched merge
    /// over the mutations since the previous snapshot — `O(1)` when there
    /// were none.
    ///
    /// If an existing mirror fails the release-mode sync check it is
    /// rebuilt from the arena here and the event is counted in
    /// [`Self::mirror_rebuilds`] — readers can never be handed a stale
    /// snapshot, and operators can see that the invariant tripped.
    pub fn snapshot(&mut self) -> Relation {
        self.flush_mirror();
        if self.mirror.is_some() && !self.mirror_in_sync() {
            self.mirror = None;
            self.mirror_rebuilds += 1;
        }
        if self.mirror.is_none() {
            self.mirror = Some(self.rebuild_relation());
        }
        self.mirror.clone().expect("just ensured")
    }

    /// Number of times [`Self::snapshot`] found the mirror desynchronised
    /// and rebuilt it (zero in a correct engine).
    pub fn mirror_rebuilds(&self) -> usize {
        self.mirror_rebuilds
    }

    /// The live tuples as a hash set (boundary convenience for differential
    /// tests; hot paths stay on row slices).
    pub fn to_set(&self) -> HashSet<Tuple> {
        self.tuples().collect()
    }

    /// Test-only: forcibly desynchronises the mirror (drops one mirror
    /// row behind the store's back) so the release-mode recovery path of
    /// [`Self::snapshot`] can be exercised.
    #[cfg(test)]
    fn corrupt_mirror_for_test(&mut self) {
        let mirror = self.mirror.as_mut().expect("mirror must exist");
        let victim: Vec<Const> = mirror
            .iter()
            .next()
            .expect("mirror must be non-empty")
            .to_vec();
        mirror.remove_row(&victim);
    }
}

#[inline]
fn bucket_push(buckets: &mut Buckets, key: u64, id: u32) {
    buckets
        .entry(key)
        .and_modify(|b| b.push(id))
        .or_insert(IdList::One(id));
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::tuple;

    fn sample() -> IndexedRelation {
        let mut r = IndexedRelation::new(2);
        r.insert(tuple![1, 2]);
        r.insert(tuple![1, 3]);
        r.insert(tuple![2, 3]);
        r
    }

    #[test]
    fn insert_deduplicates_and_tracks_membership() {
        let mut r = sample();
        assert!(!r.insert(tuple![1, 2]));
        assert_eq!(r.len(), 3);
        assert!(r.contains(&tuple![2, 3]));
        assert!(!r.contains(&tuple![3, 2]));
    }

    #[test]
    fn probe_by_first_column() {
        let mut r = sample();
        r.ensure_index(0b01);
        let hits = r.probe(0b01, &[Const::new(1)]);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|&id| r.row(id)[0] == Const::new(1)));
        assert!(r.probe(0b01, &[Const::new(9)]).is_empty());
    }

    #[test]
    fn probe_by_second_column() {
        let mut r = sample();
        r.ensure_index(0b10);
        assert_eq!(r.probe(0b10, &[Const::new(3)]).len(), 2);
        assert_eq!(r.probe(0b10, &[Const::new(2)]).len(), 1);
    }

    #[test]
    fn indexes_are_maintained_across_inserts() {
        let mut r = sample();
        r.ensure_index(0b01);
        r.insert(tuple![1, 9]);
        assert_eq!(r.probe(0b01, &[Const::new(1)]).len(), 3);
    }

    #[test]
    fn ensure_index_is_lazy_and_idempotent() {
        let mut r = sample();
        assert_eq!(r.index_count(), 0);
        r.ensure_index(0b01);
        r.ensure_index(0b01);
        r.ensure_index(0); // the empty mask is a scan, never an index
        assert_eq!(r.index_count(), 1);
    }

    #[test]
    fn rows_live_in_one_arena() {
        let r = sample();
        assert_eq!(r.slot_count(), 3);
        assert_eq!(r.row(1), &[Const::new(1), Const::new(3)]);
        let rows: Vec<&[Const]> = r.iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[Const::new(2), Const::new(3)]);
    }

    #[test]
    fn round_trips_through_plain_relations() {
        let r = sample();
        let plain = r.to_relation();
        assert_eq!(plain.len(), 3);
        let back = IndexedRelation::from_relation(&plain);
        assert_eq!(back.len(), 3);
        assert_eq!(back.arity(), 2);
        assert!(back.contains(&tuple![1, 3]));
    }

    #[test]
    fn remove_tombstones_and_reports_presence() {
        let mut r = sample();
        r.ensure_index(0b01);
        assert!(r.remove(&tuple![1, 2]));
        assert!(!r.remove(&tuple![1, 2]));
        assert!(!r.contains(&tuple![1, 2]));
        assert_eq!(r.len(), 2);
        assert_eq!(r.probe(0b01, &[Const::new(1)]), vec![1]);
        assert_eq!(r.iter().count(), 2);
        assert_eq!(r.to_relation().len(), 2);
    }

    #[test]
    fn removed_tuples_can_be_reinserted() {
        let mut r = sample();
        r.ensure_index(0b01);
        r.remove(&tuple![1, 2]);
        assert!(r.insert(tuple![1, 2]));
        assert!(r.contains(&tuple![1, 2]));
        assert_eq!(r.len(), 3);
        assert_eq!(r.probe(0b01, &[Const::new(1)]).len(), 2);
    }

    #[test]
    fn compaction_rebuilds_indexes_when_tombstones_dominate() {
        let mut r = sample();
        r.ensure_index(0b01);
        r.remove(&tuple![1, 2]);
        r.remove(&tuple![1, 3]); // 2 dead of 3 slots → compaction
        assert_eq!(r.tombstone_count(), 0);
        assert_eq!(r.len(), 1);
        assert_eq!(r.probe(0b01, &[Const::new(2)]).len(), 1);
        assert!(r.probe(0b01, &[Const::new(1)]).is_empty());
        assert!(r.contains(&tuple![2, 3]));
    }

    #[test]
    fn wide_rows_use_hashed_membership() {
        let mut r = IndexedRelation::new(4);
        assert!(r.insert(tuple![1, 2, 3, 4]));
        assert!(!r.insert(tuple![1, 2, 3, 4]));
        assert!(r.insert(tuple![1, 2, 3, 5]));
        assert!(r.contains(&tuple![1, 2, 3, 4]));
        assert!(!r.contains(&tuple![4, 3, 2, 1]));
        assert!(r.remove(&tuple![1, 2, 3, 4]));
        assert!(!r.contains(&tuple![1, 2, 3, 4]));
        assert!(r.contains(&tuple![1, 2, 3, 5]));
    }

    #[test]
    fn zero_arity_relations_store_the_flag() {
        let mut r = IndexedRelation::new(0);
        assert!(r.insert(Tuple::empty()));
        assert!(!r.insert(Tuple::empty()));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::empty()));
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert!(r.remove(&Tuple::empty()));
        assert!(r.is_empty());
        assert_eq!(r.snapshot().len(), 0);
    }

    #[test]
    fn snapshots_stay_in_sync_across_mutations() {
        let mut r = sample();
        let snap1 = r.snapshot();
        assert_eq!(snap1.len(), 3);
        // mutations after a snapshot: the snapshot is frozen, the next one
        // reflects them — and both come from the maintained mirror.
        r.insert(tuple![9, 9]);
        r.remove(&tuple![1, 2]);
        assert_eq!(snap1.len(), 3, "outstanding snapshot must be frozen");
        let snap2 = r.snapshot();
        assert_eq!(snap2.len(), 3);
        assert!(snap2.contains(&tuple![9, 9]));
        assert!(!snap2.contains(&tuple![1, 2]));
        assert_eq!(snap2, r.to_relation());
        // and the mirror agrees with a from-scratch rebuild
        let rebuilt = kbt_data::Relation::from_tuples(r.arity(), r.tuples()).unwrap();
        assert_eq!(snap2, rebuilt);
    }

    #[test]
    fn batched_mirror_handles_insert_remove_cycles() {
        // parity bookkeeping: insert+remove (even) is a no-op, and
        // remove+insert of a pre-existing row is too
        let mut r = sample();
        let snap1 = r.snapshot();
        r.insert(tuple![9, 9]);
        r.remove(&tuple![9, 9]);
        r.remove(&tuple![1, 2]);
        r.insert(tuple![1, 2]);
        let snap2 = r.snapshot();
        assert_eq!(snap1, snap2);
        // odd parity flips
        r.insert(tuple![5, 5]);
        r.remove(&tuple![5, 5]);
        r.insert(tuple![5, 5]);
        assert!(r.snapshot().contains(&tuple![5, 5]));
    }

    #[test]
    fn from_relation_keeps_the_source_as_mirror() {
        let plain = sample().to_relation();
        let mut r = IndexedRelation::from_relation(&plain);
        assert_eq!(r.to_relation(), plain);
        r.clear();
        assert!(r.to_relation().is_empty());
        r.insert(tuple![4, 4]);
        assert_eq!(r.snapshot().len(), 1);
    }

    #[test]
    fn compaction_preserves_the_mirror() {
        let mut r = sample();
        r.ensure_index(0b01);
        let _ = r.snapshot();
        r.remove(&tuple![1, 2]);
        r.remove(&tuple![1, 3]); // triggers compaction
        assert_eq!(r.tombstone_count(), 0);
        assert_eq!(r.snapshot().len(), 1);
        assert!(r.snapshot().contains(&tuple![2, 3]));
    }

    #[test]
    fn desynced_mirror_is_rebuilt_not_served() {
        // A maintenance bug that desynchronises the mirror must never reach
        // readers: `snapshot` detects the length mismatch (release-mode
        // check), rebuilds the mirror from the arena, and counts the event
        // so it is observable.
        let mut r = sample();
        let _ = r.snapshot();
        assert_eq!(r.mirror_rebuilds(), 0);
        r.corrupt_mirror_for_test();
        let snap = r.snapshot();
        assert_eq!(r.mirror_rebuilds(), 1);
        let rebuilt = Relation::from_tuples(r.arity(), r.tuples()).unwrap();
        assert_eq!(snap, rebuilt, "recovered snapshot must match the store");
        // and the rebuilt mirror is maintained again from here on
        r.insert(tuple![7, 7]);
        assert_eq!(r.snapshot().len(), 4);
        assert_eq!(r.mirror_rebuilds(), 1);
    }

    #[test]
    fn clear_keeps_demanded_indexes_probe_ready() {
        let mut r = sample();
        r.ensure_index(0b01);
        r.clear();
        assert!(r.is_empty());
        assert!(r.probe(0b01, &[Const::new(1)]).is_empty());
        r.insert(tuple![1, 7]);
        assert_eq!(r.probe(0b01, &[Const::new(1)]).len(), 1);
    }
}
