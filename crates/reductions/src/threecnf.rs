//! Theorem 4.2 — 3CNF satisfiability as a transformation expression.
//!
//! The paper reduces 3CNF satisfiability to the membership problem
//! `db ∈ π_3(τ_ψ(kb))`: the knowledgebase stores the clauses, the inserted
//! sentence forces a fresh relation `R2` to pick a truth value for every
//! variable and a fresh zero-ary flag `R3` to record whether some clause is
//! left unsatisfied; the minimality of `µ` makes the possible worlds range
//! over exactly the truth assignments, so the formula is satisfiable iff some
//! world ends with `R3` empty.
//!
//! **Encoding note.**  The paper stores each clause as a single 7-ary tuple
//! `(i, v1, s1, v2, s2, v3, s3)`; grounding the accompanying sentence then
//! instantiates a 10-variable quantifier block, which is far outside what a
//! general-purpose evaluator can materialise even for toy inputs.  We use the
//! equivalent *literal-table* encoding — a unary `Cl(c)` relation for clause
//! identifiers and a ternary `Lit(c, v, s)` relation with one row per literal
//! — which preserves the construction (assignment relation, violation flag,
//! one possible world per assignment, satisfiability read off the flag) while
//! keeping the largest quantifier block at three variables.  DESIGN.md
//! records this substitution.

use kbt_core::{Transform, Transformer};
use kbt_data::{Database, Knowledgebase, RelId};
use kbt_logic::builder::*;
use kbt_logic::Sentence;
use kbt_solver::{BoolVar, Lit, Solver};
use rand::prelude::IndexedRandom;
use rand::{Rng, RngExt};

/// The clause-identifier relation `Cl` (unary).
pub const CL: RelId = RelId::new(1);
/// The literal table `Lit(clause, variable, sign)` (ternary).
pub const LIT: RelId = RelId::new(2);
/// The assignment relation `R2(variable, value)` introduced by the update.
pub const ASSIGN: RelId = RelId::new(3);
/// The zero-ary violation flag `R3`.
pub const VIOLATED: RelId = RelId::new(4);

/// Constant used for the truth value "false".
pub const FALSE_VALUE: u32 = 1;
/// Constant used for the truth value "true".
pub const TRUE_VALUE: u32 = 2;

/// A single 3CNF clause: three literals `(variable, positive?)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Clause3 {
    /// The three literals of the clause.
    pub literals: [(u32, bool); 3],
}

/// A 3CNF formula.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ThreeCnf {
    /// Number of propositional variables (numbered `1..=num_vars`).
    pub num_vars: u32,
    /// The clauses.
    pub clauses: Vec<Clause3>,
}

impl ThreeCnf {
    /// Generates a random 3CNF instance with the given number of variables
    /// and clauses (the classic fixed-clause-length random model).
    pub fn random(num_vars: u32, num_clauses: usize, rng: &mut impl Rng) -> Self {
        assert!(num_vars >= 3, "need at least three variables");
        let vars: Vec<u32> = (1..=num_vars).collect();
        let clauses = (0..num_clauses)
            .map(|_| {
                let mut picked: Vec<u32> = Vec::new();
                while picked.len() < 3 {
                    let v = *vars.choose(rng).expect("non-empty");
                    if !picked.contains(&v) {
                        picked.push(v);
                    }
                }
                Clause3 {
                    literals: [
                        (picked[0], rng.random_bool(0.5)),
                        (picked[1], rng.random_bool(0.5)),
                        (picked[2], rng.random_bool(0.5)),
                    ],
                }
            })
            .collect();
        ThreeCnf { num_vars, clauses }
    }

    /// Evaluates the formula under an assignment (`assignment[v]` is the
    /// value of variable `v`; index 0 unused).
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.literals
                .iter()
                .any(|&(v, positive)| assignment[v as usize] == positive)
        })
    }

    /// Brute-force satisfiability (for cross-checking small instances).
    pub fn brute_force_satisfiable(&self) -> bool {
        let n = self.num_vars as usize;
        (0..(1u64 << n)).any(|bits| {
            let assignment: Vec<bool> = std::iter::once(false)
                .chain((0..n).map(|i| bits & (1 << i) != 0))
                .collect();
            self.evaluate(&assignment)
        })
    }
}

/// Encodes a clause variable identifier as a domain constant (shifted past
/// the truth-value constants).
fn var_const(v: u32) -> u32 {
    2 + v
}

/// Encodes a clause identifier as a domain constant (shifted past the
/// truth-value and variable constants).
fn clause_const(cnf: &ThreeCnf, c: usize) -> u32 {
    2 + cnf.num_vars + 1 + c as u32
}

/// Builds the knowledgebase `kb = [(Cl, Lit)]` holding the clauses.
pub fn clause_database(cnf: &ThreeCnf) -> Database {
    let mut db = Database::new();
    db.ensure_relation(CL, 1).expect("fresh");
    db.ensure_relation(LIT, 3).expect("fresh");
    for (c, clause) in cnf.clauses.iter().enumerate() {
        let cc = clause_const(cnf, c);
        db.insert_fact(CL, kbt_data::tuple![cc]).expect("arity 1");
        for &(v, positive) in &clause.literals {
            let sign = if positive { TRUE_VALUE } else { FALSE_VALUE };
            db.insert_fact(LIT, kbt_data::tuple![cc, var_const(v), sign])
                .expect("arity 3");
        }
    }
    db
}

/// The sentence `ψ` of the reduction (adapted to the literal-table
/// encoding): every variable mentioned in some literal receives at least one
/// truth value, and every clause with no satisfied literal raises the flag.
pub fn reduction_sentence() -> Sentence {
    let assign_something = forall(
        [1, 2, 3],
        implies(
            atom(LIT.index(), [var(1), var(2), var(3)]),
            or(
                atom(ASSIGN.index(), [var(2), cst(FALSE_VALUE)]),
                atom(ASSIGN.index(), [var(2), cst(TRUE_VALUE)]),
            ),
        ),
    );
    // Without this conjunct a variable may receive *both* truth values,
    // which "satisfies" every clause mentioning it and lets unsatisfiable
    // instances end with the violation flag empty — the possible worlds must
    // range over genuine assignments, not over multivalued ones.
    let assign_functionally = forall(
        [1],
        not(and(
            atom(ASSIGN.index(), [var(1), cst(FALSE_VALUE)]),
            atom(ASSIGN.index(), [var(1), cst(TRUE_VALUE)]),
        )),
    );
    let flag_unsatisfied = forall(
        [1],
        implies(
            and(
                atom(CL.index(), [var(1)]),
                not(exists(
                    [2, 3],
                    and(
                        atom(LIT.index(), [var(1), var(2), var(3)]),
                        atom(ASSIGN.index(), [var(2), var(3)]),
                    ),
                )),
            ),
            atom(VIOLATED.index(), []),
        ),
    );
    Sentence::new(and_all([
        assign_something,
        assign_functionally,
        flag_unsatisfied,
    ]))
    .expect("closed")
}

/// The transformation expression `π_{R3} ∘ τ_ψ` of Theorem 4.2.
pub fn reduction_transform() -> Transform {
    Transform::insert(reduction_sentence()).then(Transform::project(vec![VIOLATED]))
}

/// Decides satisfiability of a 3CNF instance by evaluating the reduction
/// transformation: the instance is satisfiable iff some possible world of
/// the result leaves the violation flag empty.
pub fn satisfiable_via_transformation(t: &Transformer, cnf: &ThreeCnf) -> kbt_core::Result<bool> {
    let kb = Knowledgebase::singleton(clause_database(cnf));
    let result = t.apply(&reduction_transform(), &kb)?.kb;
    let sat = result
        .iter()
        .any(|db| db.relation(VIOLATED).is_none_or(|r| r.is_empty()));
    Ok(sat)
}

/// The independent baseline of the Theorem 4.2 experiment: DPLL over the
/// obvious CNF encoding, using the `kbt-solver` substrate.
pub fn satisfiable_via_dpll(cnf: &ThreeCnf) -> bool {
    let mut solver = Solver::new(cnf.num_vars as usize + 1);
    for clause in &cnf.clauses {
        let lits: Vec<Lit> = clause
            .literals
            .iter()
            .map(|&(v, positive)| Lit::new(BoolVar::new(v), positive))
            .collect();
        solver.add_clause(&lits);
    }
    solver.is_satisfiable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn cnf(clauses: &[[(u32, bool); 3]], num_vars: u32) -> ThreeCnf {
        ThreeCnf {
            num_vars,
            clauses: clauses
                .iter()
                .map(|&literals| Clause3 { literals })
                .collect(),
        }
    }

    #[test]
    fn dpll_baseline_matches_brute_force_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let instance = ThreeCnf::random(5, 21, &mut rng);
            assert_eq!(
                satisfiable_via_dpll(&instance),
                instance.brute_force_satisfiable()
            );
        }
    }

    #[test]
    fn transformation_decides_satisfiable_instances() {
        // (x1 ∨ x2 ∨ x3) ∧ (¬x1 ∨ ¬x2 ∨ x3)
        let instance = cnf(
            &[
                [(1, true), (2, true), (3, true)],
                [(1, false), (2, false), (3, true)],
            ],
            3,
        );
        assert!(instance.brute_force_satisfiable());
        let t = Transformer::new();
        assert!(satisfiable_via_transformation(&t, &instance).unwrap());
    }

    #[test]
    fn transformation_decides_unsatisfiable_instances() {
        // all eight sign patterns over three variables: unsatisfiable.
        let mut clauses = Vec::new();
        for bits in 0..8u32 {
            clauses.push([(1, bits & 1 != 0), (2, bits & 2 != 0), (3, bits & 4 != 0)]);
        }
        let instance = cnf(&clauses, 3);
        assert!(!instance.brute_force_satisfiable());
        let t = Transformer::new();
        assert!(!satisfiable_via_transformation(&t, &instance).unwrap());
    }

    #[test]
    fn transformation_and_dpll_agree_on_small_random_instances() {
        let mut rng = StdRng::seed_from_u64(99);
        let t = Transformer::new();
        for _ in 0..3 {
            let instance = ThreeCnf::random(3, 6, &mut rng);
            assert_eq!(
                satisfiable_via_transformation(&t, &instance).unwrap(),
                satisfiable_via_dpll(&instance),
                "disagreement on {instance:?}"
            );
        }
    }

    #[test]
    fn clause_database_shape() {
        let instance = cnf(&[[(1, true), (2, false), (3, true)]], 3);
        let db = clause_database(&instance);
        assert_eq!(db.relation(CL).unwrap().len(), 1);
        assert_eq!(db.relation(LIT).unwrap().len(), 3);
    }
}
