//! Theorem 4.9 — propositional satisfiability via a quantifier-free
//! transformation.
//!
//! The expression complexity of even the quantifier-free fragment Θ₀ is hard:
//! any propositional formula `φ'` over fresh zero-ary relation symbols can be
//! decided by inserting the sentence `R0 → φ'` into the database whose only
//! relation is the zero-ary `R0 = {()}`.  The input relation `R0` is only
//! changed when strictly necessary, which happens exactly when `φ'` has no
//! model; so `φ'` is satisfiable iff `R0` still holds after the update.

use kbt_core::{Transform, Transformer};
use kbt_data::{Database, Knowledgebase, RelId, Tuple};
use kbt_logic::builder::*;
use kbt_logic::{Formula, Sentence};
use rand::{Rng, RngExt};

/// The zero-ary input relation `R0`.
pub const R0: RelId = RelId::new(0);
/// Zero-ary relation symbols used as propositional variables start here.
pub const FIRST_PROP: u32 = 10;

/// A propositional formula over variables `0..num_vars` in a tiny NNF-free
/// syntax; it is translated into a quantifier-free first-order sentence over
/// zero-ary relations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Prop {
    /// A propositional variable.
    Var(u32),
    /// Negation.
    Not(Box<Prop>),
    /// Conjunction.
    And(Box<Prop>, Box<Prop>),
    /// Disjunction.
    Or(Box<Prop>, Box<Prop>),
}

impl Prop {
    /// Generates a random formula with the given number of variables and
    /// approximate number of connectives.
    pub fn random(num_vars: u32, connectives: usize, rng: &mut impl Rng) -> Prop {
        if connectives == 0 || num_vars == 0 {
            return Prop::Var(rng.random_range(0..num_vars.max(1)));
        }
        let left_budget = rng.random_range(0..connectives);
        let right_budget = connectives - 1 - left_budget;
        let left = Box::new(Prop::random(num_vars, left_budget, rng));
        match rng.random_range(0..3) {
            0 => Prop::Not(left),
            1 => Prop::And(left, Box::new(Prop::random(num_vars, right_budget, rng))),
            _ => Prop::Or(left, Box::new(Prop::random(num_vars, right_budget, rng))),
        }
    }

    /// Number of variables mentioned (upper bound by maximum index + 1).
    pub fn num_vars(&self) -> u32 {
        match self {
            Prop::Var(v) => v + 1,
            Prop::Not(a) => a.num_vars(),
            Prop::And(a, b) | Prop::Or(a, b) => a.num_vars().max(b.num_vars()),
        }
    }

    /// Evaluates under an assignment.
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        match self {
            Prop::Var(v) => assignment[*v as usize],
            Prop::Not(a) => !a.evaluate(assignment),
            Prop::And(a, b) => a.evaluate(assignment) && b.evaluate(assignment),
            Prop::Or(a, b) => a.evaluate(assignment) || b.evaluate(assignment),
        }
    }

    /// Brute-force satisfiability.
    pub fn brute_force_satisfiable(&self) -> bool {
        let n = self.num_vars() as usize;
        (0..(1u64 << n)).any(|bits| {
            let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
            self.evaluate(&assignment)
        })
    }

    /// Translates the propositional formula into a first-order formula over
    /// zero-ary relation symbols.
    pub fn to_formula(&self) -> Formula {
        match self {
            Prop::Var(v) => atom(FIRST_PROP + v, []),
            Prop::Not(a) => not(a.to_formula()),
            Prop::And(a, b) => and(a.to_formula(), b.to_formula()),
            Prop::Or(a, b) => or(a.to_formula(), b.to_formula()),
        }
    }
}

/// The database `db = (r0)` with `r0 = {()}` of Theorem 4.9.
pub fn flag_database() -> Database {
    let mut db = Database::new();
    db.insert_fact(R0, Tuple::empty()).expect("zero-ary");
    db
}

/// The transformation `π_0 ∘ τ_{R0 → φ'}` of Theorem 4.9.
pub fn reduction_transform(prop: &Prop) -> Transform {
    let sentence = Sentence::new(implies(atom(R0.index(), []), prop.to_formula())).expect("closed");
    Transform::insert(sentence).then(Transform::project(vec![R0]))
}

/// Decides propositional satisfiability by evaluating the Theorem 4.9
/// transformation.
pub fn satisfiable_via_transformation(t: &Transformer, prop: &Prop) -> kbt_core::Result<bool> {
    let kb = Knowledgebase::singleton(flag_database());
    let result = t.apply(&reduction_transform(prop), &kb)?.kb;
    Ok(result.possibly_holds(R0, &Tuple::empty()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn satisfiable_and_unsatisfiable_formulas() {
        let t = Transformer::new();
        let p = Prop::Var(0);
        assert!(satisfiable_via_transformation(&t, &p).unwrap());

        let contradiction = Prop::And(
            Box::new(Prop::Var(0)),
            Box::new(Prop::Not(Box::new(Prop::Var(0)))),
        );
        assert!(!contradiction.brute_force_satisfiable());
        assert!(!satisfiable_via_transformation(&t, &contradiction).unwrap());
    }

    #[test]
    fn matches_brute_force_on_random_formulas() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Transformer::new();
        for _ in 0..10 {
            let p = Prop::random(4, 8, &mut rng);
            assert_eq!(
                satisfiable_via_transformation(&t, &p).unwrap(),
                p.brute_force_satisfiable(),
                "mismatch on {p:?}"
            );
        }
    }

    #[test]
    fn the_transformation_is_quantifier_free() {
        let p = Prop::random(3, 6, &mut StdRng::seed_from_u64(1));
        match reduction_transform(&p).steps()[0] {
            Transform::Insert(s) => assert!(kbt_logic::is_ground(s.formula())),
            other => panic!("expected insertion, got {other:?}"),
        }
    }
}
