//! Random workload generators shared by the benchmark harness.

use kbt_data::{Database, DatabaseBuilder, Knowledgebase, RelId};
use rand::prelude::IteratorRandom;
use rand::{Rng, RngExt};

/// Generates a random directed graph over `n` vertices where each ordered
/// pair is an edge with probability `p`, stored in the binary relation `rel`.
pub fn random_directed_graph(rel: RelId, n: u32, p: f64, rng: &mut impl Rng) -> Database {
    let mut b = DatabaseBuilder::new().relation(rel, 2);
    for x in 1..=n {
        for y in 1..=n {
            if x != y && rng.random_bool(p) {
                b = b.fact(rel, [x, y]);
            }
        }
    }
    b.build().expect("well-formed graph")
}

/// Generates a random undirected graph (both orientations stored).
pub fn random_undirected_graph(rel: RelId, n: u32, p: f64, rng: &mut impl Rng) -> Database {
    let mut b = DatabaseBuilder::new().relation(rel, 2);
    for x in 1..=n {
        for y in (x + 1)..=n {
            if rng.random_bool(p) {
                b = b.fact(rel, [x, y]).fact(rel, [y, x]);
            }
        }
    }
    b.build().expect("well-formed graph")
}

/// A directed chain `1 → 2 → … → n` (worst case for transitive closure).
pub fn chain_graph(rel: RelId, n: u32) -> Database {
    let mut b = DatabaseBuilder::new().relation(rel, 2);
    for i in 1..n {
        b = b.fact(rel, [i, i + 1]);
    }
    b.build().expect("well-formed chain")
}

/// A random subset of `{1, …, universe}` of the given size, stored in a
/// unary relation.
pub fn random_set(rel: RelId, universe: u32, size: usize, rng: &mut impl Rng) -> Database {
    let mut b = DatabaseBuilder::new().relation(rel, 1);
    for x in (1..=universe).sample(rng, size) {
        b = b.fact(rel, [x]);
    }
    b.build().expect("well-formed set")
}

/// A knowledgebase with `worlds` random unary databases over the given
/// universe — a quick way to get disjunctive knowledgebases for the
/// postulate experiments.
pub fn random_knowledgebase(
    rel: RelId,
    universe: u32,
    worlds: usize,
    size: usize,
    rng: &mut impl Rng,
) -> Knowledgebase {
    Knowledgebase::from_databases((0..worlds).map(|_| random_set(rel, universe, size, rng)))
        .expect("all worlds share the schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn graph_generators_respect_their_parameters() {
        let mut rng = StdRng::seed_from_u64(11);
        let g = random_directed_graph(r(1), 6, 1.0, &mut rng);
        assert_eq!(g.fact_count(), 6 * 5);
        let g = random_directed_graph(r(1), 6, 0.0, &mut rng);
        assert_eq!(g.fact_count(), 0);
        let u = random_undirected_graph(r(1), 5, 1.0, &mut rng);
        assert_eq!(u.fact_count(), 5 * 4);
        let c = chain_graph(r(1), 5);
        assert_eq!(c.fact_count(), 4);
    }

    #[test]
    fn set_and_knowledgebase_generators() {
        let mut rng = StdRng::seed_from_u64(13);
        let s = random_set(r(1), 20, 7, &mut rng);
        assert_eq!(s.fact_count(), 7);
        let kb = random_knowledgebase(r(1), 10, 4, 3, &mut rng);
        assert!(kb.len() <= 4 && !kb.is_empty());
        for db in kb.iter() {
            assert_eq!(db.fact_count(), 3);
        }
    }
}
