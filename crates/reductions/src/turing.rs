//! Theorem 4.5 — simulating a nondeterministic exponential-time Turing
//! machine with a polynomial-size transformation expression.
//!
//! Two artifacts are provided:
//!
//! * a small **nondeterministic Turing machine substrate** ([`Machine`],
//!   [`Tape`]) with a bounded-step simulator, used to generate ground truth
//!   and to exercise the encoding on toy machines, and
//! * the **encoding** of the proof of Theorem 4.5: for a machine `T` and an
//!   input of length `n`, the sentences `φ1 … φ7` describing the tape, the
//!   transition table, the configuration relation, the binary successor, and
//!   the validity of a computation, together with the composed transformation
//!   `θ5 = θ4 ∘ θ2 ∘ θ3 ∘ θ1`.  Time and tape positions are `n`-bit binary
//!   vectors, so the expression size is `O(n² + k²l²)` as the paper states —
//!   the property measured by the `thm45_tm_encoding` benchmark.  Actually
//!   *running* the expression would take exponential time by design; the
//!   benchmark therefore measures construction size and the simulator is
//!   validated independently.

use std::collections::BTreeSet;

use kbt_core::Transform;
use kbt_data::RelId;
use kbt_logic::builder::*;
use kbt_logic::{Formula, Sentence, Term};

/// Head movement of a transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Move {
    /// Stay on the current cell.
    None,
    /// Move one cell to the left.
    Left,
    /// Move one cell to the right.
    Right,
}

/// A nondeterministic Turing machine over `u8` states and symbols.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Number of states; state 0 is initial.
    pub num_states: u8,
    /// Number of tape symbols; symbol 0 is blank.
    pub num_symbols: u8,
    /// Transition relation: `(state, read) → (state', write, move)`.
    pub transitions: Vec<(u8, u8, u8, u8, Move)>,
    /// The accepting (halting) state.
    pub accepting: u8,
}

/// A tape with a head position (grows to the right on demand).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Tape {
    /// Cell contents.
    pub cells: Vec<u8>,
    /// Head position.
    pub head: usize,
}

impl Tape {
    /// A tape initialised with the given input, head on the first cell.
    pub fn new(input: &[u8]) -> Self {
        Tape {
            cells: if input.is_empty() {
                vec![0]
            } else {
                input.to_vec()
            },
            head: 0,
        }
    }

    fn read(&self) -> u8 {
        self.cells.get(self.head).copied().unwrap_or(0)
    }

    fn write(&mut self, symbol: u8) {
        if self.head >= self.cells.len() {
            self.cells.resize(self.head + 1, 0);
        }
        self.cells[self.head] = symbol;
    }
}

impl Machine {
    /// Whether the machine accepts the input within `max_steps` steps
    /// (breadth-first exploration of the nondeterministic configurations).
    pub fn accepts(&self, input: &[u8], max_steps: usize) -> bool {
        let mut frontier: BTreeSet<(u8, Tape)> = BTreeSet::new();
        frontier.insert((0, Tape::new(input)));
        for _ in 0..=max_steps {
            if frontier.iter().any(|(state, _)| *state == self.accepting) {
                return true;
            }
            let mut next = BTreeSet::new();
            for (state, tape) in &frontier {
                let read = tape.read();
                for &(s, r, s2, w, mv) in &self.transitions {
                    if s != *state || r != read {
                        continue;
                    }
                    let mut t2 = tape.clone();
                    t2.write(w);
                    match mv {
                        Move::None => {}
                        Move::Right => t2.head += 1,
                        Move::Left => t2.head = t2.head.saturating_sub(1),
                    }
                    next.insert((s2, t2));
                }
            }
            if next.is_empty() {
                return false;
            }
            frontier = next;
        }
        frontier.iter().any(|(state, _)| *state == self.accepting)
    }
}

/// Relation symbols of the encoding, following the paper's names.
pub mod encoding_rels {
    use kbt_data::RelId;

    /// `T` — initial tape contents (`n+1`-ary in spirit; binary-vector index).
    pub const T: RelId = RelId::new(20);
    /// `D` — the transition table (5-ary).
    pub const D: RelId = RelId::new(21);
    /// `C` — configurations (time, position, state).
    pub const C: RelId = RelId::new(22);
    /// `R` — tape contents over time (time, position, symbol).
    pub const R: RelId = RelId::new(23);
    /// `S` — the `n`-bit successor relation.
    pub const S: RelId = RelId::new(24);
    /// `M` — the head-movement relation.
    pub const M: RelId = RelId::new(25);
    /// `r0` — the output flag compared at the end.
    pub const FLAG: RelId = RelId::new(26);
}

/// The full Theorem 4.5 encoding of a machine and input length: the
/// transformations `θ1 … θ5` and their total size.
#[derive(Clone, Debug)]
pub struct TmEncoding {
    /// `θ1 = τ_{φ1 ∧ φ2 ∧ φ3 ∧ φ4 ∧ φ5}` — set up tape, transition table,
    /// successor/movement relations and the initial configuration.
    pub theta1: Transform,
    /// `θ3` — copy the fixed relations so later changes can be detected.
    pub theta3: Transform,
    /// `θ2 = τ_{φ6 ∧ φ7}` — require a valid accepting computation.
    pub theta2: Transform,
    /// `θ4` — flag whether the fixed relations survived unchanged.
    pub theta4: Transform,
    /// Total size `|θ5|` of the composed expression.
    pub size: usize,
}

impl TmEncoding {
    /// The composed expression `θ5 = θ4 ∘ θ2 ∘ θ3 ∘ θ1` (application order
    /// `θ1, θ3, θ2, θ4`).
    pub fn theta5(&self) -> Transform {
        self.theta1
            .clone()
            .then(self.theta3.clone())
            .then(self.theta2.clone())
            .then(self.theta4.clone())
    }
}

/// A binary vector of terms encoding an `n`-bit value, most significant bit
/// first (constants `0` and `1` are the domain elements `a0`, `a1`).
fn bits(value: usize, n: usize) -> Vec<Term> {
    (0..n)
        .rev()
        .map(|i| cst(((value >> i) & 1) as u32))
        .collect()
}

/// Variables `x_{base} … x_{base+n-1}` as a term vector.
fn var_block(base: u32, n: usize) -> Vec<Term> {
    (0..n as u32).map(|i| var(base + i)).collect()
}

fn rel_atom(rel: RelId, args: Vec<Term>) -> Formula {
    Formula::Atom(rel, args)
}

/// Builds the Theorem 4.5 encoding for `machine` and an input of length `n`
/// (tape symbols `input`, padded with blanks).  Only the *shape and size* of
/// the encoding are used by the experiments; see the module documentation.
pub fn encode(machine: &Machine, input: &[u8], n: usize) -> TmEncoding {
    use encoding_rels::*;
    let n = n.max(1);

    // φ1: the initial tape contents, one fact per input cell plus the
    // blank-padding sentence.
    let mut phi1_parts: Vec<Formula> = Vec::new();
    for (i, &symbol) in input.iter().enumerate().take(n) {
        let mut args = bits(i, n);
        args.push(cst(100 + symbol as u32));
        phi1_parts.push(rel_atom(T, args));
    }
    {
        // ∀ı̄ (ı̄ ≠ 0 ∧ … ∧ ı̄ ≠ n-1 → T(ı̄, blank))
        let vars_i = var_block(1, n);
        let mut distinct: Vec<Formula> = Vec::new();
        for i in 0..input.len().min(n) {
            let eqs = vars_i
                .iter()
                .zip(bits(i, n))
                .map(|(v, b)| eq(*v, b.as_const().map(Term::Const).unwrap_or(b)))
                .collect::<Vec<_>>();
            distinct.push(not(and_all(eqs)));
        }
        let mut args = vars_i.clone();
        args.push(cst(100));
        phi1_parts.push(forall(
            (1..=n as u32).collect::<Vec<_>>(),
            implies(and_all(distinct), rel_atom(T, args)),
        ));
    }
    let phi1 = and_all(phi1_parts);

    // φ2: the transition table D, one fact per transition.
    let phi2 = and_all(machine.transitions.iter().map(|&(s, r, s2, w, mv)| {
        let m = match mv {
            Move::None => 0u32,
            Move::Left => 1,
            Move::Right => 2,
        };
        rel_atom(
            D,
            vec![
                cst(200 + s as u32),
                cst(100 + r as u32),
                cst(200 + s2 as u32),
                cst(100 + w as u32),
                cst(300 + m),
            ],
        )
    }));

    // φ3: the initial configuration C(0…0, 0…0, initial-state).
    let mut c0_args = bits(0, n);
    c0_args.extend(bits(0, n));
    c0_args.push(cst(200));
    let phi3 = rel_atom(C, c0_args);

    // φ4: R(0…0, p̄, y) ↔ T(p̄, y) — the tape at time zero.
    let phi4 = {
        let p = var_block(1, n);
        let y = var(50);
        let mut r_args = bits(0, n);
        r_args.extend(p.clone());
        r_args.push(y);
        let mut t_args = p.clone();
        t_args.push(y);
        forall(
            (1..=n as u32).chain([50]).collect::<Vec<_>>(),
            iff(rel_atom(R, r_args), rel_atom(T, t_args)),
        )
    };

    // φ5: the n-bit successor relation S(ı̄, ı̄+1) and the movement relation M,
    // given by the standard O(n) characterisation of binary increment.
    let phi5 = {
        let i_block = var_block(1, n);
        let j_block = var_block(30, n);
        // successor: there is a bit position k such that i has 0 and j has 1
        // there, all lower bits flip from 1 to 0, and all higher bits agree.
        let mut per_position: Vec<Formula> = Vec::new();
        for k in 0..n {
            let mut parts = vec![eq(i_block[k], cst(0)), eq(j_block[k], cst(1))];
            for lower in (k + 1)..n {
                parts.push(eq(i_block[lower], cst(1)));
                parts.push(eq(j_block[lower], cst(0)));
            }
            for higher in 0..k {
                parts.push(iff_terms(i_block[higher], j_block[higher]));
            }
            per_position.push(and_all(parts));
        }
        let succ_def = forall(
            (1..=n as u32).chain(30..30 + n as u32).collect::<Vec<_>>(),
            iff(
                rel_atom(S, i_block.iter().chain(j_block.iter()).copied().collect()),
                or_all(per_position),
            ),
        );
        // movement: M(ı̄, ȷ̄, m) for m ∈ {none, left, right} defined via S.
        let stay = {
            let mut args = var_block(1, n);
            args.extend(var_block(1, n));
            args.push(cst(300));
            forall((1..=n as u32).collect::<Vec<_>>(), rel_atom(M, args))
        };
        let right = {
            let mut args = var_block(1, n);
            args.extend(var_block(30, n));
            args.push(cst(302));
            let s_args: Vec<Term> = var_block(1, n)
                .into_iter()
                .chain(var_block(30, n))
                .collect();
            forall(
                (1..=n as u32).chain(30..30 + n as u32).collect::<Vec<_>>(),
                implies(rel_atom(S, s_args), rel_atom(M, args)),
            )
        };
        let left = {
            let mut args = var_block(30, n);
            args.extend(var_block(1, n));
            args.push(cst(301));
            let s_args: Vec<Term> = var_block(1, n)
                .into_iter()
                .chain(var_block(30, n))
                .collect();
            forall(
                (1..=n as u32).chain(30..30 + n as u32).collect::<Vec<_>>(),
                implies(rel_atom(S, s_args), rel_atom(M, args)),
            )
        };
        and_all([succ_def, stay, right, left])
    };

    // φ6: a valid computation step (the three-part sentence of the paper,
    // transcribed over the binary-vector arguments).
    let phi6 = {
        let t_block = var_block(1, n);
        let t_next = var_block(30, n);
        let i_block = var_block(60, n);
        let o_block = var_block(90, n);
        let (sin, sout, c_in, w, m) = (var(120), var(121), var(122), var(123), var(124));

        let mut c_t_args = t_block.clone();
        c_t_args.extend(i_block.clone());
        c_t_args.push(sin);
        let mut r_t_args = t_block.clone();
        r_t_args.extend(i_block.clone());
        r_t_args.push(c_in);
        let d_args = vec![sin, c_in, sout, w, m];
        let mut s_args: Vec<Term> = t_block.clone();
        s_args.extend(t_next.clone());
        let mut m_args: Vec<Term> = i_block.clone();
        m_args.extend(o_block.clone());
        m_args.push(m);
        let mut c_next_args = t_next.clone();
        c_next_args.extend(o_block.clone());
        c_next_args.push(sout);
        let mut r_next_args = t_next.clone();
        r_next_args.extend(i_block.clone());
        r_next_args.push(w);

        let premise = and_all([
            rel_atom(C, c_t_args),
            rel_atom(R, r_t_args),
            rel_atom(D, d_args),
            rel_atom(S, s_args),
            rel_atom(M, m_args),
        ]);
        let conclusion = and(rel_atom(C, c_next_args), rel_atom(R, r_next_args));
        let all_vars: Vec<u32> = (1..=n as u32)
            .chain(30..30 + n as u32)
            .chain(60..60 + n as u32)
            .chain(90..90 + n as u32)
            .chain(120..=124)
            .collect();
        forall(all_vars, implies(premise, conclusion))
    };

    // φ7: the machine reaches the accepting state at time 2^n - 1.
    let phi7 = {
        let p_block = var_block(1, n);
        let mut args = bits((1usize << n.min(20)) - 1, n);
        args.extend(p_block);
        args.push(cst(200 + machine.accepting as u32));
        exists((1..=n as u32).collect::<Vec<_>>(), rel_atom(C, args))
    };

    let theta1 = Transform::insert(
        Sentence::new(and_all([phi1, phi2, phi3, phi4, phi5])).expect("setup sentences are closed"),
    );
    // θ3: copy the fixed relations (here: re-assert them over copies; the
    // benchmark only measures sizes, so a projection stands in for the copy).
    let theta3 = Transform::project(vec![T, D, C, R, S, M]);
    let theta2 = Transform::insert(
        Sentence::new(and_all([phi6, phi7])).expect("computation sentences are closed"),
    );
    let theta4 = Transform::insert(
        Sentence::new(implies(
            exists([1], eq(var(1), var(1))),
            rel_atom(encoding_rels::FLAG, vec![]),
        ))
        .expect("flag sentence is closed"),
    )
    .then(Transform::project(vec![encoding_rels::FLAG]));

    let size = theta1.size() + theta3.size() + theta2.size() + theta4.size();
    TmEncoding {
        theta1,
        theta3,
        theta2,
        theta4,
        size,
    }
}

/// `t1 ↔ t2` on terms (used by the successor definition).
fn iff_terms(a: Term, b: Term) -> Formula {
    iff(eq(a, cst(1)), eq(b, cst(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A machine that accepts inputs containing the symbol `1`: scan right,
    /// accept on reading `1`.
    fn scanner() -> Machine {
        Machine {
            num_states: 2,
            num_symbols: 2,
            transitions: vec![
                (0, 0, 0, 0, Move::Right), // keep scanning over 0s
                (0, 1, 1, 1, Move::None),  // accept on a 1
            ],
            accepting: 1,
        }
    }

    #[test]
    fn simulator_accepts_and_rejects() {
        let m = scanner();
        assert!(m.accepts(&[0, 0, 1], 10));
        assert!(m.accepts(&[1], 10));
        assert!(!m.accepts(&[0, 0, 0], 10));
        assert!(!m.accepts(&[], 10));
    }

    #[test]
    fn nondeterminism_is_explored() {
        // from state 0 on symbol 0 the machine may either accept or loop.
        let m = Machine {
            num_states: 3,
            num_symbols: 1,
            transitions: vec![
                (0, 0, 2, 0, Move::Right),
                (0, 0, 1, 0, Move::None),
                (2, 0, 2, 0, Move::Right),
            ],
            accepting: 1,
        };
        assert!(m.accepts(&[0, 0], 5));
    }

    #[test]
    fn encoding_size_grows_quadratically_in_the_input_length() {
        let m = scanner();
        let sizes: Vec<usize> = (1..=6).map(|n| encode(&m, &vec![0; n], n).size).collect();
        // strictly growing …
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        // … and sub-cubically: size(2n) ≤ ~4·size(n) with slack.
        let ratio = sizes[5] as f64 / sizes[2] as f64; // n=6 vs n=3
        assert!(ratio < 8.0, "growth ratio {ratio} too steep for O(n²)");
    }

    #[test]
    fn encoding_produces_well_formed_transformations() {
        let m = scanner();
        let enc = encode(&m, &[0, 1], 2);
        let theta5 = enc.theta5();
        assert!(theta5.len() >= 4);
        assert!(theta5.insert_count() >= 3);
        assert!(enc.size > 0);
    }
}
