//! # kbt-reductions — executable reductions, encodings and workloads
//!
//! The complexity and expressiveness results of *Knowledgebase
//! Transformations* are proved by explicit constructions.  This crate makes
//! every one of them executable so the benchmark harness can regenerate the
//! paper's evaluation:
//!
//! * [`threecnf`] — Theorem 4.2: a yes/no reduction from 3CNF satisfiability
//!   to a `π ∘ τ ∘ ⊔`-shaped transformation expression (plus a random 3CNF
//!   workload generator and the DPLL baseline from `kbt-solver`),
//! * [`propsat`] — Theorem 4.9: propositional satisfiability via a
//!   quantifier-free transformation,
//! * [`turing`] — Theorem 4.5: a nondeterministic Turing machine substrate
//!   and the `O(n²)`-sized transformation expression that simulates an
//!   exponential-time bounded machine,
//! * [`eso`] — Theorem 5.1: existential second-order queries and their
//!   encoding as `ST1` transformation expressions,
//! * [`so`] — Theorem 5.2: second-order formulas, a brute-force checker over
//!   tiny domains, and the translation of `π ∘ b ∘ τ` expressions into SO,
//! * [`workload`] — random graphs, sets and databases used by the
//!   experiments.

pub mod eso;
pub mod propsat;
pub mod so;
pub mod threecnf;
pub mod turing;
pub mod workload;

pub use eso::{EsoQuery, SecondOrderBaseline};
pub use threecnf::{Clause3, ThreeCnf};
pub use turing::{Machine, Tape};
