//! Theorem 5.2 — `ST` transformations are expressible in second-order logic.
//!
//! This module provides the second-order substrate (relation-quantified
//! formulas with a brute-force checker over tiny domains) and the translation
//! of a single `π ∘ ⊔ ∘ τ_φ` block into a second-order query, following the
//! proof of Theorem 5.2 for the case where `σ(φ) ⊆ σ(db)`: a tuple `x̄` is in
//! the answer iff there exist relations `R'` that model `φ`, are
//! Winslett-minimal w.r.t. the stored relations `R` (no `S̄` modelling `φ` is
//! strictly closer), and contain `x̄` in the projected component.
//!
//! The brute-force checker enumerates relation assignments explicitly, so it
//! is only usable on domains of a handful of elements — which is all the
//! cross-validation experiment needs.

use std::collections::BTreeSet;

use kbt_core::update::universe::all_tuples;
use kbt_core::{Transform, Transformer};
use kbt_data::{Const, Database, Knowledgebase, RelId, Relation};
use kbt_logic::{eval::eval_formula, Formula, Interpretation, Sentence, Var};

/// A second-order query of the restricted shape produced by the Theorem 5.2
/// translation of one `π_{out} ∘ ⊔ ∘ τ_φ` block.
#[derive(Clone, Debug)]
pub struct SoQuery {
    /// The sentence `φ` that was inserted.
    pub phi: Sentence,
    /// The stored relations of the input database (the `R_i`).
    pub base: Vec<(RelId, usize)>,
    /// The projected relation whose tuples form the answer.
    pub output: RelId,
    /// Arity of the output relation.
    pub output_arity: usize,
}

impl SoQuery {
    /// Brute-force evaluation of the second-order query on `db`: enumerate
    /// every candidate value `R'` of the stored relations over the active
    /// domain, keep the Winslett-minimal models of `φ`, and union the
    /// projected component (the `⊔` of the translated block).
    pub fn evaluate_brute_force(&self, db: &Database) -> Relation {
        let domain: BTreeSet<Const> = db
            .constants()
            .union(&self.phi.constants())
            .copied()
            .collect();
        // enumerate all assignments to the base relations
        let mut assignments: Vec<Database> = vec![Database::new()];
        for &(rel, arity) in &self.base {
            let tuples = all_tuples(&domain, arity);
            let mut next = Vec::new();
            for partial in &assignments {
                for bits in 0..(1u64 << tuples.len()) {
                    let mut extended = partial.clone();
                    extended.ensure_relation(rel, arity).expect("consistent");
                    for (i, t) in tuples.iter().enumerate() {
                        if bits & (1 << i) != 0 {
                            extended.insert_fact(rel, t.clone()).expect("arity");
                        }
                    }
                    next.push(extended);
                }
            }
            assignments = next;
        }
        // keep the models of φ
        let models: Vec<Database> = assignments
            .into_iter()
            .filter(|candidate| {
                let env = Interpretation::new();
                eval_formula(candidate, self.phi.formula(), &domain, &env)
            })
            .collect();
        // Winslett-minimal ones (the `min(φ, R, R')` subformula of the proof)
        let minimal = kbt_data::minimal_elements(&models, db).expect("schemas line up");
        // ⊔ of the projected component
        let mut answer = Relation::empty(self.output_arity);
        for m in &minimal {
            if let Some(rel) = m.relation(self.output) {
                for row in rel.iter() {
                    answer.insert_row(row);
                }
            }
        }
        answer
    }

    /// Evaluates the original `π_{out} ∘ ⊔ ∘ τ_φ` block with the
    /// transformation engine, for cross-checking the translation.
    pub fn evaluate_via_transformation(
        &self,
        t: &Transformer,
        db: &Database,
    ) -> kbt_core::Result<Relation> {
        let expr = Transform::insert(self.phi.clone())
            .then(Transform::Lub)
            .then(Transform::project(vec![self.output]));
        let result = t.apply(&expr, &Knowledgebase::singleton(db.clone()))?.kb;
        let answer = result
            .as_singleton()
            .and_then(|d| d.relation(self.output).cloned())
            .unwrap_or_else(|| Relation::empty(self.output_arity));
        Ok(answer)
    }
}

/// Builds the Theorem 5.2 query for a block `π_{out} ∘ ⊔ ∘ τ_φ` over a
/// database schema (`σ(φ)` must be contained in it).
pub fn translate_block(phi: Sentence, db: &Database, output: RelId) -> SoQuery {
    let base: Vec<(RelId, usize)> = db.schema().iter().collect();
    let output_arity = db
        .schema()
        .arity(output)
        .or_else(|| phi.schema().arity(output))
        .unwrap_or(0);
    SoQuery {
        phi,
        base,
        output,
        output_arity,
    }
}

/// A generic helper used by the expressiveness tests: a free-variable list
/// for SO matrices (kept here so the module is self-contained).
pub fn vars(indices: impl IntoIterator<Item = u32>) -> Vec<Var> {
    indices.into_iter().map(Var::new).collect()
}

/// Re-export of the formula type to keep the SO API surface together.
pub type Matrix = Formula;

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::DatabaseBuilder;
    use kbt_logic::builder::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn translation_agrees_with_the_transformation_engine() {
        // db over R1 (unary) and R2 (unary); φ makes R2 contain R1.
        let db = DatabaseBuilder::new()
            .fact(r(1), [1u32])
            .fact(r(1), [2u32])
            .relation(r(2), 1)
            .build()
            .unwrap();
        let phi =
            Sentence::new(forall([1], implies(atom(1, [var(1)]), atom(2, [var(1)])))).unwrap();
        let query = translate_block(phi, &db, r(2));
        let t = Transformer::new();
        let via_transform = query.evaluate_via_transformation(&t, &db).unwrap();
        let via_so = query.evaluate_brute_force(&db);
        assert_eq!(via_transform, via_so);
        assert_eq!(via_so.len(), 2);
    }

    #[test]
    fn translation_handles_disjunctive_updates() {
        // φ = R1(a1) ∨ R1(a2) on an empty unary relation: the ⊔ of the two
        // minimal worlds contains both constants.
        let db = DatabaseBuilder::new().relation(r(1), 1).build().unwrap();
        let phi = Sentence::new(or(atom(1, [cst(1)]), atom(1, [cst(2)]))).unwrap();
        let query = translate_block(phi, &db, r(1));
        let t = Transformer::new();
        let via_transform = query.evaluate_via_transformation(&t, &db).unwrap();
        let via_so = query.evaluate_brute_force(&db);
        assert_eq!(via_transform, via_so);
        assert_eq!(via_so.len(), 2);
    }
}
