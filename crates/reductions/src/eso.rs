//! Theorem 5.1 — existential second-order queries are expressible in `ST1`.
//!
//! An ESO query `x̄ . ∃R_{n+1} φ(x̄)` is evaluated on a database by guessing a
//! value for the relation `R_{n+1}` and collecting the tuples satisfying the
//! matrix.  The paper's construction builds the knowledgebase containing one
//! database per possible value of `R_{n+1}` (over the active domain), inserts
//! `∀x̄ (φ(x̄) → R_out(x̄))` — whose minimal models write exactly the
//! satisfying tuples into the fresh output relation — and takes `π_out ∘ ⊔`
//! to union the answers over all guesses.

use kbt_core::{Transform, Transformer};
use kbt_data::{Database, Knowledgebase, RelId, Relation};
use kbt_logic::builder::forall;
use kbt_logic::{eval::eval_formula, Formula, Interpretation, Sentence, Term, Var};

/// An existential second-order query `x̄ . ∃G φ(x̄, G)` with one guessed
/// relation `G` and an output arity equal to the number of free variables.
#[derive(Clone, Debug)]
pub struct EsoQuery {
    /// The guessed (existentially quantified) relation symbol.
    pub guessed: RelId,
    /// Arity of the guessed relation.
    pub guessed_arity: usize,
    /// The free variables `x̄` of the matrix, in output order.
    pub free_vars: Vec<Var>,
    /// The first-order matrix `φ(x̄, G, …)`.
    pub matrix: Formula,
    /// The fresh output relation used by the ST1 encoding.
    pub output: RelId,
}

/// The brute-force ESO evaluator used as the experiment's baseline.
pub struct SecondOrderBaseline;

impl SecondOrderBaseline {
    /// Evaluates the query on a database by enumerating every value of the
    /// guessed relation over the active domain.
    pub fn evaluate(query: &EsoQuery, db: &Database) -> Relation {
        let domain = db.constants();
        let tuples = kbt_core::update::universe::all_tuples(&domain, query.guessed_arity);
        let out_tuples = kbt_core::update::universe::all_tuples(&domain, query.free_vars.len());
        let mut answers = Relation::empty(query.free_vars.len());
        for bits in 0..(1u64 << tuples.len()) {
            let mut extended = db.clone();
            extended
                .ensure_relation(query.guessed, query.guessed_arity)
                .expect("fresh relation");
            for (i, t) in tuples.iter().enumerate() {
                if bits & (1 << i) != 0 {
                    extended
                        .insert_fact(query.guessed, t.clone())
                        .expect("arity checked");
                }
            }
            for out in &out_tuples {
                let mut env = Interpretation::new();
                for (v, c) in query.free_vars.iter().zip(out.iter()) {
                    env.insert(*v, c);
                }
                if eval_formula(&extended, &query.matrix, &domain, &env) {
                    answers.insert(out.clone()).expect("arity checked");
                }
            }
        }
        answers
    }
}

impl EsoQuery {
    /// Builds the knowledgebase of the Theorem 5.1 construction: one possible
    /// world per value of the guessed relation over the active domain of the
    /// input database.
    pub fn guess_knowledgebase(&self, db: &Database) -> Knowledgebase {
        let domain = db.constants();
        let tuples = kbt_core::update::universe::all_tuples(&domain, self.guessed_arity);
        let mut worlds = Vec::new();
        for bits in 0..(1u64 << tuples.len()) {
            let mut world = db.clone();
            world
                .ensure_relation(self.guessed, self.guessed_arity)
                .expect("fresh relation");
            for (i, t) in tuples.iter().enumerate() {
                if bits & (1 << i) != 0 {
                    world
                        .insert_fact(self.guessed, t.clone())
                        .expect("arity checked");
                }
            }
            worlds.push(world);
        }
        Knowledgebase::from_databases(worlds).expect("uniform schema")
    }

    /// The ST1 transformation `π_out ∘ ⊔ ∘ τ_{∀x̄ (φ → R_out(x̄))}`.
    pub fn st1_transform(&self) -> Transform {
        let head = Formula::Atom(
            self.output,
            self.free_vars.iter().map(|&v| Term::Var(v)).collect(),
        );
        let sentence = Sentence::new(forall(
            self.free_vars.iter().map(|v| v.index()),
            kbt_logic::builder::implies(self.matrix.clone(), head),
        ))
        .expect("the matrix' free variables are exactly x̄");
        Transform::insert(sentence)
            .then(Transform::Lub)
            .then(Transform::project(vec![self.output]))
    }

    /// Evaluates the query through the ST1 encoding.
    pub fn evaluate_via_st1(&self, t: &Transformer, db: &Database) -> kbt_core::Result<Relation> {
        let kb = self.guess_knowledgebase(db);
        let result = t.apply(&self.st1_transform(), &kb)?.kb;
        let answer = result
            .as_singleton()
            .and_then(|d| d.relation(self.output).cloned())
            .unwrap_or_else(|| Relation::empty(self.free_vars.len()));
        Ok(answer)
    }
}

/// The 2-colourability query used by the experiments: `Q(x)` holds when the
/// graph in `edge_rel` admits a proper 2-colouring in which `x` is on the
/// "selected" side.
pub fn two_colourable_side_query(edge_rel: RelId, guessed: RelId, output: RelId) -> EsoQuery {
    use kbt_logic::builder::*;
    let x = Var::new(1);
    // ∀y,z (E(y,z) → (S(y) ↔ ¬S(z))) ∧ S(x)
    let matrix = and(
        forall(
            [2, 3],
            implies(
                atom(edge_rel.index(), [var(2), var(3)]),
                iff(
                    atom(guessed.index(), [var(2)]),
                    not(atom(guessed.index(), [var(3)])),
                ),
            ),
        ),
        atom(guessed.index(), [var(1)]),
    );
    EsoQuery {
        guessed,
        guessed_arity: 1,
        free_vars: vec![x],
        matrix,
        output,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_data::DatabaseBuilder;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn graph(edges: &[(u32, u32)]) -> Database {
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for &(x, y) in edges {
            b = b.fact(r(1), [x, y]).fact(r(1), [y, x]);
        }
        b.build().unwrap()
    }

    #[test]
    fn st1_encoding_agrees_with_the_brute_force_baseline() {
        let query = two_colourable_side_query(r(1), r(7), r(8));
        let t = Transformer::new();
        // a path (bipartite): every vertex can be on the selected side
        let bipartite = graph(&[(1, 2), (2, 3)]);
        let expected = SecondOrderBaseline::evaluate(&query, &bipartite);
        let got = query.evaluate_via_st1(&t, &bipartite).unwrap();
        assert_eq!(expected, got);
        assert_eq!(got.len(), 3);

        // an odd cycle (not 2-colourable): no vertex qualifies
        let odd = graph(&[(1, 2), (2, 3), (1, 3)]);
        let expected = SecondOrderBaseline::evaluate(&query, &odd);
        let got = query.evaluate_via_st1(&t, &odd).unwrap();
        assert_eq!(expected, got);
        assert!(got.is_empty());
    }

    #[test]
    fn the_encoding_has_the_st_shape_of_section_5() {
        let query = two_colourable_side_query(r(1), r(7), r(8));
        assert!(query.st1_transform().is_st_shape());
    }

    #[test]
    fn guess_knowledgebase_enumerates_all_relation_values() {
        let query = two_colourable_side_query(r(1), r(7), r(8));
        let db = graph(&[(1, 2)]);
        // 2 constants → 2^2 possible unary relations
        assert_eq!(query.guess_knowledgebase(&db).len(), 4);
    }
}
