//! Bottom-up least-fixpoint evaluation: naive and semi-naive.
//!
//! Inserting a Datalog program into an extensional database produces the
//! program's unique least fixpoint (the remark before the contributions list
//! in Section 1, made precise by Theorem 4.8).  Both evaluators below compute
//! that fixpoint; the semi-naive one only re-joins facts derived in the
//! previous iteration and is the one used by the `Datalog` fast path of the
//! transformation evaluator.

use std::collections::{BTreeMap, BTreeSet};

use kbt_data::{Const, Database, Tuple};
use kbt_logic::{Term, Var};

use crate::ast::{DlAtom, Program, Rule};
use crate::stratify::stratify;
use crate::Result;

/// Statistics reported by the evaluators (used by the benchmark harness).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint iterations (across all strata).
    pub iterations: usize,
    /// Number of facts derived for intensional relations.
    pub derived_facts: usize,
}

type Subst = BTreeMap<Var, Const>;

/// Computes the least fixpoint of `program` over the extensional database
/// `edb` using naive evaluation (recompute everything each round).
///
/// Supports stratified negation: the program is stratified first and the
/// strata are evaluated in order.
pub fn naive_eval(program: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    eval_with(program, edb, false)
}

/// Computes the least fixpoint of `program` over `edb` using semi-naive
/// evaluation (only facts that are new in the previous round are re-joined).
pub fn semi_naive_eval(program: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    eval_with(program, edb, true)
}

fn eval_with(program: &Program, edb: &Database, semi_naive: bool) -> Result<(Database, EvalStats)> {
    let strata = stratify(program)?;
    let mut db = edb.clone();
    // make sure every relation of the program exists in the working database
    for (rel, arity) in program.schema().iter() {
        db.ensure_relation(rel, arity).map_err(crate::DatalogError::Data)?;
    }
    let mut stats = EvalStats::default();
    for stratum in &strata {
        if semi_naive {
            eval_stratum_semi_naive(stratum, &mut db, &mut stats);
        } else {
            eval_stratum_naive(stratum, &mut db, &mut stats);
        }
    }
    Ok((db, stats))
}

fn eval_stratum_naive(stratum: &Program, db: &mut Database, stats: &mut EvalStats) {
    loop {
        stats.iterations += 1;
        let mut new_facts: Vec<(kbt_data::RelId, Tuple)> = Vec::new();
        for rule in stratum.rules() {
            for fact in derive(rule, db, None) {
                if !db.holds(rule.head.rel, &fact) {
                    new_facts.push((rule.head.rel, fact));
                }
            }
        }
        if new_facts.is_empty() {
            break;
        }
        for (rel, fact) in new_facts {
            if db.insert_fact(rel, fact).expect("arity checked by Program") {
                stats.derived_facts += 1;
            }
        }
    }
}

fn eval_stratum_semi_naive(stratum: &Program, db: &mut Database, stats: &mut EvalStats) {
    // round 0: plain naive round to seed the deltas
    let mut delta: BTreeMap<kbt_data::RelId, BTreeSet<Tuple>> = BTreeMap::new();
    stats.iterations += 1;
    for rule in stratum.rules() {
        for fact in derive(rule, db, None) {
            if !db.holds(rule.head.rel, &fact) {
                delta.entry(rule.head.rel).or_default().insert(fact);
            }
        }
    }
    commit(db, &delta, stats);

    let idb = stratum.idb_relations();
    while !delta.is_empty() {
        stats.iterations += 1;
        let mut next_delta: BTreeMap<kbt_data::RelId, BTreeSet<Tuple>> = BTreeMap::new();
        for rule in stratum.rules() {
            // for each body position holding an IDB relation with a delta,
            // evaluate the rule with that position restricted to the delta.
            for (pos, lit) in rule.body.iter().enumerate() {
                if !lit.positive || !idb.contains(&lit.atom.rel) {
                    continue;
                }
                let Some(d) = delta.get(&lit.atom.rel) else {
                    continue;
                };
                if d.is_empty() {
                    continue;
                }
                for fact in derive(rule, db, Some((pos, d))) {
                    if !db.holds(rule.head.rel, &fact) {
                        next_delta.entry(rule.head.rel).or_default().insert(fact);
                    }
                }
            }
        }
        commit(db, &next_delta, stats);
        delta = next_delta;
    }
}

fn commit(
    db: &mut Database,
    delta: &BTreeMap<kbt_data::RelId, BTreeSet<Tuple>>,
    stats: &mut EvalStats,
) {
    for (&rel, facts) in delta {
        for fact in facts {
            if db
                .insert_fact(rel, fact.clone())
                .expect("arity checked by Program")
            {
                stats.derived_facts += 1;
            }
        }
    }
}

/// Derives all head facts of `rule` against `db`.  When `delta_pos` is given,
/// the body literal at that position only ranges over the supplied delta
/// tuples (semi-naive evaluation).
fn derive(
    rule: &Rule,
    db: &Database,
    delta_pos: Option<(usize, &BTreeSet<Tuple>)>,
) -> BTreeSet<Tuple> {
    // evaluate positive literals first (they bind variables), negatives last
    let mut order: Vec<usize> = (0..rule.body.len()).filter(|&i| rule.body[i].positive).collect();
    order.extend((0..rule.body.len()).filter(|&i| !rule.body[i].positive));

    let mut out = BTreeSet::new();
    let mut subst = Subst::new();
    search(rule, db, delta_pos, &order, 0, &mut subst, &mut out);
    out
}

fn search(
    rule: &Rule,
    db: &Database,
    delta_pos: Option<(usize, &BTreeSet<Tuple>)>,
    order: &[usize],
    depth: usize,
    subst: &mut Subst,
    out: &mut BTreeSet<Tuple>,
) {
    if depth == order.len() {
        if let Some(fact) = instantiate(&rule.head, subst) {
            out.insert(fact);
        }
        return;
    }
    let idx = order[depth];
    let lit = &rule.body[idx];
    if lit.positive {
        // candidate tuples: either the delta (for the designated position) or
        // the full relation.
        let full = db.relation(lit.atom.rel);
        let use_delta = matches!(delta_pos, Some((p, _)) if p == idx);
        let iter: Box<dyn Iterator<Item = &Tuple>> = if use_delta {
            let (_, d) = delta_pos.expect("checked");
            Box::new(d.iter())
        } else {
            match full {
                Some(rel) => Box::new(rel.iter()),
                None => return,
            }
        };
        for tuple in iter {
            let mut bound: Vec<Var> = Vec::new();
            if unify(&lit.atom, tuple, subst, &mut bound) {
                search(rule, db, delta_pos, order, depth + 1, subst, out);
            }
            for v in bound {
                subst.remove(&v);
            }
        }
    } else {
        // negated literal: safety guarantees all its variables are bound
        let Some(fact) = instantiate(&lit.atom, subst) else {
            return;
        };
        if !db.holds(lit.atom.rel, &fact) {
            search(rule, db, delta_pos, order, depth + 1, subst, out);
        }
    }
}

/// Extends `subst` so that `atom` matches `tuple`; records newly bound
/// variables in `bound`.  Returns `false` (and leaves `subst` extended with
/// whatever was bound so far — caller unbinds) on mismatch.
fn unify(atom: &DlAtom, tuple: &Tuple, subst: &mut Subst, bound: &mut Vec<Var>) -> bool {
    if atom.arity() != tuple.arity() {
        return false;
    }
    for (term, value) in atom.terms.iter().zip(tuple.iter()) {
        match term {
            Term::Const(c) => {
                if *c != value {
                    return false;
                }
            }
            Term::Var(v) => match subst.get(v) {
                Some(&existing) => {
                    if existing != value {
                        return false;
                    }
                }
                None => {
                    subst.insert(*v, value);
                    bound.push(*v);
                }
            },
        }
    }
    true
}

fn instantiate(atom: &DlAtom, subst: &Subst) -> Option<Tuple> {
    let mut values = Vec::with_capacity(atom.arity());
    for term in &atom.terms {
        match term {
            Term::Const(c) => values.push(*c),
            Term::Var(v) => values.push(*subst.get(v)?),
        }
    }
    Some(Tuple::new(values))
}

/// Returns only the intensional part of the fixpoint as a database (useful
/// when the caller wants the "answer" relations without the EDB).
pub fn idb_only(program: &Program, fixpoint: &Database) -> Database {
    let idb: Vec<kbt_data::RelId> = program.idb_relations().into_iter().collect();
    fixpoint.project(&idb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Literal, Rule};
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::{cst, var};

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn tc_program() -> Program {
        let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
        let path = |a, b| DlAtom::new(r(2), vec![a, b]);
        Program::new(vec![
            Rule::new(path(var(1), var(2)), vec![Literal::positive(edge(var(1), var(2)))]),
            Rule::new(
                path(var(1), var(3)),
                vec![
                    Literal::positive(path(var(1), var(2))),
                    Literal::positive(edge(var(2), var(3))),
                ],
            ),
        ])
        .unwrap()
    }

    fn chain_db(n: u32) -> Database {
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for i in 1..n {
            b = b.fact(r(1), [i, i + 1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let edb = chain_db(5);
        let (fix, stats) = semi_naive_eval(&tc_program(), &edb).unwrap();
        // closure of a 5-chain has n*(n-1)/2 = 10 pairs
        assert_eq!(fix.relation(r(2)).unwrap().len(), 10);
        assert!(fix.holds(r(2), &kbt_data::tuple![1, 5]));
        assert!(!fix.holds(r(2), &kbt_data::tuple![5, 1]));
        // EDB is preserved
        assert_eq!(fix.relation(r(1)).unwrap().len(), 4);
        assert!(stats.derived_facts >= 10);
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        for n in 2..7 {
            let edb = chain_db(n);
            let (naive, _) = naive_eval(&tc_program(), &edb).unwrap();
            let (semi, _) = semi_naive_eval(&tc_program(), &edb).unwrap();
            assert_eq!(naive, semi, "disagreement on chain of length {n}");
        }
    }

    #[test]
    fn semi_naive_does_less_work_on_long_chains() {
        let edb = chain_db(12);
        let (_, naive_stats) = naive_eval(&tc_program(), &edb).unwrap();
        let (_, semi_stats) = semi_naive_eval(&tc_program(), &edb).unwrap();
        assert_eq!(naive_stats.derived_facts, semi_stats.derived_facts);
        // both need ~n iterations, but naive re-derives every fact each round
        assert!(semi_stats.iterations >= 3);
    }

    #[test]
    fn facts_and_constants_in_rules() {
        // p(x) :- edge(1, x).   q(7).
        let p = Program::new(vec![
            Rule::new(
                DlAtom::new(r(3), vec![var(1)]),
                vec![Literal::positive(DlAtom::new(r(1), vec![cst(1), var(1)]))],
            ),
            Rule::fact(DlAtom::new(r(4), vec![cst(7)])),
        ])
        .unwrap();
        let edb = chain_db(4);
        let (fix, _) = semi_naive_eval(&p, &edb).unwrap();
        assert!(fix.holds(r(3), &kbt_data::tuple![2]));
        assert!(!fix.holds(r(3), &kbt_data::tuple![3]));
        assert!(fix.holds(r(4), &kbt_data::tuple![7]));
    }

    #[test]
    fn stratified_negation_complement_of_reachability() {
        // reach(x,y) :- edge(x,y).  reach(x,z) :- reach(x,y), edge(y,z).
        // unreach(x,y) :- node(x), node(y), ~reach(x,y).
        let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
        let reach = |a, b| DlAtom::new(r(2), vec![a, b]);
        let node = |a| DlAtom::new(r(3), vec![a]);
        let unreach = |a, b| DlAtom::new(r(4), vec![a, b]);
        let p = Program::new(vec![
            Rule::new(reach(var(1), var(2)), vec![Literal::positive(edge(var(1), var(2)))]),
            Rule::new(
                reach(var(1), var(3)),
                vec![
                    Literal::positive(reach(var(1), var(2))),
                    Literal::positive(edge(var(2), var(3))),
                ],
            ),
            Rule::new(
                unreach(var(1), var(2)),
                vec![
                    Literal::positive(node(var(1))),
                    Literal::positive(node(var(2))),
                    Literal::negative(reach(var(1), var(2))),
                ],
            ),
        ])
        .unwrap();

        let mut b = DatabaseBuilder::new().relation(r(1), 2).relation(r(3), 1);
        for i in 1..=3u32 {
            b = b.fact(r(3), [i]);
        }
        b = b.fact(r(1), [1u32, 2]).fact(r(1), [2u32, 3]);
        let edb = b.build().unwrap();

        let (fix, _) = semi_naive_eval(&p, &edb).unwrap();
        // 3 nodes → 9 pairs, reachable = {(1,2),(2,3),(1,3)} → 6 unreachable
        assert_eq!(fix.relation(r(4)).unwrap().len(), 6);
        assert!(fix.holds(r(4), &kbt_data::tuple![3, 1]));
        assert!(!fix.holds(r(4), &kbt_data::tuple![1, 3]));
    }

    #[test]
    fn idb_only_projects_away_the_edb() {
        let edb = chain_db(3);
        let (fix, _) = semi_naive_eval(&tc_program(), &edb).unwrap();
        let idb = idb_only(&tc_program(), &fix);
        assert!(idb.relation(r(1)).is_none());
        assert!(idb.relation(r(2)).is_some());
    }

    #[test]
    fn empty_edb_relation_yields_empty_idb() {
        let edb = DatabaseBuilder::new().relation(r(1), 2).build().unwrap();
        let (fix, stats) = semi_naive_eval(&tc_program(), &edb).unwrap();
        assert!(fix.relation(r(2)).unwrap().is_empty());
        assert_eq!(stats.derived_facts, 0);
    }
}
