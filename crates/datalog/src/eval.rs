//! Bottom-up least-fixpoint evaluation, backed by the indexed engine.
//!
//! Inserting a Datalog program into an extensional database produces the
//! program's unique least fixpoint (the remark before the contributions list
//! in Section 1, made precise by Theorem 4.8).  Both entry points below
//! compute that fixpoint by stratifying the program, lowering each stratum
//! to the `kbt-engine` IR, and running the engine's join-planned evaluator:
//!
//! * [`semi_naive_eval`] — the production path: delta-aware semi-naive
//!   rounds over hash-indexed storage;
//! * [`naive_eval`] — recompute-everything rounds (still index-probed);
//!   useful as a sanity cross-check and for measuring what semi-naive saves.
//!
//! The original nested-loop evaluators are preserved unchanged in
//! [`crate::reference`] as an independent oracle; the differential tests
//! assert byte-identical fixpoints between all four paths.

use kbt_data::Database;
use kbt_engine::{EngineOptions, EngineStats, EvalMode, RuleProfile};

use crate::ast::Program;
use crate::lower::lower_program;
use crate::stratify::stratify;
use crate::Result;

/// Statistics reported by the evaluators (used by the benchmark harness and
/// surfaced through `kbt-core`'s update outcomes).
///
/// Both the engine-backed evaluators and the reference oracle populate
/// `iterations`, `derived_facts`, `strata` and `tuples_scanned` the same
/// way: iterations accumulate over every stratum (each stratum contributes
/// at least its final empty round), derived facts count first-time
/// insertions into intensional relations.  `index_probes` is only nonzero
/// for the engine-backed paths — the reference oracle never probes an index.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint iterations (across all strata).
    pub iterations: usize,
    /// Number of facts derived for intensional relations.
    pub derived_facts: usize,
    /// Number of strata evaluated.
    pub strata: usize,
    /// Number of hash-index probes (membership and negation checks
    /// included); zero for the reference oracle.
    pub index_probes: usize,
    /// Number of candidate tuples inspected by scans and probe buckets.
    pub tuples_scanned: usize,
    /// Incremental only: facts of the previous fixpoint reused untouched by
    /// a delta application (zero for from-scratch evaluations).
    pub reused_facts: usize,
    /// Incremental only: facts restored by DRed rederivation or re-derived
    /// by the stratified-negation fallback recomputation.
    pub rederived_facts: usize,
}

impl From<EngineStats> for EvalStats {
    fn from(s: EngineStats) -> Self {
        EvalStats {
            iterations: s.iterations,
            derived_facts: s.derived_facts,
            strata: s.strata,
            index_probes: s.index_probes,
            tuples_scanned: s.tuples_scanned,
            reused_facts: s.reused_facts,
            rederived_facts: s.rederived_facts,
        }
    }
}

/// Computes the least fixpoint of `program` over the extensional database
/// `edb` using naive evaluation (recompute everything each round).
///
/// Supports stratified negation: the program is stratified first and the
/// strata are evaluated in order.
pub fn naive_eval(program: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    naive_eval_threads(program, edb, 0)
}

/// [`naive_eval`] at an explicit evaluation width (`0` = process default,
/// `1` = exact sequential path; results and statistics are identical at
/// every width).
pub fn naive_eval_threads(
    program: &Program,
    edb: &Database,
    threads: usize,
) -> Result<(Database, EvalStats)> {
    eval_with(
        program,
        edb,
        EngineOptions {
            mode: EvalMode::Naive,
            threads,
        },
    )
}

/// Computes the least fixpoint of `program` over `edb` using delta-indexed
/// semi-naive evaluation (only facts that are new in the previous round are
/// re-joined, through hash-index probes).
pub fn semi_naive_eval(program: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    semi_naive_eval_threads(program, edb, 0)
}

/// [`semi_naive_eval`] at an explicit evaluation width (`0` = process
/// default, `1` = exact sequential path; results and statistics are
/// identical at every width — the engine's parallel rounds merge private
/// worker buffers deterministically).
pub fn semi_naive_eval_threads(
    program: &Program,
    edb: &Database,
    threads: usize,
) -> Result<(Database, EvalStats)> {
    eval_with(
        program,
        edb,
        EngineOptions {
            mode: EvalMode::SemiNaive,
            threads,
        },
    )
}

fn eval_with(
    program: &Program,
    edb: &Database,
    options: EngineOptions,
) -> Result<(Database, EvalStats)> {
    let strata = stratify(program)?;
    let lowered = strata
        .iter()
        .map(lower_program)
        .collect::<Result<Vec<_>>>()?;
    let (db, stats) = kbt_engine::evaluate_with(&lowered, edb, options)?;
    Ok((db, stats.into()))
}

/// [`semi_naive_eval_threads`] with per-rule profiling: the identical
/// fixpoint and statistics (the engine's profiled driver runs the same
/// plans through the same round code — see [`kbt_engine::profile`]), plus
/// one [`RuleProfile`] per lowered rule.  The lowering is the **named**
/// one, so profiles carry each rule's source text rendered through
/// `namer` (typically the service's relation vocabulary).
pub fn semi_naive_eval_profiled(
    program: &Program,
    edb: &Database,
    threads: usize,
    namer: &dyn Fn(kbt_data::RelId) -> String,
) -> Result<(Database, EvalStats, Vec<RuleProfile>)> {
    let lowered = crate::lower::lower_strata_named(program, namer)?;
    let (db, stats, profiles) = kbt_engine::evaluate_profiled(
        &lowered,
        edb,
        EngineOptions {
            mode: EvalMode::SemiNaive,
            threads,
        },
        namer,
    )?;
    Ok((db, stats.into(), profiles))
}

/// Renders the join plans `semi_naive_eval` would run, without evaluating
/// anything: one zeroed [`RuleProfile`] per rule, named through `namer`.
/// Plans for strata after the first are sized against the extensional
/// database only (see [`kbt_engine::profile`] for the caveat).
pub fn explain_plans(
    program: &Program,
    edb: &Database,
    namer: &dyn Fn(kbt_data::RelId) -> String,
) -> Result<Vec<RuleProfile>> {
    let lowered = crate::lower::lower_strata_named(program, namer)?;
    kbt_engine::explain(&lowered, edb, namer).map_err(Into::into)
}

/// A persistent incremental evaluation of one Datalog program: the
/// AST-level face of [`kbt_engine::IncrementalSession`].
///
/// Built once from a program and an extensional database (paying one full
/// fixpoint), it then accepts fact deltas and keeps the engine's indexed
/// storage — tuples and hash indexes — alive across them.
/// [`IncrementalEval::current`] is always byte-identical to
/// [`semi_naive_eval`] over the mutated database.  See the engine crate
/// docs for the lifecycle and the stratified-negation caveats.
#[derive(Clone, Debug)]
pub struct IncrementalEval {
    session: kbt_engine::IncrementalSession,
}

impl IncrementalEval {
    /// Stratifies and lowers `program`, then evaluates it over `edb` to
    /// seed the session (at the process-default evaluation width).
    pub fn new(program: &Program, edb: &Database) -> Result<Self> {
        IncrementalEval::with_threads(program, edb, 0)
    }

    /// [`Self::new`] at an explicit evaluation width (`0` = process
    /// default, `1` = exact sequential path).  Fixpoints and statistics are
    /// identical at every width.
    pub fn with_threads(program: &Program, edb: &Database, threads: usize) -> Result<Self> {
        let lowered = crate::lower::lower_strata(program)?;
        Ok(IncrementalEval {
            session: kbt_engine::IncrementalSession::with_threads(&lowered, edb, threads)?,
        })
    }

    /// Statistics of the initial from-scratch evaluation plus every delta
    /// applied since.
    pub fn total_stats(&self) -> EvalStats {
        (*self.session.stats()).into()
    }

    /// Applies one delta (deletions retracted before insertions are added)
    /// and restores the least fixpoint; returns this call's statistics.
    ///
    /// Deltas may only touch extensional relations.  On error the session
    /// may be partially mutated — rebuild it instead of continuing.
    pub fn apply_delta(
        &mut self,
        insertions: &[(kbt_data::RelId, kbt_data::Tuple)],
        deletions: &[(kbt_data::RelId, kbt_data::Tuple)],
    ) -> Result<EvalStats> {
        Ok(self.session.apply_delta(insertions, deletions)?.into())
    }

    /// Inserts extensional facts and propagates them.
    pub fn insert_facts(
        &mut self,
        facts: &[(kbt_data::RelId, kbt_data::Tuple)],
    ) -> Result<EvalStats> {
        self.apply_delta(facts, &[])
    }

    /// Removes extensional facts, retracting dependent derivations.
    pub fn remove_facts(
        &mut self,
        facts: &[(kbt_data::RelId, kbt_data::Tuple)],
    ) -> Result<EvalStats> {
        self.apply_delta(&[], facts)
    }

    /// The maintained fixpoint as a plain database.
    pub fn current(&self) -> Database {
        self.session.current()
    }

    /// Materialises one maintained relation (`None` if the session has never
    /// seen it) — cheaper than [`Self::current`] when the caller assembles
    /// its result from a known schema.  The returned relation is a
    /// copy-on-write snapshot: after the first call per relation this is an
    /// `O(1)` `Arc` clone, and later deltas only pay for the tuples they
    /// actually change.
    pub fn relation(&mut self, rel: kbt_data::RelId) -> Option<kbt_data::Relation> {
        self.session.snapshot_relation(rel)
    }
}

/// Returns only the intensional part of the fixpoint as a database (useful
/// when the caller wants the "answer" relations without the EDB).
pub fn idb_only(program: &Program, fixpoint: &Database) -> Database {
    let idb: Vec<kbt_data::RelId> = program.idb_relations().into_iter().collect();
    fixpoint.project(&idb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DlAtom, Literal, Rule};
    use crate::reference::{reference_naive_eval, reference_semi_naive_eval};
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::{cst, var};

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn tc_program() -> Program {
        let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
        let path = |a, b| DlAtom::new(r(2), vec![a, b]);
        Program::new(vec![
            Rule::new(
                path(var(1), var(2)),
                vec![Literal::positive(edge(var(1), var(2)))],
            ),
            Rule::new(
                path(var(1), var(3)),
                vec![
                    Literal::positive(path(var(1), var(2))),
                    Literal::positive(edge(var(2), var(3))),
                ],
            ),
        ])
        .unwrap()
    }

    fn chain_db(n: u32) -> Database {
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for i in 1..n {
            b = b.fact(r(1), [i, i + 1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let edb = chain_db(5);
        let (fix, stats) = semi_naive_eval(&tc_program(), &edb).unwrap();
        // closure of a 5-chain has n*(n-1)/2 = 10 pairs
        assert_eq!(fix.relation(r(2)).unwrap().len(), 10);
        assert!(fix.holds(r(2), &kbt_data::tuple![1, 5]));
        assert!(!fix.holds(r(2), &kbt_data::tuple![5, 1]));
        // EDB is preserved
        assert_eq!(fix.relation(r(1)).unwrap().len(), 4);
        assert!(stats.derived_facts >= 10);
    }

    #[test]
    fn naive_and_semi_naive_agree() {
        for n in 2..7 {
            let edb = chain_db(n);
            let (naive, _) = naive_eval(&tc_program(), &edb).unwrap();
            let (semi, _) = semi_naive_eval(&tc_program(), &edb).unwrap();
            assert_eq!(naive, semi, "disagreement on chain of length {n}");
        }
    }

    #[test]
    fn engine_paths_match_the_reference_oracle_byte_for_byte() {
        for n in 2..10 {
            let edb = chain_db(n);
            let (oracle, _) = reference_naive_eval(&tc_program(), &edb).unwrap();
            let (oracle_semi, _) = reference_semi_naive_eval(&tc_program(), &edb).unwrap();
            let (naive, _) = naive_eval(&tc_program(), &edb).unwrap();
            let (semi, _) = semi_naive_eval(&tc_program(), &edb).unwrap();
            assert_eq!(oracle, oracle_semi);
            assert_eq!(naive, oracle, "engine naive diverges on chain {n}");
            assert_eq!(semi, oracle, "engine semi-naive diverges on chain {n}");
        }
    }

    #[test]
    fn semi_naive_does_less_work_on_long_chains() {
        let edb = chain_db(12);
        let (_, naive_stats) = naive_eval(&tc_program(), &edb).unwrap();
        let (_, semi_stats) = semi_naive_eval(&tc_program(), &edb).unwrap();
        assert_eq!(naive_stats.derived_facts, semi_stats.derived_facts);
        // both need ~n iterations, but naive re-derives every fact each round
        assert!(semi_stats.iterations >= 3);
        assert!(
            semi_stats.tuples_scanned < naive_stats.tuples_scanned,
            "semi-naive ({}) must inspect fewer tuples than naive ({})",
            semi_stats.tuples_scanned,
            naive_stats.tuples_scanned
        );
    }

    #[test]
    fn stats_are_populated_per_stratum_by_both_evaluators() {
        // Two strata: TC in the first, a negation rule in the second.
        let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
        let reach = |a, b| DlAtom::new(r(2), vec![a, b]);
        let node = |a| DlAtom::new(r(3), vec![a]);
        let unreach = |a, b| DlAtom::new(r(4), vec![a, b]);
        let p = Program::new(vec![
            Rule::new(
                reach(var(1), var(2)),
                vec![Literal::positive(edge(var(1), var(2)))],
            ),
            Rule::new(
                reach(var(1), var(3)),
                vec![
                    Literal::positive(reach(var(1), var(2))),
                    Literal::positive(edge(var(2), var(3))),
                ],
            ),
            Rule::new(
                unreach(var(1), var(2)),
                vec![
                    Literal::positive(node(var(1))),
                    Literal::positive(node(var(2))),
                    Literal::negative(reach(var(1), var(2))),
                ],
            ),
        ])
        .unwrap();
        let mut b = DatabaseBuilder::new().relation(r(1), 2).relation(r(3), 1);
        for i in 1..=4u32 {
            b = b.fact(r(3), [i]);
        }
        b = b
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 3])
            .fact(r(1), [3u32, 4]);
        let edb = b.build().unwrap();

        let (_, naive_stats) = naive_eval(&p, &edb).unwrap();
        let (_, semi_stats) = semi_naive_eval(&p, &edb).unwrap();
        for (name, stats) in [("naive", naive_stats), ("semi", semi_stats)] {
            assert_eq!(stats.strata, 2, "{name} must report both strata");
            // each stratum runs at least one round: iterations accumulate
            // across strata rather than reporting only the last one.
            assert!(
                stats.iterations > stats.strata,
                "{name} iterations ({}) must cover all strata",
                stats.iterations
            );
            assert!(stats.index_probes > 0, "{name} must report its probes");
        }
        assert_eq!(naive_stats.derived_facts, semi_stats.derived_facts);
    }

    #[test]
    fn facts_and_constants_in_rules() {
        // p(x) :- edge(1, x).   q(7).
        let p = Program::new(vec![
            Rule::new(
                DlAtom::new(r(3), vec![var(1)]),
                vec![Literal::positive(DlAtom::new(r(1), vec![cst(1), var(1)]))],
            ),
            Rule::fact(DlAtom::new(r(4), vec![cst(7)])),
        ])
        .unwrap();
        let edb = chain_db(4);
        let (fix, _) = semi_naive_eval(&p, &edb).unwrap();
        assert!(fix.holds(r(3), &kbt_data::tuple![2]));
        assert!(!fix.holds(r(3), &kbt_data::tuple![3]));
        assert!(fix.holds(r(4), &kbt_data::tuple![7]));
    }

    #[test]
    fn stratified_negation_complement_of_reachability() {
        // reach(x,y) :- edge(x,y).  reach(x,z) :- reach(x,y), edge(y,z).
        // unreach(x,y) :- node(x), node(y), ~reach(x,y).
        let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
        let reach = |a, b| DlAtom::new(r(2), vec![a, b]);
        let node = |a| DlAtom::new(r(3), vec![a]);
        let unreach = |a, b| DlAtom::new(r(4), vec![a, b]);
        let p = Program::new(vec![
            Rule::new(
                reach(var(1), var(2)),
                vec![Literal::positive(edge(var(1), var(2)))],
            ),
            Rule::new(
                reach(var(1), var(3)),
                vec![
                    Literal::positive(reach(var(1), var(2))),
                    Literal::positive(edge(var(2), var(3))),
                ],
            ),
            Rule::new(
                unreach(var(1), var(2)),
                vec![
                    Literal::positive(node(var(1))),
                    Literal::positive(node(var(2))),
                    Literal::negative(reach(var(1), var(2))),
                ],
            ),
        ])
        .unwrap();

        let mut b = DatabaseBuilder::new().relation(r(1), 2).relation(r(3), 1);
        for i in 1..=3u32 {
            b = b.fact(r(3), [i]);
        }
        b = b.fact(r(1), [1u32, 2]).fact(r(1), [2u32, 3]);
        let edb = b.build().unwrap();

        let (fix, _) = semi_naive_eval(&p, &edb).unwrap();
        // 3 nodes → 9 pairs, reachable = {(1,2),(2,3),(1,3)} → 6 unreachable
        assert_eq!(fix.relation(r(4)).unwrap().len(), 6);
        assert!(fix.holds(r(4), &kbt_data::tuple![3, 1]));
        assert!(!fix.holds(r(4), &kbt_data::tuple![1, 3]));
    }

    #[test]
    fn incremental_eval_tracks_semi_naive_across_deltas() {
        let program = tc_program();
        let mut edb = chain_db(8);
        let mut inc = IncrementalEval::new(&program, &edb).unwrap();
        assert_eq!(inc.current(), semi_naive_eval(&program, &edb).unwrap().0);

        let stats = inc.insert_facts(&[(r(1), kbt_data::tuple![8, 9])]).unwrap();
        edb.insert_fact(r(1), kbt_data::tuple![8, 9]).unwrap();
        assert_eq!(inc.current(), semi_naive_eval(&program, &edb).unwrap().0);
        assert!(stats.reused_facts > 0);

        let stats = inc.remove_facts(&[(r(1), kbt_data::tuple![4, 5])]).unwrap();
        edb.remove_fact(r(1), &kbt_data::tuple![4, 5]);
        assert_eq!(inc.current(), semi_naive_eval(&program, &edb).unwrap().0);
        assert!(stats.reused_facts > 0);
        assert!(inc.total_stats().derived_facts > 0);
    }

    #[test]
    fn idb_only_projects_away_the_edb() {
        let edb = chain_db(3);
        let (fix, _) = semi_naive_eval(&tc_program(), &edb).unwrap();
        let idb = idb_only(&tc_program(), &fix);
        assert!(idb.relation(r(1)).is_none());
        assert!(idb.relation(r(2)).is_some());
    }

    #[test]
    fn empty_edb_relation_yields_empty_idb() {
        let edb = DatabaseBuilder::new().relation(r(1), 2).build().unwrap();
        let (fix, stats) = semi_naive_eval(&tc_program(), &edb).unwrap();
        assert!(fix.relation(r(2)).unwrap().is_empty());
        assert_eq!(stats.derived_facts, 0);
    }
}
