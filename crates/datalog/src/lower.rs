//! Lowering of the Datalog AST into the engine IR.
//!
//! The engine ([`kbt_engine`]) works on rules whose variables are dense
//! register slots.  This module maps each rule's variables to slots in order
//! of first occurrence and hands the result to the engine, which re-checks
//! range restriction as a defence in depth (the `Program` constructor
//! already guarantees it).

use std::collections::BTreeMap;

use kbt_data::RelId;
use kbt_engine::ir;
use kbt_logic::{Term, Var};

use crate::ast::{DlAtom, Program, Rule};
use crate::Result;

/// Lowers a single rule, assigning slots by first occurrence.
pub fn lower_rule(rule: &Rule) -> Result<ir::Rule> {
    let mut slots: BTreeMap<Var, usize> = BTreeMap::new();
    let mut slot_of = |v: Var| {
        let next = slots.len();
        *slots.entry(v).or_insert(next)
    };
    let lower_terms = |terms: &[Term], slot_of: &mut dyn FnMut(Var) -> usize| {
        terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => ir::Term::Const(*c),
                Term::Var(v) => ir::Term::Slot(slot_of(*v)),
            })
            .collect::<Vec<_>>()
    };

    // Body first so positive literals claim the early slots; the head can
    // only mention variables the body binds (range restriction).
    let body: Vec<ir::Literal> = rule
        .body
        .iter()
        .map(|l| {
            let atom = ir::Atom::new(l.atom.rel, lower_terms(&l.atom.terms, &mut slot_of));
            if l.positive {
                ir::Literal::positive(atom)
            } else {
                ir::Literal::negative(atom)
            }
        })
        .collect();
    let head = ir::Atom::new(rule.head.rel, lower_terms(&rule.head.terms, &mut slot_of));
    ir::Rule::new(head, body).map_err(Into::into)
}

/// Renders `rule` with relation names from `namer` — the source text the
/// named lowering attaches as provenance, so engine plans and profiles
/// speak the user's vocabulary instead of raw relation ids.
pub fn render_rule(rule: &Rule, namer: &dyn Fn(RelId) -> String) -> String {
    let app = |atom: &DlAtom| {
        let args: Vec<String> = atom.terms.iter().map(|t| t.to_string()).collect();
        format!("{}({})", namer(atom.rel), args.join(", "))
    };
    let mut out = app(&rule.head);
    if !rule.body.is_empty() {
        out.push_str(" :- ");
        for (i, l) in rule.body.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            if !l.positive {
                out.push('~');
            }
            out.push_str(&app(&l.atom));
        }
    }
    out.push('.');
    out
}

/// [`lower_rule`] with provenance: the lowered rule carries
/// [`render_rule`]'s text as its [`ir::Rule::name`].
pub fn lower_rule_named(rule: &Rule, namer: &dyn Fn(RelId) -> String) -> Result<ir::Rule> {
    Ok(lower_rule(rule)?.with_name(render_rule(rule, namer)))
}

/// [`lower_program`] with provenance on every rule.
pub fn lower_program_named(
    program: &Program,
    namer: &dyn Fn(RelId) -> String,
) -> Result<ir::Program> {
    Ok(ir::Program::new(
        program
            .rules()
            .iter()
            .map(|rule| lower_rule_named(rule, namer))
            .collect::<Result<Vec<_>>>()?,
    ))
}

/// [`lower_strata`] with provenance on every rule.
pub fn lower_strata_named(
    program: &Program,
    namer: &dyn Fn(RelId) -> String,
) -> Result<Vec<ir::Program>> {
    crate::stratify::stratify(program)?
        .iter()
        .map(|stratum| lower_program_named(stratum, namer))
        .collect()
}

/// Lowers a whole program (typically one stratum).
pub fn lower_program(program: &Program) -> Result<ir::Program> {
    Ok(ir::Program::new(
        program
            .rules()
            .iter()
            .map(lower_rule)
            .collect::<Result<Vec<_>>>()?,
    ))
}

/// Stratifies `program` and lowers every stratum: the entry point shared by
/// the one-shot evaluators and the delta-driven
/// [`IncrementalEval`](crate::eval::IncrementalEval) session, which hands
/// the result straight to [`kbt_engine::IncrementalSession`].
pub fn lower_strata(program: &Program) -> Result<Vec<ir::Program>> {
    crate::stratify::stratify(program)?
        .iter()
        .map(lower_program)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{DlAtom, Literal};
    use kbt_data::RelId;
    use kbt_logic::builder::{cst, var};

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn variables_become_dense_slots_in_first_occurrence_order() {
        // path(x7, x3) :- path(x7, x5), edge(x5, x3): slots 0, 1, 2.
        let rule = Rule::new(
            DlAtom::new(r(2), vec![var(7), var(3)]),
            vec![
                Literal::positive(DlAtom::new(r(2), vec![var(7), var(5)])),
                Literal::positive(DlAtom::new(r(1), vec![var(5), var(3)])),
            ],
        );
        let lowered = lower_rule(&rule).unwrap();
        assert_eq!(lowered.slots, 3);
        assert_eq!(
            lowered.body[0].atom.terms,
            vec![ir::Term::Slot(0), ir::Term::Slot(1)]
        );
        assert_eq!(
            lowered.body[1].atom.terms,
            vec![ir::Term::Slot(1), ir::Term::Slot(2)]
        );
        assert_eq!(
            lowered.head.terms,
            vec![ir::Term::Slot(0), ir::Term::Slot(2)]
        );
    }

    #[test]
    fn constants_survive_lowering() {
        let rule = Rule::new(
            DlAtom::new(r(3), vec![var(1)]),
            vec![Literal::positive(DlAtom::new(r(1), vec![cst(1), var(1)]))],
        );
        let lowered = lower_rule(&rule).unwrap();
        assert_eq!(
            lowered.body[0].atom.terms,
            vec![ir::Term::Const(kbt_data::Const::new(1)), ir::Term::Slot(0)]
        );
    }

    #[test]
    fn negation_polarity_is_preserved() {
        let rule = Rule::new(
            DlAtom::new(r(4), vec![var(1)]),
            vec![
                Literal::positive(DlAtom::new(r(3), vec![var(1)])),
                Literal::negative(DlAtom::new(r(2), vec![var(1)])),
            ],
        );
        let lowered = lower_rule(&rule).unwrap();
        assert!(lowered.body[0].positive);
        assert!(!lowered.body[1].positive);
    }
}
