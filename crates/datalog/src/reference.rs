//! The reference (oracle) evaluators: substitution-based nested-loop joins.
//!
//! These are the original naive and semi-naive evaluators of this crate,
//! kept verbatim as a cross-check oracle for the indexed engine: they share
//! no code with `kbt-engine`, so agreement between the two is strong
//! evidence of correctness.  The differential tests and the benchmark
//! baselines call them; production paths go through [`crate::eval`].

use std::collections::{BTreeMap, BTreeSet};

use kbt_data::{Const, Database, Tuple};
use kbt_logic::{Term, Var};

use crate::ast::{DlAtom, Program, Rule};
use crate::eval::EvalStats;
use crate::stratify::stratify;
use crate::Result;

type Subst = BTreeMap<Var, Const>;

/// Computes the least fixpoint of `program` over `edb` by naive nested-loop
/// evaluation (recompute everything each round).
///
/// Supports stratified negation: the program is stratified first and the
/// strata are evaluated in order.
pub fn reference_naive_eval(program: &Program, edb: &Database) -> Result<(Database, EvalStats)> {
    eval_with(program, edb, false)
}

/// Computes the least fixpoint of `program` over `edb` by semi-naive
/// nested-loop evaluation (only facts new in the previous round re-join),
/// without any indexing.
pub fn reference_semi_naive_eval(
    program: &Program,
    edb: &Database,
) -> Result<(Database, EvalStats)> {
    eval_with(program, edb, true)
}

fn eval_with(program: &Program, edb: &Database, semi_naive: bool) -> Result<(Database, EvalStats)> {
    let strata = stratify(program)?;
    let mut db = edb.clone();
    // make sure every relation of the program exists in the working database
    for (rel, arity) in program.schema().iter() {
        db.ensure_relation(rel, arity)
            .map_err(crate::DatalogError::Data)?;
    }
    let mut stats = EvalStats::default();
    for stratum in &strata {
        stats.strata += 1;
        if semi_naive {
            eval_stratum_semi_naive(stratum, &mut db, &mut stats);
        } else {
            eval_stratum_naive(stratum, &mut db, &mut stats);
        }
    }
    Ok((db, stats))
}

fn eval_stratum_naive(stratum: &Program, db: &mut Database, stats: &mut EvalStats) {
    loop {
        stats.iterations += 1;
        let mut new_facts: Vec<(kbt_data::RelId, Tuple)> = Vec::new();
        for rule in stratum.rules() {
            for fact in derive(rule, db, None, stats) {
                if !db.holds(rule.head.rel, &fact) {
                    new_facts.push((rule.head.rel, fact));
                }
            }
        }
        if new_facts.is_empty() {
            break;
        }
        for (rel, fact) in new_facts {
            if db.insert_fact(rel, fact).expect("arity checked by Program") {
                stats.derived_facts += 1;
            }
        }
    }
}

fn eval_stratum_semi_naive(stratum: &Program, db: &mut Database, stats: &mut EvalStats) {
    // round 0: plain naive round to seed the deltas
    let mut delta: BTreeMap<kbt_data::RelId, BTreeSet<Tuple>> = BTreeMap::new();
    stats.iterations += 1;
    for rule in stratum.rules() {
        for fact in derive(rule, db, None, stats) {
            if !db.holds(rule.head.rel, &fact) {
                delta.entry(rule.head.rel).or_default().insert(fact);
            }
        }
    }
    commit(db, &delta, stats);

    let idb = stratum.idb_relations();
    while !delta.is_empty() {
        stats.iterations += 1;
        let mut next_delta: BTreeMap<kbt_data::RelId, BTreeSet<Tuple>> = BTreeMap::new();
        for rule in stratum.rules() {
            // for each body position holding an IDB relation with a delta,
            // evaluate the rule with that position restricted to the delta.
            for (pos, lit) in rule.body.iter().enumerate() {
                if !lit.positive || !idb.contains(&lit.atom.rel) {
                    continue;
                }
                let Some(d) = delta.get(&lit.atom.rel) else {
                    continue;
                };
                if d.is_empty() {
                    continue;
                }
                for fact in derive(rule, db, Some((pos, d)), stats) {
                    if !db.holds(rule.head.rel, &fact) {
                        next_delta.entry(rule.head.rel).or_default().insert(fact);
                    }
                }
            }
        }
        commit(db, &next_delta, stats);
        delta = next_delta;
    }
}

fn commit(
    db: &mut Database,
    delta: &BTreeMap<kbt_data::RelId, BTreeSet<Tuple>>,
    stats: &mut EvalStats,
) {
    for (&rel, facts) in delta {
        for fact in facts {
            if db
                .insert_fact(rel, fact.clone())
                .expect("arity checked by Program")
            {
                stats.derived_facts += 1;
            }
        }
    }
}

/// Derives all head facts of `rule` against `db`.  When `delta_pos` is given,
/// the body literal at that position only ranges over the supplied delta
/// tuples (semi-naive evaluation).
fn derive(
    rule: &Rule,
    db: &Database,
    delta_pos: Option<(usize, &BTreeSet<Tuple>)>,
    stats: &mut EvalStats,
) -> BTreeSet<Tuple> {
    // evaluate positive literals first (they bind variables), negatives last
    let mut order: Vec<usize> = (0..rule.body.len())
        .filter(|&i| rule.body[i].positive)
        .collect();
    order.extend((0..rule.body.len()).filter(|&i| !rule.body[i].positive));

    let mut out = BTreeSet::new();
    let mut subst = Subst::new();
    search(rule, db, delta_pos, &order, 0, &mut subst, &mut out, stats);
    out
}

#[allow(clippy::too_many_arguments)]
fn search(
    rule: &Rule,
    db: &Database,
    delta_pos: Option<(usize, &BTreeSet<Tuple>)>,
    order: &[usize],
    depth: usize,
    subst: &mut Subst,
    out: &mut BTreeSet<Tuple>,
    stats: &mut EvalStats,
) {
    if depth == order.len() {
        if let Some(fact) = instantiate(&rule.head, subst) {
            out.insert(fact);
        }
        return;
    }
    let idx = order[depth];
    let lit = &rule.body[idx];
    if lit.positive {
        // candidate tuples: either the delta (for the designated position) or
        // the full relation.
        let full = db.relation(lit.atom.rel);
        let use_delta = matches!(delta_pos, Some((p, _)) if p == idx);
        let iter: Box<dyn Iterator<Item = &[Const]>> = if use_delta {
            let (_, d) = delta_pos.expect("checked");
            Box::new(d.iter().map(Tuple::components))
        } else {
            match full {
                Some(rel) => Box::new(rel.iter()),
                None => return,
            }
        };
        for row in iter {
            stats.tuples_scanned += 1;
            let mut bound: Vec<Var> = Vec::new();
            if unify(&lit.atom, row, subst, &mut bound) {
                search(rule, db, delta_pos, order, depth + 1, subst, out, stats);
            }
            for v in bound {
                subst.remove(&v);
            }
        }
    } else {
        // negated literal: safety guarantees all its variables are bound
        let Some(fact) = instantiate(&lit.atom, subst) else {
            return;
        };
        if !db.holds(lit.atom.rel, &fact) {
            search(rule, db, delta_pos, order, depth + 1, subst, out, stats);
        }
    }
}

/// Extends `subst` so that `atom` matches the row; records newly bound
/// variables in `bound`.  Returns `false` (and leaves `subst` extended with
/// whatever was bound so far — caller unbinds) on mismatch.
fn unify(atom: &DlAtom, row: &[Const], subst: &mut Subst, bound: &mut Vec<Var>) -> bool {
    if atom.arity() != row.len() {
        return false;
    }
    for (term, &value) in atom.terms.iter().zip(row) {
        match term {
            Term::Const(c) => {
                if *c != value {
                    return false;
                }
            }
            Term::Var(v) => match subst.get(v) {
                Some(&existing) => {
                    if existing != value {
                        return false;
                    }
                }
                None => {
                    subst.insert(*v, value);
                    bound.push(*v);
                }
            },
        }
    }
    true
}

fn instantiate(atom: &DlAtom, subst: &Subst) -> Option<Tuple> {
    let mut values = Vec::with_capacity(atom.arity());
    for term in &atom.terms {
        match term {
            Term::Const(c) => values.push(*c),
            Term::Var(v) => values.push(*subst.get(v)?),
        }
    }
    Some(Tuple::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Literal;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::var;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn tc_program() -> Program {
        let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
        let path = |a, b| DlAtom::new(r(2), vec![a, b]);
        Program::new(vec![
            Rule::new(
                path(var(1), var(2)),
                vec![Literal::positive(edge(var(1), var(2)))],
            ),
            Rule::new(
                path(var(1), var(3)),
                vec![
                    Literal::positive(path(var(1), var(2))),
                    Literal::positive(edge(var(2), var(3))),
                ],
            ),
        ])
        .unwrap()
    }

    fn chain_db(n: u32) -> Database {
        let mut b = DatabaseBuilder::new().relation(r(1), 2);
        for i in 1..n {
            b = b.fact(r(1), [i, i + 1]);
        }
        b.build().unwrap()
    }

    #[test]
    fn reference_evaluators_agree_with_each_other() {
        for n in 2..7 {
            let edb = chain_db(n);
            let (naive, _) = reference_naive_eval(&tc_program(), &edb).unwrap();
            let (semi, _) = reference_semi_naive_eval(&tc_program(), &edb).unwrap();
            assert_eq!(naive, semi, "disagreement on chain of length {n}");
        }
    }

    #[test]
    fn reference_counts_scanned_tuples() {
        let edb = chain_db(8);
        let (_, naive_stats) = reference_naive_eval(&tc_program(), &edb).unwrap();
        let (_, semi_stats) = reference_semi_naive_eval(&tc_program(), &edb).unwrap();
        assert!(naive_stats.tuples_scanned > 0);
        assert!(semi_stats.tuples_scanned > 0);
        assert!(
            semi_stats.tuples_scanned < naive_stats.tuples_scanned,
            "semi-naive must re-join less than naive"
        );
        // the reference evaluator performs no index probes by construction
        assert_eq!(naive_stats.index_probes, 0);
        assert_eq!(semi_stats.index_probes, 0);
    }
}
