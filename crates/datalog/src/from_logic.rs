//! Conversion from first-order Horn sentences to Datalog programs.
//!
//! Theorem 4.8 considers transformations whose sentences are conjunctions of
//! function-free Horn clauses.  `kbt-logic::horn` recognises that shape; this
//! module turns the recognised clauses into an executable [`Program`].

use kbt_logic::{horn_clauses, HornClause, Sentence};

use crate::ast::{DlAtom, Literal, Program, Rule};
use crate::error::DatalogError;
use crate::Result;

/// Converts already-extracted Horn clauses into a program.
pub fn program_from_horn(clauses: &[HornClause]) -> Result<Program> {
    let rules: Vec<Rule> = clauses
        .iter()
        .map(|c| {
            Rule::new(
                DlAtom::new(c.head.0, c.head.1.clone()),
                c.body
                    .iter()
                    .map(|(rel, terms)| Literal::positive(DlAtom::new(*rel, terms.clone())))
                    .collect::<Vec<_>>(),
            )
        })
        .collect();
    Program::new(rules)
}

/// Converts a sentence into a Datalog program, if the sentence is a
/// conjunction of function-free Horn clauses; fails with
/// [`DatalogError::NotHorn`] otherwise.
pub fn program_from_sentence(sentence: &Sentence) -> Result<Program> {
    let clauses = horn_clauses(sentence).ok_or(DatalogError::NotHorn)?;
    program_from_horn(&clauses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::semi_naive_eval;
    use kbt_data::{DatabaseBuilder, RelId};
    use kbt_logic::builder::*;

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    #[test]
    fn example_1_sentence_becomes_the_tc_program() {
        // Example 1 of the paper, rewritten as two Horn clauses:
        // ∀x,y (R1(x,y) → R2(x,y)) ∧ ∀x,y,z (R2(x,y) ∧ R1(y,z) → R2(x,z))
        let phi = Sentence::new(and(
            forall(
                [1, 2],
                implies(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
            ),
            forall(
                [1, 2, 3],
                implies(
                    and(atom(2, [var(1), var(2)]), atom(1, [var(2), var(3)])),
                    atom(2, [var(1), var(3)]),
                ),
            ),
        ))
        .unwrap();
        let program = program_from_sentence(&phi).unwrap();
        assert_eq!(program.len(), 2);

        let edb = DatabaseBuilder::new()
            .fact(r(1), [1u32, 2])
            .fact(r(1), [2u32, 3])
            .fact(r(1), [3u32, 4])
            .build()
            .unwrap();
        let (fix, _) = semi_naive_eval(&program, &edb).unwrap();
        assert_eq!(fix.relation(r(2)).unwrap().len(), 6);
        assert!(fix.holds(r(2), &kbt_data::tuple![1, 4]));
    }

    #[test]
    fn non_horn_sentences_are_rejected() {
        let phi = Sentence::new(forall(
            [1, 2],
            iff(atom(1, [var(1), var(2)]), atom(2, [var(1), var(2)])),
        ))
        .unwrap();
        assert!(matches!(
            program_from_sentence(&phi),
            Err(DatalogError::NotHorn)
        ));
    }

    #[test]
    fn unsafe_horn_clauses_are_rejected_at_program_construction() {
        // ∀x,y (R1(x,x) → R2(x,y)) is Horn but not range-restricted.
        let phi = Sentence::new(forall(
            [1, 2],
            implies(atom(1, [var(1), var(1)]), atom(2, [var(1), var(2)])),
        ))
        .unwrap();
        assert!(matches!(
            program_from_sentence(&phi),
            Err(DatalogError::UnsafeRule { .. })
        ));
    }
}
