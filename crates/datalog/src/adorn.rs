//! Adornments: bound/free binding patterns for goal-directed evaluation.
//!
//! A query `reach('a', x)` demands only the tuples of `reach` whose first
//! column is `'a'`.  The classical way to exploit that demand in a bottom-up
//! engine (Bancilhon et al., *Magic Sets and Other Strange Ways to Implement
//! Logic Programs*) starts by **adorning** the program: annotate every
//! intensional predicate reachable from the query with the binding pattern
//! (`b` = bound, `f` = free) under which it is called, propagating bindings
//! through each rule body left to right (the textual sideways
//! information-passing strategy).
//!
//! This module computes that adorned program.  [`crate::magic`] turns it
//! into the rewritten (magic) program.  Both refuse — with
//! [`DatalogError::GoalDirected`] — on program shapes the rewrite does not
//! cover (negated intensional subgoals); callers fall back to full
//! materialization, which is always available.

use std::collections::{BTreeSet, VecDeque};
use std::fmt;

use kbt_data::RelId;
use kbt_logic::{Term, Var};

use crate::ast::{Literal, Program, Rule};
use crate::error::DatalogError;
use crate::Result;

/// A binding pattern over the argument positions of one predicate:
/// `true` = bound, `false` = free.  Displays as the classical `bf…` string.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Adornment(Vec<bool>);

impl Adornment {
    /// Builds an adornment from explicit per-position flags.
    pub fn new(bound: impl Into<Vec<bool>>) -> Self {
        Adornment(bound.into())
    }

    /// The adornment of a call with the given argument terms: constant
    /// positions are bound, variable positions are free.
    pub fn from_terms(terms: &[Term]) -> Self {
        Adornment(terms.iter().map(|t| t.is_ground()).collect())
    }

    /// Number of argument positions.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the adornment covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether position `i` is bound.
    pub fn is_bound(&self, i: usize) -> bool {
        self.0[i]
    }

    /// Number of bound positions.
    pub fn bound_count(&self) -> usize {
        self.0.iter().filter(|b| **b).count()
    }

    /// Whether every position is free (the pattern of a bare query).
    pub fn is_all_free(&self) -> bool {
        self.bound_count() == 0
    }

    /// The per-position flags.
    pub fn flags(&self) -> &[bool] {
        &self.0
    }
}

impl fmt::Display for Adornment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            f.write_str(if *b { "b" } else { "f" })?;
        }
        Ok(())
    }
}

/// An intensional predicate together with the binding pattern under which
/// it is called.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AdornedPred {
    /// The relation symbol.
    pub rel: RelId,
    /// Its call pattern.
    pub adornment: Adornment,
}

/// One body literal of an adorned rule.  `call` is `Some` exactly when the
/// literal is a positive intensional subgoal (and therefore subject to
/// renaming by the magic rewrite).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdornedLiteral {
    /// The original literal.
    pub literal: Literal,
    /// The adornment under which an intensional subgoal is called.
    pub call: Option<Adornment>,
}

/// One rule of the adorned program: the original rule, the adornment of its
/// head, and the per-literal call patterns derived left to right.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdornedRule {
    /// The head predicate with its adornment.
    pub head: AdornedPred,
    /// The original rule.
    pub rule: Rule,
    /// Body literals in original order, each with its call pattern.
    pub body: Vec<AdornedLiteral>,
}

/// The adorned slice of a program around one query pattern: exactly the
/// rules reachable from the query, each annotated with binding patterns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AdornedProgram {
    /// The query predicate with the query's own adornment.
    pub query: AdornedPred,
    /// Adorned rules in deterministic (worklist × source) order.
    pub rules: Vec<AdornedRule>,
    /// Every distinct adorned predicate, in first-reached order.
    pub preds: Vec<AdornedPred>,
}

/// Adorns `program` around a call of `rel` with binding pattern `pattern`.
///
/// Propagation is left to right: a body position is bound if it is a
/// constant, a bound head variable, or a variable of an earlier *positive*
/// body literal.  Returns [`DatalogError::GoalDirected`] if a negated
/// intensional subgoal is reachable — the magic rewrite does not guard
/// negated predicates, so such queries must fall back to materialization.
pub fn adorn_program(program: &Program, rel: RelId, pattern: &Adornment) -> Result<AdornedProgram> {
    let idb = program.idb_relations();
    let query = AdornedPred {
        rel,
        adornment: pattern.clone(),
    };
    let mut seen: BTreeSet<AdornedPred> = BTreeSet::new();
    let mut preds: Vec<AdornedPred> = Vec::new();
    let mut queue: VecDeque<AdornedPred> = VecDeque::new();
    seen.insert(query.clone());
    preds.push(query.clone());
    queue.push_back(query.clone());
    let mut rules = Vec::new();

    while let Some(pred) = queue.pop_front() {
        for rule in program.rules() {
            if rule.head.rel != pred.rel {
                continue;
            }
            let adorned = adorn_rule(rule, &pred, &idb)?;
            for lit in &adorned.body {
                if let Some(call) = &lit.call {
                    let callee = AdornedPred {
                        rel: lit.literal.atom.rel,
                        adornment: call.clone(),
                    };
                    if seen.insert(callee.clone()) {
                        preds.push(callee.clone());
                        queue.push_back(callee);
                    }
                }
            }
            rules.push(adorned);
        }
    }

    Ok(AdornedProgram {
        query,
        rules,
        preds,
    })
}

/// Adorns one rule called under `pred`, or refuses on a negated
/// intensional subgoal.
fn adorn_rule(rule: &Rule, pred: &AdornedPred, idb: &BTreeSet<RelId>) -> Result<AdornedRule> {
    debug_assert_eq!(rule.head.arity(), pred.adornment.len());
    let mut bound: BTreeSet<Var> = rule
        .head
        .terms
        .iter()
        .enumerate()
        .filter(|(i, _)| pred.adornment.is_bound(*i))
        .filter_map(|(_, t)| t.as_var())
        .collect();
    let mut body = Vec::with_capacity(rule.body.len());
    for lit in &rule.body {
        let is_idb = idb.contains(&lit.atom.rel);
        if !lit.positive && is_idb {
            return Err(DatalogError::GoalDirected {
                reason: format!(
                    "negated intensional subgoal {} is reachable from the query",
                    lit.atom
                ),
            });
        }
        let call = if lit.positive && is_idb {
            Some(Adornment(
                lit.atom
                    .terms
                    .iter()
                    .map(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v),
                    })
                    .collect(),
            ))
        } else {
            None
        };
        if lit.positive {
            bound.extend(lit.atom.variables());
        }
        body.push(AdornedLiteral {
            literal: lit.clone(),
            call,
        });
    }
    Ok(AdornedRule {
        head: pred.clone(),
        rule: rule.clone(),
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::DlAtom;
    use kbt_logic::builder::{cst, var};

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    fn tc_program() -> Program {
        let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
        let path = |a, b| DlAtom::new(r(2), vec![a, b]);
        Program::new(vec![
            Rule::new(
                path(var(1), var(2)),
                vec![Literal::positive(edge(var(1), var(2)))],
            ),
            Rule::new(
                path(var(1), var(3)),
                vec![
                    Literal::positive(path(var(1), var(2))),
                    Literal::positive(edge(var(2), var(3))),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn adornment_displays_and_classifies() {
        let a = Adornment::from_terms(&[cst(7), var(1)]);
        assert_eq!(a.to_string(), "bf");
        assert_eq!(a.bound_count(), 1);
        assert!(a.is_bound(0) && !a.is_bound(1));
        assert!(!a.is_all_free());
        assert!(Adornment::from_terms(&[var(1), var(2)]).is_all_free());
    }

    #[test]
    fn tc_bf_adorns_recursively() {
        let p = tc_program();
        let adorned = adorn_program(&p, r(2), &Adornment::new(vec![true, false])).unwrap();
        // Only path^bf is reached: the recursive call keeps the first
        // argument bound (it is a bound head variable).
        assert_eq!(adorned.preds.len(), 1);
        assert_eq!(adorned.preds[0].adornment.to_string(), "bf");
        assert_eq!(adorned.rules.len(), 2);
        let rec = &adorned.rules[1];
        assert_eq!(
            rec.body[0].call.as_ref().unwrap().to_string(),
            "bf",
            "recursive path call keeps x1 bound"
        );
        assert!(rec.body[1].call.is_none(), "edge is extensional");
    }

    #[test]
    fn free_patterns_propagate_bindings_sideways() {
        // q(x, y) :- e(x, z), p(z, y): under q^fb the call to p is p^bf —
        // wait, z is bound by e only in the sideways sense; under q^ff the
        // call to p is still p^bf because z flows in from e.
        let e = |a, b| DlAtom::new(r(1), vec![a, b]);
        let p = |a, b| DlAtom::new(r(2), vec![a, b]);
        let q = |a, b| DlAtom::new(r(3), vec![a, b]);
        let prog = Program::new(vec![
            Rule::new(
                p(var(1), var(2)),
                vec![Literal::positive(e(var(1), var(2)))],
            ),
            Rule::new(
                q(var(1), var(2)),
                vec![
                    Literal::positive(e(var(1), var(3))),
                    Literal::positive(p(var(3), var(2))),
                ],
            ),
        ])
        .unwrap();
        let adorned = adorn_program(&prog, r(3), &Adornment::new(vec![false, false])).unwrap();
        let call = adorned.rules[0].body[1].call.as_ref().unwrap();
        assert_eq!(call.to_string(), "bf", "z is bound sideways by e(x, z)");
    }

    #[test]
    fn negated_idb_subgoals_refuse() {
        let e = |a| DlAtom::new(r(1), vec![a]);
        let p = |a| DlAtom::new(r(2), vec![a]);
        let q = |a| DlAtom::new(r(3), vec![a]);
        let prog = Program::new(vec![
            Rule::new(p(var(1)), vec![Literal::positive(e(var(1)))]),
            Rule::new(
                q(var(1)),
                vec![Literal::positive(e(var(1))), Literal::negative(p(var(1)))],
            ),
        ])
        .unwrap();
        let err = adorn_program(&prog, r(3), &Adornment::new(vec![true])).unwrap_err();
        assert!(matches!(err, DatalogError::GoalDirected { .. }));
        // Negated *extensional* literals are fine.
        let prog2 = Program::new(vec![Rule::new(
            q(var(1)),
            vec![
                Literal::positive(e(var(1))),
                Literal::negative(DlAtom::new(r(4), vec![var(1)])),
            ],
        )])
        .unwrap();
        assert!(adorn_program(&prog2, r(3), &Adornment::new(vec![true])).is_ok());
    }
}
