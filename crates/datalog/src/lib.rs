//! # kbt-datalog — the Datalog substrate
//!
//! *Knowledgebase Transformations* leans on Datalog in two places:
//!
//! * **Theorem 4.8** — transformation expressions whose sentences are
//!   conjunctions of function-free Horn clauses ("Datalog-restricted"
//!   transformations) have PTIME data complexity, because inserting a Datalog
//!   program into an extensional database produces its unique least fixpoint;
//! * **Section 5 / Section 2.1** — every fixpoint query is expressible in the
//!   transformation language, and the iterative fixpoint of a *stratified*
//!   program is obtained by sequentially updating the database with the
//!   strata of the program.
//!
//! This crate implements that substrate from scratch: a rule/program
//! representation, safety (range-restriction) checking, stratification, and
//! bottom-up least-fixpoint evaluation over the relational substrate of
//! `kbt-data`.
//!
//! Evaluation is delegated to `kbt-engine` ([`lower`] maps the AST onto the
//! engine's slot-based IR): [`semi_naive_eval`] runs delta-indexed
//! semi-naive rounds over hash-indexed storage, [`naive_eval`] recomputes
//! every round.  The original nested-loop evaluators survive unchanged in
//! [`reference`](mod@reference) as an independent cross-check oracle.

pub mod adorn;
pub mod ast;
pub mod error;
pub mod eval;
pub mod from_logic;
pub mod lower;
pub mod magic;
pub mod reference;
pub mod stratify;

pub use adorn::{adorn_program, AdornedProgram, Adornment};
pub use ast::{DlAtom, Literal, Program, Rule};
pub use error::DatalogError;
pub use eval::{
    explain_plans, idb_only, naive_eval, naive_eval_threads, semi_naive_eval,
    semi_naive_eval_profiled, semi_naive_eval_threads, EvalStats, IncrementalEval,
};
pub use from_logic::{program_from_horn, program_from_sentence};
pub use kbt_engine::RuleProfile;
pub use lower::{
    lower_program, lower_program_named, lower_rule, lower_rule_named, lower_strata,
    lower_strata_named, render_rule,
};
pub use magic::{magic_rewrite, MagicName, MagicPlan};
pub use reference::{reference_naive_eval, reference_semi_naive_eval};
pub use stratify::stratify;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DatalogError>;
