//! Datalog atoms, literals, rules and programs.

use std::collections::BTreeSet;
use std::fmt;

use kbt_data::{RelId, Schema};
use kbt_logic::{Term, Var};

use crate::error::DatalogError;
use crate::Result;

/// A Datalog atom `R(t̄)` whose arguments are variables or constants.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DlAtom {
    /// The relation symbol.
    pub rel: RelId,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl DlAtom {
    /// Builds an atom.
    pub fn new(rel: RelId, terms: impl Into<Vec<Term>>) -> Self {
        DlAtom {
            rel,
            terms: terms.into(),
        }
    }

    /// The variables occurring in the atom.
    pub fn variables(&self) -> BTreeSet<Var> {
        self.terms.iter().filter_map(|t| t.as_var()).collect()
    }

    /// Whether every argument is a constant.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| t.is_ground())
    }

    /// The arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }
}

impl fmt::Display for DlAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.rel)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A body literal: a possibly negated atom.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Literal {
    /// The underlying atom.
    pub atom: DlAtom,
    /// `true` for a positive literal, `false` for a negated one.
    pub positive: bool,
}

impl Literal {
    /// A positive literal.
    pub fn positive(atom: DlAtom) -> Self {
        Literal {
            atom,
            positive: true,
        }
    }

    /// A negated literal (used only by stratified programs).
    pub fn negative(atom: DlAtom) -> Self {
        Literal {
            atom,
            positive: false,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.positive {
            write!(f, "~")?;
        }
        write!(f, "{}", self.atom)
    }
}

/// A rule `head :- body`.  An empty body makes the rule a fact.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rule {
    /// The head atom.
    pub head: DlAtom,
    /// The body literals.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Builds a rule.
    pub fn new(head: DlAtom, body: impl Into<Vec<Literal>>) -> Self {
        Rule {
            head,
            body: body.into(),
        }
    }

    /// A fact (rule with an empty body).
    pub fn fact(head: DlAtom) -> Self {
        Rule {
            head,
            body: Vec::new(),
        }
    }

    /// Whether the rule is *safe* (range-restricted): every variable of the
    /// head and of every negated body literal occurs in some positive body
    /// literal.
    pub fn is_safe(&self) -> bool {
        let positive_vars: BTreeSet<Var> = self
            .body
            .iter()
            .filter(|l| l.positive)
            .flat_map(|l| l.atom.variables())
            .collect();
        let mut needed = self.head.variables();
        for l in &self.body {
            if !l.positive {
                needed.extend(l.atom.variables());
            }
        }
        needed.is_subset(&positive_vars)
    }

    /// Whether every body literal is positive.
    pub fn is_positive(&self) -> bool {
        self.body.iter().all(|l| l.positive)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.head)?;
        if !self.body.is_empty() {
            write!(f, " :- ")?;
            for (i, l) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{l}")?;
            }
        }
        write!(f, ".")
    }
}

/// A Datalog program: a finite set of rules.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Program {
    rules: Vec<Rule>,
}

impl Program {
    /// Builds a program, checking safety and arity consistency.
    pub fn new(rules: impl Into<Vec<Rule>>) -> Result<Self> {
        let rules = rules.into();
        let mut schema = Schema::new();
        for rule in &rules {
            if !rule.is_safe() {
                return Err(DatalogError::UnsafeRule {
                    rule: rule.to_string(),
                });
            }
            schema
                .add(rule.head.rel, rule.head.arity())
                .map_err(DatalogError::Data)?;
            for l in &rule.body {
                schema
                    .add(l.atom.rel, l.atom.arity())
                    .map_err(DatalogError::Data)?;
            }
        }
        Ok(Program { rules })
    }

    /// The rules of the program.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The intensional relations: those occurring in some rule head.
    pub fn idb_relations(&self) -> BTreeSet<RelId> {
        self.rules.iter().map(|r| r.head.rel).collect()
    }

    /// The extensional relations: those occurring only in rule bodies.
    pub fn edb_relations(&self) -> BTreeSet<RelId> {
        let idb = self.idb_relations();
        self.rules
            .iter()
            .flat_map(|r| r.body.iter().map(|l| l.atom.rel))
            .filter(|r| !idb.contains(r))
            .collect()
    }

    /// The full schema of the program (every relation with its arity).
    pub fn schema(&self) -> Schema {
        let mut s = Schema::new();
        for rule in &self.rules {
            let _ = s.add(rule.head.rel, rule.head.arity());
            for l in &rule.body {
                let _ = s.add(l.atom.rel, l.atom.arity());
            }
        }
        s
    }

    /// Whether the program is negation-free.
    pub fn is_positive(&self) -> bool {
        self.rules.iter().all(Rule::is_positive)
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kbt_logic::builder::{cst, var};

    fn r(i: u32) -> RelId {
        RelId::new(i)
    }

    /// edge/path transitive closure program used across the test suite.
    pub fn tc_program() -> Program {
        // path(x,y) :- edge(x,y).   path(x,z) :- path(x,y), edge(y,z).
        let edge = |a, b| DlAtom::new(r(1), vec![a, b]);
        let path = |a, b| DlAtom::new(r(2), vec![a, b]);
        Program::new(vec![
            Rule::new(
                path(var(1), var(2)),
                vec![Literal::positive(edge(var(1), var(2)))],
            ),
            Rule::new(
                path(var(1), var(3)),
                vec![
                    Literal::positive(path(var(1), var(2))),
                    Literal::positive(edge(var(2), var(3))),
                ],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn program_classification() {
        let p = tc_program();
        assert_eq!(p.len(), 2);
        assert!(p.is_positive());
        assert_eq!(
            p.idb_relations().into_iter().collect::<Vec<_>>(),
            vec![r(2)]
        );
        assert_eq!(
            p.edb_relations().into_iter().collect::<Vec<_>>(),
            vec![r(1)]
        );
        assert_eq!(p.schema().len(), 2);
    }

    #[test]
    fn unsafe_rules_are_rejected() {
        // head variable x2 does not occur in a positive body literal
        let bad = Rule::new(
            DlAtom::new(r(2), vec![var(1), var(2)]),
            vec![Literal::positive(DlAtom::new(r(1), vec![var(1), var(1)]))],
        );
        assert!(!bad.is_safe());
        assert!(matches!(
            Program::new(vec![bad]),
            Err(DatalogError::UnsafeRule { .. })
        ));

        // negated literal with a variable not bound positively
        let bad_neg = Rule::new(
            DlAtom::new(r(2), vec![var(1)]),
            vec![
                Literal::positive(DlAtom::new(r(1), vec![var(1)])),
                Literal::negative(DlAtom::new(r(3), vec![var(2)])),
            ],
        );
        assert!(!bad_neg.is_safe());
    }

    #[test]
    fn ground_facts_are_safe() {
        let fact = Rule::fact(DlAtom::new(r(1), vec![cst(1), cst(2)]));
        assert!(fact.is_safe());
        assert!(Program::new(vec![fact]).is_ok());
    }

    #[test]
    fn arity_conflicts_are_rejected() {
        let p = Program::new(vec![
            Rule::fact(DlAtom::new(r(1), vec![cst(1)])),
            Rule::fact(DlAtom::new(r(1), vec![cst(1), cst(2)])),
        ]);
        assert!(matches!(p, Err(DatalogError::Data(_))));
    }

    #[test]
    fn display_is_readable() {
        let p = tc_program();
        let text = p.to_string();
        assert!(text.contains("R2(x1, x2) :- R1(x1, x2)."));
        assert!(text.contains("R2(x1, x3) :- R2(x1, x2), R1(x2, x3)."));
    }
}
